//! Sweep parity and behaviour: a `Session::sweep()` over N workloads must
//! produce rows *bitwise identical* to a sequential loop of single
//! `Session` runs, regardless of worker-thread count, plus error-path and
//! aggregation coverage.

use std::sync::OnceLock;

use session::{Policy, Session, SessionError, SessionReport, SweepError};
use simproc::{BenchmarkProfile, Machine, MachineConfig};
use symbiosis::enumerate_workloads;
use workloads::{spec2006, PerfTable, WorkUnit};

fn tiny_table() -> &'static PerfTable {
    static TABLE: OnceLock<PerfTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let machine =
            Machine::new(MachineConfig::smt4().with_windows(2_000, 6_000)).expect("valid config");
        let suite: Vec<BenchmarkProfile> = spec2006().into_iter().take(5).collect();
        PerfTable::build(&machine, &suite, 4).expect("table builds")
    })
}

const JOBS: u64 = 4_000;
const SEED: u64 = 0xBEEF;

fn sequential(workloads: &[Vec<usize>], policies: &[Policy]) -> Vec<SessionReport> {
    let table = tiny_table();
    workloads
        .iter()
        .map(|w| {
            let view = table.workload_view(w).expect("valid workload");
            Session::builder()
                .rates(&view)
                .policies(policies.iter().copied())
                .fcfs_jobs(JOBS)
                .seed(SEED)
                .run()
                .expect("session runs")
        })
        .collect()
}

#[test]
fn sweep_rows_match_sequential_sessions_bitwise() {
    let table = tiny_table();
    let workloads = enumerate_workloads(5, 4); // all 5 choose 4 = 5 mixes
    let policies = [
        Policy::Optimal,
        Policy::Worst,
        Policy::FcfsMarkov,
        Policy::FcfsEvent,
    ];
    let expected = sequential(&workloads, &policies);
    // Thread counts below, at, and above the workload count: scheduling
    // order must never leak into the results.
    for threads in [1, 3, 16] {
        let sweep = Session::sweep()
            .table(table)
            .workloads(workloads.clone())
            .policies(policies)
            .fcfs_jobs(JOBS)
            .seed(SEED)
            .threads(threads)
            .run()
            .expect("sweep runs");
        assert_eq!(sweep.len(), workloads.len());
        for ((row, w), want) in sweep.rows.iter().zip(&workloads).zip(&expected) {
            assert_eq!(&row.workload, w, "rows stay in request order");
            // PartialEq on PolicyReport compares every f64 — equality here
            // means identical bit patterns for every throughput, fraction
            // and measurement (no NaNs occur in these analyses).
            assert_eq!(&row.report, want, "threads={threads}, workload {w:?}");
            for (pr, want_pr) in row.report.rows.iter().zip(&want.rows) {
                assert_eq!(
                    pr.throughput.to_bits(),
                    want_pr.throughput.to_bits(),
                    "threads={threads}, workload {w:?}, policy {}",
                    pr.policy
                );
            }
        }
    }
}

#[test]
fn sweep_latency_policies_match_sequential_sessions() {
    let table = tiny_table();
    let workloads = vec![vec![0, 1, 2], vec![1, 2, 4]];
    let policies = [Policy::Fcfs, Policy::MaxIt, Policy::MaxTp];
    let expected = sequential(&workloads, &policies);
    let sweep = Session::sweep()
        .table(table)
        .workloads(workloads.clone())
        .policies(policies)
        .fcfs_jobs(JOBS)
        .seed(SEED)
        .threads(2)
        .run()
        .expect("sweep runs");
    for (row, want) in sweep.rows.iter().zip(&expected) {
        assert_eq!(&row.report, want);
    }
}

#[test]
fn latency_policies_without_latency_config_keep_batch_semantics() {
    // Regression: a sweep over latency policies *without* `.latency(..)`
    // must run the single-session default — the fixed-batch (makespan)
    // experiment — for every row, bitwise.
    let table = tiny_table();
    let workloads = vec![vec![0, 1, 2], vec![0, 2, 4]];
    let expected = sequential(&workloads, &Policy::LATENCY);
    let sweep = Session::sweep()
        .table(table)
        .workloads(workloads.clone())
        .policies(Policy::LATENCY)
        .fcfs_jobs(JOBS)
        .seed(SEED)
        .threads(2)
        .run()
        .expect("sweep runs");
    for (row, want) in sweep.rows.iter().zip(&expected) {
        assert_eq!(&row.report, want);
        for pr in &row.report.rows {
            // The `latency: None` row shape: batch measurements present,
            // no arrival-process measurements, no LP fractions.
            assert!(
                pr.batch.is_some(),
                "{}: batch rows carry makespan reports",
                pr.policy
            );
            assert!(pr.latency.is_none(), "{}: no arrival process", pr.policy);
            assert!(pr.fractions.is_none(), "{}: no LP fractions", pr.policy);
            let batch = pr.batch.as_ref().expect("checked above");
            assert!(batch.makespan > 0.0 && pr.throughput > 0.0);
        }
    }
}

#[test]
fn latency_config_sweep_matches_sequential_latency_sessions() {
    // The Poisson-arrival leg: `.latency(cfg)` on the sweep must equal a
    // sequential loop of single sessions carrying the same config.
    let table = tiny_table();
    let workloads = vec![vec![0, 1, 2], vec![1, 3, 4]];
    let cfg = queueing::LatencyConfig {
        arrival_rate: 1.1,
        measured_jobs: 1_500,
        warmup_jobs: 150,
        sizes: queueing::SizeDist::Exponential,
        seed: SEED,
    };
    let expected: Vec<SessionReport> = workloads
        .iter()
        .map(|w| {
            let view = tiny_table().workload_view(w).expect("valid workload");
            Session::builder()
                .rates(&view)
                .policies(Policy::LATENCY)
                .fcfs_jobs(JOBS)
                .seed(SEED)
                .latency(cfg.clone())
                .run()
                .expect("session runs")
        })
        .collect();
    let sweep = Session::sweep()
        .table(table)
        .workloads(workloads.clone())
        .policies(Policy::LATENCY)
        .fcfs_jobs(JOBS)
        .seed(SEED)
        .latency(cfg)
        .threads(2)
        .run()
        .expect("sweep runs");
    for (row, want) in sweep.rows.iter().zip(&expected) {
        assert_eq!(&row.report, want);
        for pr in &row.report.rows {
            assert!(pr.latency.is_some(), "{}: arrival-process rows", pr.policy);
            assert!(pr.batch.is_none(), "{}: no batch leg", pr.policy);
        }
    }
}

#[test]
fn sweep_item_session_carries_the_sweep_knobs() {
    // `SweepItem::session()` must hand custom maps the exact builder
    // `run()` evaluates — same event-leg jobs, seed and sizes — so
    // per-item policy rows stay bitwise equal to standard sweep rows.
    let table = tiny_table();
    let workloads = enumerate_workloads(5, 3);
    let via_run = Session::sweep()
        .table(table)
        .workloads(workloads.clone())
        .policies([Policy::FcfsEvent, Policy::Optimal])
        .fcfs_jobs(JOBS)
        .seed(SEED)
        .run()
        .expect("sweep runs");
    let via_item: Vec<SessionReport> = Session::sweep()
        .table(table)
        .workloads(workloads.clone())
        .fcfs_jobs(JOBS)
        .seed(SEED)
        .threads(3)
        .map(|item| {
            let view = item.view()?;
            item.session()
                .rates(&view)
                .policies([Policy::FcfsEvent, Policy::Optimal])
                .run()
                .map_err(|e| e.to_string())
        })
        .expect("map runs");
    assert_eq!(via_item.len(), via_run.len());
    for (got, want) in via_item.iter().zip(&via_run.rows) {
        assert_eq!(got, &want.report);
    }
}

#[test]
fn plain_unit_sweep_matches_sequential_plain_rates() {
    let table = tiny_table();
    let workloads = vec![vec![0, 1, 2, 3], vec![0, 2, 3, 4]];
    let sweep = Session::sweep()
        .table(table)
        .workloads(workloads.clone())
        .unit(WorkUnit::Plain)
        .policies([Policy::Optimal, Policy::FcfsEvent])
        .fcfs_jobs(JOBS)
        .seed(SEED)
        .run()
        .expect("sweep runs");
    for (row, w) in sweep.rows.iter().zip(&workloads) {
        let rates = table
            .workload_rates_with_unit(w, WorkUnit::Plain)
            .expect("valid workload");
        let want = Session::builder()
            .rates(&rates)
            .policies([Policy::Optimal, Policy::FcfsEvent])
            .fcfs_jobs(JOBS)
            .seed(SEED)
            .run()
            .expect("session runs");
        assert_eq!(&row.report, &want, "workload {w:?}");
    }
}

#[test]
fn aggregation_helpers_fold_the_rows() {
    let table = tiny_table();
    let sweep = Session::sweep()
        .table(table)
        .workloads(enumerate_workloads(5, 4))
        .policies([Policy::Worst, Policy::FcfsEvent, Policy::Optimal])
        .fcfs_jobs(JOBS)
        .seed(SEED)
        .run()
        .expect("sweep runs");
    let best = sweep.throughputs(Policy::Optimal);
    let fcfs = sweep.throughputs(Policy::FcfsEvent);
    let worst = sweep.throughputs(Policy::Worst);
    assert_eq!(best.len(), sweep.len());
    for i in 0..best.len() {
        assert!(worst[i] <= fcfs[i] + 1e-6 && fcfs[i] <= best[i] + 1e-6);
    }
    let mean_gain = sweep.mean_gain(Policy::Optimal, Policy::FcfsEvent);
    assert!(mean_gain >= -1e-9, "optimal dominates FCFS: {mean_gain}");
    let manual: f64 = best
        .iter()
        .zip(&fcfs)
        .map(|(b, f)| b / f - 1.0)
        .sum::<f64>()
        / best.len() as f64;
    assert_eq!(mean_gain.to_bits(), manual.to_bits());
    // Optimal and worst track the same underlying symbiosis.
    assert!(sweep.correlation(Policy::Optimal, Policy::Worst).is_some());
    let display = sweep.to_string();
    assert!(display.contains("OPTIMAL") && display.contains("mean TP"));
}

#[test]
fn map_fans_custom_analyses_in_order() {
    let table = tiny_table();
    let workloads = enumerate_workloads(5, 3);
    let sums: Vec<(usize, f64)> = Session::sweep()
        .table(table)
        .workloads(workloads.clone())
        .threads(4)
        .map(|item| {
            let rates = item.rates()?;
            Ok((item.index(), rates.rate_rows().iter().flatten().sum()))
        })
        .expect("map runs");
    assert_eq!(sums.len(), workloads.len());
    for (i, (idx, total)) in sums.iter().enumerate() {
        assert_eq!(*idx, i, "results in workload order");
        assert!(*total > 0.0);
    }
}

#[test]
fn configuration_errors_surface_before_work() {
    let table = tiny_table();
    // No table.
    let err = Session::sweep()
        .workloads(vec![vec![0, 1]])
        .policy(Policy::Optimal)
        .run()
        .unwrap_err();
    assert!(matches!(err, SweepError::MissingTable), "{err}");
    // No workloads.
    let err = Session::sweep()
        .table(table)
        .policy(Policy::Optimal)
        .run()
        .unwrap_err();
    assert!(matches!(err, SweepError::NoWorkloads), "{err}");
    // No policies.
    let err = Session::sweep()
        .table(table)
        .workload(&[0, 1])
        .run()
        .unwrap_err();
    assert!(
        matches!(err, SweepError::Config(SessionError::NoPolicies)),
        "{err}"
    );
    // Unknown policy name.
    let err = Session::sweep()
        .table(table)
        .workload(&[0, 1])
        .policy_names(["optimal", "bogus"])
        .run()
        .unwrap_err();
    assert!(
        matches!(err, SweepError::Config(SessionError::UnknownPolicy(ref n)) if n == "bogus"),
        "{err}"
    );
}

#[test]
fn bad_workload_reported_with_context() {
    let table = tiny_table();
    let err = Session::sweep()
        .table(table)
        .workloads(vec![vec![0, 1], vec![4, 2]]) // second is unsorted
        .policy(Policy::Optimal)
        .threads(2)
        .run()
        .unwrap_err();
    match err {
        SweepError::Workload { workload, .. } => assert_eq!(workload, vec![4, 2]),
        other => panic!("expected workload error, got {other}"),
    }
    // Custom map errors carry the same context.
    let err = Session::sweep()
        .table(table)
        .workloads(vec![vec![0, 1], vec![1, 3]])
        .map(|item| {
            if item.workload() == [1, 3] {
                Err("boom".into())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
    match err {
        SweepError::Custom { workload, message } => {
            assert_eq!(workload, vec![1, 3]);
            assert_eq!(message, "boom");
        }
        other => panic!("expected custom error, got {other}"),
    }
}

#[test]
fn merge_of_consecutive_shards_equals_the_full_sweep() {
    let table = tiny_table();
    let workloads = enumerate_workloads(5, 3); // 35 mixes
    let policies = [Policy::Optimal, Policy::Worst, Policy::FcfsEvent];
    let full = Session::sweep()
        .table(table)
        .workloads(workloads.clone())
        .policies(policies)
        .fcfs_jobs(JOBS)
        .seed(SEED)
        .run()
        .expect("full sweep runs");
    // Shard the list into uneven consecutive chunks, sweep each shard
    // independently, and merge in shard order.
    for chunk in [1, 4, 9, 35, 50] {
        let parts: Vec<_> = workloads
            .chunks(chunk)
            .map(|shard| {
                Session::sweep()
                    .table(table)
                    .workloads(shard.to_vec())
                    .policies(policies)
                    .fcfs_jobs(JOBS)
                    .seed(SEED)
                    .run()
                    .expect("shard sweep runs")
            })
            .collect();
        let merged = session::SweepReport::merge(parts);
        assert_eq!(merged, full, "chunk size {chunk}");
        // Aggregates are recomputed from the merged rows.
        assert_eq!(
            merged.mean_throughput(Policy::Optimal).to_bits(),
            full.mean_throughput(Policy::Optimal).to_bits()
        );
        assert_eq!(
            merged
                .mean_gain(Policy::Optimal, Policy::FcfsEvent)
                .to_bits(),
            full.mean_gain(Policy::Optimal, Policy::FcfsEvent).to_bits()
        );
    }
    // Degenerate merges.
    assert_eq!(session::SweepReport::merge([]).len(), 0);
    assert_eq!(session::SweepReport::merge([full.clone()]), full);
}

#[test]
fn spec_round_trips_through_a_rebuilt_builder() {
    let table = tiny_table();
    let workloads = enumerate_workloads(5, 4);
    let policies = [Policy::Optimal, Policy::FcfsMarkov];
    let builder = Session::sweep()
        .table(table)
        .workloads(workloads.clone())
        .policies(policies)
        .unit(WorkUnit::Weighted)
        .fcfs_jobs(JOBS)
        .seed(SEED);
    let spec = builder.spec();
    assert_eq!(spec.policies, vec!["OPTIMAL", "FCFS-MARKOV"]);
    assert_eq!(spec.fcfs_jobs, JOBS);
    assert_eq!(spec.seed, SEED);
    // The reconstructed builder produces bitwise-identical rows, and its
    // own spec is identical (lossless round trip).
    assert_eq!(spec.sweep(table).spec(), spec);
    let direct = builder.run().expect("direct sweep runs");
    let rebuilt = spec
        .sweep(table)
        .workloads(workloads)
        .run()
        .expect("rebuilt sweep runs");
    assert_eq!(direct, rebuilt);
}

#[test]
fn shard_validates_before_handing_out_parts() {
    let table = tiny_table();
    // Valid configuration decomposes into (table, workloads, spec).
    let (t, ws, spec) = Session::sweep()
        .table(table)
        .workload(&[0, 1, 2, 3])
        .policy(Policy::Optimal)
        .shard()
        .expect("valid sweep shards");
    assert!(std::ptr::eq(t, table));
    assert_eq!(ws, vec![vec![0, 1, 2, 3]]);
    assert_eq!(spec.policies, vec!["OPTIMAL"]);
    // The same up-front errors as run().
    assert!(matches!(
        Session::sweep()
            .workload(&[0])
            .policy(Policy::Optimal)
            .shard(),
        Err(SweepError::MissingTable)
    ));
    assert!(matches!(
        Session::sweep()
            .table(table)
            .policy(Policy::Optimal)
            .shard(),
        Err(SweepError::NoWorkloads)
    ));
    assert!(matches!(
        Session::sweep().table(table).workload(&[0]).shard(),
        Err(SweepError::Config(SessionError::NoPolicies))
    ));
    assert!(matches!(
        Session::sweep()
            .table(table)
            .workload(&[0])
            .policy_names(["bogus"])
            .shard(),
        Err(SweepError::Config(SessionError::UnknownPolicy(_)))
    ));
}
