//! Behavioural tests of the Session entry point on cheap analytic models.

use queueing::{ContentionModel, LatencyConfig, SizeDist};
use session::{Policy, PolicyKind, Session, SessionError};
use symbiosis::{AnalyticModel, CachedModel, JobSize, RateModel};

/// Mixing distinct types is faster than running clones together.
fn symbiotic_model() -> AnalyticModel<impl Fn(&[u32], usize) -> f64> {
    AnalyticModel::new(2, 2, |counts, _ty| {
        let distinct = counts.iter().filter(|&&c| c > 0).count();
        let boost = if distinct == 2 { 1.2 } else { 1.0 };
        0.5 * boost
    })
}

#[test]
fn builder_rejects_incomplete_configuration() {
    assert!(matches!(
        Session::builder().policy(Policy::Optimal).run(),
        Err(SessionError::MissingRates)
    ));
    let model = symbiotic_model();
    assert!(matches!(
        Session::builder().rates(&model).run(),
        Err(SessionError::NoPolicies)
    ));
    assert!(matches!(
        Session::builder()
            .rates(&model)
            .policy_names(["optimal", "bogus"])
            .run(),
        Err(SessionError::UnknownPolicy(name)) if name == "bogus"
    ));
}

#[test]
fn builder_rejects_conflicting_rate_sources() {
    use simproc::MachineConfig;
    let model = symbiotic_model();
    assert!(matches!(
        Session::builder()
            .machine(MachineConfig::smt4())
            .workload(&[0, 1])
            .rates(&model)
            .policy(Policy::Optimal)
            .run(),
        Err(SessionError::ConflictingSources)
    ));
}

#[test]
fn simulated_source_validates_workload_before_simulating() {
    use simproc::MachineConfig;
    // Out-of-range / malformed workloads are rejected up front — no sweep
    // is started.
    assert!(matches!(
        Session::builder()
            .machine(MachineConfig::smt4())
            .workload(&[0, 99])
            .policy(Policy::Optimal)
            .run(),
        Err(SessionError::Table(_))
    ));
    assert!(matches!(
        Session::builder()
            .machine(MachineConfig::smt4())
            .workload(&[1, 0])
            .policy(Policy::Optimal)
            .run(),
        Err(SessionError::Table(_))
    ));
}

#[test]
fn simulated_source_runs_end_to_end_on_a_restricted_suite() {
    use simproc::MachineConfig;
    // Non-trivial workload indices exercise the suite restriction and the
    // local index remap; tiny windows keep the sweep fast.
    let report = Session::builder()
        .machine(MachineConfig::smt4().with_windows(1_000, 4_000))
        .workload(&[3, 7])
        .threads(4)
        .policies([Policy::Worst, Policy::FcfsEvent, Policy::Optimal])
        .fcfs_jobs(4_000)
        .seed(9)
        .run()
        .unwrap();
    let worst = report.throughput(Policy::Worst).unwrap();
    let fcfs = report.throughput(Policy::FcfsEvent).unwrap();
    let best = report.throughput(Policy::Optimal).unwrap();
    assert!(worst > 0.0);
    assert!(worst <= fcfs + 1e-6 && fcfs <= best + 1e-6);
    // 2 types on 4 contexts: C(2+4-1, 4) = 5 full coschedules.
    let fractions = report
        .row(Policy::Optimal)
        .unwrap()
        .fractions
        .as_ref()
        .unwrap();
    assert_eq!(fractions.len(), 5);
    // WIPC per job is at most ~1, so 4 contexts bound the throughput.
    assert!(best <= 4.0 + 1e-6);
}

#[test]
fn throughput_policies_form_the_paper_sandwich() {
    let model = symbiotic_model();
    let report = Session::builder()
        .rates(&model)
        .policies([
            Policy::Worst,
            Policy::FcfsMarkov,
            Policy::FcfsEvent,
            Policy::Optimal,
        ])
        .fcfs_jobs(20_000)
        .seed(7)
        .run()
        .unwrap();
    assert_eq!(report.rows.len(), 4);
    let worst = report.throughput(Policy::Worst).unwrap();
    let best = report.throughput(Policy::Optimal).unwrap();
    let markov = report.throughput(Policy::FcfsMarkov).unwrap();
    let event = report.throughput(Policy::FcfsEvent).unwrap();
    assert!(worst <= markov + 1e-9 && markov <= best + 1e-9);
    assert!(worst - 1e-6 <= event && event <= best + 1e-6);
    // Best = always mixed (it = 1.2); worst = clones (it = 1.0).
    assert!((best - 1.2).abs() < 1e-7, "best {best}");
    assert!((worst - 1.0).abs() < 1e-7, "worst {worst}");
    // Fraction vectors are distributions.
    for p in [
        Policy::Worst,
        Policy::Optimal,
        Policy::FcfsMarkov,
        Policy::FcfsEvent,
    ] {
        let fractions = report.row(p).unwrap().fractions.as_ref().unwrap();
        let total: f64 = fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "{p}: fractions sum {total}");
    }
}

#[test]
fn latency_policies_default_to_batch_semantics() {
    let model = symbiotic_model();
    let report = Session::builder()
        .rates(&model)
        .policies(Policy::LATENCY)
        .policy(Policy::Optimal)
        .fcfs_jobs(6_000)
        .seed(3)
        .run()
        .unwrap();
    let best = report.throughput(Policy::Optimal).unwrap();
    for p in Policy::LATENCY {
        let row = report.row(p).unwrap();
        assert_eq!(p.kind(), PolicyKind::Latency);
        let batch = row.batch.as_ref().expect("batch semantics by default");
        assert!(row.latency.is_none());
        assert!(batch.makespan > 0.0);
        // Fixed work: nobody beats the LP bound (finite-batch noise aside).
        assert!(
            row.throughput <= best * 1.03,
            "{p}: {} above LP max {best}",
            row.throughput
        );
    }
    // MAXTP tracks the LP optimum on this toy model.
    let maxtp = report.throughput(Policy::MaxTp).unwrap();
    assert!(
        (maxtp - best).abs() / best < 0.05,
        "MAXTP {maxtp} should track LP max {best}"
    );
}

#[test]
fn latency_config_switches_to_arrival_process() {
    let model = ContentionModel::new(vec![1.0], 0.0, 4);
    let report = Session::builder()
        .rates(&model)
        .policies([Policy::Fcfs, Policy::Srpt])
        .latency(LatencyConfig {
            arrival_rate: 2.0,
            measured_jobs: 20_000,
            warmup_jobs: 2_000,
            sizes: SizeDist::Exponential,
            seed: 11,
        })
        .run()
        .unwrap();
    for p in [Policy::Fcfs, Policy::Srpt] {
        let row = report.row(p).unwrap();
        let latency = row.latency.as_ref().expect("latency semantics requested");
        assert!(row.batch.is_none());
        // Stable M/M/4 at half load: throughput tracks the arrival rate.
        assert!((latency.throughput - 2.0).abs() < 0.05);
        assert!(latency.mean_turnaround >= 1.0);
    }
}

#[test]
fn full_only_models_reject_latency_policies_up_front() {
    let table = symbiotic_model().full_table().unwrap();
    assert!(!table.supports_partial());
    // Throughput-only sessions work on the bare table...
    let ok = Session::builder()
        .rates(&table)
        .policies([Policy::Optimal, Policy::Worst])
        .run()
        .unwrap();
    assert_eq!(ok.rows.len(), 2);
    // ...but latency policies are rejected before any work happens.
    assert!(matches!(
        Session::builder()
            .rates(&table)
            .policies([Policy::Optimal, Policy::Srpt])
            .run(),
        Err(SessionError::PartialUnsupported(Policy::Srpt))
    ));
}

#[test]
fn cached_wrapper_is_transparent_to_a_session() {
    let plain = Session::builder()
        .rates(&symbiotic_model())
        .policies([Policy::FcfsEvent, Policy::MaxIt])
        .fcfs_jobs(4_000)
        .seed(5)
        .job_size(JobSize::Exponential)
        .run()
        .unwrap();
    let cached_model = CachedModel::new(symbiotic_model());
    let cached = Session::builder()
        .rates(&cached_model)
        .policies([Policy::FcfsEvent, Policy::MaxIt])
        .fcfs_jobs(4_000)
        .seed(5)
        .job_size(JobSize::Exponential)
        .run()
        .unwrap();
    assert_eq!(plain, cached, "memoization must not change any number");
    assert!(cached_model.cached_multisets() > 0);
}

#[test]
fn report_lookup_by_name_round_trips() {
    let model = symbiotic_model();
    let report = Session::builder()
        .rates(&model)
        .policy_names(["optimal", "fcfs-markov"])
        .run()
        .unwrap();
    assert!(report.row_by_name("OPTIMAL").is_some());
    assert!(report.row_by_name("fcfs_markov").is_some());
    assert!(report.row_by_name("srpt").is_none());
    let text = report.to_string();
    assert!(text.contains("OPTIMAL") && text.contains("FCFS-MARKOV"));
}
