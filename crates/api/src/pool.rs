//! A std-only worker pool: scoped OS threads pulling work items off a
//! shared queue, results collected over a channel.
//!
//! This is the fan-out engine behind [`crate::sweep::SweepBuilder`].
//! Compared with chunked splitting (give each thread `len / threads`
//! consecutive items), the shared queue load-balances dynamically: workload
//! evaluations differ wildly in cost (an LP solve vs a 40 000-job event
//! simulation), and with chunking the slowest chunk sets the wall-clock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A fixed-width pool of OS threads for order-preserving parallel maps.
///
/// The pool is a lightweight description (it holds no threads); each
/// [`WorkerPool::map`] call spawns scoped workers, so borrowed data can
/// flow into the closure freely and nothing outlives the call.
///
/// # Examples
///
/// ```
/// use session::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let squares = pool.map(&[1u64, 2, 3], |_i, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn default_size() -> Self {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }

    /// Number of worker threads a [`WorkerPool::map`] call will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f(index, &item)` to every item, fanning out over the pool's
    /// workers, and returns the results in input order.
    ///
    /// Items are claimed one at a time from a shared queue, so threads that
    /// draw cheap items keep working while an expensive item occupies one
    /// worker.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` (via scoped-thread join).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(items.len());
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if tx.send((i, f(i, &items[i]))).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every item was claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let got = WorkerPool::new(7).map(&items, |_, &x| x * 3);
        assert_eq!(got, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn degenerate_sizes() {
        assert!(WorkerPool::new(4).map(&[] as &[u64], |_, &x| x).is_empty());
        assert_eq!(WorkerPool::new(0).threads(), 1, "clamped to one worker");
        assert_eq!(WorkerPool::new(0).map(&[5u64], |_, &x| x), vec![5]);
        // More workers than items is fine.
        assert_eq!(WorkerPool::new(64).map(&[1u64, 2], |_, &x| x), vec![1, 2]);
    }

    #[test]
    fn every_item_visited_exactly_once() {
        let count = AtomicU64::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let got = WorkerPool::new(8).map(&items, |i, &x| {
            count.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x, "index matches item position");
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(got.len(), 1000);
    }

    #[test]
    fn index_is_passed_through() {
        let items = ["a", "b", "c"];
        let got = WorkerPool::new(2).map(&items, |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }
}
