//! The unified scheduling API: `RateModel` + `Policy` + `Session`.
//!
//! This crate is the single entry point over the workspace's analysis
//! machinery. It ties together
//!
//! * a rate source — any [`symbiosis::RateModel`]: a measured
//!   `workloads::WorkloadView`, an analytic [`symbiosis::AnalyticModel`],
//!   a memoizing [`symbiosis::CachedModel`], or a machine + workload pair
//!   this crate simulates for you;
//! * the [`Policy`] registry — the paper's four throughput analyses and
//!   four latency schedulers, addressable by name;
//! * the builder-style [`Session`], which evaluates any set of policies on
//!   one rate source and returns uniform [`PolicyReport`] rows; and
//! * the batch [`Session::sweep`] surface, which shares one performance
//!   table across a workload list, fans the evaluations out over a
//!   [`WorkerPool`], and returns a [`SweepReport`] with built-in
//!   aggregation ([`stats`]).
//!
//! # Examples
//!
//! Simulate a workload on the SMT machine and compare the LP bounds with
//! the FCFS baseline (the paper's headline experiment):
//!
//! ```no_run
//! use session::{Policy, Session};
//! use simproc::MachineConfig;
//!
//! # fn main() -> Result<(), session::SessionError> {
//! let report = Session::builder()
//!     .machine(MachineConfig::smt4())
//!     .workload(&[0, 5, 7, 11]) // bzip2 + hmmer + mcf + xalancbmk
//!     .policies([Policy::Worst, Policy::FcfsEvent, Policy::Optimal])
//!     .fcfs_jobs(40_000)
//!     .seed(42)
//!     .run()?;
//! println!("{report}");
//! let gain = report.throughput(Policy::Optimal).unwrap()
//!     / report.throughput(Policy::FcfsEvent).unwrap()
//!     - 1.0;
//! println!("optimal scheduler gains {:.1}% over FCFS", 100.0 * gain);
//! # Ok(())
//! # }
//! ```

//! Batch evaluation goes through the same entry point — one shared table,
//! many workloads, a worker pool, and aggregate accessors:
//!
//! ```no_run
//! use session::{Policy, Session};
//! use simproc::{Machine, MachineConfig};
//! use workloads::{spec2006, PerfTable};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = Machine::new(MachineConfig::smt4())?;
//! let table = PerfTable::build(&machine, &spec2006(), 8)?;
//! let sweep = Session::sweep()
//!     .table(&table)
//!     .workloads(symbiosis::enumerate_workloads(12, 4))
//!     .policies([Policy::FcfsEvent, Policy::Optimal])
//!     .run()?;
//! println!(
//!     "optimal over FCFS, averaged over {} mixes: {}",
//!     sweep.len(),
//!     session::stats::pct(sweep.mean_gain(Policy::Optimal, Policy::FcfsEvent))
//! );
//! # Ok(())
//! # }
//! ```

pub mod policy;
pub mod pool;
pub mod session;
pub mod stats;
pub mod sweep;

pub use policy::{Policy, PolicyKind};
pub use pool::WorkerPool;
pub use session::{PolicyReport, Session, SessionBuilder, SessionError, SessionReport};
pub use sweep::{SweepBuilder, SweepError, SweepItem, SweepReport, SweepRow, SweepSpec};
