//! The unified scheduling API: `RateModel` + `Policy` + `Session`.
//!
//! This crate is the single entry point over the workspace's analysis
//! machinery. It ties together
//!
//! * a rate source — any [`symbiosis::RateModel`]: a measured
//!   `workloads::WorkloadView`, an analytic [`symbiosis::AnalyticModel`],
//!   a memoizing [`symbiosis::CachedModel`], or a machine + workload pair
//!   this crate simulates for you;
//! * the [`Policy`] registry — the paper's four throughput analyses and
//!   four latency schedulers, addressable by name; and
//! * the builder-style [`Session`], which evaluates any set of policies on
//!   one rate source and returns uniform [`PolicyReport`] rows.
//!
//! # Examples
//!
//! Simulate a workload on the SMT machine and compare the LP bounds with
//! the FCFS baseline (the paper's headline experiment):
//!
//! ```no_run
//! use session::{Policy, Session};
//! use simproc::MachineConfig;
//!
//! # fn main() -> Result<(), session::SessionError> {
//! let report = Session::builder()
//!     .machine(MachineConfig::smt4())
//!     .workload(&[0, 5, 7, 11]) // bzip2 + hmmer + mcf + xalancbmk
//!     .policies([Policy::Worst, Policy::FcfsEvent, Policy::Optimal])
//!     .fcfs_jobs(40_000)
//!     .seed(42)
//!     .run()?;
//! println!("{report}");
//! let gain = report.throughput(Policy::Optimal).unwrap()
//!     / report.throughput(Policy::FcfsEvent).unwrap()
//!     - 1.0;
//! println!("optimal scheduler gains {:.1}% over FCFS", 100.0 * gain);
//! # Ok(())
//! # }
//! ```

pub mod policy;
pub mod session;

pub use policy::{Policy, PolicyKind};
pub use session::{PolicyReport, Session, SessionBuilder, SessionError, SessionReport};
