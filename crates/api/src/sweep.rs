//! The batch evaluation surface: one performance table, many workloads,
//! evaluated over a worker pool.
//!
//! The paper's headline results are aggregates over hundreds of random
//! workload mixes; [`Session::sweep`] makes that the first-class object.
//! A [`SweepBuilder`] shares one [`PerfTable`] across a workload list, fans
//! per-workload [`Session`] runs out over a [`WorkerPool`], and returns a
//! [`SweepReport`] whose rows are exactly what a loop of single-session
//! runs would produce — bitwise, which the sweep parity suite pins.

use std::fmt;

use queueing::LatencyConfig;
use symbiosis::{JobSize, Objective, WorkloadRates};
use workloads::{PerfTable, WorkUnit, WorkloadView};

use crate::pool::WorkerPool;
use crate::session::{PolicyRequest, Session, SessionBuilder, SessionError, SessionReport};
use crate::stats;
use crate::Policy;

/// Errors from configuring or running a [`SweepBuilder`].
#[derive(Debug)]
pub enum SweepError {
    /// No `.table(...)` was given.
    MissingTable,
    /// The workload list is empty.
    NoWorkloads,
    /// The sweep configuration itself is invalid (unknown policy name, no
    /// policies requested).
    Config(SessionError),
    /// One workload's evaluation failed; the sweep reports the first
    /// failure in workload order.
    Workload {
        /// The failing workload (benchmark indices).
        workload: Vec<usize>,
        /// What went wrong for it.
        source: SessionError,
    },
    /// A custom [`SweepBuilder::map`] closure failed for one workload.
    Custom {
        /// The failing workload (benchmark indices).
        workload: Vec<usize>,
        /// The closure's error text.
        message: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::MissingTable => write!(f, "no rate source: call .table(...)"),
            SweepError::NoWorkloads => write!(f, "no workloads to sweep"),
            SweepError::Config(e) => write!(f, "sweep configuration: {e}"),
            SweepError::Workload { workload, source } => {
                write!(f, "workload {workload:?}: {source}")
            }
            SweepError::Custom { workload, message } => {
                write!(f, "workload {workload:?}: {message}")
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Config(e) | SweepError::Workload { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

/// One sweep row: the workload and its uniform session report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Benchmark indices of this workload.
    pub workload: Vec<usize>,
    /// The session outcome, one [`crate::PolicyReport`] per policy.
    pub report: SessionReport,
}

/// The outcome of a sweep: per-workload rows plus aggregation helpers, so
/// experiments stop hand-rolling their mean/max/percentile folds.
///
/// Equality compares **rows only**: [`SweepReport::metrics`] is an
/// observability side-band (latencies, cache hit rates, solver sweep
/// counts) whose values legitimately differ between bitwise-identical
/// sweeps, so the parity suites' `assert_eq!` pins stay meaningful.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One row per workload, in request order.
    pub rows: Vec<SweepRow>,
    /// Metrics recorded during this run (empty when instrumentation is
    /// disabled): per-item latency, pool occupancy, solver activity.
    pub metrics: obs::MetricsSnapshot,
}

impl PartialEq for SweepReport {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
    }
}

impl SweepReport {
    /// Merges per-shard reports into one, preserving row order: part 0's
    /// rows first, then part 1's, and so on. All aggregate statistics
    /// ([`SweepReport::mean_throughput`], [`SweepReport::gains`], ...) are
    /// computed from the merged rows on demand, so the merged report is
    /// indistinguishable — bitwise — from a single sweep over the
    /// concatenated workload list. Shard metrics fold together via
    /// [`obs::MetricsSnapshot::merge`].
    ///
    /// This is the reassembly half of distributed sweeps: a coordinator
    /// that splits a workload list into consecutive shards and merges the
    /// shard reports in shard order reproduces the single-process
    /// [`Session::sweep`] report exactly.
    pub fn merge<I: IntoIterator<Item = SweepReport>>(parts: I) -> SweepReport {
        let mut rows = Vec::new();
        let mut metrics = obs::MetricsSnapshot::default();
        for part in parts {
            rows.extend(part.rows);
            metrics.merge(&part.metrics);
        }
        SweepReport { rows, metrics }
    }

    /// Number of workloads swept.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no workloads were swept (cannot happen for successful
    /// runs: an empty list is [`SweepError::NoWorkloads`]).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Per-workload throughput of one policy, in workload order.
    ///
    /// # Panics
    ///
    /// Panics if `policy` was not part of the sweep.
    pub fn throughputs(&self, policy: Policy) -> Vec<f64> {
        self.rows
            .iter()
            .map(|r| {
                r.report
                    .throughput(policy)
                    .unwrap_or_else(|| panic!("policy {policy} was not part of the sweep"))
            })
            .collect()
    }

    /// Mean throughput of one policy over all workloads.
    ///
    /// # Panics
    ///
    /// Panics if `policy` was not part of the sweep.
    pub fn mean_throughput(&self, policy: Policy) -> f64 {
        stats::mean(&self.throughputs(policy))
    }

    /// Per-workload relative gain of `policy` over `baseline`
    /// (`throughput ratio - 1`), in workload order.
    ///
    /// # Panics
    ///
    /// Panics if either policy was not part of the sweep.
    pub fn gains(&self, policy: Policy, baseline: Policy) -> Vec<f64> {
        self.throughputs(policy)
            .iter()
            .zip(self.throughputs(baseline))
            .map(|(&a, b)| a / b - 1.0)
            .collect()
    }

    /// Mean relative gain of `policy` over `baseline`.
    ///
    /// # Panics
    ///
    /// Panics if either policy was not part of the sweep.
    pub fn mean_gain(&self, policy: Policy, baseline: Policy) -> f64 {
        stats::mean(&self.gains(policy, baseline))
    }

    /// Pearson correlation of two policies' per-workload throughputs;
    /// `None` when degenerate.
    ///
    /// # Panics
    ///
    /// Panics if either policy was not part of the sweep.
    pub fn correlation(&self, a: Policy, b: Policy) -> Option<f64> {
        stats::pearson(&self.throughputs(a), &self.throughputs(b))
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sweep over {} workloads", self.rows.len())?;
        writeln!(
            f,
            "{:<12} {:>12} {:>12} {:>12}",
            "policy", "mean TP", "min TP", "max TP"
        )?;
        if let Some(first) = self.rows.first() {
            for pr in &first.report.rows {
                let tps = self.throughputs(pr.policy);
                writeln!(
                    f,
                    "{:<12} {:>12.4} {:>12.4} {:>12.4}",
                    pr.policy.name(),
                    stats::mean(&tps),
                    stats::min(&tps),
                    stats::max(&tps)
                )?;
            }
        }
        Ok(())
    }
}

/// The per-workload experiment knobs a sweep carries: exactly the
/// parameters a sequential caller would configure on each single-workload
/// [`Session::builder`], which is what keeps sweep rows bitwise equal to
/// sequential runs.
#[derive(Clone)]
struct SweepKnobs {
    objective: Objective,
    fcfs_jobs: u64,
    job_size: JobSize,
    seed: u64,
    latency: Option<LatencyConfig>,
    lp_dense_limit: usize,
    markov_dense_limit: usize,
    markov_accel_limit: usize,
}

impl SweepKnobs {
    /// One single-workload session carrying this sweep's knobs — the same
    /// builder a sequential caller would configure by hand.
    fn session(&self) -> SessionBuilder<'static> {
        let mut builder = Session::builder()
            .objective(self.objective)
            .fcfs_jobs(self.fcfs_jobs)
            .job_size(self.job_size)
            .seed(self.seed)
            .lp_dense_limit(self.lp_dense_limit)
            .markov_dense_limit(self.markov_dense_limit)
            .markov_accel_limit(self.markov_accel_limit);
        if let Some(cfg) = &self.latency {
            builder = builder.latency(cfg.clone());
        }
        builder
    }
}

/// One workload's evaluation context inside [`SweepBuilder::map`]: the
/// shared table, the workload, the sweep's unit of work, and a
/// [`SweepItem::session`] constructor for per-workload policy rows.
pub struct SweepItem<'a> {
    table: &'a PerfTable,
    workload: &'a [usize],
    unit: WorkUnit,
    index: usize,
    knobs: &'a SweepKnobs,
}

impl<'a> SweepItem<'a> {
    /// Position of this workload in the sweep's request order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The workload's benchmark indices.
    pub fn workload(&self) -> &'a [usize] {
        self.workload
    }

    /// The shared performance table.
    pub fn table(&self) -> &'a PerfTable {
        self.table
    }

    /// The workload's full-coschedule rate table in the sweep's unit of
    /// work.
    ///
    /// # Errors
    ///
    /// Propagates workload validation failures as text (the closure's
    /// error currency).
    pub fn rates(&self) -> Result<WorkloadRates, String> {
        self.table
            .workload_rates_with_unit(self.workload, self.unit)
            .map_err(|e| e.to_string())
    }

    /// The workload's measured rate-model view (weighted unit, partial
    /// coschedules included).
    ///
    /// # Errors
    ///
    /// Propagates workload validation failures as text.
    pub fn view(&self) -> Result<WorkloadView<'a>, String> {
        self.table
            .workload_view(self.workload)
            .map_err(|e| e.to_string())
    }

    /// A single-workload [`Session`] builder preconfigured with this
    /// sweep's experiment knobs (objective, event-leg jobs/sizes/seed,
    /// latency configuration, solver thresholds) — exactly the builder
    /// [`SweepBuilder::run`] evaluates per workload.
    ///
    /// This is how custom maps run *policy rows* whose configuration
    /// depends on the workload: pick a rate source ([`SweepItem::rates`] or
    /// [`SweepItem::view`]), override what differs (e.g. a load-dependent
    /// [`SessionBuilder::latency`] arrival rate derived from an earlier
    /// row), and run. Overrides apply per call; the sweep's own knobs are
    /// untouched.
    pub fn session(&self) -> SessionBuilder<'static> {
        self.knobs.session()
    }
}

/// A plain-data description of everything a sweep applies *per workload*:
/// the requested policies (by registry name), the unit of work, and the
/// experiment knobs. This is the transportable half of a sweep — a
/// [`SweepBuilder`] minus the table reference and the workload list — so a
/// distributed coordinator can ship it to workers and any worker can
/// reconstruct, via [`SweepSpec::sweep`], a builder that evaluates a
/// workload sub-slice with rows bitwise identical to the full run's.
///
/// Field-for-field this mirrors the builder's configuration surface;
/// [`SweepBuilder::spec`] extracts it and round-trips losslessly.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Requested policies in request order, as [`Policy::by_name`] names.
    pub policies: Vec<String>,
    /// Unit of work for the rate tables.
    pub unit: WorkUnit,
    /// LP direction for the MAXTP target derivation.
    pub objective: Objective,
    /// Jobs per event-driven experiment leg.
    pub fcfs_jobs: u64,
    /// Job size distribution for the event-driven legs.
    pub job_size: JobSize,
    /// Base RNG seed for the stochastic legs.
    pub seed: u64,
    /// Poisson-arrival configuration for latency policies, if any.
    pub latency: Option<LatencyConfig>,
    /// Dense-tableau threshold for the scheduling LP.
    pub lp_dense_limit: usize,
    /// Dense-LU threshold for the FCFS Markov chain.
    pub markov_dense_limit: usize,
    /// Sequential Gauss–Seidel threshold for sparse FCFS Markov chains;
    /// bigger chains use the multi-colored parallel SOR sweep.
    pub markov_accel_limit: usize,
}

impl SweepSpec {
    /// Reconstructs a sweep builder carrying this spec's configuration over
    /// `table`. Add workloads (any sub-slice of the original list) and
    /// `run()`: because every workload is evaluated independently with the
    /// same per-workload knobs, the rows are bitwise identical to the rows
    /// the full-list sweep produces for those workloads.
    pub fn sweep<'t>(&self, table: &'t PerfTable) -> SweepBuilder<'t> {
        let mut builder = Session::sweep()
            .table(table)
            .unit(self.unit)
            .policy_names(&self.policies)
            .objective(self.objective)
            .fcfs_jobs(self.fcfs_jobs)
            .job_size(self.job_size)
            .seed(self.seed)
            .lp_dense_limit(self.lp_dense_limit)
            .markov_dense_limit(self.markov_dense_limit)
            .markov_accel_limit(self.markov_accel_limit);
        if let Some(cfg) = &self.latency {
            builder = builder.latency(cfg.clone());
        }
        builder
    }
}

/// Builder for a batch sweep. Obtained from [`Session::sweep`].
///
/// # Examples
///
/// Evaluate the LP bounds and the FCFS baseline over several workloads at
/// once, then aggregate:
///
/// ```no_run
/// use session::{Policy, Session};
/// use simproc::{Machine, MachineConfig};
/// use workloads::{spec2006, PerfTable};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let machine = Machine::new(MachineConfig::smt4())?;
/// let table = PerfTable::build(&machine, &spec2006(), 8)?;
/// let report = Session::sweep()
///     .table(&table)
///     .workloads(symbiosis::enumerate_workloads(12, 4))
///     .policies([Policy::Worst, Policy::FcfsEvent, Policy::Optimal])
///     .threads(8)
///     .run()?;
/// println!("{report}");
/// println!(
///     "optimal gains {:.1}% over FCFS on average",
///     100.0 * report.mean_gain(Policy::Optimal, Policy::FcfsEvent)
/// );
/// # Ok(())
/// # }
/// ```
pub struct SweepBuilder<'a> {
    table: Option<&'a PerfTable>,
    workloads: Vec<Vec<usize>>,
    unit: WorkUnit,
    threads: usize,
    policies: Vec<PolicyRequest>,
    knobs: SweepKnobs,
}

impl Session {
    /// Starts configuring a batch sweep: one shared [`PerfTable`], many
    /// workloads, evaluated in parallel over a [`WorkerPool`].
    pub fn sweep() -> SweepBuilder<'static> {
        SweepBuilder {
            table: None,
            workloads: Vec::new(),
            unit: WorkUnit::Weighted,
            threads: WorkerPool::default_size().threads(),
            policies: Vec::new(),
            knobs: SweepKnobs {
                objective: Objective::MaxThroughput,
                fcfs_jobs: 40_000,
                job_size: JobSize::Deterministic,
                seed: 0x5EED,
                latency: None,
                lp_dense_limit: symbiosis::DEFAULT_LP_DENSE_LIMIT,
                markov_dense_limit: symbiosis::DEFAULT_MARKOV_DENSE_LIMIT,
                markov_accel_limit: symbiosis::DEFAULT_MARKOV_ACCEL_LIMIT,
            },
        }
    }
}

impl<'a> SweepBuilder<'a> {
    /// The shared rate source: every workload is evaluated against this
    /// performance table.
    pub fn table<'b>(self, table: &'b PerfTable) -> SweepBuilder<'b>
    where
        'a: 'b,
    {
        SweepBuilder {
            table: Some(table),
            ..self
        }
    }

    /// Appends workloads (each a sorted distinct benchmark-index vector).
    pub fn workloads<I: IntoIterator<Item = Vec<usize>>>(mut self, workloads: I) -> Self {
        self.workloads.extend(workloads);
        self
    }

    /// Appends one workload.
    pub fn workload(mut self, workload: &[usize]) -> Self {
        self.workloads.push(workload.to_vec());
        self
    }

    /// Unit of work for the rate tables (default: weighted instructions,
    /// the paper's reported unit). With [`WorkUnit::Plain`] only throughput
    /// policies apply (the plain-unit table answers full coschedules only).
    pub fn unit(mut self, unit: WorkUnit) -> Self {
        self.unit = unit;
        self
    }

    /// Worker threads for the fan-out (default: available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Adds one policy to evaluate per workload.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policies.push(PolicyRequest::Resolved(policy));
        self
    }

    /// Adds several policies to evaluate per workload.
    pub fn policies<I: IntoIterator<Item = Policy>>(mut self, policies: I) -> Self {
        self.policies
            .extend(policies.into_iter().map(PolicyRequest::Resolved));
        self
    }

    /// Adds policies by registry name ([`Policy::by_name`]); unknown names
    /// surface as a configuration error when the sweep runs.
    pub fn policy_names<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for name in names {
            self.policies.push(PolicyRequest::from_name(name.as_ref()));
        }
        self
    }

    /// LP direction for the MAXTP target derivation (default:
    /// [`Objective::MaxThroughput`]).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.knobs.objective = objective;
        self
    }

    /// Jobs completed per event-driven experiment leg. Default 40 000.
    pub fn fcfs_jobs(mut self, jobs: u64) -> Self {
        self.knobs.fcfs_jobs = jobs;
        self
    }

    /// Job size distribution for the event-driven legs (default:
    /// deterministic unit work).
    pub fn job_size(mut self, sizes: JobSize) -> Self {
        self.knobs.job_size = sizes;
        self
    }

    /// Base RNG seed for the stochastic legs. Every workload uses the same
    /// seed — exactly what a sequential loop of single sessions does.
    pub fn seed(mut self, seed: u64) -> Self {
        self.knobs.seed = seed;
        self
    }

    /// Runs latency policies through the Poisson-arrival experiment with
    /// this configuration instead of the default fixed-batch (makespan)
    /// one. Without this call latency policies keep the single-session
    /// default: a fixed batch of [`SweepBuilder::fcfs_jobs`] jobs.
    pub fn latency(mut self, config: LatencyConfig) -> Self {
        self.knobs.latency = Some(config);
        self
    }

    /// Dense-tableau threshold for the scheduling LP, forwarded to every
    /// per-workload session (see
    /// [`crate::SessionBuilder::lp_dense_limit`]).
    pub fn lp_dense_limit(mut self, limit: usize) -> Self {
        self.knobs.lp_dense_limit = limit;
        self
    }

    /// Dense-LU threshold for the FCFS Markov chain, forwarded to every
    /// per-workload session (see
    /// [`crate::SessionBuilder::markov_dense_limit`]).
    pub fn markov_dense_limit(mut self, limit: usize) -> Self {
        self.knobs.markov_dense_limit = limit;
        self
    }

    /// Sequential Gauss–Seidel threshold for sparse FCFS Markov chains,
    /// forwarded to every per-workload session (see
    /// [`crate::SessionBuilder::markov_accel_limit`]).
    pub fn markov_accel_limit(mut self, limit: usize) -> Self {
        self.knobs.markov_accel_limit = limit;
        self
    }

    /// The transportable half of this builder: its per-workload
    /// configuration as a plain-data [`SweepSpec`] (policies by name, unit,
    /// experiment knobs). `spec().sweep(table)` reconstructs an equivalent
    /// builder.
    pub fn spec(&self) -> SweepSpec {
        SweepSpec {
            policies: self
                .policies
                .iter()
                .map(|req| match req {
                    PolicyRequest::Resolved(p) => p.name().to_owned(),
                    PolicyRequest::Unresolved(name) => name.clone(),
                })
                .collect(),
            unit: self.unit,
            objective: self.knobs.objective,
            fcfs_jobs: self.knobs.fcfs_jobs,
            job_size: self.knobs.job_size,
            seed: self.knobs.seed,
            latency: self.knobs.latency.clone(),
            lp_dense_limit: self.knobs.lp_dense_limit,
            markov_dense_limit: self.knobs.markov_dense_limit,
            markov_accel_limit: self.knobs.markov_accel_limit,
        }
    }

    /// Decomposes a fully configured sweep into the three things a
    /// distributed coordinator shards: the shared table, the workload list
    /// (in request order), and the per-workload [`SweepSpec`].
    ///
    /// The same validation as [`SweepBuilder::run`] applies up front —
    /// missing table, empty workload list, unknown policy names and an
    /// empty policy set are all reported here, before any worker sees the
    /// job.
    ///
    /// # Errors
    ///
    /// [`SweepError::MissingTable`], [`SweepError::NoWorkloads`], or
    /// [`SweepError::Config`] on an invalid configuration.
    #[allow(clippy::type_complexity)]
    pub fn shard(self) -> Result<(&'a PerfTable, Vec<Vec<usize>>, SweepSpec), SweepError> {
        let table = self.validated()?;
        let policies = PolicyRequest::resolve(&self.policies).map_err(SweepError::Config)?;
        if policies.is_empty() {
            return Err(SweepError::Config(SessionError::NoPolicies));
        }
        let spec = self.spec();
        Ok((table, self.workloads, spec))
    }

    fn validated(&self) -> Result<&'a PerfTable, SweepError> {
        let table = self.table.ok_or(SweepError::MissingTable)?;
        if self.workloads.is_empty() {
            return Err(SweepError::NoWorkloads);
        }
        Ok(table)
    }

    /// One single-workload session carrying this sweep's knobs — the same
    /// builder a sequential caller would configure by hand, which is what
    /// makes sweep rows bitwise equal to single-session runs.
    fn session_for(&self, policies: &[Policy]) -> SessionBuilder<'static> {
        self.knobs.session().policies(policies.iter().copied())
    }

    /// Runs every policy on every workload and returns the aggregated
    /// report. Rows are in workload request order regardless of thread
    /// count, and each row is bitwise identical to a single
    /// [`Session::builder`] run over the same workload.
    ///
    /// # Errors
    ///
    /// Configuration problems ([`SweepError::MissingTable`],
    /// [`SweepError::NoWorkloads`], [`SweepError::Config`]) are reported
    /// before any evaluation starts; the first per-workload failure (in
    /// workload order) aborts the sweep as [`SweepError::Workload`].
    pub fn run(self) -> Result<SweepReport, SweepError> {
        let table = self.validated()?;
        let policies = PolicyRequest::resolve(&self.policies).map_err(SweepError::Config)?;
        if policies.is_empty() {
            return Err(SweepError::Config(SessionError::NoPolicies));
        }
        let pool = WorkerPool::new(self.threads);
        // Capture the parent's recorder so pool workers report to it (the
        // pool spawns fresh OS threads, which would otherwise see no
        // thread-local context), and snapshot before/after so the report
        // embeds exactly this run's activity.
        let ctx = obs::current();
        let _span = ctx.as_ref().map(|r| r.span("sweep.run"));
        let before = ctx.as_ref().map(|r| r.snapshot());
        let results: Vec<Result<SessionReport, SessionError>> =
            pool.map(&self.workloads, |_, w| {
                let _obs = obs::install_current(&ctx);
                let active = ctx.as_ref().map(|r| {
                    let g = r.gauge("sweep.pool_active");
                    g.add(1);
                    g
                });
                let started = std::time::Instant::now();
                // The weighted unit evaluates through the measured view
                // (partial coschedules included, so latency policies work);
                // the plain unit evaluates through the full-coschedule
                // table in that unit. Either way the session sees exactly
                // the rate source a sequential caller would hand it.
                let result = match self.unit {
                    WorkUnit::Weighted => {
                        let view = table.workload_view(w)?;
                        self.session_for(&policies).rates(&view).run()
                    }
                    WorkUnit::Plain => {
                        let rates = table.workload_rates_with_unit(w, WorkUnit::Plain)?;
                        self.session_for(&policies).rates(&rates).run()
                    }
                };
                if let Some(r) = &ctx {
                    r.counter("sweep.items").add(1);
                    r.histogram("sweep.item_us")
                        .record(started.elapsed().as_micros() as f64);
                }
                if let Some(g) = active {
                    g.add(-1);
                }
                result
            });
        let mut rows = Vec::with_capacity(results.len());
        for (w, result) in self.workloads.iter().zip(results) {
            match result {
                Ok(report) => rows.push(SweepRow {
                    workload: w.clone(),
                    report,
                }),
                Err(source) => {
                    return Err(SweepError::Workload {
                        workload: w.clone(),
                        source,
                    })
                }
            }
        }
        drop(_span);
        let metrics = match (&ctx, before) {
            (Some(r), Some(before)) => obs::MetricsSnapshot::diff(&before, &r.snapshot()),
            _ => obs::MetricsSnapshot::default(),
        };
        Ok(SweepReport { rows, metrics })
    }

    /// Fans a custom per-workload analysis out over the pool instead of
    /// the standard policy evaluation — the escape hatch for experiments
    /// whose per-workload leg is not a set of [`Policy`] rows (e.g. the
    /// Table II heterogeneity fold). Results come back in workload order.
    ///
    /// Policies configured on the builder are ignored; the closure gets a
    /// [`SweepItem`] exposing the shared table, the workload, and
    /// unit-aware rate constructors.
    ///
    /// # Errors
    ///
    /// [`SweepError::MissingTable`] / [`SweepError::NoWorkloads`] before
    /// any work; the first closure failure (in workload order) as
    /// [`SweepError::Custom`].
    pub fn map<R, F>(self, f: F) -> Result<Vec<R>, SweepError>
    where
        R: Send,
        F: Fn(SweepItem<'_>) -> Result<R, String> + Sync,
    {
        let table = self.validated()?;
        let pool = WorkerPool::new(self.threads);
        let ctx = obs::current();
        let results: Vec<Result<R, String>> = pool.map(&self.workloads, |i, w| {
            let _obs = obs::install_current(&ctx);
            f(SweepItem {
                table,
                workload: w,
                unit: self.unit,
                index: i,
                knobs: &self.knobs,
            })
        });
        let mut out = Vec::with_capacity(results.len());
        for (w, result) in self.workloads.iter().zip(results) {
            match result {
                Ok(r) => out.push(r),
                Err(message) => {
                    return Err(SweepError::Custom {
                        workload: w.clone(),
                        message,
                    })
                }
            }
        }
        Ok(out)
    }
}
