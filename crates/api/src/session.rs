//! The builder-style `Session` entry point: one rate source, any set of
//! policies, uniform report rows.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use queueing::{
    run_batch_experiment, run_latency_experiment, BatchConfig, BatchReport, LatencyConfig,
    LatencyReport, SizeDist,
};
use simproc::{Machine, MachineConfig, MachineError};
use symbiosis::{
    fcfs_throughput, fcfs_throughput_markov_tuned, JobSize, Objective, RateModel, Schedule,
    ScheduleLp, SymbiosisError, WorkloadRates,
};
use workloads::{spec2006, PerfTable, TableError};

use crate::policy::{Policy, PolicyKind};

/// Errors from configuring or running a [`Session`].
#[derive(Debug)]
pub enum SessionError {
    /// Neither `.rates(...)` nor `.machine(...).workload(...)` was given.
    MissingRates,
    /// `.workload(...)` without `.machine(...)` or vice versa.
    IncompleteSimulation(&'static str),
    /// Both `.rates(...)` and `.machine(...)`/`.workload(...)` were given —
    /// the session cannot tell which rate source is meant.
    ConflictingSources,
    /// No policy was requested.
    NoPolicies,
    /// A policy name failed to resolve in the registry.
    UnknownPolicy(String),
    /// A latency policy was requested on a rate model that only answers
    /// full-coschedule queries.
    PartialUnsupported(Policy),
    /// Simulator construction failed.
    Machine(MachineError),
    /// Performance-table construction or workload selection failed.
    Table(TableError),
    /// A throughput analysis failed.
    Symbiosis(SymbiosisError),
    /// An event-driven experiment failed.
    Experiment(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::MissingRates => {
                write!(
                    f,
                    "no rate source: call .rates(...) or .machine(...).workload(...)"
                )
            }
            SessionError::IncompleteSimulation(what) => {
                write!(f, "simulated rate source is missing {what}")
            }
            SessionError::ConflictingSources => write!(
                f,
                "both .rates(...) and .machine(...)/.workload(...) were given; \
                 pick one rate source"
            ),
            SessionError::NoPolicies => write!(f, "no policies requested"),
            SessionError::UnknownPolicy(name) => write!(f, "unknown policy {name:?}"),
            SessionError::PartialUnsupported(p) => write!(
                f,
                "policy {p} needs partial-coschedule rates, but the model only \
                 answers full-coschedule queries"
            ),
            SessionError::Machine(e) => write!(f, "machine: {e}"),
            SessionError::Table(e) => write!(f, "table: {e}"),
            SessionError::Symbiosis(e) => write!(f, "analysis: {e}"),
            SessionError::Experiment(msg) => write!(f, "experiment: {msg}"),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Machine(e) => Some(e),
            SessionError::Table(e) => Some(e),
            SessionError::Symbiosis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for SessionError {
    fn from(e: MachineError) -> Self {
        SessionError::Machine(e)
    }
}

impl From<TableError> for SessionError {
    fn from(e: TableError) -> Self {
        SessionError::Table(e)
    }
}

impl From<SymbiosisError> for SessionError {
    fn from(e: SymbiosisError) -> Self {
        SessionError::Symbiosis(e)
    }
}

/// One uniform result row: what one policy achieved on the session's
/// workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyReport {
    /// The policy that produced this row.
    pub policy: Policy,
    /// Average throughput in work units (WIPC) per cycle — the common
    /// currency of every policy: LP objective value, Markov stationary
    /// throughput, event-experiment work over makespan, or latency-run
    /// work over measured time.
    pub throughput: f64,
    /// Per-coschedule time fractions (aligned with the full table's
    /// coschedule enumeration), for policies that produce them.
    pub fractions: Option<Vec<f64>>,
    /// Latency measurements, for latency policies run with
    /// [`SessionBuilder::latency`].
    pub latency: Option<LatencyReport>,
    /// Batch (makespan) measurements, for latency policies run without an
    /// arrival process.
    pub batch: Option<BatchReport>,
}

/// The uniform outcome of a [`Session`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// One row per requested policy, in request order.
    pub rows: Vec<PolicyReport>,
}

impl SessionReport {
    /// The row for a policy, if it was part of the session.
    pub fn row(&self, policy: Policy) -> Option<&PolicyReport> {
        self.rows.iter().find(|r| r.policy == policy)
    }

    /// The row for a policy name resolved through [`Policy::by_name`].
    pub fn row_by_name(&self, name: &str) -> Option<&PolicyReport> {
        Policy::by_name(name).and_then(|p| self.row(p))
    }

    /// Throughput of one policy (convenience for ratio reporting).
    pub fn throughput(&self, policy: Policy) -> Option<f64> {
        self.row(policy).map(|r| r.throughput)
    }
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>12} {:>14} {:>12}",
            "policy", "throughput", "turnaround", "makespan"
        )?;
        for r in &self.rows {
            let turnaround = r
                .latency
                .as_ref()
                .map(|l| format!("{:.3}", l.mean_turnaround))
                .or_else(|| {
                    r.batch
                        .as_ref()
                        .map(|b| format!("{:.3}", b.mean_turnaround))
                })
                .unwrap_or_else(|| "-".into());
            let makespan = r
                .batch
                .as_ref()
                .map(|b| format!("{:.1}", b.makespan))
                .unwrap_or_else(|| "-".into());
            writeln!(
                f,
                "{:<12} {:>12.4} {:>14} {:>12}",
                r.policy.name(),
                r.throughput,
                turnaround,
                makespan
            )?;
        }
        Ok(())
    }
}

pub(crate) enum PolicyRequest {
    Resolved(Policy),
    Unresolved(String),
}

impl PolicyRequest {
    /// Resolves a request list to policies, surfacing the first unknown
    /// name; shared by the session and sweep builders.
    pub(crate) fn resolve(requests: &[PolicyRequest]) -> Result<Vec<Policy>, SessionError> {
        requests
            .iter()
            .map(|req| match req {
                PolicyRequest::Resolved(p) => Ok(*p),
                PolicyRequest::Unresolved(name) => Err(SessionError::UnknownPolicy(name.clone())),
            })
            .collect()
    }

    pub(crate) fn from_name(name: &str) -> PolicyRequest {
        match Policy::by_name(name) {
            Some(p) => PolicyRequest::Resolved(p),
            None => PolicyRequest::Unresolved(name.to_owned()),
        }
    }
}

/// Builder for a [`Session`]. Obtained from [`Session::builder`].
pub struct SessionBuilder<'a> {
    source: Option<&'a dyn RateModel>,
    machine: Option<MachineConfig>,
    workload: Option<Vec<usize>>,
    threads: usize,
    policies: Vec<PolicyRequest>,
    objective: Objective,
    fcfs_jobs: u64,
    job_size: JobSize,
    seed: u64,
    latency: Option<LatencyConfig>,
    lp_dense_limit: usize,
    markov_dense_limit: usize,
    markov_accel_limit: usize,
}

/// A configured experiment: machine/workload (or a ready rate model) plus
/// the policies to evaluate — the workspace's single entry point.
///
/// # Examples
///
/// An analytic rate source, compared across every policy that applies:
///
/// ```
/// use session::{Policy, Session};
/// use symbiosis::AnalyticModel;
///
/// // Mixing distinct types is 20% faster than running clones together.
/// let model = AnalyticModel::new(2, 2, |counts, ty| {
///     let distinct = counts.iter().filter(|&&c| c > 0).count();
///     let boost = if distinct == 2 { 1.2 } else { 1.0 };
///     let _ = ty;
///     0.5 * boost
/// });
/// let report = Session::builder()
///     .rates(&model)
///     .policies([Policy::Optimal, Policy::Worst, Policy::FcfsEvent])
///     .fcfs_jobs(4_000)
///     .seed(42)
///     .run()
///     .unwrap();
/// let best = report.throughput(Policy::Optimal).unwrap();
/// let worst = report.throughput(Policy::Worst).unwrap();
/// let fcfs = report.throughput(Policy::FcfsEvent).unwrap();
/// assert!(worst <= fcfs + 1e-6 && fcfs <= best + 1e-6);
/// ```
pub struct Session;

impl Session {
    /// Starts configuring a session.
    pub fn builder() -> SessionBuilder<'static> {
        SessionBuilder {
            source: None,
            machine: None,
            workload: None,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            policies: Vec::new(),
            objective: Objective::MaxThroughput,
            fcfs_jobs: 40_000,
            job_size: JobSize::Deterministic,
            seed: 0x5EED,
            latency: None,
            lp_dense_limit: symbiosis::DEFAULT_LP_DENSE_LIMIT,
            markov_dense_limit: symbiosis::DEFAULT_MARKOV_DENSE_LIMIT,
            markov_accel_limit: symbiosis::DEFAULT_MARKOV_ACCEL_LIMIT,
        }
    }
}

impl<'a> SessionBuilder<'a> {
    /// Uses a ready [`RateModel`] as the rate source (measured table view,
    /// analytic model, cache wrapper, or a full-coschedule
    /// [`WorkloadRates`] table for throughput-only sessions).
    pub fn rates<'b>(self, model: &'b dyn RateModel) -> SessionBuilder<'b>
    where
        'a: 'b,
    {
        SessionBuilder {
            source: Some(model),
            ..self
        }
    }

    /// Simulates the rate source: builds a performance table for `machine`
    /// over the 12-benchmark suite and restricts it to the workload given
    /// via [`SessionBuilder::workload`].
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = Some(machine);
        self
    }

    /// Selects the workload (sorted distinct benchmark indices into the
    /// suite) for a simulated rate source.
    pub fn workload(mut self, types: &[usize]) -> Self {
        self.workload = Some(types.to_vec());
        self
    }

    /// OS threads for simulated table building (default: available
    /// parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Adds one policy to evaluate.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policies.push(PolicyRequest::Resolved(policy));
        self
    }

    /// Adds several policies to evaluate.
    pub fn policies<I: IntoIterator<Item = Policy>>(mut self, policies: I) -> Self {
        self.policies
            .extend(policies.into_iter().map(PolicyRequest::Resolved));
        self
    }

    /// Adds policies by registry name ([`Policy::by_name`]); unknown names
    /// surface as [`SessionError::UnknownPolicy`] when the session runs.
    pub fn policy_names<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for name in names {
            self.policies.push(PolicyRequest::from_name(name.as_ref()));
        }
        self
    }

    /// LP direction used to derive the MAXTP targets (default:
    /// [`Objective::MaxThroughput`], the paper's construction).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Jobs completed per event-driven experiment (FCFS-EVENT and the
    /// batch runs of the latency policies). Default 40 000.
    pub fn fcfs_jobs(mut self, jobs: u64) -> Self {
        self.fcfs_jobs = jobs;
        self
    }

    /// Job size distribution for the event-driven experiments
    /// (default: deterministic unit work, the paper's maximum-throughput
    /// setup).
    pub fn job_size(mut self, sizes: JobSize) -> Self {
        self.job_size = sizes;
        self
    }

    /// Base RNG seed for the stochastic experiment legs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the latency policies through the Poisson-arrival discrete-event
    /// experiment with this configuration instead of the default
    /// fixed-batch (makespan) experiment.
    pub fn latency(mut self, config: LatencyConfig) -> Self {
        self.latency = Some(config);
        self
    }

    /// Largest coschedule count the scheduling LP solves on the dense
    /// tableau; bigger tables go through column generation
    /// (default: [`symbiosis::DEFAULT_LP_DENSE_LIMIT`]). `0` forces column
    /// generation, `usize::MAX` forces the dense tableau.
    pub fn lp_dense_limit(mut self, limit: usize) -> Self {
        self.lp_dense_limit = limit;
        self
    }

    /// Largest Markov-chain state count solved by dense LU; bigger chains
    /// go through the sparse Gauss–Seidel path
    /// (default: [`symbiosis::DEFAULT_MARKOV_DENSE_LIMIT`]). `0` forces the
    /// sparse path, `usize::MAX` the dense one.
    pub fn markov_dense_limit(mut self, limit: usize) -> Self {
        self.markov_dense_limit = limit;
        self
    }

    /// Largest sparse Markov-chain state count solved by sequential
    /// Gauss–Seidel; bigger chains go through the multi-colored parallel
    /// SOR sweep (default: [`symbiosis::DEFAULT_MARKOV_ACCEL_LIMIT`]).
    /// `0` forces the accelerated path, `usize::MAX` sequential
    /// Gauss–Seidel. Only consulted above
    /// [`SessionBuilder::markov_dense_limit`].
    pub fn markov_accel_limit(mut self, limit: usize) -> Self {
        self.markov_accel_limit = limit;
        self
    }

    /// Runs every requested policy and returns the uniform report.
    ///
    /// # Errors
    ///
    /// See [`SessionError`] — configuration errors are reported before any
    /// expensive work starts.
    pub fn run(self) -> Result<SessionReport, SessionError> {
        let policies: Vec<Policy> = PolicyRequest::resolve(&self.policies)?;
        if policies.is_empty() {
            return Err(SessionError::NoPolicies);
        }
        match (&self.source, &self.machine, &self.workload) {
            (Some(_), Some(_), _) | (Some(_), _, Some(_)) => Err(SessionError::ConflictingSources),
            (Some(model), None, None) => self.run_with(&policies, *model),
            (None, Some(machine), Some(workload)) => {
                // Restrict the sweep to the selected benchmarks: combos of
                // other suite members would be simulated and then thrown
                // away (each combo simulates independently, so the
                // restricted table holds identical rates).
                let suite = spec2006();
                for &b in workload {
                    if b >= suite.len() {
                        return Err(SessionError::Table(TableError::UnknownBenchmark(b)));
                    }
                }
                if workload.is_empty() || !workload.windows(2).all(|w| w[0] < w[1]) {
                    return Err(SessionError::Table(TableError::InvalidWorkload(
                        "workload must be non-empty, sorted and distinct".into(),
                    )));
                }
                let selected: Vec<_> = workload.iter().map(|&b| suite[b].clone()).collect();
                let machine = Machine::new(machine.clone())?;
                let table = PerfTable::build(&machine, &selected, self.threads)?;
                let local: Vec<usize> = (0..selected.len()).collect();
                let view = table.workload_view(&local)?;
                self.run_with(&policies, &view)
            }
            (None, Some(_), None) => Err(SessionError::IncompleteSimulation("a workload")),
            (None, None, Some(_)) => Err(SessionError::IncompleteSimulation("a machine config")),
            (None, None, None) => Err(SessionError::MissingRates),
        }
    }

    fn run_with(
        &self,
        policies: &[Policy],
        model: &dyn RateModel,
    ) -> Result<SessionReport, SessionError> {
        // Reject latency policies on full-only models before any work.
        for p in policies {
            if p.kind() == PolicyKind::Latency && !model.supports_partial() {
                return Err(SessionError::PartialUnsupported(*p));
            }
        }

        // Materialise the full table once if any policy needs it.
        let needs_table = policies
            .iter()
            .any(|p| p.kind() == PolicyKind::Throughput || *p == Policy::MaxTp);
        let table: Option<WorkloadRates> = if needs_table {
            Some(model.full_table()?)
        } else {
            None
        };

        // The scheduling LP's column data (`it` vector, balance rows) is
        // built once and shared by every LP consumer — the MAXTP target
        // derivation and the OPTIMAL/WORST rows — with one solve per
        // objective, cached. Skipped entirely when no requested policy
        // solves the LP (e.g. FCFS-only sessions).
        let needs_lp = policies
            .iter()
            .any(|p| matches!(p, Policy::Optimal | Policy::Worst | Policy::MaxTp));
        let lp: Option<ScheduleLp<'_>> = if needs_lp {
            table
                .as_ref()
                .map(|t| ScheduleLp::with_dense_limit(t, self.lp_dense_limit))
        } else {
            None
        };
        let mut lp_cache: HashMap<Objective, Schedule> = HashMap::new();
        let solve = |lp: &ScheduleLp<'_>,
                     objective: Objective,
                     cache: &mut HashMap<Objective, Schedule>|
         -> Result<Schedule, SessionError> {
            if let Some(schedule) = cache.get(&objective) {
                return Ok(schedule.clone());
            }
            let schedule = lp.solve(objective)?;
            cache.insert(objective, schedule.clone());
            Ok(schedule)
        };

        // MAXTP follows the LP fractions for the configured objective.
        let targets: Vec<(Vec<u32>, f64)> = if policies.contains(&Policy::MaxTp) {
            let table = table.as_ref().expect("table materialised above");
            let schedule = solve(
                lp.as_ref().expect("LP prepared above"),
                self.objective,
                &mut lp_cache,
            )?;
            table
                .coschedules()
                .iter()
                .zip(&schedule.fractions)
                .filter(|(_, &x)| x > 1e-9)
                .map(|(s, &x)| (s.counts().to_vec(), x))
                .collect()
        } else {
            Vec::new()
        };

        let sizes = match self.job_size {
            JobSize::Deterministic => SizeDist::Deterministic,
            JobSize::Exponential => SizeDist::Exponential,
        };

        let mut rows = Vec::with_capacity(policies.len());
        for &policy in policies {
            let row = match policy {
                Policy::Optimal | Policy::Worst => {
                    let objective = if policy == Policy::Optimal {
                        Objective::MaxThroughput
                    } else {
                        Objective::MinThroughput
                    };
                    let schedule = solve(
                        lp.as_ref().expect("LP prepared above"),
                        objective,
                        &mut lp_cache,
                    )?;
                    PolicyReport {
                        policy,
                        throughput: schedule.throughput,
                        fractions: Some(schedule.fractions),
                        latency: None,
                        batch: None,
                    }
                }
                Policy::FcfsMarkov => {
                    let outcome = fcfs_throughput_markov_tuned(
                        table.as_ref().expect("table materialised"),
                        self.markov_dense_limit,
                        self.markov_accel_limit,
                        self.threads,
                    )?;
                    PolicyReport {
                        policy,
                        throughput: outcome.throughput,
                        fractions: Some(outcome.fractions),
                        latency: None,
                        batch: None,
                    }
                }
                Policy::FcfsEvent => {
                    let outcome = fcfs_throughput(
                        table.as_ref().expect("table materialised"),
                        self.fcfs_jobs,
                        self.job_size,
                        self.seed,
                    )?;
                    PolicyReport {
                        policy,
                        throughput: outcome.throughput,
                        fractions: Some(outcome.fractions),
                        latency: None,
                        batch: None,
                    }
                }
                Policy::Fcfs | Policy::MaxIt | Policy::Srpt | Policy::MaxTp => {
                    let mut sched = policy
                        .latency_scheduler(&targets)
                        .expect("latency policy has a scheduler");
                    match &self.latency {
                        Some(cfg) => {
                            let report = run_latency_experiment(model, sched.as_mut(), cfg)
                                .map_err(SessionError::Experiment)?;
                            PolicyReport {
                                policy,
                                throughput: report.throughput,
                                fractions: None,
                                latency: Some(report),
                                batch: None,
                            }
                        }
                        None => {
                            let cfg = BatchConfig {
                                jobs: self.fcfs_jobs,
                                sizes,
                                seed: self.seed,
                            };
                            let report = run_batch_experiment(model, sched.as_mut(), &cfg)
                                .map_err(SessionError::Experiment)?;
                            PolicyReport {
                                policy,
                                throughput: report.throughput,
                                fractions: None,
                                latency: None,
                                batch: Some(report),
                            }
                        }
                    }
                }
            };
            rows.push(row);
        }
        Ok(SessionReport { rows })
    }
}
