//! The unified policy registry: every throughput analysis and latency
//! scheduler in the workspace, addressable by name.

use std::fmt;

use queueing::{FcfsScheduler, MaxItScheduler, MaxTpScheduler, Scheduler, SrptScheduler};

/// What a policy computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// A saturated-machine average-throughput analysis (Section IV/V):
    /// produces a throughput and per-coschedule time fractions.
    Throughput,
    /// An online scheduler driven through the event simulator
    /// (Section VI): produces batch or latency measurements.
    Latency,
}

/// One of the paper's scheduling policies / analyses.
///
/// The four *throughput* entries are the Section IV/V analyses (LP optimal,
/// LP worst, exact Markov FCFS, event-driven FCFS); the four *latency*
/// entries are the Section VI online schedulers. All eight are reachable by
/// [`Policy::by_name`] so experiments iterate over policies instead of
/// hand-written match arms.
///
/// # Examples
///
/// ```
/// use session::Policy;
///
/// assert_eq!(Policy::by_name("maxtp"), Some(Policy::MaxTp));
/// assert_eq!(Policy::by_name("fcfs_markov"), Some(Policy::FcfsMarkov));
/// assert_eq!(Policy::all().len(), 8);
/// for p in Policy::all() {
///     assert_eq!(Policy::by_name(p.name()), Some(*p));
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// LP maximum average throughput (the paper's "optimal scheduler").
    Optimal,
    /// LP minimum average throughput (the paper's "worst scheduler").
    Worst,
    /// Exact FCFS throughput via the coschedule Markov chain
    /// (exponential job sizes).
    FcfsMarkov,
    /// FCFS throughput via the event-driven maximum-throughput experiment.
    FcfsEvent,
    /// Online first-come first-served (Section VI baseline).
    Fcfs,
    /// Online maximise-instantaneous-throughput.
    MaxIt,
    /// Online shortest total remaining processing time.
    Srpt,
    /// Online LP-fraction tracker (the paper's practical construction).
    MaxTp,
}

impl Policy {
    /// Every policy, throughput analyses first, in paper order.
    pub const ALL: [Policy; 8] = [
        Policy::Optimal,
        Policy::Worst,
        Policy::FcfsMarkov,
        Policy::FcfsEvent,
        Policy::Fcfs,
        Policy::MaxIt,
        Policy::Srpt,
        Policy::MaxTp,
    ];

    /// The four online latency schedulers, in paper order.
    pub const LATENCY: [Policy; 4] = [Policy::Fcfs, Policy::MaxIt, Policy::Srpt, Policy::MaxTp];

    /// The four saturated-machine throughput analyses.
    pub const THROUGHPUT: [Policy; 4] = [
        Policy::Optimal,
        Policy::Worst,
        Policy::FcfsMarkov,
        Policy::FcfsEvent,
    ];

    /// The full registry.
    pub fn all() -> &'static [Policy] {
        &Self::ALL
    }

    /// Registry key — uppercase, matching [`Scheduler::name`] for the
    /// latency policies.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Optimal => "OPTIMAL",
            Policy::Worst => "WORST",
            Policy::FcfsMarkov => "FCFS-MARKOV",
            Policy::FcfsEvent => "FCFS-EVENT",
            Policy::Fcfs => "FCFS",
            Policy::MaxIt => "MAXIT",
            Policy::Srpt => "SRPT",
            Policy::MaxTp => "MAXTP",
        }
    }

    /// Looks a policy up by name, case-insensitively; `_` and `-` are
    /// interchangeable.
    pub fn by_name(name: &str) -> Option<Policy> {
        let key = name.trim().to_uppercase().replace('_', "-");
        Policy::ALL.into_iter().find(|p| p.name() == key)
    }

    /// Whether this is a throughput analysis or an online scheduler.
    pub fn kind(&self) -> PolicyKind {
        match self {
            Policy::Optimal | Policy::Worst | Policy::FcfsMarkov | Policy::FcfsEvent => {
                PolicyKind::Throughput
            }
            Policy::Fcfs | Policy::MaxIt | Policy::Srpt | Policy::MaxTp => PolicyKind::Latency,
        }
    }

    /// Instantiates the online scheduler behind a latency policy, or `None`
    /// for throughput analyses. `targets` are the LP-optimal `(coschedule
    /// counts, time fraction)` pairs MAXTP follows; the other schedulers
    /// ignore them.
    ///
    /// # Panics
    ///
    /// Panics (inside [`MaxTpScheduler::new`]) if MAXTP is requested with
    /// no positive-fraction target.
    pub fn latency_scheduler(&self, targets: &[(Vec<u32>, f64)]) -> Option<Box<dyn Scheduler>> {
        match self {
            Policy::Fcfs => Some(Box::new(FcfsScheduler)),
            Policy::MaxIt => Some(Box::new(MaxItScheduler)),
            Policy::Srpt => Some(Box::new(SrptScheduler)),
            Policy::MaxTp => Some(Box::new(MaxTpScheduler::new(targets.to_vec()))),
            _ => None,
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trips_names() {
        for p in Policy::all() {
            assert_eq!(Policy::by_name(p.name()), Some(*p));
            assert_eq!(Policy::by_name(&p.name().to_lowercase()), Some(*p));
        }
        assert_eq!(Policy::by_name("fcfs_markov"), Some(Policy::FcfsMarkov));
        assert_eq!(Policy::by_name("  srpt "), Some(Policy::Srpt));
        assert_eq!(Policy::by_name("nope"), None);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Policy::all().iter().map(Policy::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Policy::ALL.len());
    }

    #[test]
    fn kinds_partition_the_registry() {
        for p in Policy::THROUGHPUT {
            assert_eq!(p.kind(), PolicyKind::Throughput);
            assert!(p.latency_scheduler(&[]).is_none());
        }
        for p in Policy::LATENCY {
            assert_eq!(p.kind(), PolicyKind::Latency);
        }
    }

    #[test]
    fn latency_scheduler_names_match_registry_keys() {
        let targets = vec![(vec![1u32], 1.0)];
        for p in Policy::LATENCY {
            let sched = p.latency_scheduler(&targets).expect("latency policy");
            assert_eq!(
                sched.name(),
                p.name(),
                "Scheduler::name is the registry key"
            );
        }
    }
}
