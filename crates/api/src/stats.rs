//! Small aggregation helpers shared by sweep reports and experiment code.
//!
//! These used to live in the `paperbench` experiment harness; they moved
//! into the API layer alongside [`crate::sweep::SweepReport`] so every
//! caller aggregating per-workload results uses one implementation
//! (`paperbench` re-exports them unchanged).

/// Formats a fraction as a signed percentage with one decimal.
///
/// # Examples
///
/// ```
/// assert_eq!(session::stats::pct(0.031), "+3.1%");
/// assert_eq!(session::stats::pct(-0.09), "-9.0%");
/// ```
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", 100.0 * x)
}

/// Mean of a slice; 0 for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Maximum of a slice; `NEG_INFINITY` for empty input.
pub fn max(values: &[f64]) -> f64 {
    values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

/// Minimum of a slice; `INFINITY` for empty input.
pub fn min(values: &[f64]) -> f64 {
    values.iter().cloned().fold(f64::INFINITY, f64::min)
}

/// Pearson correlation coefficient of two equal-length samples; `None`
/// when degenerate (fewer than two points or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    if sxx < 1e-300 || syy < 1e-300 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(max(&[1.0, 3.0]), 3.0);
        assert_eq!(min(&[1.0, 3.0]), 1.0);
        assert_eq!(pct(0.031), "+3.1%");
        assert_eq!(pct(-0.09), "-9.0%");
    }

    #[test]
    fn pearson_detects_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let ys_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &ys_neg).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]).is_none());
        assert!(pearson(&[1.0], &[1.0]).is_none());
    }
}
