//! Small aggregation helpers shared by sweep reports and experiment code.
//!
//! These used to live in the `paperbench` experiment harness; they moved
//! into the API layer alongside [`crate::sweep::SweepReport`] so every
//! caller aggregating per-workload results uses one implementation
//! (`paperbench` re-exports them unchanged).

/// Formats a fraction as a signed percentage with one decimal.
///
/// # Examples
///
/// ```
/// assert_eq!(session::stats::pct(0.031), "+3.1%");
/// assert_eq!(session::stats::pct(-0.09), "-9.0%");
/// ```
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", 100.0 * x)
}

/// Mean of a slice; 0 for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Maximum of a slice; `NEG_INFINITY` for empty input.
pub fn max(values: &[f64]) -> f64 {
    values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

/// Minimum of a slice; `INFINITY` for empty input.
pub fn min(values: &[f64]) -> f64 {
    values.iter().cloned().fold(f64::INFINITY, f64::min)
}

/// Pearson correlation coefficient of two equal-length samples; `None`
/// when degenerate (fewer than two points or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    if sxx < 1e-300 || syy < 1e-300 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Kendall rank-correlation coefficient (tau-a) of two equal-length
/// samples; `None` when degenerate (fewer than two points or a length
/// mismatch).
///
/// `+1` means the two orderings agree on every pair, `-1` that they are
/// exactly reversed; tied pairs count as neither concordant nor
/// discordant. This is the "rank agreement" currency of the
/// model-accuracy experiments: how faithfully a *predicted* rate source
/// reproduces the ordering of workloads that a measured source induces
/// (e.g. by OPTIMAL-schedule throughput).
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let dx = xs[i] - xs[j];
            let dy = ys[i] - ys[j];
            let prod = dx * dy;
            if prod > 0.0 {
                concordant += 1;
            } else if prod < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    Some((concordant - discordant) as f64 / pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(max(&[1.0, 3.0]), 3.0);
        assert_eq!(min(&[1.0, 3.0]), 1.0);
        assert_eq!(pct(0.031), "+3.1%");
        assert_eq!(pct(-0.09), "-9.0%");
    }

    #[test]
    fn kendall_tau_measures_rank_agreement() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        // Any monotone transform preserves tau exactly.
        let ys = [10.0, 100.0, 1000.0, 10000.0];
        assert_eq!(kendall_tau(&xs, &ys), Some(1.0));
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&xs, &rev), Some(-1.0));
        // One swapped adjacent pair: 5 of 6 pairs concordant.
        let near = [1.0, 2.0, 4.0, 3.0];
        assert!((kendall_tau(&xs, &near).unwrap() - 4.0 / 6.0).abs() < 1e-12);
        // Ties contribute neither way.
        let tied = [1.0, 1.0, 2.0, 3.0];
        assert!((kendall_tau(&xs, &tied).unwrap() - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(kendall_tau(&xs, &[1.0]), None);
        assert_eq!(kendall_tau(&[1.0], &[1.0]), None);
    }

    #[test]
    fn pearson_detects_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let ys_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &ys_neg).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]).is_none());
        assert!(pearson(&[1.0], &[1.0]).is_none());
    }
}
