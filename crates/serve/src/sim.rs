//! Closed-loop service simulation against a ground-truth rate source.
//!
//! Drives the whole stack — queue → dispatcher → twin loop — under a
//! deterministic virtual clock: seeded Poisson arrivals are pushed through
//! the bounded [`Queue`](crate::Queue), the [`Dispatcher`] places them by
//! pricing candidates through the *live predicted model*, and `truth`
//! (any partial-capable [`RateModel`] — typically a measured
//! `PerfTable` view) decides how fast the placed coschedules actually
//! run. Completions feed measurements back into the [`TwinLoop`], which
//! refits and emits active probe requests; the harness services those
//! probes against `truth` as well.
//!
//! Everything is seeded and event-ordered, so a report — including the
//! full placement trace and the model-error trajectory — is reproducible
//! bit-for-bit, with inline or background refits.

use crate::breaker::{BreakerConfig, BreakerReport, DegradingPlacer};
use crate::dispatch::{Dispatcher, Placement};
use crate::placer::Placer;
use crate::queue::{Queue, SubmitError};
use crate::twin::{RefitRecord, TwinError, TwinLoop};
use predict::{PredictedModel, RateSample};
use queueing::Job;
use symbiosis::rng::SplitMix64;
use symbiosis::RateModel;

/// Configuration for one [`run_serve`] experiment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Mean arrivals per unit time (Poisson process).
    pub arrival_rate: f64,
    /// Total jobs to generate.
    pub jobs: usize,
    /// RNG seed (arrivals, types, sizes).
    pub seed: u64,
    /// Queue bound; arrivals hitting a full queue are shed.
    pub queue_capacity: usize,
    /// Twin staleness bound: refit every `batch` measurements.
    pub batch: usize,
    /// Active probe requests per refit.
    pub probes: usize,
    /// Run refits on a background worker thread instead of inline.
    pub background_twin: bool,
    /// Graceful degradation: wrap the placer in a
    /// [`DegradingPlacer`] watching the twin's `fit_q90` health signal,
    /// falling back to FCFS while the breaker is open. `None` (the
    /// default) leaves the placer untouched.
    pub breaker: Option<BreakerConfig>,
    /// Chaos hook: make the (then necessarily background) twin worker
    /// panic at this zero-indexed dispatched batch; the run surfaces
    /// [`ServeError::Twin`] at shutdown. `None` for normal operation.
    pub twin_panic_at_batch: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            arrival_rate: 1.0,
            jobs: 1_000,
            seed: 0x5EED,
            queue_capacity: 1_024,
            batch: 64,
            probes: 4,
            background_twin: false,
            breaker: None,
            twin_panic_at_batch: None,
        }
    }
}

/// One point of the model-error trajectory: the predicted model's error
/// against ground truth over every full coschedule, after a refit.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorPoint {
    /// Refit generation (0 = the initial model, before any refit).
    pub generation: u64,
    /// Virtual time of the measurement.
    pub time: f64,
    /// Jobs completed by then.
    pub completed: u64,
    /// Mean relative instantaneous-throughput error vs truth.
    pub mean_abs_rel: f64,
}

/// The outcome of one closed-loop service run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The placer that drove the run.
    pub placer: String,
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs shed at the full queue.
    pub rejected: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Virtual time of the last completion.
    pub makespan: f64,
    /// Completed jobs per unit virtual time.
    pub jobs_per_time: f64,
    /// Total work completed per unit virtual time.
    pub throughput: f64,
    /// Mean turnaround (completion − arrival).
    pub mean_turnaround: f64,
    /// Mean slowdown: turnaround over the job's solo execution time.
    pub mean_slowdown: f64,
    /// Every refit the twin performed.
    pub refits: Vec<RefitRecord>,
    /// Model error against truth: the initial model plus one point per
    /// refit, in generation order.
    pub errors: Vec<ErrorPoint>,
    /// Every placement decision, for determinism assertions.
    pub trace: Vec<Placement>,
    /// Training-set size of the final model.
    pub final_train_samples: usize,
    /// Circuit-breaker activity, when [`ServeConfig::breaker`] was set.
    pub breaker: Option<BreakerReport>,
    /// Metrics recorded during this run (empty when no [`obs`] recorder
    /// was installed).
    pub metrics: obs::MetricsSnapshot,
}

/// Errors from a [`run_serve`] experiment.
#[derive(Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The config or the model/truth shapes are unusable.
    Config(String),
    /// The twin loop died mid-run (e.g. a refit-worker panic).
    Twin(TwinError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "serve config error: {msg}"),
            ServeError::Twin(e) => write!(f, "serve twin failure: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Measures the multiset `counts` against `truth`, as the per-type total
/// rates convention of [`RateSample`].
fn measure(truth: &dyn RateModel, counts: &[u32]) -> RateSample {
    RateSample {
        counts: counts.to_vec(),
        rates: (0..counts.len())
            .map(|ty| truth.total_rate(counts, ty))
            .collect(),
    }
}

/// Runs the closed loop: seeded arrivals through queue, dispatcher and
/// twin against `truth`. See the module docs for the event structure.
///
/// # Errors
///
/// [`ServeError::Config`] when shapes mismatch, `truth` cannot price
/// partial multisets, or rates/counts are degenerate.
pub fn run_serve(
    truth: &dyn RateModel,
    model: PredictedModel,
    placer: Box<dyn Placer>,
    cfg: &ServeConfig,
) -> Result<ServeReport, ServeError> {
    let n = truth.num_types();
    let k = truth.contexts();
    if !truth.supports_partial() {
        return Err(ServeError::Config(
            "ground truth must price partial multisets".into(),
        ));
    }
    if model.num_types() != n || model.contexts() != k {
        return Err(ServeError::Config(format!(
            "model shape {}x{} does not match truth {}x{}",
            model.num_types(),
            model.contexts(),
            n,
            k
        )));
    }
    let rate_ok = cfg.arrival_rate.is_finite() && cfg.arrival_rate > 0.0;
    if !rate_ok || cfg.jobs == 0 || cfg.queue_capacity == 0 {
        return Err(ServeError::Config(
            "need positive arrival rate, jobs and queue capacity".into(),
        ));
    }

    let ctx = obs::current();
    let _span = ctx.as_ref().map(|r| r.span("serve.run"));
    let before = ctx.as_ref().map(|r| r.snapshot());
    // Hoisted handles keep the per-event cost at one atomic op.
    let depth_gauge = ctx.as_ref().map(|r| r.gauge("serve.queue_depth"));
    let shed_counter = ctx.as_ref().map(|r| r.counter("serve.shed"));
    let place_hist = ctx.as_ref().map(|r| r.histogram("serve.place_us"));

    let mut rng = SplitMix64::new(cfg.seed);
    let (producer, queue) = Queue::bounded(cfg.queue_capacity);
    let mut twin = if cfg.twin_panic_at_batch.is_some() {
        // Fault injection targets the worker thread, so the twin must
        // run in background mode.
        TwinLoop::background_with_fault(model, cfg.batch, cfg.probes, cfg.twin_panic_at_batch)
    } else if cfg.background_twin {
        TwinLoop::background(model, cfg.batch, cfg.probes)
    } else {
        TwinLoop::new(model, cfg.batch, cfg.probes)
    };
    let (placer, breaker) = match &cfg.breaker {
        Some(breaker_cfg) => {
            let degrading = DegradingPlacer::new(placer, breaker_cfg.clone());
            let handle = degrading.breaker();
            (Box::new(degrading) as Box<dyn Placer>, Some(handle))
        }
        None => (placer, None),
    };
    let mut dispatcher = Dispatcher::new(n, k, placer);
    let placer_name = dispatcher.placer_name().to_string();

    // Solo rates give each job's ideal (uncontended) execution time, the
    // denominator of the slowdown metric.
    let solo_rates: Vec<f64> = (0..n)
        .map(|ty| {
            let mut solo = vec![0u32; n];
            solo[ty] = 1;
            truth.per_job_rate(&solo, ty)
        })
        .collect();

    let mut errors = vec![ErrorPoint {
        generation: 0,
        time: 0.0,
        completed: 0,
        mean_abs_rel: twin.read().error_against(truth).mean_abs_rel,
    }];

    let mut now = 0.0;
    let mut arrivals_left = cfg.jobs;
    let mut next_id: u64 = 0;
    let mut next_arrival = now + rng.next_exp(1.0 / cfg.arrival_rate);
    let mut completed: u64 = 0;
    let mut work_done = 0.0;
    let mut turnaround_sum = 0.0;
    let mut slowdown_sum = 0.0;
    let mut makespan = 0.0;

    loop {
        let next_completion = dispatcher
            .time_to_next_completion(truth)
            .map(|dt| now + dt)
            .unwrap_or(f64::INFINITY);
        let arrival_due = arrivals_left > 0 && next_arrival <= next_completion;
        if !arrival_due && !next_completion.is_finite() {
            if queue.is_empty() && dispatcher.is_idle() {
                // No arrivals left, nothing queued, nothing running: done.
                break;
            }
            // Nothing running yet but the queue holds work: dispatch it.
            if let Some(g) = &depth_gauge {
                g.set(queue.len() as i64);
            }
            for job in queue.drain() {
                dispatcher.admit(job);
            }
            let placing = std::time::Instant::now();
            let model = twin.read();
            dispatcher.fill(&*model, now);
            if let Some(h) = &place_hist {
                h.record(placing.elapsed().as_micros() as f64);
            }
            continue;
        }

        // Advance the running coschedule to the next event — arrival or
        // completion — so every job progresses across every interval.
        let event_time = if arrival_due {
            next_arrival
        } else {
            next_completion
        };
        let dt = event_time - now;
        now = event_time;
        let ran = dispatcher.running_counts().to_vec();
        let done = dispatcher.advance(truth, dt, now);
        if !done.is_empty() {
            // Completions: the coschedule that ran yields a measurement,
            // jobs finish, the twin may refit.
            for c in &done {
                completed += 1;
                work_done += c.size;
                let turnaround = now - c.arrival;
                turnaround_sum += turnaround;
                slowdown_sum += turnaround / (c.size / solo_rates[c.ty]);
            }
            makespan = now;
            if twin.record(measure(truth, &ran)) {
                // Staleness boundary: service the active probe requests
                // and record an error-trajectory point.
                for probe in twin.probe_requests() {
                    twin.record(measure(truth, &probe));
                }
                // Feed the freshest refit's health signal through the
                // circuit breaker, so degradation reacts within one
                // staleness bound of the model going bad (or healing).
                if let Some(breaker) = &breaker {
                    if let Some(last) = twin.history().last() {
                        breaker
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .observe(last.generation, last.fit_q90);
                    }
                }
                errors.push(ErrorPoint {
                    generation: twin.generation(),
                    time: now,
                    completed,
                    mean_abs_rel: twin.read().error_against(truth).mean_abs_rel,
                });
            }
        }
        if arrival_due {
            // Arrival event: a producer pushes one job at the queue.
            let job = Job {
                id: next_id,
                ty: rng.next_range(n as u64) as usize,
                remaining: rng.next_exp(1.0),
                arrival: now,
            };
            next_id += 1;
            arrivals_left -= 1;
            match producer.try_submit(job) {
                Ok(()) => {}
                Err(SubmitError::Full(_)) => {
                    // Shed; counted by the queue's own stats too.
                    if let Some(c) = &shed_counter {
                        c.add(1);
                    }
                }
                Err(SubmitError::Closed(_)) => unreachable!("queue closed early"),
            }
            next_arrival = now + rng.next_exp(1.0 / cfg.arrival_rate);
        }

        // Dispatch path: drain the queue and fill free contexts, pricing
        // through the live predicted model.
        if let Some(g) = &depth_gauge {
            g.set(queue.len() as i64);
        }
        for job in queue.drain() {
            dispatcher.admit(job);
        }
        {
            let placing = std::time::Instant::now();
            let model = twin.read();
            dispatcher.fill(&*model, now);
            if let Some(h) = &place_hist {
                h.record(placing.elapsed().as_micros() as f64);
            }
        }
    }

    queue.close();
    let stats = queue.stats();
    let (placed_total, completed_total) = dispatcher.totals();
    assert_eq!(stats.depth, 0, "jobs left in the queue at shutdown");
    assert_eq!(placed_total, completed_total, "running jobs at shutdown");

    let (final_model, refits) = twin.shutdown().map_err(ServeError::Twin)?;
    errors.push(ErrorPoint {
        generation: refits.last().map_or(0, |r| r.generation),
        time: now,
        completed,
        mean_abs_rel: final_model.error_against(truth).mean_abs_rel,
    });

    drop(_span);
    let metrics = match (&ctx, before) {
        (Some(rec), Some(before)) => obs::MetricsSnapshot::diff(&before, &rec.snapshot()),
        _ => obs::MetricsSnapshot::default(),
    };

    Ok(ServeReport {
        placer: placer_name,
        submitted: stats.submitted,
        rejected: stats.rejected,
        completed,
        makespan,
        jobs_per_time: completed as f64 / makespan.max(f64::MIN_POSITIVE),
        throughput: work_done / makespan.max(f64::MIN_POSITIVE),
        mean_turnaround: turnaround_sum / (completed as f64).max(1.0),
        mean_slowdown: slowdown_sum / (completed as f64).max(1.0),
        refits,
        errors,
        trace: dispatcher.trace().to_vec(),
        final_train_samples: final_model.samples().len(),
        breaker: breaker.map(|b| {
            b.lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .report()
                .clone()
        }),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::{BeamPlacer, PolicyPlacer};
    use predict::InterferenceFitter;
    use queueing::sched::feasible_multisets;
    use symbiosis::AnalyticModel;

    fn truth(n: usize, k: usize) -> AnalyticModel<impl Fn(&[u32], usize) -> f64> {
        AnalyticModel::new(n, k, |counts: &[u32], ty| {
            let distinct = counts.iter().filter(|&&c| c > 0).count() as f64;
            let load: u32 = counts.iter().sum();
            let base = 0.8 + 0.1 * (ty as f64);
            base * (1.0 + 0.25 * (distinct - 1.0)) / (1.0 + 0.4 * (load as f64 - 1.0))
        })
    }

    fn seed_model(truth: &dyn RateModel) -> PredictedModel {
        let full = vec![truth.contexts() as u32; truth.num_types()];
        let samples: Vec<RateSample> = (1..=2)
            .flat_map(|s| feasible_multisets(&full, s))
            .map(|c| measure(truth, &c))
            .collect();
        PredictedModel::fit(
            truth.num_types(),
            truth.contexts(),
            samples,
            Box::new(InterferenceFitter),
        )
        .unwrap()
    }

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            arrival_rate: 3.0,
            jobs: 300,
            seed: 7,
            queue_capacity: 512,
            batch: 40,
            probes: 3,
            background_twin: false,
            breaker: None,
            twin_panic_at_batch: None,
        }
    }

    #[test]
    fn conservation_no_lost_or_double_placed_jobs() {
        let truth = truth(3, 4);
        let report = run_serve(
            &truth,
            seed_model(&truth),
            Box::new(PolicyPlacer::greedy()),
            &small_cfg(),
        )
        .unwrap();
        assert_eq!(report.submitted + report.rejected, 300);
        assert_eq!(report.completed, report.submitted);
        let placed: u64 = report.trace.iter().map(|p| p.placed.len() as u64).sum();
        assert_eq!(placed, report.completed);
        assert!(report.mean_slowdown >= 1.0 - 1e-9);
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn identical_seeds_reproduce_identical_traces() {
        let truth = truth(3, 4);
        let run = || {
            run_serve(
                &truth,
                seed_model(&truth),
                Box::new(BeamPlacer::new(4)),
                &small_cfg(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.refits, b.refits);
        assert_eq!(a.mean_slowdown, b.mean_slowdown);
    }

    #[test]
    fn background_twin_reproduces_the_inline_run() {
        let truth = truth(3, 4);
        let run = |background| {
            let cfg = ServeConfig {
                background_twin: background,
                ..small_cfg()
            };
            run_serve(
                &truth,
                seed_model(&truth),
                Box::new(PolicyPlacer::greedy()),
                &cfg,
            )
            .unwrap()
        };
        let inline = run(false);
        let background = run(true);
        assert_eq!(inline.trace, background.trace);
        assert_eq!(inline.refits, background.refits);
        assert_eq!(inline.errors, background.errors);
    }

    #[test]
    fn refits_reduce_model_error() {
        let truth = truth(3, 4);
        let report = run_serve(
            &truth,
            seed_model(&truth),
            Box::new(PolicyPlacer::greedy()),
            &small_cfg(),
        )
        .unwrap();
        assert!(report.refits.len() >= 2, "scenario must refit");
        let first = report.errors.first().unwrap().mean_abs_rel;
        let last = report.errors.last().unwrap().mean_abs_rel;
        assert!(
            last < first,
            "digital twin must learn: error {first} -> {last}"
        );
    }

    #[test]
    fn a_tripped_breaker_falls_back_without_losing_jobs() {
        let truth = truth(3, 4);
        // A zero trip threshold opens the breaker at the first refit (any
        // non-negative q90 trips it) and the negative recovery threshold
        // keeps it open, so the bulk of the run places through FCFS.
        let cfg = ServeConfig {
            breaker: Some(BreakerConfig {
                trip_q90: 0.0,
                recover_q90: -1.0,
            }),
            ..small_cfg()
        };
        let report = run_serve(
            &truth,
            seed_model(&truth),
            Box::new(PolicyPlacer::greedy()),
            &cfg,
        )
        .unwrap();
        assert_eq!(report.placer, "DEGRADING");
        assert_eq!(report.submitted + report.rejected, 300);
        assert_eq!(report.completed, report.submitted);
        let breaker = report.breaker.expect("breaker report present");
        assert_eq!(breaker.trips, 1);
        assert_eq!(breaker.recoveries, 0);
        assert!(breaker.fallback_calls > 0, "fallback must have served");
    }

    #[test]
    fn an_untripped_breaker_is_transparent_to_the_placement_trace() {
        let truth = truth(3, 4);
        let plain = run_serve(
            &truth,
            seed_model(&truth),
            Box::new(PolicyPlacer::greedy()),
            &small_cfg(),
        )
        .unwrap();
        let cfg = ServeConfig {
            breaker: Some(BreakerConfig {
                trip_q90: f64::INFINITY,
                recover_q90: 0.0,
            }),
            ..small_cfg()
        };
        let wrapped = run_serve(
            &truth,
            seed_model(&truth),
            Box::new(PolicyPlacer::greedy()),
            &cfg,
        )
        .unwrap();
        assert_eq!(plain.trace, wrapped.trace);
        assert_eq!(plain.refits, wrapped.refits);
        let breaker = wrapped.breaker.expect("breaker report present");
        assert_eq!(breaker.trips, 0);
        assert_eq!(breaker.fallback_calls, 0);
    }

    #[test]
    fn a_twin_worker_panic_surfaces_as_a_clean_error() {
        let truth = truth(3, 4);
        let cfg = ServeConfig {
            twin_panic_at_batch: Some(0),
            ..small_cfg()
        };
        let err = run_serve(
            &truth,
            seed_model(&truth),
            Box::new(PolicyPlacer::greedy()),
            &cfg,
        )
        .expect_err("the injected twin panic must surface");
        assert!(
            matches!(err, ServeError::Twin(_)),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let t = truth(2, 2);
        let model = seed_model(&t);
        let bad = ServeConfig {
            jobs: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            run_serve(&t, model, Box::new(PolicyPlacer::fcfs()), &bad),
            Err(ServeError::Config(_))
        ));
        let other = truth(3, 2);
        assert!(run_serve(
            &other,
            seed_model(&t),
            Box::new(PolicyPlacer::fcfs()),
            &ServeConfig::default()
        )
        .is_err());
    }
}
