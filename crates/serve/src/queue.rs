//! Bounded MPSC job-queue front end with backpressure.
//!
//! Many producer threads push work at a single scheduling loop. The queue
//! is deliberately *bounded*: when a burst outruns the dispatcher the
//! producers either block ([`Producer::submit`]) or shed load
//! ([`Producer::try_submit`]), instead of growing an unbounded backlog —
//! under symbiotic scheduling a long queue only increases turnaround, it
//! never increases machine throughput.
//!
//! Built on `std` primitives only: a `Mutex<VecDeque>` plus two condvars
//! (`not_full` for producers, `not_empty` for the consumer).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Why a submission was not accepted. The rejected item is handed back so
/// callers can retry or account for shed load.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError<T> {
    /// The queue is at capacity (only `try_submit` reports this).
    Full(T),
    /// The consumer side closed the queue; no more work is accepted.
    Closed(T),
}

/// Counters describing the queue's lifetime so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Items accepted into the queue.
    pub submitted: u64,
    /// Items bounced by `try_submit` on a full queue.
    pub rejected: u64,
    /// Items currently waiting.
    pub depth: usize,
}

struct State<T> {
    buf: VecDeque<T>,
    closed: bool,
    producers: usize,
    submitted: u64,
    rejected: u64,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

/// The consumer side of the bounded queue (single owner by convention —
/// the dispatcher loop).
pub struct Queue<T> {
    shared: Arc<Shared<T>>,
}

/// A cloneable producer handle. When the last producer drops, a blocked
/// [`Queue::pop`] wakes up and returns `None` once the buffer drains.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Queue<T> {
    /// Creates a bounded queue and its first producer handle.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> (Producer<T>, Queue<T>) {
        assert!(capacity > 0, "queue capacity must be at least 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                buf: VecDeque::new(),
                closed: false,
                producers: 1,
                submitted: 0,
                rejected: 0,
            }),
            capacity,
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        });
        (
            Producer {
                shared: shared.clone(),
            },
            Queue { shared },
        )
    }

    /// Removes the oldest item without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.shared.state.lock().unwrap();
        let item = state.buf.pop_front();
        if item.is_some() {
            self.shared.not_full.notify_one();
        }
        item
    }

    /// Removes the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed (or every producer has
    /// dropped) *and* the buffer has drained — the shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(item) = state.buf.pop_front() {
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if state.closed || state.producers == 0 {
                return None;
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// Drains everything currently queued, without blocking.
    pub fn drain(&self) -> Vec<T> {
        let mut state = self.shared.state.lock().unwrap();
        let items: Vec<T> = state.buf.drain(..).collect();
        if !items.is_empty() {
            self.shared.not_full.notify_all();
        }
        items
    }

    /// Stops accepting submissions; blocked producers wake with
    /// [`SubmitError::Closed`]. Queued items stay poppable.
    pub fn close(&self) {
        let mut state = self.shared.state.lock().unwrap();
        state.closed = true;
        self.shared.not_full.notify_all();
        self.shared.not_empty.notify_all();
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().buf.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bound passed to [`Queue::bounded`].
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Lifetime counters (accepted, shed, current depth).
    pub fn stats(&self) -> QueueStats {
        let state = self.shared.state.lock().unwrap();
        QueueStats {
            submitted: state.submitted,
            rejected: state.rejected,
            depth: state.buf.len(),
        }
    }
}

impl<T> Drop for Queue<T> {
    fn drop(&mut self) {
        // Consumer gone: unblock producers rather than deadlocking them.
        self.close();
    }
}

impl<T> Producer<T> {
    /// Submits an item, blocking while the queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] once the consumer closed the queue.
    pub fn submit(&self, item: T) -> Result<(), SubmitError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.closed {
                return Err(SubmitError::Closed(item));
            }
            if state.buf.len() < self.shared.capacity {
                state.buf.push_back(item);
                state.submitted += 1;
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap();
        }
    }

    /// Submits an item if there is room right now, otherwise hands it back.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity, [`SubmitError::Closed`] after
    /// close; both return the item.
    pub fn try_submit(&self, item: T) -> Result<(), SubmitError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        if state.closed {
            return Err(SubmitError::Closed(item));
        }
        if state.buf.len() >= self.shared.capacity {
            state.rejected += 1;
            return Err(SubmitError::Full(item));
        }
        state.buf.push_back(item);
        state.submitted += 1;
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Producer<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().producers += 1;
        Producer {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.producers -= 1;
        if state.producers == 0 {
            // Last producer: wake a consumer blocked on an empty queue.
            self.shared.not_empty.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_and_stats() {
        let (tx, rx) = Queue::bounded(4);
        tx.submit(1).unwrap();
        tx.submit(2).unwrap();
        tx.submit(3).unwrap();
        assert_eq!(rx.len(), 3);
        assert_eq!(rx.try_pop(), Some(1));
        assert_eq!(rx.drain(), vec![2, 3]);
        assert_eq!(rx.try_pop(), None);
        let stats = rx.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.depth, 0);
    }

    #[test]
    fn try_submit_sheds_load_at_capacity() {
        let (tx, rx) = Queue::bounded(2);
        tx.try_submit(1).unwrap();
        tx.try_submit(2).unwrap();
        assert_eq!(tx.try_submit(3), Err(SubmitError::Full(3)));
        assert_eq!(rx.stats().rejected, 1);
        rx.try_pop();
        tx.try_submit(3).unwrap();
        assert_eq!(rx.drain(), vec![2, 3]);
    }

    #[test]
    fn close_rejects_producers_but_keeps_queued_items() {
        let (tx, rx) = Queue::bounded(2);
        tx.submit(7).unwrap();
        rx.close();
        assert_eq!(tx.submit(8), Err(SubmitError::Closed(8)));
        assert_eq!(tx.try_submit(9), Err(SubmitError::Closed(9)));
        assert_eq!(rx.pop(), Some(7));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn dropping_the_consumer_unblocks_producers() {
        let (tx, rx) = Queue::bounded(1);
        tx.submit(1).unwrap();
        let handle = thread::spawn(move || tx.submit(2));
        // The producer blocks on the full queue until the consumer goes
        // away, then observes Closed.
        drop(rx);
        assert!(matches!(
            handle.join().unwrap(),
            Err(SubmitError::Closed(2))
        ));
    }

    #[test]
    fn bursty_producers_are_absorbed_without_loss() {
        const PRODUCERS: usize = 8;
        const PER_PRODUCER: usize = 250;
        let (tx, rx) = Queue::bounded(4); // far smaller than the burst
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        tx.submit(p * PER_PRODUCER + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut seen = vec![false; PRODUCERS * PER_PRODUCER];
        while let Some(item) = rx.pop() {
            assert!(!seen[item], "item {item} delivered twice");
            seen[item] = true;
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(seen.iter().all(|&s| s), "lost items under backpressure");
        let stats = rx.stats();
        assert_eq!(stats.submitted, (PRODUCERS * PER_PRODUCER) as u64);
        assert_eq!(stats.depth, 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = Queue::<u32>::bounded(0);
    }
}
