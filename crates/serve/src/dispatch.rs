//! The dispatcher: owns the waiting pool and the running coschedule.
//!
//! Jobs admitted from the queue wait in a [`JobPool`]; whenever contexts
//! are free, the configured [`Placer`] picks queued jobs, priced through
//! whatever [`RateModel`] the caller passes (the live predicted model in
//! the service, ground truth in oracle experiments). Placement is
//! non-preemptive: a placed job keeps its context until it completes.
//!
//! Time is external: the driver asks for the next completion horizon
//! under a ground-truth rate source and then advances the dispatcher by
//! explicit `dt` steps, so the same dispatcher works under a virtual
//! clock (deterministic sim) or wall time.

use crate::placer::Placer;
use queueing::{Job, JobId, JobPool};
use symbiosis::RateModel;

/// Numerical slack below which remaining work counts as finished
/// (matches the latency simulator's completion threshold).
const DONE_EPS: f64 = 1e-12;

/// One placement decision, for deterministic-trace assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Time the placement happened.
    pub time: f64,
    /// Jobs started, in placer order.
    pub placed: Vec<JobId>,
    /// The running multiset after the placement.
    pub running_after: Vec<u32>,
}

/// A job that finished, with everything needed for turnaround and
/// slowdown statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The job's id.
    pub id: JobId,
    /// The job's type.
    pub ty: usize,
    /// Total work the job brought.
    pub size: f64,
    /// When it arrived (entered the queue).
    pub arrival: f64,
    /// When it was placed on a context.
    pub placed_at: f64,
    /// When it completed.
    pub finished_at: f64,
}

struct RunningJob {
    id: JobId,
    ty: usize,
    remaining: f64,
    size: f64,
    arrival: f64,
    placed_at: f64,
}

/// Fills free machine contexts from a pool of admitted jobs.
pub struct Dispatcher {
    queued: JobPool,
    running: Vec<RunningJob>,
    running_counts: Vec<u32>,
    contexts: usize,
    placer: Box<dyn Placer>,
    trace: Vec<Placement>,
    placed_total: u64,
    completed_total: u64,
}

impl Dispatcher {
    /// A dispatcher for `num_types` job types on `contexts` contexts.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(num_types: usize, contexts: usize, placer: Box<dyn Placer>) -> Self {
        assert!(num_types > 0, "need at least one job type");
        assert!(contexts > 0, "need at least one context");
        Dispatcher {
            queued: JobPool::new(num_types),
            running: Vec::new(),
            running_counts: vec![0; num_types],
            contexts,
            placer,
            trace: Vec::new(),
            placed_total: 0,
            completed_total: 0,
        }
    }

    /// The configured placer's name.
    pub fn placer_name(&self) -> &'static str {
        self.placer.name()
    }

    /// Admits an arrived job into the waiting pool.
    pub fn admit(&mut self, job: Job) {
        self.queued.insert(job);
    }

    /// Jobs waiting for a context.
    pub fn queued_len(&self) -> usize {
        self.queued.len()
    }

    /// Jobs currently running.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Free contexts.
    pub fn free(&self) -> usize {
        self.contexts - self.running.len()
    }

    /// The running multiset, as per-type counts.
    pub fn running_counts(&self) -> &[u32] {
        &self.running_counts
    }

    /// True when nothing is queued or running.
    pub fn is_idle(&self) -> bool {
        self.running.is_empty() && self.queued.is_empty()
    }

    /// Jobs placed / completed so far (for loss accounting).
    pub fn totals(&self) -> (u64, u64) {
        (self.placed_total, self.completed_total)
    }

    /// Every placement decision so far.
    pub fn trace(&self) -> &[Placement] {
        &self.trace
    }

    /// Fills free contexts by repeatedly asking the placer, pricing
    /// candidates through `model`. Stops when the machine is full, the
    /// pool is empty, or the placer declines to place.
    ///
    /// # Panics
    ///
    /// Panics if the placer returns more jobs than there are free
    /// contexts, or ids not in the pool.
    pub fn fill(&mut self, model: &dyn RateModel, now: f64) {
        loop {
            let free = self.free();
            if free == 0 || self.queued.is_empty() {
                return;
            }
            let ids = self
                .placer
                .place(&mut self.queued, &self.running_counts, free, model);
            if ids.is_empty() {
                return;
            }
            assert!(
                ids.len() <= free,
                "placer returned {} jobs for {free} free contexts",
                ids.len()
            );
            for &id in &ids {
                let job = self.queued.remove(id);
                self.running_counts[job.ty] += 1;
                self.running.push(RunningJob {
                    id: job.id,
                    ty: job.ty,
                    remaining: job.remaining,
                    size: job.remaining,
                    arrival: job.arrival,
                    placed_at: now,
                });
                self.placed_total += 1;
            }
            self.trace.push(Placement {
                time: now,
                placed: ids,
                running_after: self.running_counts.clone(),
            });
        }
    }

    /// Time until the next running job completes under `truth`, or `None`
    /// when nothing is running.
    pub fn time_to_next_completion(&self, truth: &dyn RateModel) -> Option<f64> {
        self.running
            .iter()
            .map(|job| job.remaining / truth.per_job_rate(&self.running_counts, job.ty))
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Advances every running job by `dt` at the rates `truth` assigns to
    /// the current coschedule, removing and returning the completions
    /// (ordered by id, deterministic).
    pub fn advance(&mut self, truth: &dyn RateModel, dt: f64, now: f64) -> Vec<Completion> {
        if self.running.is_empty() {
            return Vec::new();
        }
        let rates: Vec<f64> = (0..self.running_counts.len())
            .map(|ty| {
                if self.running_counts[ty] > 0 {
                    truth.per_job_rate(&self.running_counts, ty)
                } else {
                    0.0
                }
            })
            .collect();
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.running.len() {
            let job = &mut self.running[i];
            job.remaining -= rates[job.ty] * dt;
            if job.remaining <= DONE_EPS {
                let job = self.running.swap_remove(i);
                self.running_counts[job.ty] -= 1;
                self.completed_total += 1;
                done.push(Completion {
                    id: job.id,
                    ty: job.ty,
                    size: job.size,
                    arrival: job.arrival,
                    placed_at: job.placed_at,
                    finished_at: now,
                });
            } else {
                i += 1;
            }
        }
        done.sort_by_key(|c| c.id);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::PolicyPlacer;
    use symbiosis::AnalyticModel;

    fn flat_model(n: usize, k: usize) -> AnalyticModel<impl Fn(&[u32], usize) -> f64> {
        AnalyticModel::new(n, k, |_counts: &[u32], _ty| 1.0)
    }

    fn job(id: JobId, ty: usize, size: f64, arrival: f64) -> Job {
        Job {
            id,
            ty,
            remaining: size,
            arrival,
        }
    }

    #[test]
    fn fill_places_up_to_free_contexts_and_records_a_trace() {
        let truth = flat_model(2, 2);
        let mut disp = Dispatcher::new(2, 2, Box::new(PolicyPlacer::fcfs()));
        for i in 0..3 {
            disp.admit(job(i, (i % 2) as usize, 1.0, 0.0));
        }
        disp.fill(&truth, 0.0);
        assert_eq!(disp.running_len(), 2);
        assert_eq!(disp.queued_len(), 1);
        assert_eq!(disp.free(), 0);
        assert_eq!(disp.trace().len(), 1);
        assert_eq!(disp.trace()[0].placed, vec![0, 1]);
        assert_eq!(disp.trace()[0].running_after, vec![1, 1]);
    }

    #[test]
    fn advance_completes_jobs_and_frees_contexts() {
        let truth = flat_model(1, 2);
        let mut disp = Dispatcher::new(1, 2, Box::new(PolicyPlacer::fcfs()));
        disp.admit(job(0, 0, 1.0, 0.0));
        disp.admit(job(1, 0, 2.0, 0.0));
        disp.fill(&truth, 0.0);
        let dt = disp.time_to_next_completion(&truth).unwrap();
        assert!((dt - 1.0).abs() < 1e-12);
        let done = disp.advance(&truth, dt, dt);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 0);
        assert!((done[0].finished_at - 1.0).abs() < 1e-12);
        assert_eq!(disp.running_len(), 1);
        assert_eq!(disp.free(), 1);
        // The second job still needs one more unit of work.
        let dt2 = disp.time_to_next_completion(&truth).unwrap();
        assert!((dt2 - 1.0).abs() < 1e-9);
        let done2 = disp.advance(&truth, dt2, dt + dt2);
        assert_eq!(done2.len(), 1);
        assert_eq!(disp.totals(), (2, 2));
        assert!(disp.is_idle());
    }

    #[test]
    fn completion_rates_follow_the_coschedule() {
        // Two jobs of the same type slow each other down by 2x.
        let truth = AnalyticModel::new(
            1,
            2,
            |counts: &[u32], _ty| {
                if counts[0] > 1 {
                    0.5
                } else {
                    1.0
                }
            },
        );
        let mut disp = Dispatcher::new(1, 2, Box::new(PolicyPlacer::fcfs()));
        disp.admit(job(0, 0, 1.0, 0.0));
        disp.admit(job(1, 0, 1.0, 0.0));
        disp.fill(&truth, 0.0);
        let dt = disp.time_to_next_completion(&truth).unwrap();
        assert!((dt - 2.0).abs() < 1e-12, "contended pair runs at 0.5");
        // Both complete at the same instant; order is by id.
        let done = disp.advance(&truth, dt, dt);
        assert_eq!(done.iter().map(|c| c.id).collect::<Vec<_>>(), vec![0, 1]);
    }
}
