//! Graceful degradation: a model-health circuit breaker over the placer.
//!
//! The digital twin's [`RefitRecord::fit_q90`](crate::RefitRecord) is a
//! live health signal: when the 0.9 residual quantile blows past a
//! threshold, the model is mispricing placements badly enough that a
//! symbiosis-aware placer can do *worse* than symbiosis-blind FCFS. The
//! [`CircuitBreaker`] watches the signal with hysteresis — trip at
//! [`BreakerConfig::trip_q90`], re-close only once the quantile falls
//! back to [`BreakerConfig::recover_q90`] — and [`DegradingPlacer`]
//! routes every placement through the breaker: primary placer while
//! closed, FCFS fallback while open. The twin keeps refitting throughout,
//! so a recovering model automatically wins its traffic back.
//!
//! Everything here is deterministic given the refit history, so breaker
//! trips and recoveries are pinned by ordinary seeded tests.

use std::sync::{Arc, Mutex};

use queueing::{JobId, JobPool};
use symbiosis::RateModel;

use crate::placer::{Placer, PolicyPlacer};

/// Hysteresis thresholds over the twin's `fit_q90` health signal.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Open the breaker (fall back to FCFS) when `fit_q90` reaches this.
    pub trip_q90: f64,
    /// Close the breaker again only once `fit_q90` falls to this or
    /// below. Must be at or below [`trip_q90`](Self::trip_q90) for
    /// meaningful hysteresis.
    pub recover_q90: f64,
}

/// One breaker transition, for the experiment printout.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerEvent {
    /// Refit generation whose health signal caused the transition.
    pub generation: u64,
    /// `true` when the breaker opened (fell back), `false` on recovery.
    pub opened: bool,
    /// The observed `fit_q90`.
    pub q90: f64,
}

/// Accounting of one run's breaker activity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BreakerReport {
    /// Times the breaker opened.
    pub trips: usize,
    /// Times it closed again.
    pub recoveries: usize,
    /// Placement calls served by the FCFS fallback while open.
    pub fallback_calls: usize,
    /// Every transition, in observation order.
    pub events: Vec<BreakerEvent>,
}

/// The hysteresis state machine. Feed it each refit's health signal via
/// [`CircuitBreaker::observe`]; ask [`CircuitBreaker::is_open`] before
/// trusting the model.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    open: bool,
    report: BreakerReport,
}

impl CircuitBreaker {
    /// A closed breaker under `config`.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            open: false,
            report: BreakerReport::default(),
        }
    }

    /// Feeds one refit's health signal through the hysteresis.
    pub fn observe(&mut self, generation: u64, fit_q90: f64) {
        if !self.open && fit_q90 >= self.config.trip_q90 {
            self.open = true;
            self.report.trips += 1;
            self.report.events.push(BreakerEvent {
                generation,
                opened: true,
                q90: fit_q90,
            });
            obs::event!(
                Debug,
                "serve.breaker_open",
                "breaker opened at generation {generation}: fit_q90 {fit_q90:.4} >= {:.4}",
                self.config.trip_q90
            );
        } else if self.open && fit_q90 <= self.config.recover_q90 {
            self.open = false;
            self.report.recoveries += 1;
            self.report.events.push(BreakerEvent {
                generation,
                opened: false,
                q90: fit_q90,
            });
            obs::event!(
                Debug,
                "serve.breaker_close",
                "breaker recovered at generation {generation}: fit_q90 {fit_q90:.4} <= {:.4}",
                self.config.recover_q90
            );
        }
    }

    /// Whether placements should currently bypass the model.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// The activity accounting so far.
    pub fn report(&self) -> &BreakerReport {
        &self.report
    }

    fn count_fallback(&mut self) {
        self.report.fallback_calls += 1;
    }
}

/// A placer that degrades gracefully: primary placer while the breaker
/// is closed, symbiosis-blind FCFS while it is open.
///
/// The breaker lives behind `Arc<Mutex<..>>` so the run loop can feed it
/// health observations (and read the final report) while the dispatcher
/// owns the placer.
pub struct DegradingPlacer {
    primary: Box<dyn Placer>,
    fallback: PolicyPlacer,
    breaker: Arc<Mutex<CircuitBreaker>>,
}

impl DegradingPlacer {
    /// Wraps `primary` with an FCFS fallback under a fresh breaker.
    pub fn new(primary: Box<dyn Placer>, config: BreakerConfig) -> Self {
        DegradingPlacer {
            primary,
            fallback: PolicyPlacer::fcfs(),
            breaker: Arc::new(Mutex::new(CircuitBreaker::new(config))),
        }
    }

    /// A shared handle onto the breaker, valid after the placer moves
    /// into the dispatcher.
    pub fn breaker(&self) -> Arc<Mutex<CircuitBreaker>> {
        Arc::clone(&self.breaker)
    }
}

impl Placer for DegradingPlacer {
    fn name(&self) -> &'static str {
        "DEGRADING"
    }

    fn place(
        &mut self,
        queued: &mut JobPool,
        running: &[u32],
        free: usize,
        model: &dyn RateModel,
    ) -> Vec<JobId> {
        let mut breaker = self
            .breaker
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if breaker.is_open() {
            breaker.count_fallback();
            drop(breaker);
            self.fallback.place(queued, running, free, model)
        } else {
            drop(breaker);
            self.primary.place(queued, running, free, model)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig {
            trip_q90: 0.30,
            recover_q90: 0.10,
        }
    }

    #[test]
    fn trips_at_the_threshold_and_recovers_with_hysteresis() {
        let mut breaker = CircuitBreaker::new(config());
        assert!(!breaker.is_open());
        breaker.observe(1, 0.05);
        assert!(!breaker.is_open(), "healthy signal keeps it closed");
        breaker.observe(2, 0.30);
        assert!(breaker.is_open(), "trip threshold is inclusive");
        // Between the thresholds: the hysteresis band holds it open.
        breaker.observe(3, 0.20);
        assert!(breaker.is_open());
        breaker.observe(4, 0.10);
        assert!(!breaker.is_open(), "recovery threshold is inclusive");
        let report = breaker.report();
        assert_eq!(report.trips, 1);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.events.len(), 2);
        assert_eq!(
            (report.events[0].generation, report.events[0].opened),
            (2, true)
        );
        assert_eq!(
            (report.events[1].generation, report.events[1].opened),
            (4, false)
        );
    }

    #[test]
    fn repeated_bad_signals_do_not_double_count_a_trip() {
        let mut breaker = CircuitBreaker::new(config());
        breaker.observe(1, 0.9);
        breaker.observe(2, 0.9);
        breaker.observe(3, 0.9);
        assert!(breaker.is_open());
        assert_eq!(breaker.report().trips, 1);
        assert!(breaker.report().events.len() == 1);
    }
}
