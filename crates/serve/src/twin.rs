//! The digital-twin model loop: bounded-staleness refits off the hot path.
//!
//! The dispatcher prices placements through a [`PredictedModel`] behind an
//! `RwLock`; completed-coschedule measurements accumulate in a pending
//! batch and every `batch` samples trigger a [`PredictedModel::refit`] —
//! inline, or on a background worker thread so the placement path never
//! waits on a least-squares solve. The batch size *is* the staleness
//! bound: the live model lags ground truth by fewer than `batch`
//! measurements.
//!
//! After each refit the twin turns its worst residuals into **active
//! probe requests** — neighbour multisets of the training samples the
//! model fits worst (selected via
//! [`PredictedModel::residual_quantiles`]). The driver measures those
//! multisets against the real machine and records them like any other
//! sample, steering the training set toward the model's weakest regions
//! instead of waiting for traffic to wander there.
//!
//! Refits are deterministic (same batches, same order ⇒ same model), so
//! inline and background modes produce byte-identical histories; the
//! only difference is who runs the solver.

use predict::{PredictedModel, RateSample};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;
use symbiosis::RateModel;

/// A twin-loop failure surfaced at [`TwinLoop::shutdown`].
///
/// A refit-worker panic must not poison the whole service run: the
/// worker catches it, records it, and the service keeps placing on the
/// last good model until shutdown reports the failure as a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwinError {
    /// The background refit worker panicked (payload message attached);
    /// batches dispatched after the panic were never applied.
    WorkerPanicked(String),
}

impl std::fmt::Display for TwinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TwinError::WorkerPanicked(msg) => {
                write!(f, "twin refit worker panicked: {msg}")
            }
        }
    }
}

impl std::error::Error for TwinError {}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

/// One refit, as recorded in the twin's history.
#[derive(Debug, Clone, PartialEq)]
pub struct RefitRecord {
    /// 1-based refit generation.
    pub generation: u64,
    /// Training-set size after the refit.
    pub train_samples: usize,
    /// In-sample mean relative throughput error.
    pub fit_mean_abs_rel: f64,
    /// The 0.9 residual quantile — the active-sampling threshold.
    pub fit_q90: f64,
}

struct Progress {
    /// Refit batches applied so far (the generation counter).
    done: u64,
    /// Refit batches that failed (model kept its previous state).
    failed: u64,
    history: Vec<RefitRecord>,
    /// Probe multisets requested by active sampling, not yet collected.
    probes: Vec<Vec<u32>>,
    /// Set when the background worker died to a panic: the message.
    /// Waiters stop blocking on `done` once this is set.
    dead: Option<String>,
}

struct TwinShared {
    model: RwLock<PredictedModel>,
    progress: Mutex<Progress>,
    advanced: Condvar,
}

/// The live model and its refit pipeline. See the module docs.
pub struct TwinLoop {
    shared: Arc<TwinShared>,
    batch: usize,
    probes_per_refit: usize,
    pending: Vec<RateSample>,
    /// Batches dispatched (inline-applied or sent to the worker).
    sent: u64,
    tx: Option<mpsc::Sender<Vec<RateSample>>>,
    worker: Option<JoinHandle<()>>,
}

impl TwinLoop {
    /// An inline twin: refits run on the caller's thread at every
    /// `batch`-th recorded sample. `probes_per_refit` bounds how many
    /// active probe requests each refit may emit.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn new(model: PredictedModel, batch: usize, probes_per_refit: usize) -> Self {
        assert!(batch > 0, "staleness batch must be at least 1");
        TwinLoop {
            shared: Arc::new(TwinShared {
                model: RwLock::new(model),
                progress: Mutex::new(Progress {
                    done: 0,
                    failed: 0,
                    history: Vec::new(),
                    probes: Vec::new(),
                    dead: None,
                }),
                advanced: Condvar::new(),
            }),
            batch,
            probes_per_refit,
            pending: Vec::new(),
            sent: 0,
            tx: None,
            worker: None,
        }
    }

    /// A background twin: same semantics as [`TwinLoop::new`], but refits
    /// run on a dedicated worker thread and [`TwinLoop::record`] never
    /// blocks on the solver.
    pub fn background(model: PredictedModel, batch: usize, probes_per_refit: usize) -> Self {
        Self::background_with_fault(model, batch, probes_per_refit, None)
    }

    /// [`TwinLoop::background`] with deterministic fault injection: the
    /// worker panics while processing the zero-indexed
    /// `panic_at_batch`-th dispatched batch. The panic is caught on the
    /// worker, recorded, and surfaced as [`TwinError::WorkerPanicked`]
    /// from [`TwinLoop::shutdown`]; until then the service keeps placing
    /// on the last successfully fitted model. This is the chaos hook —
    /// pass `None` for production behaviour (a *real* panic in the
    /// fitter takes the same recovery path).
    pub fn background_with_fault(
        model: PredictedModel,
        batch: usize,
        probes_per_refit: usize,
        panic_at_batch: Option<u64>,
    ) -> Self {
        let mut twin = Self::new(model, batch, probes_per_refit);
        let (tx, rx) = mpsc::channel::<Vec<RateSample>>();
        let shared = twin.shared.clone();
        let probes = twin.probes_per_refit;
        let ctx = obs::current();
        twin.worker = Some(
            std::thread::Builder::new()
                .name("twin-refit".into())
                .spawn(move || {
                    let _obs = obs::install_current(&ctx);
                    let mut batches: u64 = 0;
                    while let Ok(batch) = rx.recv() {
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                if Some(batches) == panic_at_batch {
                                    panic!("injected twin fault at batch {batches}");
                                }
                                Self::apply(&shared, batch, probes);
                            }));
                        batches += 1;
                        if let Err(payload) = outcome {
                            // Record the death and stop consuming; the
                            // dropped receiver turns later dispatches
                            // into no-ops instead of a pile-up.
                            let mut progress = shared
                                .progress
                                .lock()
                                .unwrap_or_else(|poisoned| poisoned.into_inner());
                            progress.dead = Some(panic_message(payload.as_ref()));
                            shared.advanced.notify_all();
                            return;
                        }
                    }
                })
                .expect("spawn twin worker"),
        );
        twin.tx = Some(tx);
        twin
    }

    /// True when refits run on the background worker.
    pub fn is_background(&self) -> bool {
        self.worker.is_some()
    }

    /// Read access to the live model, for pricing placements. Tolerates
    /// a poisoned lock: a worker that panicked mid-refit leaves the last
    /// consistent coefficients behind (refit replaces state only on
    /// success), and the service keeps pricing on them.
    pub fn read(&self) -> RwLockReadGuard<'_, PredictedModel> {
        self.shared
            .model
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Records one completed-coschedule measurement. Returns `true` when
    /// this sample filled the pending batch and a refit was dispatched
    /// (the caller may then collect [`TwinLoop::probe_requests`]).
    pub fn record(&mut self, sample: RateSample) -> bool {
        self.pending.push(sample);
        if self.pending.len() >= self.batch {
            self.flush();
            true
        } else {
            false
        }
    }

    /// Dispatches the pending batch (if any) regardless of size. A batch
    /// aimed at a dead worker is discarded (and not counted as sent), so
    /// a panicked twin degrades to a frozen model rather than an error
    /// on the placement path.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        match &self.tx {
            Some(tx) => {
                if tx.send(batch).is_ok() {
                    self.sent += 1;
                }
            }
            None => {
                Self::apply(&self.shared, batch, self.probes_per_refit);
                self.sent += 1;
            }
        }
    }

    /// Blocks until every dispatched batch has been applied — or the
    /// worker died, in which case waiting any longer would hang forever.
    /// A no-op for inline twins.
    pub fn sync(&self) {
        let mut progress = self
            .shared
            .progress
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while progress.done < self.sent && progress.dead.is_none() {
            progress = self
                .shared
                .advanced
                .wait(progress)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Refit generations applied so far (syncs first).
    pub fn generation(&self) -> u64 {
        self.sync();
        self.progress().done
    }

    /// Drains the active-sampling probe requests produced by refits so
    /// far (syncs first). The driver measures these multisets and records
    /// the results like ordinary samples.
    pub fn probe_requests(&mut self) -> Vec<Vec<u32>> {
        self.sync();
        std::mem::take(&mut self.progress().probes)
    }

    /// Snapshot of the refit history (syncs first).
    pub fn history(&self) -> Vec<RefitRecord> {
        self.sync();
        self.progress().history.clone()
    }

    fn progress(&self) -> std::sync::MutexGuard<'_, Progress> {
        self.shared
            .progress
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Flushes the remaining partial batch, waits for the worker to
    /// drain, and returns the final model plus the full refit history.
    ///
    /// # Errors
    ///
    /// [`TwinError::WorkerPanicked`] when the background worker died to a
    /// panic at any point in the run. The error is a value — the caller's
    /// thread is never re-panicked — and carries the panic message.
    pub fn shutdown(mut self) -> Result<(PredictedModel, Vec<RefitRecord>), TwinError> {
        self.flush();
        if let Some(tx) = self.tx.take() {
            drop(tx);
        }
        if let Some(worker) = self.worker.take() {
            // The worker catches its own panics; join still guards
            // against aborts in the unwind machinery itself.
            let _ = worker.join();
        }
        self.sync();
        let shared = Arc::into_inner(self.shared).expect("model handles outlive the twin");
        let model = shared
            .model
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let progress = shared
            .progress
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(message) = progress.dead {
            return Err(TwinError::WorkerPanicked(message));
        }
        Ok((model, progress.history))
    }

    /// Applies one batch: refit, record history, derive active probes.
    /// Shared by the inline path and the worker thread.
    fn apply(shared: &TwinShared, batch: Vec<RateSample>, probes_per_refit: usize) {
        let ctx = obs::current();
        let refit_started = std::time::Instant::now();
        let mut record = None;
        let mut probes = Vec::new();
        let ok = {
            let mut model = shared
                .model
                .write()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            match model.refit(&batch) {
                Ok(()) => {
                    let q90 = model.residual_quantiles(&[0.9])[0];
                    record = Some((model.samples().len(), model.fit_error().mean_abs_rel, q90));
                    probes = Self::active_probes(&model, q90, probes_per_refit);
                    true
                }
                // A failed fit keeps the previous predictor; the service
                // must keep running on the stale model.
                Err(_) => false,
            }
        };
        if let Some(rec) = &ctx {
            rec.histogram("twin.refit_us")
                .record(refit_started.elapsed().as_micros() as f64);
            rec.counter(if ok { "twin.refits" } else { "twin.refit_failures" })
                .add(1);
        }
        let mut progress = shared
            .progress
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        progress.done += 1;
        let generation = progress.done;
        if let Some((train_samples, fit_mean_abs_rel, fit_q90)) = record {
            progress.history.push(RefitRecord {
                generation,
                train_samples,
                fit_mean_abs_rel,
                fit_q90,
            });
            progress.probes.extend(probes);
        }
        if !ok {
            progress.failed += 1;
        }
        shared.advanced.notify_all();
    }

    /// Derives probe requests from the worst residuals: for each training
    /// sample at or above the `q90` error threshold (worst first), emit a
    /// neighbour multiset — one job rotated to the next type — so the
    /// next measurements land *near* the model's weakest regions rather
    /// than exactly on already-measured points.
    fn active_probes(model: &PredictedModel, q90: f64, limit: usize) -> Vec<Vec<u32>> {
        if limit == 0 {
            return Vec::new();
        }
        let mut worst: Vec<(f64, &[u32])> = model
            .residuals()
            .iter()
            .filter(|r| r.rel_throughput >= q90)
            .map(|r| (r.rel_throughput, r.counts.as_slice()))
            .collect();
        worst.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(b.1)));
        let mut probes: Vec<Vec<u32>> = Vec::new();
        for (_, counts) in worst {
            if probes.len() >= limit {
                break;
            }
            if let Some(probe) = Self::neighbour(counts, model.contexts()) {
                if !probes.contains(&probe) {
                    probes.push(probe);
                }
            }
        }
        probes
    }

    /// A deterministic neighbour of `counts`: move one job from the
    /// most-populous type to the next type (cyclically); for a single
    /// type, grow by one job if the machine has room, else shrink.
    fn neighbour(counts: &[u32], contexts: usize) -> Option<Vec<u32>> {
        let n = counts.len();
        let size: u32 = counts.iter().sum();
        if n == 1 {
            return if (size as usize) < contexts {
                Some(vec![size + 1])
            } else if size > 1 {
                Some(vec![size - 1])
            } else {
                None
            };
        }
        let donor = (0..n).max_by_key(|&ty| counts[ty]).unwrap();
        let mut probe = counts.to_vec();
        probe[donor] -= 1;
        probe[(donor + 1) % n] += 1;
        if probe == counts {
            return None;
        }
        Some(probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predict::InterferenceFitter;
    use queueing::sched::feasible_multisets;
    use symbiosis::{AnalyticModel, RateModel};

    fn truth() -> AnalyticModel<impl Fn(&[u32], usize) -> f64> {
        AnalyticModel::new(2, 3, |counts: &[u32], _ty| {
            let distinct = counts.iter().filter(|&&c| c > 0).count() as f64;
            let n: u32 = counts.iter().sum();
            0.9 * (1.0 + 0.2 * (distinct - 1.0)) / n as f64
        })
    }

    fn sample(truth: &dyn RateModel, counts: &[u32]) -> RateSample {
        RateSample {
            counts: counts.to_vec(),
            rates: (0..counts.len())
                .map(|ty| truth.total_rate(counts, ty))
                .collect(),
        }
    }

    fn samples_of_sizes(
        truth: &dyn RateModel,
        sizes: std::ops::RangeInclusive<u32>,
    ) -> Vec<RateSample> {
        let full = vec![truth.contexts() as u32; truth.num_types()];
        sizes
            .flat_map(|s| feasible_multisets(&full, s))
            .map(|c| sample(truth, &c))
            .collect()
    }

    fn seed_model(truth: &dyn RateModel) -> PredictedModel {
        PredictedModel::fit(
            truth.num_types(),
            truth.contexts(),
            samples_of_sizes(truth, 1..=2),
            Box::new(InterferenceFitter),
        )
        .unwrap()
    }

    #[test]
    fn refits_fire_at_the_staleness_bound() {
        let truth = truth();
        let mut twin = TwinLoop::new(seed_model(&truth), 3, 0);
        assert!(!twin.record(sample(&truth, &[3, 0])));
        assert!(!twin.record(sample(&truth, &[0, 3])));
        assert_eq!(twin.generation(), 0);
        assert!(twin.record(sample(&truth, &[2, 1])));
        assert_eq!(twin.generation(), 1);
        let history = twin.history();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].generation, 1);
        assert!(history[0].fit_q90 >= 0.0);
        let (model, history) = twin.shutdown().expect("clean shutdown");
        assert_eq!(history.len(), 1);
        assert_eq!(model.samples().len(), 5 + 3); // sizes 1..=2 plus batch
    }

    #[test]
    fn background_twin_matches_inline_history() {
        let truth = truth();
        let feed = samples_of_sizes(&truth, 3..=3);
        let run = |mut twin: TwinLoop| {
            for s in feed.clone() {
                twin.record(s);
            }
            twin.shutdown().expect("clean shutdown")
        };
        let (inline_model, inline_hist) = run(TwinLoop::new(seed_model(&truth), 2, 2));
        let (bg_model, bg_hist) = run(TwinLoop::background(seed_model(&truth), 2, 2));
        assert_eq!(inline_hist, bg_hist);
        assert!(!inline_hist.is_empty());
        assert_eq!(inline_model.samples(), bg_model.samples());
        assert_eq!(inline_model.coefficients(), bg_model.coefficients());
    }

    #[test]
    fn probe_requests_target_the_worst_regions() {
        let truth = truth();
        let mut twin = TwinLoop::new(seed_model(&truth), 2, 4);
        twin.record(sample(&truth, &[3, 0]));
        assert!(twin.record(sample(&truth, &[2, 1])));
        let probes = twin.probe_requests();
        assert!(!probes.is_empty());
        assert!(probes.len() <= 4);
        for probe in &probes {
            let size: u32 = probe.iter().sum();
            assert!((1..=3).contains(&size), "invalid probe {probe:?}");
            // Probes are fresh points near the training set, and the
            // request queue drains once collected.
        }
        assert!(twin.probe_requests().is_empty());
    }

    #[test]
    fn neighbour_moves_one_job_between_types() {
        assert_eq!(TwinLoop::neighbour(&[2, 1], 4), Some(vec![1, 2]));
        assert_eq!(TwinLoop::neighbour(&[0, 2], 4), Some(vec![1, 1]));
        assert_eq!(TwinLoop::neighbour(&[2], 4), Some(vec![3]));
        assert_eq!(TwinLoop::neighbour(&[4], 4), Some(vec![3]));
        assert_eq!(TwinLoop::neighbour(&[1], 1), None);
    }

    #[test]
    fn failed_refits_keep_the_model_serving() {
        let truth = truth();
        let mut twin = TwinLoop::new(seed_model(&truth), 1, 0);
        let before = twin.read().coefficients();
        // An all-identical degenerate batch cannot break the model: even
        // if the fitter rejects it, the previous predictor survives.
        twin.record(sample(&truth, &[1, 0]));
        let after = twin.read().coefficients();
        assert_eq!(before.len(), after.len());
        let (_, history) = twin.shutdown().expect("clean shutdown");
        assert!(history.len() <= 1);
    }

    #[test]
    fn a_panicking_worker_surfaces_an_error_instead_of_poisoning_the_run() {
        let truth = truth();
        let mut twin = TwinLoop::background_with_fault(seed_model(&truth), 1, 0, Some(0));
        let coeffs_before = twin.read().coefficients();
        // Dispatching the first batch kills the worker.
        assert!(twin.record(sample(&truth, &[2, 1])));
        // None of these may hang or re-panic on the caller's thread...
        twin.sync();
        assert_eq!(twin.generation(), 0);
        assert!(twin.history().is_empty());
        // ...the last good model keeps serving reads...
        assert_eq!(twin.read().coefficients(), coeffs_before);
        // ...later dispatches are shed instead of piling up...
        assert!(twin.record(sample(&truth, &[1, 2])));
        // ...and shutdown reports the panic as a value, message included.
        match twin.shutdown() {
            Err(err) => assert_eq!(
                err,
                TwinError::WorkerPanicked("injected twin fault at batch 0".into())
            ),
            Ok(_) => panic!("the injected panic must surface"),
        }
    }
}
