//! An online scheduling service with a live digital-twin model loop.
//!
//! The rest of the workspace analyses symbiotic scheduling *offline*: a
//! rate table in, a throughput or latency figure out. This crate turns
//! those pieces into a long-running **service**: jobs stream in from many
//! producers, a placer prices candidate coschedules through the current
//! [`predict::PredictedModel`], and completed coschedules feed
//! measurements back into the model — the adaptive loop of a real-time
//! digital twin.
//!
//! # Architecture
//!
//! ```text
//!  producers (threads)
//!   │ submit / try_submit            (backpressure: bounded buffer)
//!   ▼
//!  ┌───────────────┐ drain  ┌──────────────────────────────┐
//!  │  serve::Queue │ ─────▶ │          Dispatcher          │
//!  │ bounded MPSC  │        │  JobPool ──[Placer]──▶ run   │
//!  └───────────────┘        │   (FCFS / MAXIT / BEAM)      │
//!                           └──────┬────────────▲──────────┘
//!                    completions / │            │ placement pricing
//!                    measurements  │            │ (RwLock read)
//!                                  ▼            │
//!                           ┌──────────────────────────────┐
//!                           │           TwinLoop           │
//!                           │ pending batch ─▶ refit()     │
//!                           │ (inline or worker thread)    │
//!                           │ residuals ─▶ active probes ──┼──▶ measure
//!                           └──────────────────────────────┘     truth
//! ```
//!
//! * [`Queue`] — a bounded MPSC front end over `Mutex`/`Condvar`:
//!   producers block (or shed) when a burst outruns the dispatcher.
//! * [`Placer`] — fills *free* contexts non-preemptively:
//!   [`PolicyPlacer`] reuses the Section VI schedulers via
//!   [`OccupiedModel`] re-pricing, [`BeamPlacer`] adds a bounded
//!   beam search over partial placements.
//! * [`TwinLoop`] — bounded-staleness [`predict::PredictedModel::refit`]
//!   off the hot path, plus residual-driven active sampling
//!   ([`predict::PredictedModel::residual_quantiles`]). A panicking
//!   refit worker is caught and surfaced as [`TwinError`] at shutdown
//!   instead of poisoning the run.
//! * [`CircuitBreaker`] / [`DegradingPlacer`] — graceful degradation:
//!   the twin's `fit_q90` health signal trips a hysteresis breaker that
//!   routes placements to symbiosis-blind FCFS while the model is
//!   mispricing, and hands traffic back once refits recover.
//! * [`sim`] — closes the loop against ground truth (a measured
//!   `PerfTable` view or any partial-capable
//!   [`symbiosis::RateModel`]) under a seeded virtual clock, so whole
//!   service runs are deterministic and testable.
//!
//! # Example
//!
//! ```
//! use serve::{run_serve, BeamPlacer, ServeConfig};
//! use predict::{InterferenceFitter, PredictedModel, RateSample};
//! use symbiosis::{AnalyticModel, RateModel};
//!
//! // Ground truth: heterogeneity relieves contention.
//! let truth = AnalyticModel::new(2, 2, |counts: &[u32], _ty| {
//!     let distinct = counts.iter().filter(|&&c| c > 0).count() as f64;
//!     let load: u32 = counts.iter().sum();
//!     (0.6 + 0.3 * (distinct - 1.0)) / load as f64
//! });
//! // Seed the twin with a handful of small measurements.
//! let samples: Vec<RateSample> = [[1u32, 0], [0, 1], [1, 1], [2, 0], [0, 2]]
//!     .iter()
//!     .map(|counts| RateSample {
//!         counts: counts.to_vec(),
//!         rates: (0..2).map(|b| truth.total_rate(counts, b)).collect(),
//!     })
//!     .collect();
//! let model = PredictedModel::fit(2, 2, samples, Box::new(InterferenceFitter)).unwrap();
//! let report = run_serve(
//!     &truth,
//!     model,
//!     Box::new(BeamPlacer::new(4)),
//!     &ServeConfig { jobs: 50, ..ServeConfig::default() },
//! )
//! .unwrap();
//! assert_eq!(report.completed + report.rejected, 50);
//! ```

pub mod breaker;
pub mod dispatch;
pub mod placer;
pub mod queue;
pub mod sim;
pub mod twin;

pub use breaker::{BreakerConfig, BreakerEvent, BreakerReport, CircuitBreaker, DegradingPlacer};
pub use dispatch::{Completion, Dispatcher, Placement};
pub use placer::{BeamPlacer, OccupiedModel, Placer, PolicyPlacer};
pub use queue::{Producer, Queue, QueueStats, SubmitError};
pub use sim::{run_serve, ErrorPoint, ServeConfig, ServeError, ServeReport};
pub use twin::{RefitRecord, TwinError, TwinLoop};
