//! Pluggable placement policies for the dispatcher.
//!
//! A [`Placer`] answers one question: given the jobs waiting in the pool,
//! the multiset already running, and a number of free hardware contexts,
//! which queued jobs should start now? Unlike the Section VI latency
//! schedulers — which re-select the whole coschedule at every event — a
//! placer is *non-preemptive*: running jobs keep their contexts, and only
//! the free ones are filled.
//!
//! The existing schedulers are reused unchanged through
//! [`OccupiedModel`], which re-prices a candidate multiset as if the
//! running jobs were part of it; a bounded beam search
//! ([`BeamPlacer`]) adds a placer the offline analyses do not have.

use queueing::{JobId, JobPool, Scheduler};
use session::Policy;
use symbiosis::RateModel;

/// A placement policy: picks queued jobs for the free contexts.
pub trait Placer {
    /// Registry-style name printed in reports (uppercase, like the paper's
    /// scheduler labels).
    fn name(&self) -> &'static str;

    /// Selects up to `free` job ids from `queued` to start next, given
    /// that the multiset `running` already occupies contexts. `model` is
    /// the rate source used for pricing (typically the live predicted
    /// model, not ground truth).
    fn place(
        &mut self,
        queued: &mut JobPool,
        running: &[u32],
        free: usize,
        model: &dyn RateModel,
    ) -> Vec<JobId>;
}

/// Re-prices candidate multisets in the presence of already-running jobs:
/// a candidate `c` is rated as if the machine ran `c + running`, and the
/// advertised context count shrinks to the free contexts.
///
/// This is the adapter that lets the preemptive Section VI schedulers act
/// as non-preemptive placers: from their point of view they schedule a
/// smaller machine whose interference already includes the running jobs.
pub struct OccupiedModel<'a> {
    base: &'a dyn RateModel,
    running: &'a [u32],
    occupancy: u32,
}

impl<'a> OccupiedModel<'a> {
    /// Wraps `base` with `running` jobs pinned on the machine.
    ///
    /// # Panics
    ///
    /// Panics if `running` does not match the model's type count, exceeds
    /// its contexts, or `base` cannot price partial multisets.
    pub fn new(base: &'a dyn RateModel, running: &'a [u32]) -> Self {
        assert_eq!(running.len(), base.num_types(), "running counts length");
        assert!(
            base.supports_partial(),
            "occupied pricing needs partial-multiset rates"
        );
        let occupancy: u32 = running.iter().sum();
        assert!(
            occupancy as usize <= base.contexts(),
            "running jobs exceed machine contexts"
        );
        OccupiedModel {
            base,
            running,
            occupancy,
        }
    }

    fn combined(&self, counts: &[u32]) -> Vec<u32> {
        counts
            .iter()
            .zip(self.running)
            .map(|(&c, &r)| c + r)
            .collect()
    }
}

impl RateModel for OccupiedModel<'_> {
    fn num_types(&self) -> usize {
        self.base.num_types()
    }

    fn contexts(&self) -> usize {
        self.base.contexts() - self.occupancy as usize
    }

    fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64 {
        self.base.per_job_rate(&self.combined(counts), ty)
    }
}

/// Adapts a Section VI latency scheduler (from the [`Policy`] registry)
/// into a non-preemptive placer via [`OccupiedModel`].
pub struct PolicyPlacer {
    inner: Box<dyn Scheduler>,
}

impl PolicyPlacer {
    /// FCFS placement: oldest queued jobs first, symbiosis-blind.
    pub fn fcfs() -> Self {
        Self::from_policy(Policy::Fcfs).expect("FCFS is a latency policy")
    }

    /// Greedy symbiosis: fill the free contexts with the feasible multiset
    /// adding the most instantaneous throughput (MAXIT re-priced for the
    /// occupied machine).
    pub fn greedy() -> Self {
        Self::from_policy(Policy::MaxIt).expect("MAXIT is a latency policy")
    }

    /// Wraps any latency policy from the registry; `None` for the
    /// throughput-analysis policies, which have no online scheduler.
    pub fn from_policy(policy: Policy) -> Option<Self> {
        policy
            .latency_scheduler(&[])
            .map(|inner| PolicyPlacer { inner })
    }
}

impl Placer for PolicyPlacer {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn place(
        &mut self,
        queued: &mut JobPool,
        running: &[u32],
        free: usize,
        model: &dyn RateModel,
    ) -> Vec<JobId> {
        if free == 0 || queued.is_empty() {
            return Vec::new();
        }
        let occupied = OccupiedModel::new(model, running);
        self.inner.select(queued, free, &occupied)
    }
}

/// Bounded beam search over partial placements.
///
/// Grows candidate multisets one job at a time, keeping only the `width`
/// best-scoring partial placements per level; the score of a candidate is
/// the *whole machine's* predicted instantaneous throughput (running +
/// candidate). This explores placements the greedy marginal objective
/// misses — a low-marginal first pick can enable a high-throughput pair —
/// at cost `O(width * free * num_types)` instead of the exhaustive
/// multiset enumeration MAXIT pays.
///
/// Ties break lexicographically on the count vector, so placement is
/// deterministic. Jobs are drawn oldest-first within each type.
pub struct BeamPlacer {
    width: usize,
}

impl BeamPlacer {
    /// A beam keeping the `width` best partial placements per level.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "beam width must be at least 1");
        BeamPlacer { width }
    }

    fn score(model: &dyn RateModel, running: &[u32], candidate: &[u32]) -> f64 {
        let combined: Vec<u32> = running
            .iter()
            .zip(candidate)
            .map(|(&r, &c)| r + c)
            .collect();
        model.instantaneous_throughput(&combined)
    }
}

impl Placer for BeamPlacer {
    fn name(&self) -> &'static str {
        "BEAM"
    }

    fn place(
        &mut self,
        queued: &mut JobPool,
        running: &[u32],
        free: usize,
        model: &dyn RateModel,
    ) -> Vec<JobId> {
        let want = queued.len().min(free);
        if want == 0 {
            return Vec::new();
        }
        let avail = queued.counts().to_vec();
        let n = avail.len();
        let mut beam: Vec<Vec<u32>> = vec![vec![0; n]];
        for _ in 0..want {
            let mut grown: Vec<Vec<u32>> = Vec::new();
            for counts in &beam {
                for ty in 0..n {
                    if counts[ty] < avail[ty] {
                        let mut next = counts.clone();
                        next[ty] += 1;
                        grown.push(next);
                    }
                }
            }
            grown.sort_unstable();
            grown.dedup();
            // Keep the `width` highest-scoring candidates, ties broken by
            // the (already sorted) lexicographic order.
            let mut scored: Vec<(f64, Vec<u32>)> = grown
                .into_iter()
                .map(|c| (Self::score(model, running, &c), c))
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0));
            scored.truncate(self.width);
            beam = scored.into_iter().map(|(_, c)| c).collect();
        }
        let best = &beam[0];
        let mut ids = Vec::with_capacity(want);
        for (ty, &c) in best.iter().enumerate() {
            ids.extend(queued.oldest_of_type(ty, c as usize));
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use queueing::Job;
    use symbiosis::AnalyticModel;

    /// Heterogeneity-loving machine: distinct types relieve contention.
    fn relief_model(n: usize, k: usize) -> AnalyticModel<impl Fn(&[u32], usize) -> f64> {
        AnalyticModel::new(n, k, |counts: &[u32], _ty| {
            let distinct = counts.iter().filter(|&&c| c > 0).count() as f64;
            let load: u32 = counts.iter().sum();
            (1.0 + 0.5 * (distinct - 1.0)) / (1.0 + 0.3 * (load as f64 - 1.0))
        })
    }

    fn pool_with(jobs: &[(usize, f64)]) -> JobPool {
        let num_types = jobs.iter().map(|&(ty, _)| ty).max().unwrap_or(0) + 1;
        let mut pool = JobPool::new(num_types);
        for (i, &(ty, remaining)) in jobs.iter().enumerate() {
            pool.insert(Job {
                id: i as JobId,
                ty,
                remaining,
                arrival: i as f64,
            });
        }
        pool
    }

    #[test]
    fn occupied_model_shifts_pricing_by_the_running_multiset() {
        let base = relief_model(2, 4);
        let running = [1, 0];
        let occ = OccupiedModel::new(&base, &running);
        assert_eq!(occ.contexts(), 3);
        assert_eq!(occ.num_types(), 2);
        // Pricing [0, 1] through the occupied model equals pricing the
        // combined [1, 1] through the base model.
        let got = occ.per_job_rate(&[0, 1], 1);
        let want = base.per_job_rate(&[1, 1], 1);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn fcfs_placer_takes_oldest_regardless_of_rates() {
        let base = relief_model(2, 4);
        let mut pool = pool_with(&[(0, 1.0), (0, 1.0), (1, 1.0)]);
        let mut placer = PolicyPlacer::fcfs();
        let ids = placer.place(&mut pool, &[0, 0], 2, &base);
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(placer.name(), "FCFS");
    }

    #[test]
    fn greedy_placer_prefers_symbiotic_mixes() {
        let base = relief_model(2, 4);
        let mut pool = pool_with(&[(0, 1.0), (0, 1.0), (1, 1.0)]);
        let mut placer = PolicyPlacer::greedy();
        let mut ids = placer.place(&mut pool, &[0, 0], 2, &base);
        ids.sort_unstable();
        // Relief makes {0, 1} faster than {0, 0}: the mix wins.
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn beam_placer_matches_exhaustive_search_at_full_width() {
        let base = relief_model(3, 4);
        for running in [[0u32, 0, 0], [1, 0, 0], [0, 2, 0]] {
            let mut pool = pool_with(&[(0, 1.0), (1, 1.0), (1, 1.0), (2, 1.0)]);
            let free = 4 - running.iter().sum::<u32>() as usize;
            let mut beam = BeamPlacer::new(64); // wide enough to be exact
            let beam_ids = beam.place(&mut pool, &running, free, &base);
            let counts_of = |ids: &[JobId], pool: &JobPool| {
                let mut c = vec![0u32; 3];
                for &id in ids {
                    c[pool.get(id).unwrap().ty] += 1;
                }
                c
            };
            let beam_counts = counts_of(&beam_ids, &pool);
            // Exhaustive best over all multisets of the same size.
            let best = queueing::sched::feasible_multisets(pool.counts(), beam_ids.len() as u32)
                .into_iter()
                .max_by(|a, b| {
                    BeamPlacer::score(&base, &running, a)
                        .total_cmp(&BeamPlacer::score(&base, &running, b))
                })
                .unwrap();
            assert_eq!(
                BeamPlacer::score(&base, &running, &beam_counts),
                BeamPlacer::score(&base, &running, &best),
                "running {running:?}"
            );
        }
    }

    #[test]
    fn beam_placer_is_deterministic_and_bounded() {
        let base = relief_model(3, 4);
        let mut placer = BeamPlacer::new(2);
        let run = |placer: &mut BeamPlacer| {
            let mut pool = pool_with(&[(0, 1.0), (0, 2.0), (1, 1.0), (2, 1.0), (2, 2.0)]);
            placer.place(&mut pool, &[0, 1, 0], 3, &base)
        };
        let a = run(&mut placer);
        let b = run(&mut placer);
        assert_eq!(a, b);
        assert!(a.len() <= 3);
    }

    #[test]
    fn placers_respect_empty_pools_and_zero_free_contexts() {
        let base = relief_model(2, 4);
        let mut empty = JobPool::new(2);
        for placer in [
            &mut PolicyPlacer::fcfs() as &mut dyn Placer,
            &mut PolicyPlacer::greedy(),
            &mut BeamPlacer::new(4),
        ] {
            assert!(placer.place(&mut empty, &[0, 0], 4, &base).is_empty());
            let mut pool = pool_with(&[(0, 1.0)]);
            assert!(placer.place(&mut pool, &[2, 2], 0, &base).is_empty());
        }
    }

    #[test]
    fn throughput_policies_have_no_placer() {
        assert!(PolicyPlacer::from_policy(Policy::Optimal).is_none());
        assert!(PolicyPlacer::from_policy(Policy::Srpt).is_some());
    }
}
