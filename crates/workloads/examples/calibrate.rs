//! Prints solo IPCs of the 12 profiles on both machine configurations.
use simproc::{Machine, MachineConfig};
use workloads::spec2006;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = spec2006();
    for (label, cfg) in [
        ("SMT4 ", MachineConfig::smt4()),
        ("QUAD ", MachineConfig::quadcore()),
    ] {
        let machine = Machine::new(cfg)?;
        println!("== {label} ==");
        for p in &suite {
            let t0 = std::time::Instant::now();
            let r = machine.simulate_solo(p)?;
            println!(
                "{:12} ipc={:.3} l1hit={:.3} l2hit={:.3} l3hit={:.3} busq={:.1} ({:?})",
                p.name,
                r.ipc[0],
                r.l1d.hit_rate(),
                r.l2.hit_rate(),
                r.l3.hit_rate(),
                r.bus.mean_queue_delay(),
                t0.elapsed()
            );
        }
    }
    Ok(())
}
