//! Quad-core Figure-1-style shape check.
use simproc::{Machine, MachineConfig};
use symbiosis::{analyze_variability, enumerate_workloads, metrics, FcfsParams};
use workloads::{spec2006, PerfTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::new(MachineConfig::quadcore())?;
    let table = PerfTable::build(&machine, &spec2006(), 20)?;
    let (mut pj, mut it, mut av, mut g, mut l) = (vec![], vec![], vec![], vec![], vec![]);
    for w in enumerate_workloads(12, 4) {
        let rates = table.workload_rates(&w)?;
        let v = analyze_variability(
            &rates,
            FcfsParams {
                jobs: 20_000,
                ..Default::default()
            },
        )?;
        pj.push(v.per_job_variability());
        it.push(v.instantaneous.variability());
        av.push(v.average_variability());
        g.push(v.optimal_gain());
        l.push(v.worst_loss());
    }
    let m = |v: &Vec<f64>| 100.0 * metrics::mean(v.iter().copied()).unwrap();
    println!(
        "QUAD per-job var avg {:.1}%  inst var avg {:.1}%  avg-TP var avg {:.1}%",
        m(&pj),
        m(&it),
        m(&av)
    );
    println!(
        "QUAD optimal gain avg {:.1}%  worst loss avg {:.1}%",
        m(&g),
        m(&l)
    );
    Ok(())
}
