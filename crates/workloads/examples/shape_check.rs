//! End-to-end shape check: build the full SMT perf table, compute Figure 1
//! style statistics over all 495 workloads of 4 types.
use simproc::{Machine, MachineConfig};
use symbiosis::{analyze_variability, enumerate_workloads, metrics, FcfsParams};
use workloads::{spec2006, PerfTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t0 = std::time::Instant::now();
    let machine = Machine::new(MachineConfig::smt4())?;
    let suite = spec2006();
    let threads = std::thread::available_parallelism()?.get();
    let table = PerfTable::build(&machine, &suite, threads)?;
    eprintln!(
        "table built in {:?} ({} coschedules)",
        t0.elapsed(),
        table.len()
    );

    let workloads = enumerate_workloads(12, 4);
    let mut per_job_var = Vec::new();
    let mut inst_var = Vec::new();
    let mut avg_var = Vec::new();
    let mut gains = Vec::new();
    let mut losses = Vec::new();
    let t1 = std::time::Instant::now();
    for w in &workloads {
        let rates = table.workload_rates(w)?;
        let v = analyze_variability(
            &rates,
            FcfsParams {
                jobs: 20_000,
                ..FcfsParams::default()
            },
        )?;
        per_job_var.push(v.per_job_variability());
        inst_var.push(v.instantaneous.variability());
        avg_var.push(v.average_variability());
        gains.push(v.optimal_gain());
        losses.push(v.worst_loss());
    }
    eprintln!("analysis in {:?}", t1.elapsed());
    let m = |v: &Vec<f64>| metrics::mean(v.iter().copied()).unwrap();
    let mx = |v: &Vec<f64>| v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mn = |v: &Vec<f64>| v.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "per-job IPC variability : avg {:5.1}%  max {:5.1}%",
        100.0 * m(&per_job_var),
        100.0 * mx(&per_job_var)
    );
    println!(
        "instantaneous TP var    : avg {:5.1}%  max {:5.1}%",
        100.0 * m(&inst_var),
        100.0 * mx(&inst_var)
    );
    println!(
        "average TP variability  : avg {:5.1}%  max {:5.1}%",
        100.0 * m(&avg_var),
        100.0 * mx(&avg_var)
    );
    println!(
        "optimal gain vs FCFS    : avg {:5.1}%  max {:5.1}%",
        100.0 * m(&gains),
        100.0 * mx(&gains)
    );
    println!(
        "worst loss vs FCFS      : avg {:5.1}%  min {:5.1}%",
        100.0 * m(&losses),
        100.0 * mn(&losses)
    );
    Ok(())
}
