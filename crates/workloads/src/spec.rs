//! The 12 benchmark profiles standing in for Table I of the paper.
//!
//! The paper selects 12 SPEC CPU2006 benchmarks that "approximately
//! uniformly cover the space of low- to high-interference benchmarks".
//! SPEC binaries and reference inputs cannot be redistributed, so each
//! benchmark is replaced by a statistical profile whose parameters are set
//! from its published qualitative behaviour (instruction mix, branch
//! behaviour, working-set size, memory intensity):
//!
//! | Profile      | Character                                              |
//! |--------------|--------------------------------------------------------|
//! | `bzip2`      | integer compression; moderate IPC, mid-size working set |
//! | `calculix`   | FP solver; high IPC, compute bound                       |
//! | `gcc_cp_decl`| compiler; large code footprint, branchy                  |
//! | `gcc_g23`    | compiler, bigger input; adds L3 pressure                 |
//! | `h264ref`    | video encode; high IPC, predictable, small working set   |
//! | `hmmer`      | sequence search; very high IPC, tiny working set         |
//! | `libquantum` | streaming; saturates memory bandwidth                    |
//! | `mcf`        | pointer chasing; memory-latency bound, huge footprint    |
//! | `perlbench`  | interpreter; branchy, large code                         |
//! | `sjeng`      | chess; mispredict heavy, moderate IPC                    |
//! | `tonto`      | FP chemistry; long-latency ops, moderate memory          |
//! | `xalancbmk`  | XML transform; cache hungry, large working set           |
//!
//! What the study needs from this set — job types that differ in solo IPC
//! and span low→high interference — is preserved; program semantics are
//! irrelevant to the scheduling analysis.

use simproc::profile::BenchmarkProfile;

/// Builds one of the 12 Table I profiles by name.
///
/// Accepted names are those returned by [`spec_names`].
pub fn spec_profile(name: &str) -> Option<BenchmarkProfile> {
    #[allow(clippy::too_many_arguments)]
    fn mk(
        name: &str,
        seed: u64,
        load: f64,
        store: f64,
        branch: f64,
        long: f64,
        mispredict: f64,
        dep: f64,
        stack: (u64, f64),
        hot: u64,
        footprint: u64,
        hot_frac: f64,
        streaming: f64,
        frontend: f64,
    ) -> BenchmarkProfile {
        BenchmarkProfile {
            name: name.to_owned(),
            load_frac: load,
            store_frac: store,
            branch_frac: branch,
            long_op_frac: long,
            mispredict_rate: mispredict,
            dep_frac: dep,
            stack_lines: stack.0,
            stack_frac: stack.1,
            hot_lines: hot,
            footprint_lines: footprint,
            hot_frac,
            streaming_frac: streaming,
            frontend_stall_rate: frontend,
            seed,
        }
    }
    let p = match name {
        //                  seed    load  store branch long  mis    dep   (stack)      hot     footpr   hotf  strm  fe
        "bzip2" => mk(
            "bzip2",
            0xB001,
            0.26,
            0.12,
            0.14,
            0.01,
            0.060,
            0.35,
            (56, 0.72),
            1_500,
            60_000,
            0.85,
            0.05,
            0.005,
        ),
        "calculix" => mk(
            "calculix",
            0xB002,
            0.30,
            0.08,
            0.05,
            0.20,
            0.005,
            0.25,
            (64, 0.82),
            350,
            8_000,
            0.95,
            0.02,
            0.002,
        ),
        "gcc_cp_decl" => mk(
            "gcc_cp_decl",
            0xB003,
            0.26,
            0.14,
            0.16,
            0.01,
            0.055,
            0.35,
            (56, 0.60),
            2_000,
            80_000,
            0.80,
            0.04,
            0.035,
        ),
        "gcc_g23" => mk(
            "gcc_g23",
            0xB004,
            0.27,
            0.14,
            0.15,
            0.01,
            0.050,
            0.37,
            (56, 0.55),
            4_000,
            150_000,
            0.70,
            0.05,
            0.030,
        ),
        "h264ref" => mk(
            "h264ref",
            0xB005,
            0.28,
            0.10,
            0.08,
            0.06,
            0.010,
            0.22,
            (64, 0.80),
            400,
            12_000,
            0.92,
            0.03,
            0.005,
        ),
        "hmmer" => mk(
            "hmmer",
            0xB006,
            0.30,
            0.12,
            0.08,
            0.02,
            0.002,
            0.15,
            (64, 0.85),
            300,
            4_000,
            0.95,
            0.01,
            0.001,
        ),
        "libquantum" => mk(
            "libquantum",
            0xB007,
            0.30,
            0.14,
            0.12,
            0.02,
            0.010,
            0.20,
            (32, 0.80),
            64,
            500_000,
            0.90,
            0.55,
            0.001,
        ),
        "mcf" => mk(
            "mcf",
            0xB008,
            0.35,
            0.09,
            0.12,
            0.01,
            0.060,
            0.50,
            (48, 0.45),
            2_000,
            600_000,
            0.35,
            0.02,
            0.005,
        ),
        "perlbench" => mk(
            "perlbench",
            0xB009,
            0.26,
            0.12,
            0.16,
            0.01,
            0.050,
            0.33,
            (56, 0.70),
            1_200,
            40_000,
            0.88,
            0.02,
            0.030,
        ),
        "sjeng" => mk(
            "sjeng",
            0xB00A,
            0.22,
            0.08,
            0.17,
            0.01,
            0.080,
            0.35,
            (56, 0.75),
            800,
            30_000,
            0.90,
            0.01,
            0.010,
        ),
        "tonto" => mk(
            "tonto",
            0xB00B,
            0.28,
            0.12,
            0.07,
            0.22,
            0.010,
            0.32,
            (64, 0.75),
            500,
            30_000,
            0.90,
            0.03,
            0.010,
        ),
        "xalancbmk" => mk(
            "xalancbmk",
            0xB00C,
            0.30,
            0.10,
            0.15,
            0.01,
            0.040,
            0.40,
            (48, 0.50),
            5_000,
            250_000,
            0.60,
            0.04,
            0.020,
        ),
        _ => return None,
    };
    debug_assert!(p.validate().is_ok(), "profile {name} must validate");
    Some(p)
}

/// Names of the 12 profiles, in Table I order.
pub fn spec_names() -> [&'static str; 12] {
    [
        "bzip2",
        "calculix",
        "gcc_cp_decl",
        "gcc_g23",
        "h264ref",
        "hmmer",
        "libquantum",
        "mcf",
        "perlbench",
        "sjeng",
        "tonto",
        "xalancbmk",
    ]
}

/// All 12 Table I profiles, in [`spec_names`] order.
///
/// # Examples
///
/// ```
/// let suite = workloads::spec2006();
/// assert_eq!(suite.len(), 12);
/// assert_eq!(suite[7].name, "mcf");
/// ```
pub fn spec2006() -> Vec<BenchmarkProfile> {
    spec_names()
        .iter()
        .map(|n| spec_profile(n).expect("built-in name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for p in spec2006() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn names_are_unique_and_match() {
        let suite = spec2006();
        for (p, n) in suite.iter().zip(spec_names()) {
            assert_eq!(p.name, n);
        }
        let mut names: Vec<_> = suite.iter().map(|p| p.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<_> = spec2006().iter().map(|p| p.seed).collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), 12);
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(spec_profile("gobmk").is_none());
    }

    #[test]
    fn footprints_span_cache_capacities() {
        // The set must include both cache-resident and memory-spilling
        // working sets to cover the interference space.
        let suite = spec2006();
        let min = suite.iter().map(|p| p.footprint_lines).min().unwrap();
        let max = suite.iter().map(|p| p.footprint_lines).max().unwrap();
        assert!(min < 16_384, "some benchmark must fit in L2/L3");
        assert!(max > 131_072, "some benchmark must exceed the L3");
    }

    #[test]
    fn streaming_and_pointer_chasing_extremes_present() {
        let suite = spec2006();
        assert!(
            suite.iter().any(|p| p.streaming_frac > 0.5),
            "libquantum-like"
        );
        assert!(suite.iter().any(|p| p.dep_frac >= 0.5), "mcf-like");
    }
}
