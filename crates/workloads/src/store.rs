//! Persisting [`PerfTable`] sweeps: a versioned on-disk format and a
//! fingerprint-keyed [`TableStore`] cache.
//!
//! Building a performance table — simulating every coschedule of a suite on
//! a machine — dominates the cost of every experiment, yet the result is a
//! pure function of the machine configuration and the benchmark suite.
//! [`PerfTable::save`] / [`PerfTable::load`] give the table a bitwise-stable
//! serialisation, and [`TableStore`] keys saved tables by a fingerprint of
//! `(MachineConfig, suite)` so repeated studies skip re-simulation.
//!
//! # File format (`SPT1`)
//!
//! Little-endian throughout; `f64` values are stored as their IEEE-754 bit
//! patterns (`f64::to_bits`), so a load reproduces the build *bitwise*.
//! Tables never contain NaN or infinite IPCs; load rejects them.
//!
//! ```text
//! magic        8  bytes  b"SYMBPERF"
//! version      u32       currently 1
//! contexts     u32       hardware contexts the table was built for
//! benchmarks   u32       number of suite entries, then per benchmark:
//!   name_len   u32
//!   name       name_len bytes of UTF-8
//!   solo_ipc   u64       f64 bits of the solo reference IPC
//! combos       u64       number of recorded coschedules, then per combo
//!                        (sorted ascending by index vector):
//!   combo_len  u32       multiset size (1..=contexts)
//!   indices    combo_len * u32   sorted benchmark indices
//!   slot_ipcs  combo_len * u64   f64 bits of per-slot IPCs
//! checksum     u64       FNV-1a 64 over every preceding byte
//! ```
//!
//! Combos are written in sorted order so saving the same table twice
//! produces identical bytes (the in-memory `HashMap` iteration order never
//! leaks into the file).

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use simproc::{BenchmarkProfile, CacheGeometry, Machine, MachineConfig, Topology};

use crate::table::{PerfTable, TableError};

const MAGIC: &[u8; 8] = b"SYMBPERF";
const VERSION: u32 = 1;

/// FNV-1a 64-bit running hash — stable across platforms and releases
/// (unlike `std::hash`), used for both the file checksum and the store key.
#[derive(Clone, Copy)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

impl PerfTable {
    /// FNV-1a 64 fingerprint of this table's canonical serialisation
    /// ([`PerfTable::to_bytes`]) — a pure function of the table *contents*,
    /// independent of how the table was obtained (simulated, synthetic,
    /// loaded, or received over a wire).
    ///
    /// Two tables share a content fingerprint exactly when their canonical
    /// byte encodings are identical, which is what distributed sweeps key
    /// their table-shipping deduplication on: a coordinator sends the
    /// fingerprint, and workers whose [`TableStore`] already holds it skip
    /// the transfer.
    pub fn content_fingerprint(&self) -> u64 {
        let mut fnv = Fnv64::new();
        fnv.write(&self.to_bytes());
        fnv.finish()
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked reader over the loaded file; every take surfaces
/// truncation as [`TableError::Format`] instead of panicking.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], TableError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                TableError::Format(format!(
                    "file truncated reading {what} at offset {}",
                    self.pos
                ))
            })?;
        let piece = &self.buf[self.pos..end];
        self.pos = end;
        Ok(piece)
    }

    fn take_u32(&mut self, what: &str) -> Result<u32, TableError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn take_u64(&mut self, what: &str) -> Result<u64, TableError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn take_f64(&mut self, what: &str) -> Result<f64, TableError> {
        let v = f64::from_bits(self.take_u64(what)?);
        if !v.is_finite() {
            return Err(TableError::Format(format!("{what} is not finite ({v})")));
        }
        Ok(v)
    }
}

impl PerfTable {
    /// Serialises the table to the documented `SPT1` byte format.
    ///
    /// The output is deterministic: the same table always encodes to the
    /// same bytes, regardless of internal hash-map order.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_u32(&mut out, self.contexts as u32);
        put_u32(&mut out, self.names.len() as u32);
        for (name, &solo) in self.names.iter().zip(&self.solo_ipc) {
            put_u32(&mut out, name.len() as u32);
            out.extend_from_slice(name.as_bytes());
            put_u64(&mut out, solo.to_bits());
        }
        let mut combos: Vec<&Vec<usize>> = self.co_ipc.keys().collect();
        combos.sort();
        put_u64(&mut out, combos.len() as u64);
        for combo in combos {
            put_u32(&mut out, combo.len() as u32);
            for &idx in combo {
                put_u32(&mut out, idx as u32);
            }
            for &ipc in &self.co_ipc[combo] {
                put_u64(&mut out, ipc.to_bits());
            }
        }
        let mut fnv = Fnv64::new();
        fnv.write(&out);
        put_u64(&mut out, fnv.finish());
        out
    }

    /// Parses a table from bytes produced by [`PerfTable::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`TableError::Format`] on a bad magic, unsupported version, checksum
    /// mismatch, truncation, trailing garbage, or invalid contents
    /// (out-of-range indices, unsorted combos, non-finite IPCs).
    pub fn from_bytes(buf: &[u8]) -> Result<Self, TableError> {
        if buf.len() < MAGIC.len() + 4 + 8 {
            return Err(TableError::Format(format!(
                "file too short ({} bytes)",
                buf.len()
            )));
        }
        if &buf[..MAGIC.len()] != MAGIC {
            return Err(TableError::Format(
                "bad magic (not a PerfTable file)".into(),
            ));
        }
        let (payload, tail) = buf.split_at(buf.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        let mut fnv = Fnv64::new();
        fnv.write(payload);
        if fnv.finish() != stored {
            return Err(TableError::Format(
                "checksum mismatch (file corrupted)".into(),
            ));
        }
        let mut cur = Cursor {
            buf: payload,
            pos: MAGIC.len(),
        };
        let version = cur.take_u32("version")?;
        if version != VERSION {
            return Err(TableError::Format(format!(
                "unsupported version {version} (expected {VERSION})"
            )));
        }
        let contexts = cur.take_u32("contexts")? as usize;
        if contexts == 0 {
            return Err(TableError::Format("zero contexts".into()));
        }
        let n_bench = cur.take_u32("benchmark count")? as usize;
        if n_bench == 0 {
            return Err(TableError::Format("empty benchmark suite".into()));
        }
        let mut names = Vec::with_capacity(n_bench);
        let mut solo_ipc = Vec::with_capacity(n_bench);
        for b in 0..n_bench {
            let len = cur.take_u32("name length")? as usize;
            let raw = cur.take(len, "benchmark name")?;
            let name = std::str::from_utf8(raw)
                .map_err(|_| TableError::Format(format!("benchmark {b} name is not UTF-8")))?;
            names.push(name.to_owned());
            let solo = cur.take_f64("solo IPC")?;
            if solo <= 0.0 {
                return Err(TableError::Format(format!(
                    "benchmark {b} solo IPC {solo} must be positive"
                )));
            }
            solo_ipc.push(solo);
        }
        let n_combos = cur.take_u64("combo count")? as usize;
        let mut co_ipc = HashMap::with_capacity(n_combos);
        for c in 0..n_combos {
            let len = cur.take_u32("combo length")? as usize;
            if len == 0 || len > contexts {
                return Err(TableError::Format(format!(
                    "combo {c} has size {len} (contexts {contexts})"
                )));
            }
            let mut combo = Vec::with_capacity(len);
            for _ in 0..len {
                let idx = cur.take_u32("combo index")? as usize;
                if idx >= n_bench {
                    return Err(TableError::Format(format!(
                        "combo {c} references benchmark {idx} of {n_bench}"
                    )));
                }
                combo.push(idx);
            }
            if !combo.windows(2).all(|w| w[0] <= w[1]) {
                return Err(TableError::Format(format!("combo {c} is not sorted")));
            }
            let mut ipcs = Vec::with_capacity(len);
            for _ in 0..len {
                ipcs.push(cur.take_f64("slot IPC")?);
            }
            if co_ipc.insert(combo, ipcs).is_some() {
                return Err(TableError::Format(format!("combo {c} is a duplicate")));
            }
        }
        if cur.pos != payload.len() {
            return Err(TableError::Format(format!(
                "{} trailing bytes after the combo list",
                payload.len() - cur.pos
            )));
        }
        // The solo reference column must agree with the size-1 combos.
        for (b, &solo) in solo_ipc.iter().enumerate() {
            match co_ipc.get(&vec![b]) {
                Some(row) if row[0].to_bits() == solo.to_bits() => {}
                Some(row) => {
                    return Err(TableError::Format(format!(
                        "benchmark {b}: solo IPC {solo} disagrees with its size-1 combo {}",
                        row[0]
                    )))
                }
                None => {
                    return Err(TableError::Format(format!(
                        "benchmark {b} has no size-1 (solo) combo"
                    )))
                }
            }
        }
        Ok(PerfTable::assemble(names, solo_ipc, contexts, co_ipc))
    }

    /// Writes the table to `path` in the documented format.
    ///
    /// # Errors
    ///
    /// [`TableError::Io`] on filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TableError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_bytes())
            .map_err(|e| TableError::Io(format!("{}: {e}", path.display())))
    }

    /// Reads a table previously written by [`PerfTable::save`]. The loaded
    /// table is bitwise identical to the one saved.
    ///
    /// # Errors
    ///
    /// [`TableError::Io`] on filesystem failures, [`TableError::Format`] on
    /// corrupted or malformed contents.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TableError> {
        let path = path.as_ref();
        let buf =
            std::fs::read(path).map_err(|e| TableError::Io(format!("{}: {e}", path.display())))?;
        Self::from_bytes(&buf)
    }
}

fn hash_geometry(fnv: &mut Fnv64, g: &CacheGeometry) {
    fnv.write_u64(g.size_bytes);
    fnv.write_u64(g.ways as u64);
    fnv.write_u64(g.line_bytes as u64);
    fnv.write_u64(g.latency);
}

/// Stable fingerprint of everything a [`PerfTable::build`] depends on: the
/// complete machine configuration (topology, core, caches, memory, windows)
/// and every profile parameter of the suite, plus the file-format version.
pub fn table_fingerprint(config: &MachineConfig, suite: &[BenchmarkProfile]) -> u64 {
    let mut fnv = Fnv64::new();
    fnv.write_u64(VERSION as u64);
    match config.topology {
        Topology::SmtCore { threads } => {
            fnv.write_u64(1);
            fnv.write_u64(threads as u64);
        }
        Topology::Multicore { cores } => {
            fnv.write_u64(2);
            fnv.write_u64(cores as u64);
        }
    }
    let core = &config.core;
    fnv.write_u64(core.dispatch_width as u64);
    fnv.write_u64(core.commit_width as u64);
    fnv.write_u64(core.rob_size as u64);
    fnv.write_u64(core.fetch_policy as u64);
    fnv.write_u64(core.rob_partitioning as u64);
    fnv.write_u64(core.branch_redirect_penalty);
    fnv.write_u64(core.mshrs_per_thread as u64);
    fnv.write_u64(core.dynamic_reservation as u64);
    fnv.write_u64(core.long_op_latency);
    hash_geometry(&mut fnv, &config.l1d);
    hash_geometry(&mut fnv, &config.l2);
    hash_geometry(&mut fnv, &config.l3);
    fnv.write_u64(config.mem.latency);
    fnv.write_u64(config.mem.cycles_per_transfer);
    fnv.write_u64(config.warmup_cycles);
    fnv.write_u64(config.measure_cycles);
    fnv.write_u64(suite.len() as u64);
    for p in suite {
        fnv.write_str(&p.name);
        fnv.write_f64(p.load_frac);
        fnv.write_f64(p.store_frac);
        fnv.write_f64(p.branch_frac);
        fnv.write_f64(p.long_op_frac);
        fnv.write_f64(p.mispredict_rate);
        fnv.write_f64(p.dep_frac);
        fnv.write_u64(p.stack_lines);
        fnv.write_f64(p.stack_frac);
        fnv.write_u64(p.hot_lines);
        fnv.write_u64(p.footprint_lines);
        fnv.write_f64(p.hot_frac);
        fnv.write_f64(p.streaming_frac);
        fnv.write_f64(p.frontend_stall_rate);
        fnv.write_u64(p.seed);
    }
    fnv.finish()
}

/// What a [`TableStore::get_or_build`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreOutcome {
    /// The requested table.
    pub table: PerfTable,
    /// `true` if the table was loaded from the cache (no simulation ran);
    /// `false` if it was built and saved.
    pub cache_hit: bool,
}

/// A directory of cached [`PerfTable`]s keyed by
/// [`table_fingerprint`]`(MachineConfig, suite)`.
///
/// [`TableStore::get_or_build`] loads the table if a valid cache file
/// exists, otherwise simulates it with [`PerfTable::build`] and saves the
/// result for the next run. Stale or corrupted cache files are rebuilt and
/// overwritten, never trusted.
///
/// # Examples
///
/// ```no_run
/// use simproc::MachineConfig;
/// use workloads::{spec2006, TableStore};
///
/// # fn main() -> Result<(), workloads::TableError> {
/// let store = TableStore::new(".table-cache");
/// let suite = spec2006();
/// let cold = store.get_or_build(&MachineConfig::smt4(), &suite, 8)?;
/// assert!(!cold.cache_hit); // simulated and saved
/// let warm = store.get_or_build(&MachineConfig::smt4(), &suite, 8)?;
/// assert!(warm.cache_hit); // loaded, no simulation
/// assert_eq!(cold.table, warm.table);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TableStore {
    dir: PathBuf,
}

impl TableStore {
    /// Creates a store rooted at `dir`. The directory is created lazily on
    /// the first save.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TableStore { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cache file path for a machine + suite pair.
    pub fn path_for(&self, config: &MachineConfig, suite: &[BenchmarkProfile]) -> PathBuf {
        self.dir.join(format!(
            "perftable-{:016x}.spt",
            table_fingerprint(config, suite)
        ))
    }

    /// Returns the cached table for `(config, suite)`, or builds and caches
    /// it. The loaded table is bitwise identical to the one a fresh build
    /// would have produced on the machine that populated the cache.
    ///
    /// Cache files that fail to load or that disagree with the request
    /// (names or context count — a fingerprint collision) are rebuilt.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from the build and [`TableError::Io`]
    /// from the save; a corrupt cache file alone never fails the call.
    pub fn get_or_build(
        &self,
        config: &MachineConfig,
        suite: &[BenchmarkProfile],
        threads: usize,
    ) -> Result<StoreOutcome, TableError> {
        let path = self.path_for(config, suite);
        if let Ok(table) = PerfTable::load(&path) {
            let consistent = table.contexts() == config.contexts()
                && table.names().len() == suite.len()
                && table.names().iter().zip(suite).all(|(n, p)| *n == p.name);
            if consistent {
                return Ok(StoreOutcome {
                    table,
                    cache_hit: true,
                });
            }
        }
        let machine = Machine::new(config.clone())?;
        let table = PerfTable::build(&machine, suite, threads)?;
        self.write_atomic(&path, &table.to_bytes())?;
        Ok(StoreOutcome {
            table,
            cache_hit: false,
        })
    }

    /// Writes `bytes` to `path` atomically: the bytes land in a
    /// writer-unique temp file in the store directory and are renamed into
    /// place, so a concurrent reader (another worker process loading the
    /// same fingerprint) can never observe a torn or partial table. Racing
    /// writers are last-one-wins safe — every rename installs a complete
    /// file.
    ///
    /// # Errors
    ///
    /// [`TableError::Io`] on filesystem failures; a failed write removes
    /// its temp file best-effort.
    pub fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), TableError> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| TableError::Io(format!("{}: {e}", self.dir.display())))?;
        // The tmp name must be unique per writer (pid alone would let two
        // threads of one process interleave writes into one tmp file).
        static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        if let Err(e) = std::fs::write(&tmp, bytes) {
            let _ = std::fs::remove_file(&tmp);
            return Err(TableError::Io(format!("{}: {e}", tmp.display())));
        }
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            TableError::Io(format!("{}: {e}", path.display()))
        })
    }

    /// The cache file path for a table known only by its
    /// [`PerfTable::content_fingerprint`] (a table received over a wire,
    /// say). Content-keyed entries use a distinct `perftable-c...` prefix so
    /// they can never collide with the config-keyed [`TableStore::path_for`]
    /// namespace.
    pub fn path_for_content(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("perftable-c{fingerprint:016x}.spt"))
    }

    /// Loads the cached table with this content fingerprint, if a valid one
    /// exists. The loaded table's own fingerprint is re-verified, so a
    /// corrupt, stale or mislabelled cache file reads as a miss — never as
    /// the wrong table.
    pub fn load_content(&self, fingerprint: u64) -> Option<PerfTable> {
        let table = PerfTable::load(self.path_for_content(fingerprint)).ok()?;
        (table.content_fingerprint() == fingerprint).then_some(table)
    }

    /// Saves a table under its content fingerprint (atomically, via
    /// [`TableStore::write_atomic`]) and returns the fingerprint.
    ///
    /// # Errors
    ///
    /// [`TableError::Io`] on filesystem failures.
    pub fn save_content(&self, table: &PerfTable) -> Result<u64, TableError> {
        let bytes = table.to_bytes();
        let mut fnv = Fnv64::new();
        fnv.write(&bytes);
        let fingerprint = fnv.finish();
        self.write_atomic(&self.path_for_content(fingerprint), &bytes)?;
        Ok(fingerprint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec2006;

    fn tiny_suite() -> Vec<BenchmarkProfile> {
        spec2006().into_iter().take(3).collect()
    }

    fn tiny_config() -> MachineConfig {
        MachineConfig::smt4().with_windows(1_000, 3_000)
    }

    fn tiny_table() -> PerfTable {
        let machine = Machine::new(tiny_config()).unwrap();
        PerfTable::build(&machine, &tiny_suite(), 4).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "symb-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_round_trip_is_bitwise_identical() {
        let table = tiny_table();
        let dir = temp_dir("roundtrip");
        let path = dir.join("t.spt");
        table.save(&path).unwrap();
        let loaded = PerfTable::load(&path).unwrap();
        // PartialEq on f64 is bit-for-bit here: no NaNs can occur (load
        // rejects non-finite values), so == means identical bit patterns.
        assert_eq!(table, loaded);
        for (combo, ipcs) in &table.co_ipc {
            let got = loaded.slot_ipcs(combo).unwrap();
            for (a, b) in ipcs.iter().zip(got) {
                assert_eq!(a.to_bits(), b.to_bits(), "combo {combo:?}");
            }
        }
        for b in 0..table.names().len() {
            assert_eq!(table.solo_ipc(b).to_bits(), loaded.solo_ipc(b).to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn encoding_is_deterministic() {
        let table = tiny_table();
        assert_eq!(table.to_bytes(), table.clone().to_bytes());
    }

    #[test]
    fn short_file_and_corruption_rejected() {
        let table = tiny_table();
        let bytes = table.to_bytes();

        // Truncations at every structural boundary fail cleanly.
        for cut in [0, 4, MAGIC.len() + 2, bytes.len() / 2, bytes.len() - 1] {
            let err = PerfTable::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, TableError::Format(_)),
                "cut at {cut}: {err:?}"
            );
        }

        // A flipped payload byte trips the checksum.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        let err = PerfTable::from_bytes(&corrupt).unwrap_err();
        assert!(
            matches!(err, TableError::Format(ref m) if m.contains("checksum")),
            "{err:?}"
        );

        // Wrong magic is reported as such.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        let err = PerfTable::from_bytes(&wrong).unwrap_err();
        assert!(
            matches!(err, TableError::Format(ref m) if m.contains("magic")),
            "{err:?}"
        );

        // Loading a missing path is an I/O error.
        assert!(matches!(
            PerfTable::load("/nonexistent/nope.spt"),
            Err(TableError::Io(_))
        ));
    }

    #[test]
    fn nan_ipc_rejected_on_load() {
        let table = tiny_table();
        let mut bytes = table.to_bytes();
        // Overwrite the last slot-IPC word (just before the checksum) with
        // NaN bits and re-stamp the checksum so only the NaN check trips.
        let ipc_at = bytes.len() - 16;
        bytes[ipc_at..ipc_at + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let mut fnv = Fnv64::new();
        fnv.write(&bytes[..bytes.len() - 8]);
        let sum = fnv.finish();
        let at = bytes.len() - 8;
        bytes[at..].copy_from_slice(&sum.to_le_bytes());
        let err = PerfTable::from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, TableError::Format(ref m) if m.contains("finite")),
            "{err:?}"
        );
    }

    #[test]
    fn store_cold_builds_then_warm_loads() {
        let dir = temp_dir("coldwarm");
        let store = TableStore::new(&dir);
        let cfg = tiny_config();
        let suite = tiny_suite();
        let cold = store.get_or_build(&cfg, &suite, 4).unwrap();
        assert!(!cold.cache_hit, "first run must simulate");
        assert!(store.path_for(&cfg, &suite).exists());
        let warm = store.get_or_build(&cfg, &suite, 4).unwrap();
        assert!(warm.cache_hit, "second run must skip PerfTable::build");
        assert_eq!(cold.table, warm.table, "cache must be bitwise faithful");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_distinguishes_configs_and_suites() {
        let suite = tiny_suite();
        let cfg = tiny_config();
        let fp = table_fingerprint(&cfg, &suite);
        // Different windows, topology or suite size change the key.
        assert_ne!(
            fp,
            table_fingerprint(&cfg.clone().with_windows(2_000, 3_000), &suite)
        );
        assert_ne!(
            fp,
            table_fingerprint(
                &MachineConfig::quadcore().with_windows(1_000, 3_000),
                &suite
            )
        );
        assert_ne!(fp, table_fingerprint(&cfg, &suite[..2]));
        // Same inputs, same key (stability within a process is the minimum;
        // FNV gives stability across runs and platforms too).
        assert_eq!(fp, table_fingerprint(&tiny_config(), &tiny_suite()));
    }

    #[test]
    fn content_fingerprint_round_trips_through_the_store() {
        let dir = temp_dir("content");
        let store = TableStore::new(&dir);
        let table = tiny_table();
        let fp = store.save_content(&table).unwrap();
        assert_eq!(fp, table.content_fingerprint());
        let loaded = store.load_content(fp).unwrap();
        assert_eq!(table, loaded, "content cache must be bitwise faithful");
        assert_eq!(loaded.content_fingerprint(), fp);
        // A different table never answers for this fingerprint.
        assert!(store.load_content(fp ^ 1).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mislabelled_content_file_reads_as_a_miss() {
        let dir = temp_dir("mislabel");
        let store = TableStore::new(&dir);
        let table = tiny_table();
        let fp = store.save_content(&table).unwrap();
        // A valid table file stored under the wrong fingerprint must not be
        // trusted: the re-verification catches the mismatch.
        let wrong = fp ^ 0xDEAD;
        std::fs::copy(store.path_for_content(fp), store.path_for_content(wrong)).unwrap();
        assert!(store.load_content(wrong).is_none());
        // Corruption likewise reads as a miss, not an error.
        std::fs::write(store.path_for_content(fp), b"torn").unwrap();
        assert!(store.load_content(fp).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_atomic_writers_never_produce_a_torn_read() {
        let dir = temp_dir("atomic");
        let store = TableStore::new(&dir);
        let table = tiny_table();
        let bytes = table.to_bytes();
        let path = store.path_for_content(table.content_fingerprint());
        // Hammer the same path from several writers while readers poll: a
        // reader may see "no file yet", but never a torn or partial table.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        store.write_atomic(&path, &bytes).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                scope.spawn(|| {
                    let mut seen = 0;
                    while seen < 50 {
                        match std::fs::read(&path) {
                            Ok(buf) => {
                                let loaded = PerfTable::from_bytes(&buf)
                                    .expect("a visible file is always complete");
                                assert_eq!(loaded, table);
                                seen += 1;
                            }
                            Err(_) => std::hint::spin_loop(),
                        }
                    }
                });
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_file_is_rebuilt() {
        let dir = temp_dir("rebuild");
        let store = TableStore::new(&dir);
        let cfg = tiny_config();
        let suite = tiny_suite();
        let cold = store.get_or_build(&cfg, &suite, 4).unwrap();
        let path = store.path_for(&cfg, &suite);
        std::fs::write(&path, b"garbage").unwrap();
        let rebuilt = store.get_or_build(&cfg, &suite, 4).unwrap();
        assert!(!rebuilt.cache_hit, "corrupt file must trigger a rebuild");
        assert_eq!(cold.table, rebuilt.table);
        // And the rebuild repaired the cache.
        let warm = store.get_or_build(&cfg, &suite, 4).unwrap();
        assert!(warm.cache_hit);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
