//! Coschedule performance tables: simulation results for every coschedule.
//!
//! The paper simulates all 1365 combinations (with repetition) of 4 jobs out
//! of 12 benchmarks on both machine configurations (Section V-A).
//! [`PerfTable::build`] performs that sweep (in parallel across OS threads),
//! records per-slot IPCs plus solo reference IPCs, and converts any selected
//! workload into the [`symbiosis::WorkloadRates`] table the scheduling
//! analyses consume (rates in weighted instructions per cycle: IPC divided
//! by solo IPC).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use simproc::{BenchmarkProfile, Machine, MachineError};
use symbiosis::{CoscheduleIter, CoscheduleRank, RateModel, SymbiosisError, WorkloadRates};

/// Errors from building, querying or persisting a [`PerfTable`].
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// The underlying simulation failed.
    Machine(MachineError),
    /// A workload references an unknown benchmark index.
    UnknownBenchmark(usize),
    /// A workload has the wrong shape (empty, unsorted, duplicates).
    InvalidWorkload(String),
    /// A sampled build was asked for with a malformed combo selection
    /// (unsorted, out of range, or missing the solo reference runs).
    InvalidSample(String),
    /// Rate-table conversion failed.
    Rates(SymbiosisError),
    /// Reading or writing a persisted table failed (the I/O error is
    /// carried as text so this enum stays `Clone + PartialEq`).
    Io(String),
    /// A persisted table file is malformed: wrong magic, unsupported
    /// version, checksum mismatch, truncation, or invalid contents.
    Format(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::Machine(e) => write!(f, "simulation failed: {e}"),
            TableError::UnknownBenchmark(i) => write!(f, "benchmark index {i} out of range"),
            TableError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            TableError::InvalidSample(msg) => write!(f, "invalid combo sample: {msg}"),
            TableError::Rates(e) => write!(f, "rate conversion failed: {e}"),
            TableError::Io(msg) => write!(f, "table file I/O failed: {msg}"),
            TableError::Format(msg) => write!(f, "malformed table file: {msg}"),
        }
    }
}

impl Error for TableError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TableError::Machine(e) => Some(e),
            TableError::Rates(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for TableError {
    fn from(e: MachineError) -> Self {
        TableError::Machine(e)
    }
}

impl From<SymbiosisError> for TableError {
    fn from(e: SymbiosisError) -> Self {
        TableError::Rates(e)
    }
}

/// The unit of work defining throughput (Section III-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WorkUnit {
    /// Weighted instructions: each type's rate is normalised by its solo
    /// IPC, so equal work means equal solo execution time. The paper's
    /// reported unit and this crate's default.
    #[default]
    Weighted,
    /// Plain instructions: rates are raw IPCs and equal work means equal
    /// instruction counts. The paper states its qualitative conclusions
    /// also hold under this unit; the `unit_ablation` experiment verifies
    /// that for this reproduction.
    Plain,
}

/// Per-slot IPCs of every coschedule of `K` jobs over a benchmark suite,
/// plus solo reference IPCs.
///
/// Keys are sorted benchmark-index vectors of length `K` (the machine's
/// context count); per-slot IPCs are aligned with that sorted expansion.
///
/// Internally the rows live twice: in a `HashMap` (the (de)serialisation
/// and equality boundary — [`PerfTable::to_bytes`] and
/// [`PerfTable::recorded_combos`] iterate it in sorted order) and in a
/// [`FlatIndex`] (the hot-path layout — every `slot_ipcs`/rate probe is
/// O(size) rank arithmetic into dense arrays, no hashing, no allocation).
#[derive(Debug, Clone)]
pub struct PerfTable {
    pub(crate) names: Vec<String>,
    pub(crate) solo_ipc: Vec<f64>,
    pub(crate) contexts: usize,
    pub(crate) co_ipc: HashMap<Vec<usize>, Vec<f64>>,
    pub(crate) flat: FlatIndex,
}

/// Equality is over the table *contents* (the serialised form); the flat
/// index is derived data and deliberately excluded — its packing order must
/// never influence whether two tables compare equal.
impl PartialEq for PerfTable {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
            && self.solo_ipc == other.solo_ipc
            && self.contexts == other.contexts
            && self.co_ipc == other.co_ipc
    }
}

/// Flat, rank-indexed storage for the hot-path probes of a [`PerfTable`].
///
/// The combo key space is the streamed enumeration of sizes `1..=contexts`
/// (the [`CoscheduleIter`] order, sizes concatenated ascending) — exactly
/// the index space [`PerfTable::build_sampled`] selections address. A
/// combo's global index is `offsets[size - 1] + rank-in-stratum`, where the
/// per-size rank comes from the [`CoscheduleRank`] perfect index, so a
/// probe is O(size) integer arithmetic with zero allocation and zero
/// hashing. `starts[global]` points into the packed `vals` array
/// (`u32::MAX` marks combos a sampled build did not record).
#[derive(Debug, Clone)]
pub(crate) struct FlatIndex {
    ranks: Vec<CoscheduleRank>,
    offsets: Vec<usize>,
    starts: Vec<u32>,
    vals: Vec<f64>,
}

impl FlatIndex {
    /// Builds the index over recorded rows. Rows are packed into `vals` in
    /// sorted-combo order (the [`PerfTable::recorded_combos`] order), so
    /// identical tables always produce identical flat layouts.
    fn build(n_benchmarks: usize, k: usize, co_ipc: &HashMap<Vec<usize>, Vec<f64>>) -> Self {
        let ranks: Vec<CoscheduleRank> = (1..=k)
            .map(|size| CoscheduleRank::new(n_benchmarks, size))
            .collect();
        let mut offsets = Vec::with_capacity(k);
        let mut total = 0usize;
        for rank in &ranks {
            offsets.push(total);
            total += rank.total();
        }
        let mut rows: Vec<(&Vec<usize>, &Vec<f64>)> = co_ipc.iter().collect();
        rows.sort_unstable_by_key(|&(combo, _)| combo);
        let mut starts = vec![u32::MAX; total];
        let mut vals = Vec::with_capacity(rows.iter().map(|&(c, _)| c.len()).sum());
        let mut index = FlatIndex {
            ranks,
            offsets,
            starts: Vec::new(),
            vals: Vec::new(),
        };
        for (combo, ipcs) in rows {
            let global = index
                .global_rank(combo)
                .expect("recorded combos are sorted, sized 1..=contexts, in range");
            starts[global] = u32::try_from(vals.len()).expect("flat table exceeds u32 offsets");
            vals.extend_from_slice(ipcs);
        }
        index.starts = starts;
        index.vals = vals;
        index
    }

    /// Global enumeration index of a sorted combo, or `None` if the combo
    /// is malformed (empty, oversized, unsorted, index out of range).
    fn global_rank(&self, combo: &[usize]) -> Option<usize> {
        let size = combo.len();
        if size == 0 || size > self.ranks.len() {
            return None;
        }
        let rank = self.ranks[size - 1].rank_sorted_slots(combo)?;
        Some(self.offsets[size - 1] + rank)
    }

    /// Per-slot IPCs for a sorted combo, if recorded.
    fn get(&self, combo: &[usize]) -> Option<&[f64]> {
        let global = self.global_rank(combo)?;
        let start = self.starts[global];
        if start == u32::MAX {
            return None;
        }
        let start = start as usize;
        Some(&self.vals[start..start + combo.len()])
    }

    /// Per-slot IPCs for the size-`size` combo whose benchmark multiplicity
    /// is given by `count_of(b)` — the zero-allocation probe behind the
    /// rate conversions, which hold per-type counts rather than expanded
    /// combos. `None` if unrecorded or the counts do not sum to `size`.
    fn get_counts<F: FnMut(usize) -> u32>(&self, size: usize, count_of: F) -> Option<&[f64]> {
        if size == 0 || size > self.ranks.len() {
            return None;
        }
        let rank = self.ranks[size - 1].rank_with(count_of)?;
        let start = self.starts[self.offsets[size - 1] + rank];
        if start == u32::MAX {
            return None;
        }
        let start = start as usize;
        Some(&self.vals[start..start + size])
    }
}

impl PerfTable {
    /// The one place a table is assembled: derives the flat hot-path index
    /// from the recorded rows. Every construction site — simulated,
    /// sampled, synthetic, and [`PerfTable::from_bytes`] — funnels through
    /// here so the `HashMap` and the [`FlatIndex`] can never disagree.
    pub(crate) fn assemble(
        names: Vec<String>,
        solo_ipc: Vec<f64>,
        contexts: usize,
        co_ipc: HashMap<Vec<usize>, Vec<f64>>,
    ) -> Self {
        let flat = FlatIndex::build(names.len(), contexts, &co_ipc);
        PerfTable {
            names,
            solo_ipc,
            contexts,
            co_ipc,
            flat,
        }
    }

    /// Simulates every coschedule of `machine.config().contexts()` jobs over
    /// `suite` (combinations with repetition) plus each benchmark solo.
    ///
    /// Work is distributed over up to `threads` OS threads (clamped to at
    /// least 1). The sweep is deterministic regardless of thread count.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MachineError`] encountered.
    pub fn build(
        machine: &Machine,
        suite: &[BenchmarkProfile],
        threads: usize,
    ) -> Result<Self, TableError> {
        let k = machine.config().contexts();
        let results = sweep_combos(suite.len(), k, threads, |combo| {
            let jobs: Vec<&BenchmarkProfile> = combo.iter().map(|&i| &suite[i]).collect();
            machine.simulate(&jobs).map(|res| res.ipc)
        })
        .map_err(TableError::from)?;
        let co_ipc: HashMap<Vec<usize>, Vec<f64>> = results.into_iter().collect();
        let solo_ipc: Vec<f64> = (0..suite.len()).map(|b| co_ipc[&vec![b]][0]).collect();
        Ok(PerfTable::assemble(
            suite.iter().map(|p| p.name.clone()).collect(),
            solo_ipc,
            k,
            co_ipc,
        ))
    }

    /// Like [`PerfTable::build`], but simulates only the combos selected by
    /// `sample` — sorted distinct indices into the streamed enumeration of
    /// sizes `1..=contexts` (the order [`symbiosis::CoscheduleIter`] yields,
    /// sizes concatenated ascending). This is the measurement half of the
    /// `predict` crate's sampled-table pipeline: a budgeted subset is
    /// simulated and an interference model stands in for the rest.
    ///
    /// The selection must contain every size-1 combo (indices
    /// `0..suite.len()`): solo runs are the WIPC reference every conversion
    /// divides by. A selection covering the whole enumeration degrades to
    /// exactly [`PerfTable::build`] — same work distribution, same
    /// arithmetic, bitwise-equal table.
    ///
    /// # Errors
    ///
    /// [`TableError::InvalidSample`] for an unsorted/out-of-range selection
    /// or one missing solo runs; otherwise as [`PerfTable::build`].
    pub fn build_sampled(
        machine: &Machine,
        suite: &[BenchmarkProfile],
        threads: usize,
        sample: &[usize],
    ) -> Result<Self, TableError> {
        let k = machine.config().contexts();
        check_sample(suite.len(), k, sample)?;
        let results = sweep_selected_combos(suite.len(), k, threads, Some(sample), |combo| {
            let jobs: Vec<&BenchmarkProfile> = combo.iter().map(|&i| &suite[i]).collect();
            machine.simulate(&jobs).map(|res| res.ipc)
        })
        .map_err(TableError::from)?;
        let co_ipc: HashMap<Vec<usize>, Vec<f64>> = results.into_iter().collect();
        let solo_ipc: Vec<f64> = (0..suite.len()).map(|b| co_ipc[&vec![b]][0]).collect();
        Ok(PerfTable::assemble(
            suite.iter().map(|p| p.name.clone()).collect(),
            solo_ipc,
            k,
            co_ipc,
        ))
    }

    /// Builds a table from an analytic per-slot IPC model instead of the
    /// simulator — the entry point for big-machine scaling scenarios
    /// (e.g. K = 8 contexts over 12 benchmarks is 125 969 combos, far past
    /// what exhaustive simulation can cover). `ipc_fn` receives each sorted
    /// benchmark-index combination (sizes 1..=`contexts`, streamed — never
    /// materialised as a list) and returns the per-slot IPCs.
    ///
    /// # Errors
    ///
    /// [`TableError::InvalidWorkload`] if `names` is empty or
    /// `contexts == 0`, [`TableError::Rates`] if `ipc_fn` returns a vector
    /// of the wrong length or a non-finite/non-positive IPC.
    pub fn synthetic<F>(names: Vec<String>, contexts: usize, ipc_fn: F) -> Result<Self, TableError>
    where
        F: Fn(&[usize]) -> Vec<f64> + Sync,
    {
        Self::synthetic_selected(names, contexts, None, ipc_fn)
    }

    /// Like [`PerfTable::synthetic`], but evaluates only the combos
    /// selected by `sample` (same index contract as
    /// [`PerfTable::build_sampled`]) — the analytic counterpart of the
    /// sampled simulation sweep, used to stand in for measurement budgets
    /// on machines whose full table is enumerable but expensive.
    ///
    /// # Errors
    ///
    /// [`TableError::InvalidSample`] for a malformed selection; otherwise
    /// as [`PerfTable::synthetic`].
    pub fn synthetic_sampled<F>(
        names: Vec<String>,
        contexts: usize,
        sample: &[usize],
        ipc_fn: F,
    ) -> Result<Self, TableError>
    where
        F: Fn(&[usize]) -> Vec<f64> + Sync,
    {
        Self::synthetic_selected(names, contexts, Some(sample), ipc_fn)
    }

    fn synthetic_selected<F>(
        names: Vec<String>,
        contexts: usize,
        sample: Option<&[usize]>,
        ipc_fn: F,
    ) -> Result<Self, TableError>
    where
        F: Fn(&[usize]) -> Vec<f64> + Sync,
    {
        if names.is_empty() {
            return Err(TableError::InvalidWorkload("no benchmarks".into()));
        }
        if contexts == 0 {
            return Err(TableError::InvalidWorkload("no contexts".into()));
        }
        if let Some(sample) = sample {
            check_sample(names.len(), contexts, sample)?;
        }
        // Same streamed sweep as the simulated build (one enumeration
        // contract, deterministic first-error reporting), just with the
        // analytic model as the "simulator".
        let results = sweep_selected_combos(names.len(), contexts, 1, sample, |combo| {
            let ipcs = ipc_fn(combo);
            if ipcs.len() != combo.len() {
                return Err(TableError::Rates(SymbiosisError::InvalidRates(format!(
                    "combo {combo:?}: expected {} slot IPCs, got {}",
                    combo.len(),
                    ipcs.len()
                ))));
            }
            if let Some(&bad) = ipcs.iter().find(|v| !v.is_finite() || **v <= 0.0) {
                return Err(TableError::Rates(SymbiosisError::InvalidRates(format!(
                    "combo {combo:?}: slot IPC {bad}"
                ))));
            }
            Ok(ipcs)
        })?;
        let co_ipc: HashMap<Vec<usize>, Vec<f64>> = results.into_iter().collect();
        let solo_ipc: Vec<f64> = (0..names.len()).map(|b| co_ipc[&vec![b]][0]).collect();
        Ok(PerfTable::assemble(names, solo_ipc, contexts, co_ipc))
    }

    /// Benchmark names, index-aligned with the suite used to build.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of hardware contexts the table was built for.
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Number of coschedules recorded.
    pub fn len(&self) -> usize {
        self.co_ipc.len()
    }

    /// True if no coschedules are recorded (cannot happen for valid builds).
    pub fn is_empty(&self) -> bool {
        self.co_ipc.is_empty()
    }

    /// Solo (reference) IPC of benchmark `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn solo_ipc(&self, b: usize) -> f64 {
        self.solo_ipc[b]
    }

    /// Per-slot IPCs for a sorted benchmark-index combination, if recorded.
    ///
    /// An O(size) rank-arithmetic probe into the flat layout — no hashing,
    /// no allocation. Malformed keys (unsorted, oversized, out of range)
    /// read as unrecorded.
    pub fn slot_ipcs(&self, combo: &[usize]) -> Option<&[f64]> {
        self.flat.get(combo)
    }

    /// Every recorded `(sorted combo, per-slot IPCs)` pair, sorted by combo
    /// (ascending index vectors). The deterministic iteration the `predict`
    /// crate's sample extraction and the persisted file format both rely on
    /// — the in-memory `HashMap` order never leaks out.
    pub fn recorded_combos(&self) -> Vec<(&[usize], &[f64])> {
        let mut rows: Vec<(&[usize], &[f64])> = self
            .co_ipc
            .iter()
            .map(|(combo, ipcs)| (combo.as_slice(), ipcs.as_slice()))
            .collect();
        rows.sort_unstable_by_key(|&(combo, _)| combo);
        rows
    }

    /// Converts a workload (sorted distinct benchmark indices) into the
    /// WIPC rate table used by the `symbiosis` analyses.
    ///
    /// # Errors
    ///
    /// * [`TableError::InvalidWorkload`] if `types` is empty, unsorted or
    ///   has duplicates.
    /// * [`TableError::UnknownBenchmark`] if an index is out of range.
    pub fn workload_rates(&self, types: &[usize]) -> Result<WorkloadRates, TableError> {
        self.workload_rates_with_unit(types, WorkUnit::Weighted)
    }

    /// Like [`PerfTable::workload_rates`], but with an explicit unit of
    /// work: weighted instructions (solo-normalised) or plain instructions
    /// (raw IPC).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PerfTable::workload_rates`].
    pub fn workload_rates_with_unit(
        &self,
        types: &[usize],
        unit: WorkUnit,
    ) -> Result<WorkloadRates, TableError> {
        if types.is_empty() {
            return Err(TableError::InvalidWorkload("no job types".into()));
        }
        if !types.windows(2).all(|w| w[0] < w[1]) {
            return Err(TableError::InvalidWorkload(
                "types must be sorted and distinct".into(),
            ));
        }
        for &t in types {
            if t >= self.names.len() {
                return Err(TableError::UnknownBenchmark(t));
            }
        }
        let n = types.len();
        let rates = WorkloadRates::build(n, self.contexts, |s| {
            // Probe the flat layout by count vector — the local counts map
            // to global benchmark multiplicities without materialising the
            // expanded combo (`types` is sorted, so the sorted global combo
            // is exactly the local runs in order).
            let counts = s.counts();
            let size = counts.iter().sum::<u32>() as usize;
            let ipcs = self
                .flat
                .get_counts(size, |b| {
                    types.binary_search(&b).map_or(0, |local| counts[local])
                })
                .unwrap_or_else(|| {
                    let combo: Vec<usize> = s.slots().iter().map(|&local| types[local]).collect();
                    panic!("coschedule {combo:?} missing from table")
                });
            // Sum per local type over its (contiguous) slot run, in the
            // requested unit — same slot order, same float arithmetic as
            // the historical expanded-combo walk.
            let mut out = vec![0.0; n];
            let mut slot = 0usize;
            for (local, &count) in counts.iter().enumerate() {
                let scale = match unit {
                    WorkUnit::Weighted => self.solo_ipc[types[local]],
                    WorkUnit::Plain => 1.0,
                };
                for _ in 0..count {
                    out[local] += ipcs[slot] / scale;
                    slot += 1;
                }
            }
            out
        })?;
        Ok(rates)
    }

    /// Raw WIPC of a recorded combination: sum over slots of
    /// `IPC / solo IPC` (the weighted-speedup-style instantaneous
    /// throughput of that coschedule).
    pub fn combo_wipc(&self, combo: &[usize]) -> Option<f64> {
        let ipcs = self.flat.get(combo)?;
        Some(
            combo
                .iter()
                .zip(ipcs)
                .map(|(&b, &ipc)| ipc / self.solo_ipc[b])
                .sum(),
        )
    }

    /// Creates a [`symbiosis::RateModel`] view of this table for one
    /// workload (sorted distinct benchmark indices), exposing partial
    /// coschedules to the latency simulator. Rates are in WIPC.
    ///
    /// # Errors
    ///
    /// Same validation as [`PerfTable::workload_rates`].
    pub fn workload_view(&self, types: &[usize]) -> Result<WorkloadView<'_>, TableError> {
        // Reuse the rate-table validation path.
        let _ = self.workload_rates(types)?;
        Ok(WorkloadView {
            table: self,
            types: types.to_vec(),
        })
    }
}

/// Rows produced by the streamed combo sweep: one `(sorted combo,
/// per-slot IPCs)` pair per multiset, in enumeration order.
type ComboRows = Vec<(Vec<usize>, Vec<f64>)>;

/// In-flight sweep rows, tagged with their enumeration index so the
/// shared accumulator can be re-sorted deterministically.
type IndexedComboRows = Vec<(usize, Vec<usize>, Vec<f64>)>;

/// Streams every sorted combo of sizes 1..=`k` over `n_benchmarks`
/// benchmarks (all multiset sizes: the latency experiments run through
/// partially loaded periods, and size-1 entries double as the solo
/// reference runs) through `sim` on up to `threads` OS threads.
///
/// Work distribution is self-balancing: workers claim the next combo index
/// from a shared atomic cursor and advance a thread-local
/// [`CoscheduleIter`] to it, so the combo list is never materialised and no
/// thread idles on an uneven pre-cut chunk. Results are returned sorted in
/// enumeration order — deterministic regardless of thread count.
///
/// # Errors
///
/// The *first* failure in enumeration order, as `(combo index, error)`.
/// Deterministic by construction: workers check a shared abort flag only
/// *between* simulations, so every combo claimed before the flag went up —
/// which includes every combo preceding the first failure — is still
/// simulated, and the smallest-indexed recorded error is reported.
fn sweep_combos<E, F>(n_benchmarks: usize, k: usize, threads: usize, sim: F) -> Result<ComboRows, E>
where
    E: Send,
    F: Fn(&[usize]) -> Result<Vec<f64>, E> + Sync,
{
    sweep_selected_combos(n_benchmarks, k, threads, None, sim)
}

/// Total combos in the streamed enumeration of sizes `1..=k` over
/// `n_benchmarks` benchmarks — the index space [`PerfTable::build_sampled`]
/// selections address.
fn full_enumeration_len(n_benchmarks: usize, k: usize) -> usize {
    (1..=k)
        .map(|size| CoscheduleIter::count_total(n_benchmarks, size))
        .sum()
}

/// Validates a sampled-build selection: sorted, distinct, in range, and
/// containing every solo run (indices `0..n_benchmarks`, which lead the
/// enumeration as the size-1 stratum).
fn check_sample(n_benchmarks: usize, k: usize, sample: &[usize]) -> Result<(), TableError> {
    let total = full_enumeration_len(n_benchmarks, k);
    if !sample.windows(2).all(|w| w[0] < w[1]) {
        return Err(TableError::InvalidSample(
            "selection must be sorted and distinct".into(),
        ));
    }
    if let Some(&last) = sample.last() {
        if last >= total {
            return Err(TableError::InvalidSample(format!(
                "index {last} out of range (enumeration has {total} combos)"
            )));
        }
    }
    if sample.len() < n_benchmarks
        || sample[..n_benchmarks] != (0..n_benchmarks).collect::<Vec<_>>()
    {
        return Err(TableError::InvalidSample(format!(
            "selection must include all {n_benchmarks} solo reference runs \
             (indices 0..{n_benchmarks})"
        )));
    }
    Ok(())
}

/// [`sweep_combos`] with an optional combo selection: with
/// `Some(indices)` (sorted positions in the full enumeration) only those
/// combos run through `sim`; with `None` the whole enumeration does. The
/// claiming, abort and first-error machinery is shared, so a selection
/// covering the full enumeration performs the identical computation in the
/// identical order — the bitwise-degradation guarantee
/// [`PerfTable::build_sampled`] documents.
fn sweep_selected_combos<E, F>(
    n_benchmarks: usize,
    k: usize,
    threads: usize,
    selection: Option<&[usize]>,
    sim: F,
) -> Result<ComboRows, E>
where
    E: Send,
    F: Fn(&[usize]) -> Result<Vec<f64>, E> + Sync,
{
    let total = match selection {
        Some(indices) => indices.len(),
        None => full_enumeration_len(n_benchmarks, k),
    };
    let threads = threads.max(1).min(total.max(1));

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let results: Mutex<IndexedComboRows> = Mutex::new(Vec::with_capacity(total));
    let first_error: Mutex<Option<(usize, E)>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut stream = (1..=k).flat_map(|size| CoscheduleIter::new(n_benchmarks, size));
                let mut cursor = 0usize;
                let mut local: IndexedComboRows = Vec::new();
                loop {
                    // Abort check between simulations only (never between
                    // claiming and simulating): see the determinism note.
                    if abort.load(Ordering::Acquire) {
                        break;
                    }
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= total {
                        break;
                    }
                    // A selection maps claimed slots to enumeration
                    // indices; the full sweep claims indices directly.
                    let index = match selection {
                        Some(indices) => indices[slot],
                        None => slot,
                    };
                    // Catch the thread-local stream up to the claimed index.
                    while cursor < index {
                        stream.next();
                        cursor += 1;
                    }
                    let combo = stream.next().expect("index < enumeration length").slots();
                    cursor += 1;
                    match sim(&combo) {
                        Ok(ipcs) => local.push((index, combo, ipcs)),
                        Err(e) => {
                            let mut first = first_error.lock().expect("poisoned");
                            if first.as_ref().is_none_or(|(i, _)| index < *i) {
                                *first = Some((index, e));
                            }
                            drop(first);
                            abort.store(true, Ordering::Release);
                            break;
                        }
                    }
                }
                results.lock().expect("poisoned").extend(local);
            });
        }
    });

    if let Some((_, e)) = first_error.into_inner().expect("poisoned") {
        return Err(e);
    }
    let mut rows = results.into_inner().expect("poisoned");
    rows.sort_unstable_by_key(|&(index, _, _)| index);
    Ok(rows
        .into_iter()
        .map(|(_, combo, ipcs)| (combo, ipcs))
        .collect())
}

/// A borrowed view of a [`PerfTable`] restricted to one workload — the
/// *measured* [`RateModel`] implementation (including partial coschedules)
/// consumed by the Section VI latency experiments and the `session` crate.
#[derive(Debug, Clone)]
pub struct WorkloadView<'a> {
    table: &'a PerfTable,
    types: Vec<usize>,
}

impl RateModel for WorkloadView<'_> {
    fn num_types(&self) -> usize {
        self.types.len()
    }

    fn contexts(&self) -> usize {
        self.table.contexts
    }

    fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64 {
        assert_eq!(counts.len(), self.types.len(), "counts length mismatch");
        assert!(counts[ty] > 0, "type {ty} not present in coschedule");
        // Zero-allocation probe: rank the combo directly from the count
        // vector instead of materialising the expanded key. This is the
        // latency simulator's innermost lookup.
        let size = counts.iter().sum::<u32>() as usize;
        let types = &self.types;
        let ipcs = self
            .table
            .flat
            .get_counts(size, |b| {
                types.binary_search(&b).map_or(0, |local| counts[local])
            })
            .unwrap_or_else(|| {
                let combo: Vec<usize> = counts
                    .iter()
                    .enumerate()
                    .flat_map(|(local, &c)| std::iter::repeat_n(types[local], c as usize))
                    .collect();
                panic!("coschedule {combo:?} missing from table")
            });
        let global = self.types[ty];
        // Mean WIPC over this type's slots (slots of the same type differ
        // only by their RNG stream). In the sorted expansion the type's
        // slots are the contiguous run after all smaller types' slots.
        let start = counts[..ty].iter().sum::<u32>() as usize;
        let mut sum = 0.0;
        for &ipc in &ipcs[start..start + counts[ty] as usize] {
            sum += ipc / self.table.solo_ipc[global];
        }
        sum / counts[ty] as f64
    }

    fn full_table(&self) -> Result<WorkloadRates, SymbiosisError> {
        // Delegate to the direct conversion: the default implementation
        // would recompute each total as count * (sum/count), which differs
        // from the slot sum by a ULP — enough to break the bit-identical
        // parity with the pre-`Session` path.
        self.table.workload_rates(&self.types).map_err(|e| match e {
            TableError::Rates(e) => e,
            other => SymbiosisError::InvalidRates(other.to_string()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec2006;
    use simproc::MachineConfig;
    use symbiosis::assert_rate_model_conformance;

    /// A tiny suite + short windows so tests stay fast.
    fn tiny_table() -> PerfTable {
        let machine = Machine::new(MachineConfig::smt4().with_windows(2_000, 6_000)).unwrap();
        let suite: Vec<BenchmarkProfile> = spec2006().into_iter().take(3).collect();
        PerfTable::build(&machine, &suite, 4).unwrap()
    }

    #[test]
    fn records_all_multisets() {
        let t = tiny_table();
        // Sizes 1..=4 over 3 benchmarks: 3 + 6 + 10 + 15 = 34 multisets.
        assert_eq!(t.len(), 34);
        assert_eq!(t.contexts(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn solo_ipcs_are_positive() {
        let t = tiny_table();
        for b in 0..3 {
            assert!(t.solo_ipc(b) > 0.0, "{}", t.names()[b]);
        }
    }

    #[test]
    fn slot_ipcs_keyed_by_sorted_combo() {
        let t = tiny_table();
        assert!(t.slot_ipcs(&[0, 0, 1, 2]).is_some());
        assert!(
            t.slot_ipcs(&[0, 1]).is_some(),
            "partial coschedules recorded"
        );
        assert!(t.slot_ipcs(&[0, 1, 1, 1, 2]).is_none(), "oversized key");
        assert!(t.slot_ipcs(&[2, 1, 0, 0]).is_none(), "unsorted key");
    }

    #[test]
    fn workload_rates_round_trip() {
        let t = tiny_table();
        let rates = t.workload_rates(&[0, 1, 2]).unwrap();
        assert_eq!(rates.num_types(), 3);
        assert_eq!(rates.contexts(), 4);
        // Homogeneous coschedule of type 0 maps to combo [0,0,0,0].
        let s = symbiosis::Coschedule::from_counts(vec![4, 0, 0]);
        let si = rates.index_of(&s).unwrap();
        let expected: f64 = t
            .slot_ipcs(&[0, 0, 0, 0])
            .unwrap()
            .iter()
            .map(|ipc| ipc / t.solo_ipc(0))
            .sum();
        assert!((rates.rate(si, 0) - expected).abs() < 1e-12);
    }

    #[test]
    fn invalid_workloads_rejected() {
        let t = tiny_table();
        assert!(matches!(
            t.workload_rates(&[]),
            Err(TableError::InvalidWorkload(_))
        ));
        assert!(matches!(
            t.workload_rates(&[1, 0]),
            Err(TableError::InvalidWorkload(_))
        ));
        assert!(matches!(
            t.workload_rates(&[0, 0]),
            Err(TableError::InvalidWorkload(_))
        ));
        assert!(matches!(
            t.workload_rates(&[0, 9]),
            Err(TableError::UnknownBenchmark(9))
        ));
    }

    #[test]
    fn build_is_deterministic_across_thread_counts() {
        let machine = Machine::new(MachineConfig::smt4().with_windows(1_000, 3_000)).unwrap();
        let suite: Vec<BenchmarkProfile> = spec2006().into_iter().take(2).collect();
        let a = PerfTable::build(&machine, &suite, 1).unwrap();
        let b = PerfTable::build(&machine, &suite, 8).unwrap();
        for (combo, ipcs) in &a.co_ipc {
            assert_eq!(b.slot_ipcs(combo).unwrap(), ipcs.as_slice());
        }
    }

    /// The streamed sweep visits exactly the multisets the old materialised
    /// enumeration did, in the same order, for any thread count.
    #[test]
    fn sweep_combos_streams_the_full_enumeration_in_order() {
        let expected: Vec<Vec<usize>> = (1..=3)
            .flat_map(|size| symbiosis::enumerate_coschedules(4, size))
            .map(|s| s.slots())
            .collect();
        for threads in [1, 2, 7, 64] {
            let rows = sweep_combos::<String, _>(4, 3, threads, |combo| Ok(vec![1.0; combo.len()]))
                .unwrap();
            let combos: Vec<Vec<usize>> = rows.into_iter().map(|(c, _)| c).collect();
            assert_eq!(combos, expected, "threads={threads}");
        }
    }

    /// The reported error is the first failing combo in enumeration order,
    /// regardless of thread interleaving.
    #[test]
    fn sweep_combos_reports_first_error_deterministically() {
        let expected: Vec<Vec<usize>> = (1..=4)
            .flat_map(|size| symbiosis::enumerate_coschedules(3, size))
            .map(|s| s.slots())
            .collect();
        // Fail every combo containing benchmark 1; the first such combo in
        // enumeration order is the solo [1].
        let first_failing = expected.iter().find(|c| c.contains(&1)).unwrap().clone();
        for threads in [1, 3, 16] {
            for _ in 0..5 {
                let err = sweep_combos::<Vec<usize>, _>(3, 4, threads, |combo| {
                    if combo.contains(&1) {
                        Err(combo.to_vec())
                    } else {
                        Ok(vec![1.0; combo.len()])
                    }
                })
                .unwrap_err();
                assert_eq!(err, first_failing, "threads={threads}");
            }
        }
    }

    /// Workers stop claiming new combos once a failure is recorded.
    #[test]
    fn sweep_combos_aborts_siblings_after_a_failure() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let simulated = AtomicUsize::new(0);
        let total: usize = (1..=4)
            .map(|size| symbiosis::CoscheduleIter::count_total(6, size))
            .sum();
        let _ = sweep_combos::<String, _>(6, 4, 2, |combo| {
            simulated.fetch_add(1, Ordering::Relaxed);
            if combo == [0] {
                Err("boom".into())
            } else {
                // Keep successes slow enough that the sibling cannot drain
                // the whole enumeration before the abort flag propagates.
                std::thread::sleep(std::time::Duration::from_micros(200));
                Ok(vec![1.0; combo.len()])
            }
        });
        // The very first combo fails; with 2 workers at most a handful of
        // in-flight combos run before both observe the abort flag.
        let ran = simulated.load(Ordering::Relaxed);
        assert!(ran < total / 2, "abort flag ignored: {ran} of {total} ran");
    }

    #[test]
    fn synthetic_table_feeds_the_analyses() {
        let names: Vec<String> = (0..5).map(|b| format!("syn{b}")).collect();
        let t = PerfTable::synthetic(names, 3, |combo| {
            combo
                .iter()
                .map(|&b| (1.0 + b as f64 * 0.2) / combo.len() as f64)
                .collect()
        })
        .unwrap();
        assert_eq!(t.contexts(), 3);
        // Sizes 1..=3 over 5 benchmarks: 5 + 15 + 35 multisets.
        assert_eq!(t.len(), 55);
        assert!((t.solo_ipc(2) - 1.4).abs() < 1e-12);
        let rates = t.workload_rates(&[0, 2, 4]).unwrap();
        assert_eq!(rates.contexts(), 3);
        let view = t.workload_view(&[1, 3]).unwrap();
        assert_rate_model_conformance(&view);
    }

    #[test]
    fn synthetic_table_validates_inputs() {
        assert!(matches!(
            PerfTable::synthetic(vec![], 2, |c| vec![1.0; c.len()]),
            Err(TableError::InvalidWorkload(_))
        ));
        assert!(matches!(
            PerfTable::synthetic(vec!["a".into()], 0, |c| vec![1.0; c.len()]),
            Err(TableError::InvalidWorkload(_))
        ));
        assert!(matches!(
            PerfTable::synthetic(vec!["a".into(), "b".into()], 2, |_| vec![1.0]),
            Err(TableError::Rates(_))
        ));
        assert!(matches!(
            PerfTable::synthetic(vec!["a".into(), "b".into()], 2, |c| vec![-1.0; c.len()]),
            Err(TableError::Rates(_))
        ));
    }

    /// The guardrail ISSUE 5 demands: a selection covering the whole
    /// enumeration must degrade *exactly* to the full build — bitwise, as
    /// witnessed by the canonical serialisation.
    #[test]
    fn full_budget_sampled_build_is_bitwise_equal_to_full_build() {
        let machine = Machine::new(MachineConfig::smt4().with_windows(1_000, 3_000)).unwrap();
        let suite: Vec<BenchmarkProfile> = spec2006().into_iter().take(3).collect();
        let total = full_enumeration_len(3, 4);
        let everything: Vec<usize> = (0..total).collect();
        for threads in [1, 4] {
            let full = PerfTable::build(&machine, &suite, threads).unwrap();
            let sampled = PerfTable::build_sampled(&machine, &suite, threads, &everything).unwrap();
            assert_eq!(full, sampled);
            // "Bitwise" literally: the canonical on-disk serialisations of
            // the two tables are identical byte streams.
            let dir = std::env::temp_dir();
            let pid = std::process::id();
            let a = dir.join(format!("symb-sample-full-{pid}-{threads}"));
            let b = dir.join(format!("symb-sample-sel-{pid}-{threads}"));
            full.save(&a).unwrap();
            sampled.save(&b).unwrap();
            let bytes_a = std::fs::read(&a).unwrap();
            let bytes_b = std::fs::read(&b).unwrap();
            let _ = std::fs::remove_file(&a);
            let _ = std::fs::remove_file(&b);
            assert_eq!(bytes_a, bytes_b, "threads={threads}");
        }
    }

    #[test]
    fn sampled_build_records_exactly_the_selection() {
        let machine = Machine::new(MachineConfig::smt4().with_windows(1_000, 3_000)).unwrap();
        let suite: Vec<BenchmarkProfile> = spec2006().into_iter().take(3).collect();
        // Solos (0..3) plus a few larger combos, by enumeration index.
        let selection = vec![0, 1, 2, 4, 7, 11, 20, 33];
        let t = PerfTable::build_sampled(&machine, &suite, 2, &selection).unwrap();
        assert_eq!(t.len(), selection.len());
        // Recorded rows agree with the full build on the selected combos.
        let full = PerfTable::build(&machine, &suite, 2).unwrap();
        for (combo, ipcs) in t.recorded_combos() {
            assert_eq!(full.slot_ipcs(combo).unwrap(), ipcs);
        }
        // Solo references are intact, so workload conversion works whenever
        // the needed combos are present.
        for b in 0..3 {
            assert_eq!(t.solo_ipc(b), full.solo_ipc(b));
        }
    }

    #[test]
    fn sampled_build_validates_selection() {
        let machine = Machine::new(MachineConfig::smt4().with_windows(1_000, 2_000)).unwrap();
        let suite: Vec<BenchmarkProfile> = spec2006().into_iter().take(3).collect();
        // Unsorted.
        assert!(matches!(
            PerfTable::build_sampled(&machine, &suite, 1, &[0, 2, 1]),
            Err(TableError::InvalidSample(_))
        ));
        // Out of range (3 benchmarks, K = 4 -> 34 combos).
        assert!(matches!(
            PerfTable::build_sampled(&machine, &suite, 1, &[0, 1, 2, 99]),
            Err(TableError::InvalidSample(_))
        ));
        // Missing a solo reference run.
        assert!(matches!(
            PerfTable::build_sampled(&machine, &suite, 1, &[0, 1, 5, 6]),
            Err(TableError::InvalidSample(_))
        ));
    }

    #[test]
    fn synthetic_sampled_matches_full_synthetic_on_selection() {
        let names: Vec<String> = (0..5).map(|b| format!("syn{b}")).collect();
        let ipc = |combo: &[usize]| -> Vec<f64> {
            combo
                .iter()
                .map(|&b| (1.0 + b as f64 * 0.2) / combo.len() as f64)
                .collect()
        };
        let full = PerfTable::synthetic(names.clone(), 3, ipc).unwrap();
        let selection = vec![0, 1, 2, 3, 4, 6, 9, 17, 30, 44];
        let sampled = PerfTable::synthetic_sampled(names.clone(), 3, &selection, ipc).unwrap();
        assert_eq!(sampled.len(), selection.len());
        for (combo, ipcs) in sampled.recorded_combos() {
            assert_eq!(full.slot_ipcs(combo).unwrap(), ipcs);
        }
        // Full-budget degradation holds for the synthetic path too.
        let total = full_enumeration_len(5, 3);
        let everything: Vec<usize> = (0..total).collect();
        let exhaustive = PerfTable::synthetic_sampled(names, 3, &everything, ipc).unwrap();
        assert_eq!(exhaustive, full);
    }

    #[test]
    fn recorded_combos_are_sorted_and_complete() {
        let t = tiny_table();
        let rows = t.recorded_combos();
        assert_eq!(rows.len(), t.len());
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn plain_unit_rescales_rates_by_solo_ipc() {
        let t = tiny_table();
        let weighted = t.workload_rates(&[0, 1]).unwrap();
        let plain = t
            .workload_rates_with_unit(&[0, 1], WorkUnit::Plain)
            .unwrap();
        for (si, s) in weighted.coschedules().iter().enumerate() {
            for b in 0..2 {
                if s.count(b) > 0 {
                    let expect = weighted.rate(si, b) * t.solo_ipc([0, 1][b]);
                    assert!(
                        (plain.rate(si, b) - expect).abs() < 1e-12,
                        "unit conversion must be a per-type rescale"
                    );
                }
            }
        }
    }

    #[test]
    fn workload_view_exposes_partial_coschedules() {
        let t = tiny_table();
        let view = t.workload_view(&[0, 1]).unwrap();
        assert_eq!(view.num_types(), 2);
        assert_eq!(view.contexts(), 4);
        // Solo rate equals 1 by WIPC construction.
        assert!((view.per_job_rate(&[1, 0], 0) - 1.0).abs() < 1e-12);
        // Partial pairs are present and positive.
        let pair = view.per_job_rate(&[1, 1], 0);
        assert!(pair > 0.0 && pair <= 1.05);
        // Full coschedule agrees with the workload_rates table.
        let rates = t.workload_rates(&[0, 1]).unwrap();
        let s = symbiosis::Coschedule::from_counts(vec![2, 2]);
        let si = rates.index_of(&s).unwrap();
        let via_table = rates.per_job_rate(si, 0);
        let via_view = view.per_job_rate(&[2, 2], 0);
        assert!((via_table - via_view).abs() < 1e-12);
    }

    #[test]
    fn workload_view_passes_shared_conformance() {
        let t = tiny_table();
        let view = t.workload_view(&[0, 2]).unwrap();
        assert!(view.supports_partial());
        assert_rate_model_conformance(&view);
        // The materialised full table is the direct conversion, bitwise.
        let direct = t.workload_rates(&[0, 2]).unwrap();
        assert_eq!(view.full_table().unwrap(), direct);
    }

    #[test]
    fn workload_view_validates_inputs() {
        let t = tiny_table();
        assert!(t.workload_view(&[1, 0]).is_err());
        assert!(t.workload_view(&[0, 99]).is_err());
    }

    /// The flat rank-indexed layout answers every probe exactly as the
    /// hash map it mirrors, and unrecorded combos in a sampled table read
    /// as `None` (the `u32::MAX` sentinel), not as garbage.
    #[test]
    fn flat_index_agrees_with_the_hash_map_rows() {
        let t = tiny_table();
        for (combo, ipcs) in &t.co_ipc {
            assert_eq!(t.slot_ipcs(combo).unwrap(), ipcs.as_slice());
        }
        let names: Vec<String> = (0..5).map(|b| format!("syn{b}")).collect();
        let ipc = |combo: &[usize]| -> Vec<f64> {
            combo
                .iter()
                .map(|&b| (1.0 + b as f64 * 0.2) / combo.len() as f64)
                .collect()
        };
        let selection = vec![0, 1, 2, 3, 4, 6, 9, 17, 30, 44];
        let sampled = PerfTable::synthetic_sampled(names.clone(), 3, &selection, ipc).unwrap();
        let full = PerfTable::synthetic(names, 3, ipc).unwrap();
        let mut hits = 0;
        for (combo, ipcs) in full.recorded_combos() {
            match sampled.slot_ipcs(combo) {
                Some(got) => {
                    hits += 1;
                    assert_eq!(got, ipcs);
                }
                None => assert!(!sampled.co_ipc.contains_key(combo)),
            }
        }
        assert_eq!(hits, selection.len());
    }

    #[test]
    fn combo_wipc_bounded_by_context_count() {
        // WIPC of any coschedule cannot exceed K (each job's WIPC <= 1).
        let t = tiny_table();
        for combo in t.co_ipc.keys() {
            let w = t.combo_wipc(combo).unwrap();
            assert!(w > 0.0);
            assert!(w <= t.contexts() as f64 + 0.25, "WIPC {w} for {combo:?}");
        }
    }
}
