//! SPEC CPU2006-like benchmark profiles and coschedule performance tables.
//!
//! This crate glues the [`simproc`] simulator to the [`symbiosis`] analyses
//! for the reproduction of *"Revisiting Symbiotic Job Scheduling"*
//! (ISPASS 2015):
//!
//! * [`spec2006`] — the 12 benchmark profiles standing in for the paper's
//!   Table I SPEC CPU2006 selection;
//! * [`PerfTable`] — per-slot IPCs of all coschedules of a suite on a
//!   machine (the paper's 1365-combination sweep), convertible into
//!   [`symbiosis::WorkloadRates`] for any selected workload;
//! * [`TableStore`] — a fingerprint-keyed on-disk cache of performance
//!   tables ([`PerfTable::save`] / [`PerfTable::load`], bitwise-stable
//!   format documented in [`store`]) so repeated studies skip
//!   re-simulation.
//!
//! # Examples
//!
//! ```no_run
//! use simproc::{Machine, MachineConfig};
//! use workloads::{spec2006, PerfTable};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = Machine::new(MachineConfig::smt4())?;
//! let table = PerfTable::build(&machine, &spec2006(), 8)?;
//! let rates = table.workload_rates(&[0, 5, 7, 11])?; // bzip2+hmmer+mcf+xalancbmk
//! let best = symbiosis::optimal_schedule(&rates, symbiosis::Objective::MaxThroughput)?;
//! println!("optimal throughput: {:.3}", best.throughput);
//! # Ok(())
//! # }
//! ```

pub mod spec;
pub mod store;
pub mod table;

pub use spec::{spec2006, spec_names, spec_profile};
pub use store::{table_fingerprint, StoreOutcome, TableStore};
pub use table::{PerfTable, TableError, WorkUnit, WorkloadView};
