//! [`PredictedModel`]: a fitted interference model as a first-class
//! [`RateModel`] — the digital-twin stand-in for measurement.
//!
//! The model owns its [`Fitter`] and its training [`RateSample`]s, tracks
//! a per-sample [`Residual`] ledger, and refits in place when new
//! measurements arrive ([`PredictedModel::refit`]). Because it implements
//! [`RateModel`] (partial multisets included), it plugs into
//! `session::Session::builder().rates(&model)` like any measured view; for
//! the batch sweep surface, [`PredictedModel::to_table`] materialises a
//! predicted [`PerfTable`] (consume it with [`WorkUnit::Plain`] — the
//! emitted per-slot "IPCs" *are* predicted rates).

use symbiosis::{Coschedule, RateModel, WorkloadRates};
use workloads::{PerfTable, WorkUnit};

use crate::fit::{Fitter, RatePredictor, RateSample};
use crate::PredictError;

/// One training sample's prediction error, recorded at (re)fit time.
#[derive(Debug, Clone, PartialEq)]
pub struct Residual {
    /// The sampled multiset.
    pub counts: Vec<u32>,
    /// Per-type `measured − predicted` total rate.
    pub per_type: Vec<f64>,
    /// Relative instantaneous-throughput error
    /// `|measured − predicted| / measured`.
    pub rel_throughput: f64,
}

/// Aggregate prediction-error statistics over a set of coschedules.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorSummary {
    /// Coschedules compared.
    pub coschedules: usize,
    /// Mean absolute relative throughput error.
    pub mean_abs_rel: f64,
    /// 95th percentile of the absolute relative throughput error.
    pub p95_abs_rel: f64,
    /// Largest absolute relative throughput error.
    pub max_abs_rel: f64,
}

impl ErrorSummary {
    fn from_abs_rel(mut errors: Vec<f64>) -> ErrorSummary {
        assert!(!errors.is_empty(), "no coschedules to summarise");
        let coschedules = errors.len();
        let mean = errors.iter().sum::<f64>() / coschedules as f64;
        errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p95 = errors[((coschedules - 1) as f64 * 0.95).round() as usize];
        ErrorSummary {
            coschedules,
            mean_abs_rel: mean,
            p95_abs_rel: p95,
            max_abs_rel: *errors.last().expect("non-empty"),
        }
    }
}

/// A refittable, conformance-tested predicted rate source.
///
/// Construct with [`PredictedModel::fit`] (explicit samples) or
/// [`PredictedModel::from_table`] (samples extracted from a — typically
/// sampled — [`PerfTable`]).
pub struct PredictedModel {
    num_types: usize,
    contexts: usize,
    fitter: Box<dyn Fitter>,
    predictor: Box<dyn RatePredictor>,
    samples: Vec<RateSample>,
    /// Multiset-keyed position index into `samples`, maintained across
    /// refits so folding new measurements in stays O(new), not O(all).
    position: std::collections::HashMap<Vec<u32>, usize>,
    residuals: Vec<Residual>,
}

impl PredictedModel {
    /// Fits `fitter` to `samples` for a machine with `num_types` job types
    /// and `contexts` contexts.
    ///
    /// Duplicate multisets keep the *last* sample (newest measurement
    /// wins), matching [`PredictedModel::refit`] semantics.
    ///
    /// # Errors
    ///
    /// Sample-shape violations as [`PredictError::Shape`]; fitter failures
    /// as returned by the [`Fitter`].
    pub fn fit(
        num_types: usize,
        contexts: usize,
        samples: Vec<RateSample>,
        fitter: Box<dyn Fitter>,
    ) -> Result<Self, PredictError> {
        if num_types == 0 || contexts == 0 {
            return Err(PredictError::Shape(
                "model needs at least one type and one context".into(),
            ));
        }
        let mut model = PredictedModel {
            num_types,
            contexts,
            fitter,
            // Placeholder replaced by the refit below before anyone can
            // query it.
            predictor: Box::new(Unfitted),
            samples: Vec::new(),
            position: std::collections::HashMap::new(),
            residuals: Vec::new(),
        };
        model.refit(&samples)?;
        Ok(model)
    }

    /// Extracts training samples from `table` (see [`samples_from_table`])
    /// and fits. `types` selects the benchmarks acting as job types; the
    /// model's type space is local to that selection.
    ///
    /// # Errors
    ///
    /// As [`samples_from_table`] and [`PredictedModel::fit`].
    pub fn from_table(
        table: &PerfTable,
        types: &[usize],
        unit: WorkUnit,
        fitter: Box<dyn Fitter>,
    ) -> Result<Self, PredictError> {
        let samples = samples_from_table(table, types, unit)?;
        Self::fit(types.len(), table.contexts(), samples, fitter)
    }

    /// Folds newly arrived measurements into the training set and refits —
    /// the digital-twin update path. Samples for an already-known multiset
    /// replace the old measurement; the residual ledger is recomputed
    /// against the new predictor.
    ///
    /// The merge is *incremental*: the existing training set is edited in
    /// place through a persistent multiset index (only the new samples are
    /// copied), so a live loop refitting every few hundred measurements
    /// never re-clones its accumulated history.
    ///
    /// On error the model keeps its previous predictor and samples (an
    /// undo log reverts the in-place merge).
    ///
    /// # Errors
    ///
    /// As [`PredictedModel::fit`].
    pub fn refit(&mut self, new_samples: &[RateSample]) -> Result<(), PredictError> {
        for sample in new_samples {
            sample.validate(self.num_types, self.contexts)?;
        }
        // Apply in place, remembering how to revert if the fit fails.
        let mut replaced: Vec<(usize, RateSample)> = Vec::new();
        let appended_from = self.samples.len();
        for sample in new_samples {
            match self.position.get(&sample.counts) {
                Some(&i) => {
                    let old = std::mem::replace(&mut self.samples[i], sample.clone());
                    // Keep only the oldest value per slot: a batch may
                    // re-measure the same multiset more than once.
                    if i < appended_from && !replaced.iter().any(|(j, _)| *j == i) {
                        replaced.push((i, old));
                    }
                }
                None => {
                    self.position
                        .insert(sample.counts.clone(), self.samples.len());
                    self.samples.push(sample.clone());
                }
            }
        }
        if self.samples.is_empty() {
            return Err(PredictError::NotEnoughSamples(
                "predicted model needs at least one sample".into(),
            ));
        }
        match self
            .fitter
            .fit(self.num_types, self.contexts, &self.samples)
        {
            Ok(predictor) => {
                self.residuals = self
                    .samples
                    .iter()
                    .map(|s| residual_for(&*predictor, s))
                    .collect();
                self.predictor = predictor;
                Ok(())
            }
            Err(e) => {
                for sample in self.samples.drain(appended_from..) {
                    self.position.remove(&sample.counts);
                }
                for (i, old) in replaced {
                    self.samples[i] = old;
                }
                Err(e)
            }
        }
    }

    /// The fitter's registry-style name (e.g. `bottleneck`).
    pub fn fitter_name(&self) -> &'static str {
        self.fitter.name()
    }

    /// The fitted coefficient rows (layout documented per fitter).
    pub fn coefficients(&self) -> Vec<Vec<f64>> {
        self.predictor.coefficients()
    }

    /// The training samples currently folded into the fit.
    pub fn samples(&self) -> &[RateSample] {
        &self.samples
    }

    /// Per-sample residuals against the current predictor, in training
    /// order.
    pub fn residuals(&self) -> &[Residual] {
        &self.residuals
    }

    /// Error summary over the training samples (in-sample fit quality).
    pub fn fit_error(&self) -> ErrorSummary {
        ErrorSummary::from_abs_rel(self.residuals.iter().map(|r| r.rel_throughput).collect())
    }

    /// Nearest-rank quantiles of the per-sample relative throughput error,
    /// one per requested `qs` entry (each in `0.0..=1.0`). This is the
    /// signal an active-sampling policy thresholds on: e.g. the 0.9
    /// quantile bounds the error of "the worst decile of the training
    /// set", and any sample whose residual exceeds it marks a region
    /// worth re-measuring.
    pub fn residual_quantiles(&self, qs: &[f64]) -> Vec<f64> {
        let mut errs: Vec<f64> = self.residuals.iter().map(|r| r.rel_throughput).collect();
        errs.sort_by(|a, b| a.total_cmp(b));
        let n = errs.len();
        qs.iter()
            .map(|&q| {
                let i = ((n - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
                errs[i]
            })
            .collect()
    }

    /// Error summary against a ground-truth rate source, over every *full*
    /// coschedule of the model's shape — the predicted-vs-measured
    /// headline number (most of those coschedules were never sampled).
    pub fn error_against(&self, truth: &dyn RateModel) -> ErrorSummary {
        assert_eq!(truth.num_types(), self.num_types, "type count mismatch");
        assert_eq!(truth.contexts(), self.contexts, "context count mismatch");
        let errors: Vec<f64> = symbiosis::CoscheduleIter::new(self.num_types, self.contexts)
            .map(|s| {
                let measured = truth.instantaneous_throughput(s.counts());
                let predicted = self.instantaneous_throughput(s.counts());
                (predicted - measured).abs() / measured
            })
            .collect();
        ErrorSummary::from_abs_rel(errors)
    }

    /// The predicted full-coschedule [`WorkloadRates`] table for a
    /// workload (sorted distinct indices into this model's type space) —
    /// what the LP / Markov analyses consume.
    ///
    /// # Errors
    ///
    /// [`PredictError::Shape`] for a malformed workload,
    /// [`PredictError::Rates`] if the predictions fail table validation
    /// (cannot happen: predictors are clamped positive).
    pub fn workload_rates(&self, types: &[usize]) -> Result<WorkloadRates, PredictError> {
        if types.is_empty() || !types.windows(2).all(|w| w[0] < w[1]) {
            return Err(PredictError::Shape(
                "workload must be non-empty, sorted and distinct".into(),
            ));
        }
        if let Some(&bad) = types.iter().find(|&&t| t >= self.num_types) {
            return Err(PredictError::Shape(format!(
                "type {bad} out of range ({} model types)",
                self.num_types
            )));
        }
        let n = types.len();
        let rates = WorkloadRates::build(n, self.contexts, |s: &Coschedule| {
            let mut global = vec![0u32; self.num_types];
            for (local, &c) in s.counts().iter().enumerate() {
                global[types[local]] = c;
            }
            (0..n)
                .map(|local| self.total_rate(&global, types[local]))
                .collect()
        })?;
        Ok(rates)
    }

    /// Materialises the model as a predicted [`PerfTable`] over all its
    /// types — the bridge into `session::Session::sweep` and the
    /// [`workloads::TableStore`] artefact machinery.
    ///
    /// The emitted per-slot "IPCs" are predicted *per-job rates*; convert
    /// workloads with [`WorkUnit::Plain`] so the rates come back
    /// unnormalised. (`names` labels the types; its length must match.)
    ///
    /// # Errors
    ///
    /// [`PredictError::Shape`] on a name-count mismatch, table validation
    /// errors as [`PredictError::Table`].
    pub fn to_table(&self, names: Vec<String>) -> Result<PerfTable, PredictError> {
        if names.len() != self.num_types {
            return Err(PredictError::Shape(format!(
                "{} names for {} types",
                names.len(),
                self.num_types
            )));
        }
        let table = PerfTable::synthetic(names, self.contexts, |combo| {
            let mut counts = vec![0u32; self.num_types];
            for &b in combo {
                counts[b] += 1;
            }
            combo
                .iter()
                .map(|&b| self.predictor.per_job_rate(&counts, b))
                .collect()
        })?;
        Ok(table)
    }
}

impl RateModel for PredictedModel {
    fn num_types(&self) -> usize {
        self.num_types
    }

    fn contexts(&self) -> usize {
        self.contexts
    }

    fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64 {
        assert_eq!(counts.len(), self.num_types, "counts length mismatch");
        assert!(counts[ty] > 0, "type {ty} not present");
        let n: u32 = counts.iter().sum();
        assert!(
            n >= 1 && n as usize <= self.contexts,
            "multiset size {n} out of range"
        );
        self.predictor.per_job_rate(counts, ty)
    }
}

/// Placeholder predictor used only during construction; unreachable once
/// [`PredictedModel::fit`] returns.
struct Unfitted;

impl RatePredictor for Unfitted {
    fn per_job_rate(&self, _counts: &[u32], _ty: usize) -> f64 {
        unreachable!("model queried before its first fit")
    }

    fn coefficients(&self) -> Vec<Vec<f64>> {
        unreachable!("model queried before its first fit")
    }
}

fn residual_for(predictor: &dyn RatePredictor, sample: &RateSample) -> Residual {
    let mut per_type = Vec::with_capacity(sample.counts.len());
    let mut measured_it = 0.0;
    let mut predicted_it = 0.0;
    for (b, (&c, &measured)) in sample.counts.iter().zip(&sample.rates).enumerate() {
        if c == 0 {
            per_type.push(0.0);
            continue;
        }
        let predicted = c as f64 * predictor.per_job_rate(&sample.counts, b);
        per_type.push(measured - predicted);
        measured_it += measured;
        predicted_it += predicted;
    }
    Residual {
        counts: sample.counts.clone(),
        per_type,
        rel_throughput: (predicted_it - measured_it).abs() / measured_it,
    }
}

/// Extracts [`RateSample`]s from every recorded combo of `table` composed
/// solely of the benchmarks in `types` (sorted distinct indices into the
/// suite) — all recorded sizes, in deterministic combo order.
///
/// Rates follow `unit`: [`WorkUnit::Weighted`] divides each slot IPC by
/// its benchmark's solo IPC (the paper's WIPC), [`WorkUnit::Plain`] keeps
/// raw IPCs. A *sampled* table yields exactly its measured subset — the
/// training set of the sampled-fit pipeline.
///
/// # Errors
///
/// [`PredictError::Shape`] for a malformed `types` selection or when no
/// recorded combo lies inside it.
pub fn samples_from_table(
    table: &PerfTable,
    types: &[usize],
    unit: WorkUnit,
) -> Result<Vec<RateSample>, PredictError> {
    if types.is_empty() || !types.windows(2).all(|w| w[0] < w[1]) {
        return Err(PredictError::Shape(
            "types must be non-empty, sorted and distinct".into(),
        ));
    }
    if let Some(&bad) = types.iter().find(|&&t| t >= table.names().len()) {
        return Err(PredictError::Shape(format!(
            "benchmark index {bad} out of range ({} in suite)",
            table.names().len()
        )));
    }
    let local_of: Vec<Option<usize>> = {
        let mut map = vec![None; table.names().len()];
        for (local, &global) in types.iter().enumerate() {
            map[global] = Some(local);
        }
        map
    };
    let mut samples = Vec::new();
    for (combo, ipcs) in table.recorded_combos() {
        let locals: Option<Vec<usize>> = combo.iter().map(|&b| local_of[b]).collect();
        let Some(locals) = locals else {
            continue; // combo touches a benchmark outside the selection
        };
        let mut counts = vec![0u32; types.len()];
        let mut rates = vec![0.0; types.len()];
        for (slot, &local) in locals.iter().enumerate() {
            counts[local] += 1;
            let scale = match unit {
                WorkUnit::Weighted => table.solo_ipc(types[local]),
                WorkUnit::Plain => 1.0,
            };
            rates[local] += ipcs[slot] / scale;
        }
        samples.push(RateSample { counts, rates });
    }
    if samples.is_empty() {
        return Err(PredictError::Shape(
            "no recorded combo lies inside the selected types".into(),
        ));
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{BottleneckFitter, InterferenceFitter};
    use crate::sample::stratified_plan;
    use symbiosis::{assert_rate_model_conformance, AnalyticModel};

    /// An exact affine contention ground truth (positive over all sizes).
    fn affine_truth(
        num_types: usize,
        contexts: usize,
    ) -> AnalyticModel<impl Fn(&[u32], usize) -> f64> {
        AnalyticModel::new(num_types, contexts, |counts, ty| {
            let mut v = 1.0 + 0.15 * ty as f64;
            for (j, &c) in counts.iter().enumerate() {
                v -= (0.04 + 0.01 * ((ty + j) % 3) as f64) * c as f64;
            }
            v
        })
    }

    fn truth_samples(
        model: &dyn RateModel,
        sizes: std::ops::RangeInclusive<usize>,
    ) -> Vec<RateSample> {
        let n = model.num_types();
        let mut out = Vec::new();
        for size in sizes {
            for s in symbiosis::enumerate_coschedules(n, size) {
                out.push(RateSample {
                    counts: s.counts().to_vec(),
                    rates: (0..n).map(|b| model.total_rate(s.counts(), b)).collect(),
                });
            }
        }
        out
    }

    #[test]
    fn predicted_model_passes_rate_model_conformance_for_both_fitters() {
        let truth = affine_truth(3, 4);
        let samples = truth_samples(&truth, 1..=4);
        for fitter in [
            Box::new(BottleneckFitter) as Box<dyn Fitter>,
            Box::new(InterferenceFitter),
        ] {
            let model = PredictedModel::fit(3, 4, samples.clone(), fitter).unwrap();
            assert!(model.supports_partial());
            assert_rate_model_conformance(&model);
        }
    }

    #[test]
    fn exact_generator_fits_with_zero_residuals() {
        let truth = affine_truth(3, 3);
        let samples = truth_samples(&truth, 1..=3);
        let model = PredictedModel::fit(3, 3, samples, Box::new(InterferenceFitter)).unwrap();
        let fit = model.fit_error();
        assert!(fit.max_abs_rel < 1e-9, "max rel err {}", fit.max_abs_rel);
        let against = model.error_against(&truth);
        assert!(against.max_abs_rel < 1e-9);
        assert_eq!(against.coschedules, 10); // C(3+2, 3)
    }

    #[test]
    fn sampled_fit_predicts_unmeasured_combos() {
        // Train on a stratified subset of a synthetic table; the exact
        // affine generator is identifiable, so never-measured combos come
        // back exact too.
        let truth = affine_truth(4, 4);
        let names: Vec<String> = (0..4).map(|b| format!("b{b}")).collect();
        let plan = stratified_plan(4, 4, 30, 0xC0FFEE).unwrap();
        assert!(!plan.is_exhaustive());
        let sampled = PerfTable::synthetic_sampled(names, 4, plan.indices(), |combo| {
            let mut counts = vec![0u32; 4];
            for &b in combo {
                counts[b] += 1;
            }
            combo
                .iter()
                .map(|&b| truth.per_job_rate(&counts, b))
                .collect()
        })
        .unwrap();
        let model = PredictedModel::from_table(
            &sampled,
            &[0, 1, 2, 3],
            WorkUnit::Plain,
            Box::new(InterferenceFitter),
        )
        .unwrap();
        assert_eq!(model.samples().len(), 30);
        let summary = model.error_against(&truth);
        assert_eq!(summary.coschedules, 35);
        assert!(summary.max_abs_rel < 1e-6, "max {}", summary.max_abs_rel);
    }

    #[test]
    fn refit_folds_new_measurements_in_and_replaces_duplicates() {
        // Ground truth the affine model *cannot* represent exactly:
        // heterogeneity relief is multiplicative.
        let truth = AnalyticModel::new(2, 3, |counts: &[u32], _ty| {
            let distinct = counts.iter().filter(|&&c| c > 0).count() as f64;
            let n: u32 = counts.iter().sum();
            0.9 * (1.0 + 0.2 * (distinct - 1.0)) / n as f64
        });
        // First fit sees only solos and pairs.
        let early = truth_samples(&truth, 1..=2);
        let mut model =
            PredictedModel::fit(2, 3, early.clone(), Box::new(InterferenceFitter)).unwrap();
        let before = model.error_against(&truth);
        let n_before = model.samples().len();

        // New measurements arrive: the full-size coschedules.
        model.refit(&truth_samples(&truth, 3..=3)).unwrap();
        assert_eq!(model.samples().len(), n_before + 4); // C(2+2, 3) = 4
        assert_eq!(model.residuals().len(), model.samples().len());
        let after = model.error_against(&truth);
        assert!(
            after.mean_abs_rel < before.mean_abs_rel,
            "refit must use the new evidence: {} vs {}",
            after.mean_abs_rel,
            before.mean_abs_rel
        );

        // Re-measuring a known multiset replaces, not duplicates.
        let n = model.samples().len();
        model
            .refit(&[RateSample {
                counts: vec![1, 1],
                rates: vec![0.55, 0.54],
            }])
            .unwrap();
        assert_eq!(model.samples().len(), n);
        let replaced = model.samples().iter().find(|s| s.counts == [1, 1]).unwrap();
        assert_eq!(replaced.rates, vec![0.55, 0.54]);
    }

    #[test]
    fn residual_quantiles_are_nearest_rank_over_sorted_errors() {
        // Truth the affine fitter cannot represent, so residuals spread.
        let truth = AnalyticModel::new(2, 3, |counts: &[u32], _ty| {
            let distinct = counts.iter().filter(|&&c| c > 0).count() as f64;
            let n: u32 = counts.iter().sum();
            0.9 * (1.0 + 0.2 * (distinct - 1.0)) / n as f64
        });
        let model = PredictedModel::fit(
            2,
            3,
            truth_samples(&truth, 1..=3),
            Box::new(InterferenceFitter),
        )
        .unwrap();
        let qs = model.residual_quantiles(&[0.0, 0.5, 1.0]);
        let mut errs: Vec<f64> = model.residuals().iter().map(|r| r.rel_throughput).collect();
        errs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(qs[0], errs[0]);
        assert_eq!(qs[2], *errs.last().unwrap());
        assert!(qs[0] <= qs[1] && qs[1] <= qs[2]);
        let mid = ((errs.len() - 1) as f64 * 0.5).round() as usize;
        assert_eq!(qs[1], errs[mid]);
    }

    #[test]
    fn workload_rates_restricts_the_type_space() {
        let truth = affine_truth(4, 3);
        let samples = truth_samples(&truth, 1..=3);
        let model = PredictedModel::fit(4, 3, samples, Box::new(InterferenceFitter)).unwrap();
        let rates = model.workload_rates(&[0, 2]).unwrap();
        assert_eq!(rates.num_types(), 2);
        assert_eq!(rates.contexts(), 3);
        // Local [1, 1] is global [1, 0, 1, 0].
        let si = rates
            .index_of(&Coschedule::from_counts(vec![1, 2]))
            .unwrap();
        let want = model.total_rate(&[1, 0, 2, 0], 2);
        assert!((rates.rate(si, 1) - want).abs() < 1e-12);
        assert!(model.workload_rates(&[2, 0]).is_err(), "unsorted");
        assert!(model.workload_rates(&[0, 9]).is_err(), "out of range");
    }

    #[test]
    fn to_table_round_trips_through_plain_unit() {
        let truth = affine_truth(3, 3);
        let samples = truth_samples(&truth, 1..=3);
        let model = PredictedModel::fit(3, 3, samples, Box::new(InterferenceFitter)).unwrap();
        let names: Vec<String> = (0..3).map(|b| format!("t{b}")).collect();
        let table = model.to_table(names).unwrap();
        let rates = table
            .workload_rates_with_unit(&[0, 1, 2], WorkUnit::Plain)
            .unwrap();
        for (si, s) in rates.coschedules().iter().enumerate() {
            for b in 0..3 {
                let want = model.total_rate(s.counts(), b);
                assert!(
                    (rates.rate(si, b) - want).abs() <= 1e-12 * want.abs().max(1.0),
                    "coschedule {s}, type {b}"
                );
            }
        }
        assert!(model.to_table(vec!["one".into()]).is_err(), "name count");
    }

    #[test]
    fn samples_from_table_honours_units_and_selection() {
        let names: Vec<String> = (0..3).map(|b| format!("b{b}")).collect();
        let table = PerfTable::synthetic(names, 2, |combo| {
            combo
                .iter()
                .map(|&b| (2.0 + b as f64) / combo.len() as f64)
                .collect()
        })
        .unwrap();
        // Restricting to [0, 2] drops every combo containing benchmark 1.
        let plain = samples_from_table(&table, &[0, 2], WorkUnit::Plain).unwrap();
        // Sizes 1..=2 over the two selected benchmarks: 2 + 3 = 5 combos.
        assert_eq!(plain.len(), 5);
        let weighted = samples_from_table(&table, &[0, 2], WorkUnit::Weighted).unwrap();
        // Weighted solo rates are 1 by construction.
        let solo0 = weighted
            .iter()
            .find(|s| s.counts == [1, 0])
            .expect("solo recorded");
        assert!((solo0.rates[0] - 1.0).abs() < 1e-12);
        let plain_solo0 = plain.iter().find(|s| s.counts == [1, 0]).unwrap();
        assert!((plain_solo0.rates[0] - 2.0).abs() < 1e-12);
        // Validation.
        assert!(samples_from_table(&table, &[], WorkUnit::Plain).is_err());
        assert!(samples_from_table(&table, &[2, 0], WorkUnit::Plain).is_err());
        assert!(samples_from_table(&table, &[0, 7], WorkUnit::Plain).is_err());
    }

    #[test]
    fn error_summary_percentiles_are_ordered() {
        let s = ErrorSummary::from_abs_rel((0..100).map(|i| i as f64 / 100.0).collect());
        assert_eq!(s.coschedules, 100);
        assert!(s.mean_abs_rel <= s.p95_abs_rel);
        assert!(s.p95_abs_rel <= s.max_abs_rel);
        assert!((s.max_abs_rel - 0.99).abs() < 1e-12);
    }
}
