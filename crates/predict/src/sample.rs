//! Seeded, stratified sampling of the coschedule enumeration.
//!
//! The N = 12 / K = 8 sweep spans 125 969 combos — far past what
//! exhaustive simulation can cover, and exactly the situation the paper's
//! model-predicted scheduling is for. [`stratified_plan`] picks a budgeted
//! subset to actually measure: every solo run (the WIPC reference every
//! conversion needs), plus a per-size stratified random draw of the co-run
//! combos, so small and large coschedules are both represented no matter
//! how lopsided the enumeration is (the size-8 stratum is 75 582 of the
//! 125 969 combos).
//!
//! Plans address combos by their index in the streamed enumeration
//! ([`CoscheduleIter`] order, sizes ascending) — the exact contract of
//! [`workloads::PerfTable::build_sampled`]. Sampling is deterministic in
//! `(shape, budget, seed)`, and a budget covering the whole enumeration
//! degrades to the identity selection, which `build_sampled` turns into a
//! bitwise-equal copy of the full build.

use symbiosis::rng::SplitMix64;
use symbiosis::CoscheduleIter;

use crate::PredictError;

/// One coschedule-size stratum of a [`SamplePlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stratum {
    /// Coschedule size (jobs in the multiset).
    pub size: usize,
    /// Combos of this size in the full enumeration.
    pub available: usize,
    /// Combos of this size the plan selects.
    pub chosen: usize,
}

/// A budgeted selection of coschedule-enumeration indices to measure.
///
/// Built by [`stratified_plan`]; consumed by
/// [`workloads::PerfTable::build_sampled`] /
/// [`workloads::PerfTable::synthetic_sampled`] via [`SamplePlan::indices`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplePlan {
    num_types: usize,
    contexts: usize,
    seed: u64,
    total: usize,
    indices: Vec<usize>,
    strata: Vec<Stratum>,
}

impl SamplePlan {
    /// Sorted distinct enumeration indices of the combos to measure.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of combos selected.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True only for degenerate shapes (cannot happen for valid plans).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Combos in the full enumeration (sizes `1..=contexts`).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Selected fraction of the full enumeration.
    pub fn fraction(&self) -> f64 {
        self.indices.len() as f64 / self.total as f64
    }

    /// True when the plan covers the whole enumeration (budget ≥ total),
    /// i.e. a sampled build degrades to the full build.
    pub fn is_exhaustive(&self) -> bool {
        self.indices.len() == self.total
    }

    /// Per-size breakdown of the selection.
    pub fn strata(&self) -> &[Stratum] {
        &self.strata
    }

    /// Job types the plan enumerates over.
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// Hardware contexts (largest coschedule size).
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Seed the random draws were derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Plans a stratified measurement of `budget` combos over the coschedule
/// enumeration of `num_types` benchmarks on `contexts` contexts.
///
/// Guarantees, for any valid budget:
///
/// * every solo run is selected (the size-1 stratum is always complete);
/// * every coschedule size contributes at least one combo, the rest of the
///   budget split proportionally to stratum sizes (largest-remainder
///   rounding, deterministic);
/// * within a stratum, combos are drawn without replacement by a seeded
///   [`SplitMix64`] partial shuffle — same `(shape, budget, seed)`, same
///   plan, on every platform;
/// * `budget ≥ total` selects the entire enumeration
///   ([`SamplePlan::is_exhaustive`]).
///
/// # Errors
///
/// [`PredictError::BudgetTooSmall`] if `budget` cannot cover the mandatory
/// strata (`num_types` solos + one combo per co-run size).
///
/// # Panics
///
/// Panics if `num_types == 0` or `contexts == 0`.
pub fn stratified_plan(
    num_types: usize,
    contexts: usize,
    budget: usize,
    seed: u64,
) -> Result<SamplePlan, PredictError> {
    assert!(num_types > 0, "need at least one job type");
    assert!(contexts > 0, "need at least one context");
    let sizes: Vec<usize> = (1..=contexts)
        .map(|s| CoscheduleIter::count_total(num_types, s))
        .collect();
    let total: usize = sizes.iter().sum();

    if budget >= total {
        // Full coverage: the identity selection, which build_sampled turns
        // into a bitwise-equal copy of the full build.
        return Ok(SamplePlan {
            num_types,
            contexts,
            seed,
            total,
            indices: (0..total).collect(),
            strata: sizes
                .iter()
                .enumerate()
                .map(|(i, &m)| Stratum {
                    size: i + 1,
                    available: m,
                    chosen: m,
                })
                .collect(),
        });
    }

    // Mandatory floor: all solos plus one combo per co-run stratum.
    let minimum = num_types + (contexts - 1);
    if budget < minimum {
        return Err(PredictError::BudgetTooSmall { budget, minimum });
    }

    // Proportional quotas over the co-run strata (sizes 2..=K) for the
    // budget left after the solos, with a floor of one per stratum and
    // largest-remainder rounding; fix-ups keep the sum exactly on budget.
    let remaining = budget - num_types;
    let pool: usize = sizes[1..].iter().sum();
    let mut quotas: Vec<usize> = sizes[1..]
        .iter()
        .map(|&m| (((remaining as u128) * (m as u128)) / pool as u128) as usize)
        .map(|q| q.max(1))
        .collect();
    for (q, &m) in quotas.iter_mut().zip(&sizes[1..]) {
        *q = (*q).min(m);
    }
    loop {
        let sum: usize = quotas.iter().sum();
        if sum == remaining {
            break;
        }
        if sum > remaining {
            // Shed from the fullest stratum that can spare a combo.
            let i = (0..quotas.len())
                .filter(|&i| quotas[i] > 1)
                .max_by_key(|&i| quotas[i])
                .expect("sum > remaining >= stratum count implies a quota > 1");
            quotas[i] -= 1;
        } else {
            // Top up the stratum with the most unselected combos.
            let i = (0..quotas.len())
                .max_by_key(|&i| sizes[i + 1] - quotas[i])
                .expect("non-empty");
            assert!(quotas[i] < sizes[i + 1], "budget < total leaves capacity");
            quotas[i] += 1;
        }
    }

    let mut rng = SplitMix64::new(seed);
    let mut indices: Vec<usize> = (0..num_types).collect(); // all solos
    let mut strata = vec![Stratum {
        size: 1,
        available: num_types,
        chosen: num_types,
    }];
    let mut offset = num_types;
    for (i, &m) in sizes[1..].iter().enumerate() {
        let quota = quotas[i];
        // Partial Fisher–Yates: the first `quota` positions of a virtual
        // shuffle are a uniform draw without replacement.
        let mut local: Vec<usize> = (0..m).collect();
        for j in 0..quota {
            let pick = j + rng.next_range((m - j) as u64) as usize;
            local.swap(j, pick);
        }
        let mut chosen: Vec<usize> = local[..quota].iter().map(|&l| offset + l).collect();
        chosen.sort_unstable();
        indices.extend(chosen);
        strata.push(Stratum {
            size: i + 2,
            available: m,
            chosen: quota,
        });
        offset += m;
    }

    Ok(SamplePlan {
        num_types,
        contexts,
        seed,
        total,
        indices,
        strata,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_on_budget() {
        let a = stratified_plan(12, 8, 12_000, 0xABCD).unwrap();
        let b = stratified_plan(12, 8, 12_000, 0xABCD).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 12_000);
        assert_eq!(a.total(), 125_969);
        assert!(a.fraction() < 0.10, "fraction {}", a.fraction());
        assert!(!a.is_exhaustive());
        // A different seed draws a different co-run subset.
        let c = stratified_plan(12, 8, 12_000, 0xF00D).unwrap();
        assert_ne!(a.indices(), c.indices());
    }

    #[test]
    fn indices_are_sorted_distinct_and_in_range() {
        let plan = stratified_plan(6, 4, 40, 7).unwrap();
        let idx = plan.indices();
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(*idx.last().unwrap() < plan.total());
    }

    #[test]
    fn solos_and_every_size_are_always_represented() {
        let plan = stratified_plan(12, 8, 30, 99).unwrap();
        // Size-1 stratum complete.
        assert_eq!(&plan.indices()[..12], &(0..12).collect::<Vec<_>>()[..]);
        for stratum in plan.strata() {
            assert!(
                stratum.chosen >= 1,
                "size {} unrepresented in {:?}",
                stratum.size,
                plan.strata()
            );
        }
        assert_eq!(plan.len(), 30);
    }

    #[test]
    fn quota_split_is_proportional_to_stratum_sizes() {
        let plan = stratified_plan(12, 8, 12_000, 1).unwrap();
        // The size-8 stratum is 60% of the enumeration; its quota must
        // dominate likewise.
        let chosen8 = plan.strata().iter().find(|s| s.size == 8).unwrap().chosen;
        assert!(
            chosen8 > 12_000 / 2,
            "size-8 stratum got {chosen8} of 12000"
        );
        let total_chosen: usize = plan.strata().iter().map(|s| s.chosen).sum();
        assert_eq!(total_chosen, plan.len());
    }

    #[test]
    fn full_budget_degrades_to_the_identity_selection() {
        for budget in [55, 56, 10_000] {
            let plan = stratified_plan(5, 3, budget, 3).unwrap();
            // 5 + 15 + 35 = 55 combos.
            assert!(plan.is_exhaustive());
            assert_eq!(plan.indices(), &(0..55).collect::<Vec<_>>()[..]);
        }
    }

    #[test]
    fn too_small_budgets_are_rejected() {
        let err = stratified_plan(12, 8, 10, 0).unwrap_err();
        match err {
            PredictError::BudgetTooSmall { budget, minimum } => {
                assert_eq!(budget, 10);
                assert_eq!(minimum, 12 + 7);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn plan_feeds_build_sampled() {
        // End-to-end against the workloads crate: the plan's indices are a
        // valid selection (solos first, sorted, in range).
        let plan = stratified_plan(4, 3, 12, 0x5EED).unwrap();
        let names: Vec<String> = (0..4).map(|b| format!("b{b}")).collect();
        let table = workloads::PerfTable::synthetic_sampled(names, 3, plan.indices(), |combo| {
            vec![1.0 / combo.len() as f64; combo.len()]
        })
        .unwrap();
        assert_eq!(table.len(), plan.len());
    }
}
