//! Pluggable interference-model fitting: from sampled coschedule
//! measurements to a rate predictor.
//!
//! A [`Fitter`] turns a set of [`RateSample`]s — per-coschedule total rates
//! for a subset of the enumeration — into a [`RatePredictor`] answering
//! per-job rate queries for *any* multiset, measured or not. Two fitters
//! ship:
//!
//! * [`BottleneckFitter`] — the paper's Section V-C linear-bottleneck
//!   model, generalised from the full-table
//!   [`symbiosis::fit_linear_bottleneck`] to sample rows
//!   ([`symbiosis::fit_linear_bottleneck_rows`]). N parameters (one
//!   full-resource rate per type); exact for true bottleneck workloads,
//!   a deliberately rigid baseline elsewhere.
//! * [`InterferenceFitter`] — a richer per-type least-squares contention
//!   model (`N·(N+1)` parameters) solved with [`lp::linsys`]: each type's
//!   per-job rate is an affine function of the full co-runner count
//!   vector, fitted over every sample the type appears in (all coschedule
//!   sizes, so partial-coschedule queries interpolate instead of
//!   extrapolating).
//!
//! Predictors clamp their output to at least [`MIN_PREDICTED_RATE`] so a
//! badly extrapolating fit degrades to a tiny positive rate instead of
//! violating the [`symbiosis::RateModel`] contract (rates of present types
//! must be finite and positive).

use lp::{linsys, Matrix};
use symbiosis::fit_linear_bottleneck_rows;

use crate::PredictError;

/// Smallest per-job rate a predictor will report: the positive floor that
/// keeps fitted models inside the `RateModel` contract even where the fit
/// extrapolates badly (e.g. negative bottleneck coefficients).
pub const MIN_PREDICTED_RATE: f64 = 1e-9;

/// One measured coschedule: the multiset and each type's *total* rate in
/// it (the `r_b(s)` convention of [`symbiosis::WorkloadRates`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RateSample {
    /// Per-type job counts (length = number of types; sum between 1 and
    /// the machine's context count).
    pub counts: Vec<u32>,
    /// Per-type total rates (0 for absent types).
    pub rates: Vec<f64>,
}

impl RateSample {
    /// Number of jobs in the sampled multiset.
    pub fn size(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Validates the sample against a model shape.
    pub(crate) fn validate(&self, num_types: usize, contexts: usize) -> Result<(), PredictError> {
        if self.counts.len() != num_types || self.rates.len() != num_types {
            return Err(PredictError::Shape(format!(
                "sample {:?} does not match {num_types} types",
                self.counts
            )));
        }
        let size = self.size();
        if size == 0 || size as usize > contexts {
            return Err(PredictError::Shape(format!(
                "sample {:?} has size {size}, machine has {contexts} contexts",
                self.counts
            )));
        }
        for (b, (&c, &r)) in self.counts.iter().zip(&self.rates).enumerate() {
            if !r.is_finite() || r < 0.0 {
                return Err(PredictError::Shape(format!(
                    "sample {:?}: rate of type {b} is {r}",
                    self.counts
                )));
            }
            if c == 0 && r != 0.0 {
                return Err(PredictError::Shape(format!(
                    "sample {:?}: absent type {b} has rate {r}",
                    self.counts
                )));
            }
            if c > 0 && r <= 0.0 {
                return Err(PredictError::Shape(format!(
                    "sample {:?}: present type {b} has non-positive rate {r}",
                    self.counts
                )));
            }
        }
        Ok(())
    }
}

/// A fitted interference model: per-job rate queries for any multiset.
pub trait RatePredictor: Send + Sync {
    /// Predicted rate of one job of type `ty` inside the multiset `counts`
    /// — finite and at least [`MIN_PREDICTED_RATE`].
    fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64;

    /// The fitted coefficient rows, for inspection and pinning tests.
    /// Layout is fitter-specific and documented on each fitter.
    fn coefficients(&self) -> Vec<Vec<f64>>;
}

/// A pluggable interference-model fit: samples in, predictor out.
///
/// Implementations must be deterministic — same samples, same predictor —
/// so refits and reruns reproduce.
pub trait Fitter: Send + Sync {
    /// Registry-style name used in reports (e.g. `bottleneck`).
    fn name(&self) -> &'static str;

    /// Fits the model to `samples` for a machine with `num_types` job
    /// types and `contexts` hardware contexts.
    ///
    /// # Errors
    ///
    /// [`PredictError::NotEnoughSamples`] when the sample set cannot
    /// identify the model, [`PredictError::Fit`] when the underlying
    /// least-squares solve fails.
    fn fit(
        &self,
        num_types: usize,
        contexts: usize,
        samples: &[RateSample],
    ) -> Result<Box<dyn RatePredictor>, PredictError>;
}

/// Clamps a fitted prediction into the `RateModel` contract.
fn clamp_rate(v: f64) -> f64 {
    if v.is_finite() {
        v.max(MIN_PREDICTED_RATE)
    } else {
        MIN_PREDICTED_RATE
    }
}

/// The linear-bottleneck fit of Section V-C, as a [`Fitter`].
///
/// Fits full-resource rates `R_b` (least squares over the sampled *full*
/// coschedules: `sum_b r_b(s)/R_b ≈ 1`), then predicts the per-job rate of
/// type `b` in an `n`-job multiset as `min(solo_b, R_b / n)` — equal
/// resource shares among the jobs present, capped at the measured solo
/// rate. Both canonical bottleneck families are reproduced exactly: the
/// equal-share pipe (`r_b(s) = c_b/n · R_b`) and insensitive jobs
/// (`r_b(s) = c_b · R_b/K`, where the solo cap binds).
///
/// [`RatePredictor::coefficients`] layout: row 0 is `R_b`, row 1 the solo
/// caps (`f64::INFINITY` where no solo sample exists).
pub struct BottleneckFitter;

struct BottleneckPredictor {
    full_rates: Vec<f64>,
    solo: Vec<f64>,
}

impl RatePredictor for BottleneckPredictor {
    fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64 {
        let n: u32 = counts.iter().sum();
        let share = self.full_rates[ty] / n as f64;
        clamp_rate(share.min(self.solo[ty]))
    }

    fn coefficients(&self) -> Vec<Vec<f64>> {
        vec![self.full_rates.clone(), self.solo.clone()]
    }
}

impl Fitter for BottleneckFitter {
    fn name(&self) -> &'static str {
        "bottleneck"
    }

    fn fit(
        &self,
        num_types: usize,
        contexts: usize,
        samples: &[RateSample],
    ) -> Result<Box<dyn RatePredictor>, PredictError> {
        // The bottleneck equation `sum_b r_b(s)/R_b = 1` describes a fully
        // utilised resource — only saturated (full) coschedules obey it.
        let rows: Vec<&[f64]> = samples
            .iter()
            .filter(|s| s.size() as usize == contexts)
            .map(|s| s.rates.as_slice())
            .collect();
        if rows.is_empty() {
            return Err(PredictError::NotEnoughSamples(
                "bottleneck fit needs at least one full coschedule sample".into(),
            ));
        }
        let fit = fit_linear_bottleneck_rows(&rows, num_types)
            .map_err(|e| PredictError::Fit(e.to_string()))?;
        let mut solo = vec![f64::INFINITY; num_types];
        for s in samples.iter().filter(|s| s.size() == 1) {
            if let Some(b) = s.counts.iter().position(|&c| c == 1) {
                solo[b] = s.rates[b];
            }
        }
        Ok(Box::new(BottleneckPredictor {
            full_rates: fit.full_rates,
            solo,
        }))
    }
}

/// A per-type affine contention model, fitted by least squares — the
/// "richer" [`Fitter`] of the pair.
///
/// For each type `b`, the per-job rate in multiset `s` is modelled as
/// `θ_b0 + sum_j θ_bj · c_j(s)` and fitted (via [`lp::linsys`]'s normal
/// equations, ridge-regularised when rank-deficient) over every sample in
/// which the type appears — all coschedule sizes, so solos anchor the
/// intercepts and partial multisets interpolate.
///
/// [`RatePredictor::coefficients`] layout: row `b` is
/// `[θ_b0, θ_b1, ..., θ_bN]`.
pub struct InterferenceFitter;

struct InterferencePredictor {
    theta: Vec<Vec<f64>>,
}

impl RatePredictor for InterferencePredictor {
    fn per_job_rate(&self, counts: &[u32], ty: usize) -> f64 {
        let theta = &self.theta[ty];
        let mut v = theta[0];
        for (j, &c) in counts.iter().enumerate() {
            v += theta[j + 1] * c as f64;
        }
        clamp_rate(v)
    }

    fn coefficients(&self) -> Vec<Vec<f64>> {
        self.theta.clone()
    }
}

impl Fitter for InterferenceFitter {
    fn name(&self) -> &'static str {
        "interference-lsq"
    }

    fn fit(
        &self,
        num_types: usize,
        _contexts: usize,
        samples: &[RateSample],
    ) -> Result<Box<dyn RatePredictor>, PredictError> {
        let mut theta = Vec::with_capacity(num_types);
        for b in 0..num_types {
            let rows: Vec<&RateSample> = samples.iter().filter(|s| s.counts[b] > 0).collect();
            if rows.is_empty() {
                return Err(PredictError::NotEnoughSamples(format!(
                    "type {b} appears in no sample"
                )));
            }
            let mut a = Matrix::zeros(rows.len(), num_types + 1);
            let mut y = Vec::with_capacity(rows.len());
            for (i, s) in rows.iter().enumerate() {
                a[(i, 0)] = 1.0;
                for (j, &c) in s.counts.iter().enumerate() {
                    a[(i, j + 1)] = c as f64;
                }
                y.push(s.rates[b] / s.counts[b] as f64);
            }
            let coef = linsys::least_squares(&a, &y)
                .map_err(|e| PredictError::Fit(format!("type {b}: {e}")))?;
            theta.push(coef);
        }
        Ok(Box::new(InterferencePredictor { theta }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbiosis::enumerate_coschedules;

    /// Samples of an exact equal-share bottleneck: `r_b(s) = c_b/n · R_b`.
    fn bottleneck_samples(big_r: &[f64], k: usize) -> Vec<RateSample> {
        let n = big_r.len();
        let mut samples = Vec::new();
        for size in 1..=k {
            for s in enumerate_coschedules(n, size) {
                let total = s.size() as f64;
                samples.push(RateSample {
                    counts: s.counts().to_vec(),
                    rates: s
                        .counts()
                        .iter()
                        .zip(big_r)
                        .map(|(&c, &r)| c as f64 / total * r)
                        .collect(),
                });
            }
        }
        samples
    }

    /// Samples of an exact affine contention law (per-job rates).
    fn affine_samples(theta: &[Vec<f64>], k: usize) -> Vec<RateSample> {
        let n = theta.len();
        let mut samples = Vec::new();
        for size in 1..=k {
            for s in enumerate_coschedules(n, size) {
                let rates: Vec<f64> = (0..n)
                    .map(|b| {
                        if s.count(b) == 0 {
                            0.0
                        } else {
                            let mut v = theta[b][0];
                            for (j, &c) in s.counts().iter().enumerate() {
                                v += theta[b][j + 1] * c as f64;
                            }
                            s.count(b) as f64 * v
                        }
                    })
                    .collect();
                samples.push(RateSample {
                    counts: s.counts().to_vec(),
                    rates,
                });
            }
        }
        samples
    }

    /// The ISSUE's pinning fixture: the dense (all-samples) bottleneck case
    /// must recover the exact generator coefficients.
    #[test]
    fn bottleneck_fitter_pins_exact_coefficients_on_the_dense_case() {
        let big_r = [2.0, 1.0, 0.5];
        let samples = bottleneck_samples(&big_r, 3);
        let pred = BottleneckFitter.fit(3, 3, &samples).unwrap();
        let coef = pred.coefficients();
        for (got, want) in coef[0].iter().zip(big_r) {
            assert!((got - want).abs() < 1e-6, "R_b {got} vs {want}");
        }
        // Solo caps are the measured solo rates: R_b themselves here.
        for (got, want) in coef[1].iter().zip(big_r) {
            assert!((got - want).abs() < 1e-12, "solo {got} vs {want}");
        }
        // Predictions reproduce the generator on full and partial sizes.
        assert!((pred.per_job_rate(&[1, 1, 1], 0) - 2.0 / 3.0).abs() < 1e-6);
        assert!((pred.per_job_rate(&[1, 1, 0], 1) - 0.5).abs() < 1e-6);
        assert!((pred.per_job_rate(&[1, 0, 0], 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn bottleneck_fitter_caps_insensitive_jobs_at_solo_rate() {
        // Insensitive jobs: r_b(s) = c_b * rate_b; solo rate binds for
        // every partial multiset.
        let samples: Vec<RateSample> = enumerate_coschedules(2, 4)
            .into_iter()
            .map(|s| RateSample {
                counts: s.counts().to_vec(),
                rates: s
                    .counts()
                    .iter()
                    .zip([0.5, 0.25])
                    .map(|(&c, r)| c as f64 * r)
                    .collect(),
            })
            .chain([
                RateSample {
                    counts: vec![1, 0],
                    rates: vec![0.5, 0.0],
                },
                RateSample {
                    counts: vec![0, 1],
                    rates: vec![0.0, 0.25],
                },
            ])
            .collect();
        let pred = BottleneckFitter.fit(2, 4, &samples).unwrap();
        // R_b = K * rate_b = 2.0 / 1.0; the solo cap keeps any smaller
        // multiset at the insensitive per-job rate.
        assert!((pred.per_job_rate(&[1, 0], 0) - 0.5).abs() < 1e-6);
        assert!((pred.per_job_rate(&[1, 1], 0) - 0.5).abs() < 1e-6);
        assert!((pred.per_job_rate(&[2, 2], 1) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn bottleneck_fitter_requires_full_samples() {
        let samples = vec![RateSample {
            counts: vec![1, 0],
            rates: vec![1.0, 0.0],
        }];
        assert!(matches!(
            BottleneckFitter.fit(2, 2, &samples),
            Err(PredictError::NotEnoughSamples(_))
        ));
    }

    /// The second pinning fixture: the affine fitter must recover an exact
    /// affine generator's coefficients from the dense sample set.
    #[test]
    fn interference_fitter_pins_exact_coefficients_on_the_dense_case() {
        let theta = vec![
            vec![1.00, -0.10, -0.05, -0.02],
            vec![0.80, -0.04, -0.12, -0.03],
            vec![0.60, -0.02, -0.03, -0.08],
        ];
        let samples = affine_samples(&theta, 3);
        let pred = InterferenceFitter.fit(3, 3, &samples).unwrap();
        let coef = pred.coefficients();
        for (b, want_row) in theta.iter().enumerate() {
            for (got, want) in coef[b].iter().zip(want_row) {
                assert!(
                    (got - want).abs() < 1e-6,
                    "theta[{b}]: {:?} vs {want_row:?}",
                    coef[b]
                );
            }
        }
        // Exact reproduction everywhere, including unmeasured queries.
        assert!((pred.per_job_rate(&[2, 0, 1], 0) - (1.0 - 0.2 - 0.02)).abs() < 1e-6);
    }

    #[test]
    fn interference_fitter_identifies_from_a_sampled_subset() {
        let theta = vec![vec![1.0, -0.1, -0.06], vec![0.7, -0.03, -0.09]];
        let all = affine_samples(&theta, 4);
        // Every other sample still spans the feature space.
        let subset: Vec<RateSample> = all.into_iter().step_by(2).collect();
        let pred = InterferenceFitter.fit(2, 4, &subset).unwrap();
        for (b, want_row) in theta.iter().enumerate() {
            for (got, want) in pred.coefficients()[b].iter().zip(want_row) {
                assert!((got - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn interference_fitter_rejects_uncovered_types() {
        let samples = vec![RateSample {
            counts: vec![2, 0],
            rates: vec![1.0, 0.0],
        }];
        assert!(matches!(
            InterferenceFitter.fit(2, 2, &samples),
            Err(PredictError::NotEnoughSamples(_))
        ));
    }

    #[test]
    fn predictions_are_clamped_positive() {
        // A generator that pushes the affine fit strongly negative for
        // large counts the fit never saw.
        let samples = vec![
            RateSample {
                counts: vec![1, 0],
                rates: vec![0.2, 0.0],
            },
            RateSample {
                counts: vec![0, 1],
                rates: vec![0.0, 1.0],
            },
            RateSample {
                counts: vec![1, 1],
                rates: vec![0.05, 0.4],
            },
        ];
        let pred = InterferenceFitter.fit(2, 8, &samples).unwrap();
        let v = pred.per_job_rate(&[1, 7], 0);
        assert!(v >= MIN_PREDICTED_RATE && v.is_finite());
    }

    #[test]
    fn sample_validation_catches_malformed_rows() {
        let ok = RateSample {
            counts: vec![1, 1],
            rates: vec![0.5, 0.4],
        };
        assert!(ok.validate(2, 2).is_ok());
        assert!(ok.validate(3, 2).is_err(), "shape mismatch");
        assert!(ok.validate(2, 1).is_err(), "oversized multiset");
        let absent = RateSample {
            counts: vec![1, 0],
            rates: vec![0.5, 0.1],
        };
        assert!(absent.validate(2, 2).is_err(), "absent type with rate");
        let nonpos = RateSample {
            counts: vec![1, 1],
            rates: vec![0.5, 0.0],
        };
        assert!(nonpos.validate(2, 2).is_err(), "present type rate 0");
    }
}
