//! Model-predicted symbiosis: fit an interference model to a *sampled*
//! subset of coschedule measurements and use it as a live rate source.
//!
//! The paper's central move is predicting co-run performance from per-job
//! profiles instead of measuring every combination. This crate makes that
//! move first-class for the reproduction:
//!
//! * [`stratified_plan`] — a seeded, stratified [`SamplePlan`] over the
//!   streamed coschedule enumeration ([`symbiosis::CoscheduleIter`] order):
//!   all solo runs plus a budgeted, size-stratified random subset of the
//!   co-run combos. Feed its indices to
//!   [`workloads::PerfTable::build_sampled`] (simulated) or
//!   [`workloads::PerfTable::synthetic_sampled`] (analytic) to measure only
//!   the budget.
//! * [`Fitter`] — the pluggable interference-model fit:
//!   [`BottleneckFitter`] (the Section V-C linear-bottleneck model,
//!   generalised to sample rows via
//!   [`symbiosis::fit_linear_bottleneck_rows`]) and [`InterferenceFitter`]
//!   (a richer per-type least-squares contention model solved with
//!   [`lp::linsys`]).
//! * [`PredictedModel`] — a fitted model implementing
//!   [`symbiosis::RateModel`] (conformance-tested, partial coschedules
//!   included), with per-sample [`Residual`] tracking, a
//!   [`PredictedModel::refit`] path for newly arriving measurements, and
//!   bridges back into the rest of the workspace:
//!   [`PredictedModel::workload_rates`] for per-workload LP/Markov
//!   analyses and [`PredictedModel::to_table`] for
//!   `session::Session::sweep` (use [`workloads::WorkUnit::Plain`] — the
//!   emitted "IPCs" are already predicted rates).
//!
//! # Example
//!
//! ```
//! use predict::{stratified_plan, InterferenceFitter, PredictedModel};
//! use symbiosis::RateModel;
//! use workloads::{PerfTable, WorkUnit};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Ground truth: an analytic contention law over 5 benchmarks, K = 3.
//! let names: Vec<String> = (0..5).map(|b| format!("bench{b}")).collect();
//! let law = |combo: &[usize]| -> Vec<f64> {
//!     combo
//!         .iter()
//!         .map(|&b| (1.0 + 0.2 * b as f64) / (1.0 + 0.3 * (combo.len() as f64 - 1.0)))
//!         .collect()
//! };
//!
//! // Measure only 24 of the 55 combos, stratified by coschedule size.
//! let plan = stratified_plan(5, 3, 24, 0xFEED)?;
//! let sampled = PerfTable::synthetic_sampled(names, 3, plan.indices(), law)?;
//!
//! // Fit, then predict rates for combos never measured.
//! let model = PredictedModel::from_table(
//!     &sampled,
//!     &[0, 1, 2, 3, 4],
//!     WorkUnit::Plain,
//!     Box::new(InterferenceFitter),
//! )?;
//! assert!(model.per_job_rate(&[1, 1, 0, 0, 1], 4) > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod fit;
pub mod model;
pub mod sample;

use std::error::Error;
use std::fmt;

use symbiosis::SymbiosisError;
use workloads::TableError;

pub use fit::{
    BottleneckFitter, Fitter, InterferenceFitter, RatePredictor, RateSample, MIN_PREDICTED_RATE,
};
pub use model::{samples_from_table, ErrorSummary, PredictedModel, Residual};
pub use sample::{stratified_plan, SamplePlan, Stratum};

/// Errors from sampling, fitting or predicting.
#[derive(Debug)]
pub enum PredictError {
    /// The sample budget cannot cover the mandatory strata (all solo runs
    /// plus at least one combo per coschedule size).
    BudgetTooSmall {
        /// The requested budget.
        budget: usize,
        /// The smallest budget the plan shape admits.
        minimum: usize,
    },
    /// A fit was attempted without the samples it needs.
    NotEnoughSamples(String),
    /// A sample or query has the wrong shape for the model.
    Shape(String),
    /// The underlying least-squares / analysis machinery failed.
    Fit(String),
    /// Materialising tables from or for the model failed.
    Table(TableError),
    /// Rate validation failed.
    Rates(SymbiosisError),
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::BudgetTooSmall { budget, minimum } => write!(
                f,
                "sample budget {budget} too small: the stratified plan needs at least {minimum}"
            ),
            PredictError::NotEnoughSamples(msg) => write!(f, "not enough samples: {msg}"),
            PredictError::Shape(msg) => write!(f, "shape mismatch: {msg}"),
            PredictError::Fit(msg) => write!(f, "fit failed: {msg}"),
            PredictError::Table(e) => write!(f, "table: {e}"),
            PredictError::Rates(e) => write!(f, "rates: {e}"),
        }
    }
}

impl Error for PredictError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PredictError::Table(e) => Some(e),
            PredictError::Rates(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TableError> for PredictError {
    fn from(e: TableError) -> Self {
        PredictError::Table(e)
    }
}

impl From<SymbiosisError> for PredictError {
    fn from(e: SymbiosisError) -> Self {
        PredictError::Rates(e)
    }
}
