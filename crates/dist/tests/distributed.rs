//! End-to-end distributed-sweep coverage: the merged report must be
//! bitwise identical to a single-process `Session::sweep()` run — over
//! loopback transports, over real TCP, and under every seeded
//! `ChaosPlan` that leaves at least one live worker (crash, hang,
//! corrupt frames, duplicated frames, hedged stragglers) — and failure
//! modes (retry exhaustion, total worker loss, version skew, poisoned
//! chunks) must surface as clean errors.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use dist::{
    loopback_pair, loopback_pair_with_chaos, run_worker, ChaosPlan, ChaosTransport, Coordinator,
    DistConfig, DistError, TcpTransport, WorkerConfig,
};
use session::{Policy, Session, SweepBuilder, SweepReport};
use simproc::{BenchmarkProfile, Machine, MachineConfig};
use symbiosis::enumerate_workloads;
use workloads::{spec2006, PerfTable, TableStore};

fn tiny_table() -> &'static PerfTable {
    static TABLE: OnceLock<PerfTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let machine =
            Machine::new(MachineConfig::smt4().with_windows(2_000, 6_000)).expect("valid config");
        let suite: Vec<BenchmarkProfile> = spec2006().into_iter().take(5).collect();
        PerfTable::build(&machine, &suite, 4).expect("table builds")
    })
}

const JOBS: u64 = 4_000;
const SEED: u64 = 0xBEEF;

/// The reference sweep every distributed variant must reproduce bitwise.
fn reference_sweep() -> SweepBuilder<'static> {
    Session::sweep()
        .table(tiny_table())
        .workloads(enumerate_workloads(5, 3)) // 10 mixes
        .policies([Policy::Worst, Policy::FcfsEvent, Policy::Optimal])
        .fcfs_jobs(JOBS)
        .seed(SEED)
}

fn reference_report() -> &'static SweepReport {
    static REPORT: OnceLock<SweepReport> = OnceLock::new();
    REPORT.get_or_init(|| reference_sweep().run().expect("reference sweep runs"))
}

/// Bitwise equality: `SweepReport` derives `PartialEq` over `f64` fields,
/// which is value equality; pin the bits explicitly as well.
fn assert_bitwise_equal(distributed: &SweepReport, reference: &SweepReport) {
    assert_eq!(distributed, reference);
    for (d, r) in distributed.rows.iter().zip(&reference.rows) {
        assert_eq!(d.workload, r.workload);
        for (dp, rp) in d.report.rows.iter().zip(&r.report.rows) {
            assert_eq!(dp.throughput.to_bits(), rp.throughput.to_bits());
        }
    }
}

fn temp_store_dir(tag: &str) -> PathBuf {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "symb-dist-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn loopback_workers_reproduce_the_sweep_bitwise() {
    let coordinator = Coordinator::from_sweep(
        reference_sweep(),
        DistConfig {
            chunk_size: 3, // 10 workloads -> 4 uneven chunks
            ..DistConfig::default()
        },
    )
    .unwrap();
    let (c1, w1) = loopback_pair();
    let (c2, w2) = loopback_pair();
    let workers: Vec<_> = [w1, w2]
        .into_iter()
        .map(|t| std::thread::spawn(move || run_worker(t, &WorkerConfig::default())))
        .collect();
    let outcome = coordinator.run(vec![c1, c2]).expect("distributed run");
    assert_bitwise_equal(&outcome.report, reference_report());
    assert_eq!(outcome.chunks, 4);

    let mut chunks = 0;
    let mut rows = 0;
    for handle in workers {
        let summary = handle.join().unwrap().expect("worker completes");
        assert!(!summary.table_from_cache);
        chunks += summary.chunks;
        rows += summary.rows;
    }
    assert_eq!(chunks, 4);
    assert_eq!(rows, reference_report().len());
    let logged: usize = outcome.workers.iter().map(|w| w.rows).sum();
    assert_eq!(logged, reference_report().len());
}

#[test]
fn tcp_workers_reproduce_the_sweep_bitwise() {
    let coordinator = Coordinator::from_sweep(reference_sweep(), DistConfig::default()).unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let transport = TcpTransport::connect(addr.as_str())?;
                run_worker(transport, &WorkerConfig::default())
            })
        })
        .collect();
    let outcome = coordinator.serve_listener(&listener, 2).expect("tcp run");
    assert_bitwise_equal(&outcome.report, reference_report());
    for handle in workers {
        handle.join().unwrap().expect("worker completes");
    }
}

#[test]
fn a_worker_killed_mid_sweep_is_rerouted_and_parity_holds() {
    let coordinator = Coordinator::from_sweep(
        reference_sweep(),
        DistConfig {
            chunk_size: 2, // 5 chunks, so the victim dies with work left
            ..DistConfig::default()
        },
    )
    .unwrap();
    // The victim's end dies after 6 frames: Hello, Welcome, TableRequest,
    // TableBytes, FetchChunk, Chunk — then while returning its first Rows
    // frame, exactly a worker process crashing mid-sweep with a chunk
    // held. The coordinator must re-queue that chunk.
    let (c1, w1) = loopback_pair_with_chaos(ChaosPlan::crash_after(6));
    let (c2, w2) = loopback_pair();
    let victim = std::thread::spawn(move || run_worker(w1, &WorkerConfig::default()));
    let survivor = std::thread::spawn(move || run_worker(w2, &WorkerConfig::default()));
    let outcome = coordinator
        .run(vec![
            c1.with_recv_timeout(Duration::from_secs(5)),
            c2.with_recv_timeout(Duration::from_secs(120)),
        ])
        .expect("run completes despite the dead worker");
    assert_bitwise_equal(&outcome.report, reference_report());

    // The victim observed its own death as a transport failure.
    assert!(matches!(
        victim.join().unwrap(),
        Err(DistError::Disconnected(_))
    ));
    let summary = survivor.join().unwrap().expect("survivor completes");
    // The survivor picked up everything, including the re-queued chunk.
    assert_eq!(summary.rows, reference_report().len());
    assert_eq!(summary.chunks, 5);
}

#[test]
fn retry_budget_exhaustion_surfaces_a_clean_error() {
    let coordinator = Coordinator::from_sweep(
        reference_sweep(),
        DistConfig {
            chunk_size: 2,
            retry_budget: 0, // first transport failure on a held chunk is fatal
            ..DistConfig::default()
        },
    )
    .unwrap();
    let (c1, w1) = loopback_pair_with_chaos(ChaosPlan::crash_after(6));
    let worker = std::thread::spawn(move || run_worker(w1, &WorkerConfig::default()));
    let err = coordinator
        .run(vec![c1.with_recv_timeout(Duration::from_secs(5))])
        .expect_err("budget 0 cannot absorb a worker death");
    assert!(
        matches!(err, DistError::RetryExhausted { attempts: 1, .. }),
        "unexpected error: {err}"
    );
    let _ = worker.join().unwrap();
}

#[test]
fn losing_every_worker_reports_incomplete() {
    let coordinator = Coordinator::from_sweep(
        reference_sweep(),
        DistConfig {
            chunk_size: 2,
            retry_budget: 5, // generous budget: the failure is worker loss
            ..DistConfig::default()
        },
    )
    .unwrap();
    let (c1, w1) = loopback_pair_with_chaos(ChaosPlan::crash_after(6));
    let worker = std::thread::spawn(move || run_worker(w1, &WorkerConfig::default()));
    let err = coordinator
        .run(vec![c1.with_recv_timeout(Duration::from_secs(5))])
        .expect_err("the only worker died with chunks outstanding");
    assert!(
        matches!(err, DistError::Incomplete { remaining } if remaining > 0),
        "unexpected error: {err}"
    );
    let _ = worker.join().unwrap();
}

#[test]
fn a_hung_worker_times_out_and_its_chunk_is_requeued() {
    let coordinator = Coordinator::from_sweep(
        reference_sweep(),
        DistConfig {
            chunk_size: 2,
            ..DistConfig::default()
        },
    )
    .unwrap();
    // After 6 frames the victim's end goes silent without hanging up:
    // sends pretend to succeed, reads time out — a wedged process, not a
    // dead one. The coordinator can only detect it by timeout, after
    // which the held chunk must return to the queue.
    let (c1, w1) = loopback_pair_with_chaos(ChaosPlan::hang_after(6));
    let (c2, w2) = loopback_pair();
    let victim = std::thread::spawn(move || run_worker(w1, &WorkerConfig::default()));
    let survivor = std::thread::spawn(move || run_worker(w2, &WorkerConfig::default()));
    let outcome = coordinator
        .run(vec![
            c1.with_recv_timeout(Duration::from_secs(2)),
            c2.with_recv_timeout(Duration::from_secs(120)),
        ])
        .expect("run completes despite the hung worker");
    assert_bitwise_equal(&outcome.report, reference_report());
    assert!(outcome.requeues >= 1, "requeues: {}", outcome.requeues);

    // The victim observed its own hang as silence, not a hangup.
    assert!(matches!(victim.join().unwrap(), Err(DistError::Timeout(_))));
    let summary = survivor.join().unwrap().expect("survivor completes");
    assert_eq!(summary.rows, reference_report().len());
}

#[test]
fn a_straggler_chunk_is_hedged_to_an_idle_worker() {
    let coordinator = Coordinator::from_sweep(
        reference_sweep(),
        DistConfig {
            chunk_size: 2,
            hedge: true,
            ..DistConfig::default()
        },
    )
    .unwrap();
    // The victim wedges silently on its first chunk. The survivor drains
    // the rest of the queue in well under the victim connection's read
    // timeout and goes idle — with hedging on, it is handed a copy of
    // the straggler chunk and completes the sweep; the victim's answer
    // never arrives, so the hedge's answer is the one that counts.
    let (c1, w1) = loopback_pair_with_chaos(ChaosPlan::hang_after(6));
    let (c2, w2) = loopback_pair();
    let victim = std::thread::spawn(move || run_worker(w1, &WorkerConfig::default()));
    let survivor = std::thread::spawn(move || run_worker(w2, &WorkerConfig::default()));
    let outcome = coordinator
        .run(vec![
            c1.with_recv_timeout(Duration::from_secs(3)),
            c2.with_recv_timeout(Duration::from_secs(120)),
        ])
        .expect("the hedge completes the sweep");
    assert_bitwise_equal(&outcome.report, reference_report());
    assert!(outcome.hedges >= 1, "hedges: {}", outcome.hedges);

    assert!(matches!(victim.join().unwrap(), Err(DistError::Timeout(_))));
    let summary = survivor.join().unwrap().expect("survivor completes");
    // The survivor evaluated every chunk, the hedged straggler included.
    assert_eq!(summary.rows, reference_report().len());
}

#[test]
fn corrupt_frames_strike_without_killing_the_run() {
    let coordinator = Coordinator::from_sweep(
        reference_sweep(),
        DistConfig {
            chunk_size: 2,
            ..DistConfig::default()
        },
    )
    .unwrap();
    // Every frame the coordinator reads from w1 arrives with one flipped
    // bit: the checksum rejects it, the connection takes a strike instead
    // of killing the run, and the clean worker carries the sweep to
    // bitwise parity. (Both coordinator ends wear a ChaosTransport so the
    // transport vector is homogeneous; c2's plan is the transparent
    // default.)
    let (c1, w1) = loopback_pair();
    let c1 = ChaosTransport::new(
        c1.with_recv_timeout(Duration::from_millis(300)),
        ChaosPlan {
            corrupt: 1.0,
            seed: 7,
            ..ChaosPlan::default()
        },
    );
    let (c2, w2) = loopback_pair();
    let c2 = ChaosTransport::new(c2, ChaosPlan::default());
    let victim = std::thread::spawn(move || {
        run_worker(
            w1.with_recv_timeout(Duration::from_secs(2)),
            &WorkerConfig::default(),
        )
    });
    let survivor = std::thread::spawn(move || run_worker(w2, &WorkerConfig::default()));
    let outcome = coordinator
        .run(vec![c1, c2])
        .expect("the clean worker carries the sweep");
    assert_bitwise_equal(&outcome.report, reference_report());
    assert!(outcome.strikes >= 1, "strikes: {}", outcome.strikes);

    // The victim never got a (legible) answer to its Hello: it times out
    // waiting, or sees the hangup when its coordinator thread retires.
    assert!(matches!(
        victim.join().unwrap(),
        Err(DistError::Timeout(_) | DistError::Disconnected(_))
    ));
    survivor.join().unwrap().expect("survivor completes");
}

#[test]
fn a_babbling_worker_is_quarantined_after_repeated_strikes() {
    use dist::{Frame, Transport, PROTOCOL_VERSION};

    let coordinator = Coordinator::from_sweep(
        reference_sweep(),
        DistConfig {
            quarantine_limit: 2,
            ..DistConfig::default()
        },
    )
    .unwrap();
    let (c1, mut w1) = loopback_pair();
    let (c2, w2) = loopback_pair();
    let babbler = std::thread::spawn(move || {
        w1.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })
        .unwrap();
        assert!(matches!(w1.recv().unwrap(), Frame::Welcome { .. }));
        // Drained is a coordinator-to-worker frame; coming from a worker
        // each one is an unexpected frame, i.e. one strike.
        for _ in 0..3 {
            w1.send(&Frame::Drained).unwrap();
        }
    });
    let honest = std::thread::spawn(move || run_worker(w2, &WorkerConfig::default()));
    let outcome = coordinator
        .run(vec![c1, c2])
        .expect("the honest worker carries the sweep");
    assert_bitwise_equal(&outcome.report, reference_report());
    // Strikes one and two are tolerated; the third exceeds the limit and
    // quarantines the connection.
    assert_eq!(outcome.strikes, 3);
    babbler.join().unwrap();
    honest.join().unwrap().expect("honest worker completes");
}

#[test]
fn duplicated_frames_are_discarded_by_chunk_id() {
    let dir = temp_store_dir("dup");

    // Warm the table cache first so the chaos run's conversation has no
    // TableRequest/TableBytes exchange — a duplicated TableRequest would
    // desynchronize the handshake beyond what this test pins.
    let coordinator = Coordinator::from_sweep(reference_sweep(), DistConfig::default()).unwrap();
    let (c0, w0) = loopback_pair();
    let store = TableStore::new(dir.clone());
    let warmer = std::thread::spawn(move || {
        run_worker(
            w0,
            &WorkerConfig {
                threads: 0,
                cache: Some(store),
            },
        )
    });
    coordinator.run(vec![c0]).expect("warm-up run");
    warmer.join().unwrap().expect("warmer completes");

    // Now every frame the worker sends arrives twice. Duplicate Rows are
    // discarded by chunk id; duplicate FetchChunks make the coordinator
    // re-send this connection's own straggler (burning attempts), so give
    // the budget headroom.
    let coordinator = Coordinator::from_sweep(
        reference_sweep(),
        DistConfig {
            chunk_size: 2,
            retry_budget: 20,
            ..DistConfig::default()
        },
    )
    .unwrap();
    let (c1, w1) = loopback_pair_with_chaos(ChaosPlan {
        duplicate: 1.0,
        ..ChaosPlan::default()
    });
    let store = TableStore::new(dir);
    let worker = std::thread::spawn(move || {
        run_worker(
            w1,
            &WorkerConfig {
                threads: 0,
                cache: Some(store),
            },
        )
    });
    let outcome = coordinator
        .run(vec![c1.with_recv_timeout(Duration::from_secs(30))])
        .expect("duplicates must not corrupt the run");
    assert_bitwise_equal(&outcome.report, reference_report());
    assert!(
        outcome.duplicates >= 1,
        "duplicates: {}",
        outcome.duplicates
    );
    // The worker may end cleanly (Drained) or observe the coordinator
    // hanging up after the sweep completed mid-duplicate-storm; either
    // way the merged report above is already pinned.
    let _ = worker.join().unwrap();
}

#[test]
fn workers_cache_the_table_and_reuse_it_across_sweeps() {
    let dir = temp_store_dir("cache");

    // Cold: the table travels over the wire and lands in the cache.
    let coordinator = Coordinator::from_sweep(reference_sweep(), DistConfig::default()).unwrap();
    let (c1, w1) = loopback_pair();
    let store_cold = TableStore::new(dir.clone());
    let worker = std::thread::spawn(move || {
        run_worker(
            w1,
            &WorkerConfig {
                threads: 0,
                cache: Some(store_cold),
            },
        )
    });
    let cold = coordinator.run(vec![c1]).expect("cold run");
    let summary = worker.join().unwrap().expect("worker completes");
    assert!(!summary.table_from_cache);
    assert_bitwise_equal(&cold.report, reference_report());

    // Warm: a fresh worker against the same cache loads locally.
    let (c2, w2) = loopback_pair();
    let store_warm = TableStore::new(dir.clone());
    let worker = std::thread::spawn(move || {
        run_worker(
            w2,
            &WorkerConfig {
                threads: 0,
                cache: Some(store_warm),
            },
        )
    });
    let warm = coordinator.run(vec![c2]).expect("warm run");
    let summary = worker.join().unwrap().expect("worker completes");
    assert!(summary.table_from_cache);
    assert_bitwise_equal(&warm.report, reference_report());
}

#[test]
fn version_skew_is_rejected_without_killing_the_run() {
    use dist::{Frame, Transport, PROTOCOL_VERSION};

    let coordinator = Coordinator::from_sweep(reference_sweep(), DistConfig::default()).unwrap();
    // One impostor speaking a future protocol, one honest worker.
    let (c1, mut w1) = loopback_pair();
    let (c2, w2) = loopback_pair();
    let impostor = std::thread::spawn(move || {
        w1.send(&Frame::Hello {
            version: PROTOCOL_VERSION + 1,
        })
        .unwrap();
        w1.recv()
    });
    let honest = std::thread::spawn(move || run_worker(w2, &WorkerConfig::default()));
    let outcome = coordinator
        .run(vec![c1, c2])
        .expect("the honest worker carries the sweep");
    assert_bitwise_equal(&outcome.report, reference_report());
    let answer = impostor.join().unwrap().expect("impostor gets an answer");
    assert!(
        matches!(&answer, Frame::Error { message } if message.contains("version")),
        "unexpected answer: {answer:?}"
    );
    honest.join().unwrap().expect("honest worker completes");
}

#[test]
fn a_poisoned_chunk_aborts_the_run_without_retry() {
    // A workload with an out-of-range benchmark index fails evaluation
    // deterministically on any worker: the coordinator must abort, not
    // cycle the chunk through the retry budget.
    let sweep = Session::sweep()
        .table(tiny_table())
        .workloads(vec![vec![0, 1, 2], vec![0, 1, 99]])
        .policies([Policy::Optimal])
        .fcfs_jobs(JOBS)
        .seed(SEED);
    let coordinator = Coordinator::from_sweep(
        sweep,
        DistConfig {
            chunk_size: 1,
            retry_budget: 3,
            ..DistConfig::default()
        },
    )
    .unwrap();
    let (c1, w1) = loopback_pair();
    let worker = std::thread::spawn(move || run_worker(w1, &WorkerConfig::default()));
    let err = coordinator
        .run(vec![c1])
        .expect_err("a deterministic evaluation failure is fatal");
    assert!(
        matches!(err, DistError::Sweep(_)),
        "unexpected error: {err}"
    );
    assert!(matches!(worker.join().unwrap(), Err(DistError::Sweep(_))));
}

#[test]
fn invalid_configurations_are_rejected_before_any_worker_connects() {
    let no_workloads = Session::sweep()
        .table(tiny_table())
        .policies([Policy::Optimal]);
    assert!(matches!(
        Coordinator::from_sweep(no_workloads, DistConfig::default()),
        Err(DistError::Config(_))
    ));

    let bad_policy = Session::sweep()
        .table(tiny_table())
        .workload(&[0, 1, 2])
        .policy_names(["NOT-A-POLICY"]);
    assert!(matches!(
        Coordinator::from_sweep(bad_policy, DistConfig::default()),
        Err(DistError::Config(_))
    ));

    let fine = Coordinator::from_sweep(reference_sweep(), DistConfig::default()).unwrap();
    assert!(matches!(
        fine.run(Vec::<TcpTransport>::new()),
        Err(DistError::Config(_))
    ));
}

/// Every fault class a seeded `ChaosPlan` can inject must be accounted
/// for in `ChaosStats` exactly: one loopback mini-fleet per class, each
/// with a conversation shape that makes the injected count deterministic.
#[test]
fn chaos_stats_account_for_every_injected_fault_exactly() {
    use dist::ChaosStats;

    let config = || DistConfig {
        chunk_size: 3, // 10 workloads -> 4 chunks
        recv_timeout: Duration::from_secs(2),
        ..DistConfig::default()
    };

    // Delay: fires on every sent frame but changes nothing else, so a
    // lone worker completes the sweep having delayed exactly its
    // Hello + TableRequest + 4 x (FetchChunk + Rows) + final FetchChunk.
    let plan = ChaosPlan {
        seed: 1,
        delay: 1.0,
        max_delay: Duration::from_micros(50),
        ..ChaosPlan::default()
    };
    let coordinator = Coordinator::from_sweep(reference_sweep(), config()).unwrap();
    let (c1, w1) = loopback_pair_with_chaos(plan);
    let stats = w1.stats_handle();
    let worker = std::thread::spawn(move || run_worker(w1, &WorkerConfig::default()));
    let outcome = coordinator.run(vec![c1]).expect("delays are not failures");
    assert_bitwise_equal(&outcome.report, reference_report());
    worker.join().unwrap().expect("delayed worker completes");
    assert_eq!(
        *stats.lock().unwrap(),
        ChaosStats {
            delays: 11,
            ..ChaosStats::default()
        }
    );

    // The remaining classes each kill their victim at a deterministic
    // point in the handshake; a clean survivor carries the sweep.

    // Crash: frames crossing the victim are Hello, Welcome, TableRequest,
    // TableBytes — the fifth operation trips the trigger.
    let coordinator = Coordinator::from_sweep(reference_sweep(), config()).unwrap();
    let (c1, w1) = loopback_pair_with_chaos(ChaosPlan::crash_after(4));
    let stats = w1.stats_handle();
    let (c2, w2) = loopback_pair();
    let victim = std::thread::spawn(move || run_worker(w1, &WorkerConfig::default()));
    let survivor = std::thread::spawn(move || run_worker(w2, &WorkerConfig::default()));
    let outcome = coordinator.run(vec![c1, c2]).expect("survivor carries it");
    assert_bitwise_equal(&outcome.report, reference_report());
    assert!(victim.join().unwrap().is_err());
    survivor.join().unwrap().expect("survivor completes");
    assert_eq!(
        *stats.lock().unwrap(),
        ChaosStats {
            crashed: true,
            ..ChaosStats::default()
        }
    );

    // Hang: same trip point, but the end falls silent instead of dying;
    // the coordinator's short recv timeout writes the victim off.
    let mut cfg = config();
    cfg.recv_timeout = Duration::from_millis(300);
    let coordinator = Coordinator::from_sweep(reference_sweep(), cfg).unwrap();
    let (c1, w1) = loopback_pair_with_chaos(ChaosPlan::hang_after(4));
    let stats = w1.stats_handle();
    let (c2, w2) = loopback_pair();
    let victim = std::thread::spawn(move || run_worker(w1, &WorkerConfig::default()));
    let survivor = std::thread::spawn(move || run_worker(w2, &WorkerConfig::default()));
    let outcome = coordinator.run(vec![c1, c2]).expect("survivor carries it");
    assert_bitwise_equal(&outcome.report, reference_report());
    assert!(victim.join().unwrap().is_err());
    survivor.join().unwrap().expect("survivor completes");
    assert_eq!(
        *stats.lock().unwrap(),
        ChaosStats {
            hung: true,
            ..ChaosStats::default()
        }
    );

    // Corrupt: the victim's first received frame (Welcome) is bit-flipped
    // and fails decode, so exactly one corruption is ever injected.
    let coordinator = Coordinator::from_sweep(reference_sweep(), config()).unwrap();
    let (c1, w1) = loopback_pair_with_chaos(ChaosPlan {
        seed: 7,
        corrupt: 1.0,
        ..ChaosPlan::default()
    });
    let stats = w1.stats_handle();
    let (c2, w2) = loopback_pair();
    let victim = std::thread::spawn(move || run_worker(w1, &WorkerConfig::default()));
    let survivor = std::thread::spawn(move || run_worker(w2, &WorkerConfig::default()));
    let outcome = coordinator.run(vec![c1, c2]).expect("survivor carries it");
    assert_bitwise_equal(&outcome.report, reference_report());
    assert!(matches!(victim.join().unwrap(), Err(DistError::Protocol(_))));
    survivor.join().unwrap().expect("survivor completes");
    assert_eq!(
        *stats.lock().unwrap(),
        ChaosStats {
            corruptions: 1,
            ..ChaosStats::default()
        }
    );

    // Drop: the victim's Hello vanishes — its only send — and it then
    // times out waiting for a Welcome that can never come.
    let coordinator = Coordinator::from_sweep(reference_sweep(), config()).unwrap();
    let (c1, w1) = loopback_pair();
    let w1 = ChaosTransport::new(
        w1.with_recv_timeout(Duration::from_millis(300)),
        ChaosPlan {
            seed: 5,
            drop: 1.0,
            ..ChaosPlan::default()
        },
    );
    let stats = w1.stats_handle();
    let (c2, w2) = loopback_pair();
    let victim = std::thread::spawn(move || run_worker(w1, &WorkerConfig::default()));
    let survivor = std::thread::spawn(move || run_worker(w2, &WorkerConfig::default()));
    let outcome = coordinator.run(vec![c1, c2]).expect("survivor carries it");
    assert_bitwise_equal(&outcome.report, reference_report());
    assert!(matches!(victim.join().unwrap(), Err(DistError::Timeout(_))));
    survivor.join().unwrap().expect("survivor completes");
    assert_eq!(
        *stats.lock().unwrap(),
        ChaosStats {
            drops: 1,
            ..ChaosStats::default()
        }
    );

    // Duplicate: the victim doubles Hello, TableRequest and FetchChunk,
    // then dies on the echoed second TableBytes — three duplicates, no
    // more, and parity still holds through the survivor.
    let coordinator = Coordinator::from_sweep(reference_sweep(), config()).unwrap();
    let (c1, w1) = loopback_pair_with_chaos(ChaosPlan {
        seed: 9,
        duplicate: 1.0,
        ..ChaosPlan::default()
    });
    let stats = w1.stats_handle();
    let (c2, w2) = loopback_pair();
    let victim = std::thread::spawn(move || run_worker(w1, &WorkerConfig::default()));
    let survivor = std::thread::spawn(move || run_worker(w2, &WorkerConfig::default()));
    let outcome = coordinator.run(vec![c1, c2]).expect("survivor carries it");
    assert_bitwise_equal(&outcome.report, reference_report());
    assert!(matches!(victim.join().unwrap(), Err(DistError::Protocol(_))));
    survivor.join().unwrap().expect("survivor completes");
    assert_eq!(
        *stats.lock().unwrap(),
        ChaosStats {
            duplicates: 3,
            ..ChaosStats::default()
        }
    );
}
