//! Fuzz-style robustness coverage for the wire-protocol decoder: seeded
//! random byte blobs, exhaustive single-bit flips, truncations, and
//! hostile length claims must all be rejected as clean
//! [`DistError::Protocol`] values — never a panic, never an
//! attacker-controlled allocation. Everything is driven by
//! [`SplitMix64`], so a failing input reproduces from the seed alone.

use dist::{DistError, Frame, PROTOCOL_VERSION};
use session::SessionReport;
use symbiosis::rng::SplitMix64;

/// A spread of small valid frames covering every payload shape that does
/// not need a full sweep spec (those are pinned by the proto unit tests).
fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::Hello {
            version: PROTOCOL_VERSION,
        },
        Frame::TableRequest,
        Frame::TableBytes {
            bytes: vec![0xAB; 33],
        },
        Frame::FetchChunk,
        Frame::Chunk {
            id: 7,
            workloads: vec![vec![0, 3, 9], vec![1, 1, 2]],
        },
        Frame::Rows {
            id: 7,
            reports: vec![SessionReport { rows: vec![] }],
        },
        Frame::Drained,
        Frame::Error {
            message: "chaos Ünïcode".into(),
        },
    ]
}

#[test]
fn random_byte_blobs_never_panic_the_decoder() {
    let mut rng = SplitMix64::new(0xF022_F022);
    for _ in 0..4_000 {
        let len = rng.next_range(512) as usize;
        let blob: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // The full wire path: a random blob passing the length and
        // checksum gates has probability ~2^-64, so this must reject.
        assert!(Frame::decode_wire(&blob).is_err());
        // The body-only path (transports normally checksum first, but
        // the decoder itself must stay total): random bytes may decode —
        // `[3]` is a legal TableRequest — but must never panic, and any
        // accepted frame must re-encode to a decodable image.
        if let Ok(frame) = Frame::decode(&blob) {
            let back = Frame::decode_wire(&frame.encode()).expect("round trip");
            assert_eq!(back, frame);
        }
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    for frame in sample_frames() {
        let wire = frame.encode();
        for bit in 0..wire.len() * 8 {
            let mut mutated = wire.clone();
            mutated[bit / 8] ^= 1 << (bit % 8);
            let err = Frame::decode_wire(&mutated).expect_err("flip must be caught");
            assert!(matches!(err, DistError::Protocol(_)), "bit {bit}: {err}");
        }
    }
}

#[test]
fn every_truncation_is_rejected() {
    for frame in sample_frames() {
        let wire = frame.encode();
        for cut in 0..wire.len() {
            assert!(
                Frame::decode_wire(&wire[..cut]).is_err(),
                "truncation to {cut} of {} bytes slipped through",
                wire.len()
            );
        }
    }
}

#[test]
fn seeded_splices_of_valid_frames_are_rejected() {
    let mut rng = SplitMix64::new(0x5EED_5EED);
    let frames = sample_frames();
    for round in 0..2_000 {
        let wire = frames[round % frames.len()].encode();
        let mut mutated = wire.clone();
        match rng.next_range(3) {
            // Overwrite a seeded run of bytes.
            0 => {
                let at = rng.next_range(mutated.len() as u64) as usize;
                let n = (rng.next_range(8) + 1) as usize;
                for b in mutated.iter_mut().skip(at).take(n) {
                    *b = rng.next_u64() as u8;
                }
            }
            // Insert seeded garbage mid-stream.
            1 => {
                let at = rng.next_range(mutated.len() as u64 + 1) as usize;
                mutated.insert(at, rng.next_u64() as u8);
            }
            // Delete a byte mid-stream.
            _ => {
                let at = rng.next_range(mutated.len() as u64) as usize;
                mutated.remove(at);
            }
        }
        if mutated == wire {
            continue; // the overwrite happened to rewrite identical bytes
        }
        assert!(
            Frame::decode_wire(&mutated).is_err(),
            "round {round}: a mutated image decoded"
        );
    }
}

#[test]
fn hostile_length_claims_are_rejected_without_over_allocation() {
    // A length prefix past MAX_FRAME_LEN must die at the length gate —
    // before anything the prefix controls is allocated.
    let mut wire = Vec::new();
    wire.extend_from_slice(&u32::MAX.to_le_bytes());
    wire.extend_from_slice(&[0u8; 16]);
    assert!(matches!(
        Frame::decode_wire(&wire),
        Err(DistError::Protocol(m)) if m.contains("exceeds")
    ));

    // Bodies claiming astronomically many elements must fail with a
    // truncation error once the (bounds-checked) cursor runs dry, not
    // allocate element_count * element_size up front. Each body is tiny,
    // so success here means the claimed counts never drove allocation.
    let mut chunk_body = vec![6u8]; // Chunk
    chunk_body.extend_from_slice(&7u64.to_le_bytes()); // id
    chunk_body.extend_from_slice(&u32::MAX.to_le_bytes()); // workload count
    assert!(matches!(
        Frame::decode(&chunk_body),
        Err(DistError::Protocol(m)) if m.contains("truncated")
    ));

    let mut rows_body = vec![7u8]; // Rows
    rows_body.extend_from_slice(&7u64.to_le_bytes()); // id
    rows_body.extend_from_slice(&u32::MAX.to_le_bytes()); // report count
    assert!(matches!(
        Frame::decode(&rows_body),
        Err(DistError::Protocol(m)) if m.contains("truncated")
    ));

    let mut bytes_body = vec![4u8]; // TableBytes
    bytes_body.extend_from_slice(&u64::MAX.to_le_bytes()); // byte count
    assert!(matches!(
        Frame::decode(&bytes_body),
        Err(DistError::Protocol(m)) if m.contains("truncated")
    ));

    let mut error_body = vec![9u8]; // Error
    error_body.extend_from_slice(&u32::MAX.to_le_bytes()); // string length
    assert!(matches!(
        Frame::decode(&error_body),
        Err(DistError::Protocol(m)) if m.contains("truncated")
    ));
}
