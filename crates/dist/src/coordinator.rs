//! The coordinator half: chunked work-queue dispatch over any set of
//! [`Transport`]s, with bounded retries and an order-preserving merge.
//!
//! The workload list is split into *consecutive* chunks up front; chunk
//! order therefore encodes original workload order, and reassembling the
//! per-chunk reports with [`SweepReport::merge`] in chunk order
//! reproduces the single-process [`session::Session::sweep`] report
//! bitwise — no matter which worker evaluated which chunk, in what
//! order, or how many times a chunk had to be re-handed out.
//!
//! Dispatch is pull-based: workers ask ([`crate::proto::Frame::FetchChunk`])
//! and the coordinator answers with the next pending chunk, so fast
//! workers naturally take more of the queue and a straggler holds at most
//! one chunk. A worker that disconnects or times out while holding a
//! chunk returns it to the queue; each chunk carries a bounded attempt
//! budget so a poisoned chunk (or a flapping fleet) surfaces
//! [`DistError::RetryExhausted`] instead of cycling forever. A worker
//! that *reports* a failure ([`crate::proto::Frame::Error`]) aborts the
//! sweep without retry: sweep evaluation is deterministic, so the chunk
//! would fail identically everywhere.

use std::collections::VecDeque;
use std::net::TcpListener;
use std::ops::Range;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use session::{Policy, SessionReport, SweepBuilder, SweepReport, SweepRow, SweepSpec};
use workloads::PerfTable;

use crate::proto::{Frame, PROTOCOL_VERSION};
use crate::transport::{TcpTransport, Transport};
use crate::DistError;

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Workloads per chunk; 0 (the default) sizes chunks automatically
    /// (~32 chunks over the whole sweep, at least 1 workload each) so the
    /// queue stays long enough for pull-based balancing.
    pub chunk_size: usize,
    /// Re-queues allowed per chunk after transport failures. Attempt
    /// `retry_budget + 1` failing is fatal
    /// ([`DistError::RetryExhausted`]). Default 2.
    pub retry_budget: usize,
    /// Per-connection read timeout on the coordinator side; a worker that
    /// holds a chunk silently for longer is treated as lost and its chunk
    /// re-queued. Default 120 s.
    pub recv_timeout: Duration,
    /// How long [`Coordinator::serve_listener`] waits for the expected
    /// number of workers to connect. Default 60 s.
    pub accept_timeout: Duration,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            chunk_size: 0,
            retry_budget: 2,
            recv_timeout: Duration::from_secs(120),
            accept_timeout: Duration::from_secs(60),
        }
    }
}

/// Per-worker accounting from one coordinated run.
#[derive(Debug, Clone)]
pub struct WorkerLog {
    /// The transport's peer label (TCP address or loopback tag).
    pub peer: String,
    /// Chunks this worker completed.
    pub chunks: usize,
    /// Sweep rows this worker produced.
    pub rows: usize,
    /// Wall-clock time from handshake to disconnect.
    pub wall: Duration,
}

impl WorkerLog {
    /// Rows per second over this worker's connection lifetime.
    pub fn rows_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.rows as f64 / secs
        } else {
            0.0
        }
    }
}

/// A completed distributed sweep: the merged report plus accounting.
#[derive(Debug, Clone)]
pub struct DistOutcome {
    /// The merged sweep report, bitwise identical to a single-process
    /// run over the same workload list.
    pub report: SweepReport,
    /// Per-worker throughput accounting, in connection order.
    pub workers: Vec<WorkerLog>,
    /// Number of chunks the workload list was split into.
    pub chunks: usize,
}

/// Book-keeping for one run, shared across worker-serving threads.
struct Shared {
    state: Mutex<QueueState>,
    cv: Condvar,
}

struct QueueState {
    /// Chunk indices awaiting hand-out.
    pending: VecDeque<usize>,
    /// Hand-out attempts per chunk (1 = first try).
    attempts: Vec<usize>,
    /// Completed per-chunk reports, indexed by chunk.
    reports: Vec<Option<Vec<SessionReport>>>,
    /// Chunks completed so far.
    done: usize,
    /// First fatal error; ends the whole run.
    fatal: Option<DistError>,
}

/// Shards one sweep across workers. See the module docs for the
/// dispatch and retry semantics.
pub struct Coordinator {
    table_bytes: Vec<u8>,
    fingerprint: u64,
    workloads: Vec<Vec<usize>>,
    chunks: Vec<Range<usize>>,
    spec: SweepSpec,
    config: DistConfig,
}

impl Coordinator {
    /// Builds a coordinator from the three shards of a sweep (table,
    /// workload list, spec) — what [`SweepBuilder::shard`] returns.
    ///
    /// # Errors
    ///
    /// [`DistError::Config`] when the workload list is empty, the policy
    /// list is empty, or a policy name does not resolve — all checked
    /// here, before any worker sees the job.
    pub fn new(
        table: &PerfTable,
        workloads: Vec<Vec<usize>>,
        spec: SweepSpec,
        config: DistConfig,
    ) -> Result<Self, DistError> {
        if workloads.is_empty() {
            return Err(DistError::Config("no workloads to sweep".into()));
        }
        if spec.policies.is_empty() {
            return Err(DistError::Config("no policies requested".into()));
        }
        for name in &spec.policies {
            if Policy::by_name(name).is_none() {
                return Err(DistError::Config(format!("unknown policy {name:?}")));
            }
        }
        let chunk_size = if config.chunk_size == 0 {
            workloads.len().div_ceil(32).max(1)
        } else {
            config.chunk_size
        };
        let chunks: Vec<Range<usize>> = (0..workloads.len())
            .step_by(chunk_size)
            .map(|start| start..(start + chunk_size).min(workloads.len()))
            .collect();
        Ok(Coordinator {
            table_bytes: table.to_bytes(),
            fingerprint: table.content_fingerprint(),
            workloads,
            chunks,
            spec,
            config,
        })
    }

    /// Builds a coordinator straight from a configured [`SweepBuilder`]
    /// (the common entry point: configure the sweep exactly as for
    /// `run()`, then distribute it instead).
    ///
    /// # Errors
    ///
    /// [`DistError::Config`] on any builder validation failure (missing
    /// table, no workloads, unknown policy) or invalid `config`.
    pub fn from_sweep(sweep: SweepBuilder<'_>, config: DistConfig) -> Result<Self, DistError> {
        let (table, workloads, spec) = sweep
            .shard()
            .map_err(|e| DistError::Config(e.to_string()))?;
        Coordinator::new(table, workloads, spec, config)
    }

    /// Number of chunks the workload list was split into.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Runs the sweep over an explicit set of connected transports (one
    /// per worker), blocking until every chunk is answered or the run
    /// fails. This is the transport-agnostic core; TCP callers use
    /// [`Coordinator::serve_tcp`] / [`Coordinator::serve_listener`].
    ///
    /// # Errors
    ///
    /// [`DistError::Sweep`] when a worker reports a deterministic
    /// evaluation failure, [`DistError::RetryExhausted`] when one chunk
    /// burns through its attempt budget, [`DistError::Incomplete`] when
    /// every worker is gone with work outstanding, or
    /// [`DistError::Config`] when `workers` is empty.
    pub fn run<T: Transport + Send>(&self, workers: Vec<T>) -> Result<DistOutcome, DistError> {
        if workers.is_empty() {
            return Err(DistError::Config("no workers to run on".into()));
        }
        let shared = Shared {
            state: Mutex::new(QueueState {
                pending: (0..self.chunks.len()).collect(),
                attempts: vec![0; self.chunks.len()],
                reports: vec![None; self.chunks.len()],
                done: 0,
                fatal: None,
            }),
            cv: Condvar::new(),
        };

        let logs: Vec<WorkerLog> = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .into_iter()
                .map(|mut transport| {
                    let shared = &shared;
                    scope.spawn(move || {
                        let peer = transport.peer();
                        let started = Instant::now();
                        let mut log = WorkerLog {
                            peer,
                            chunks: 0,
                            rows: 0,
                            wall: Duration::ZERO,
                        };
                        let mut held: Option<usize> = None;
                        let outcome =
                            self.serve_worker(&mut transport, shared, &mut held, &mut log);
                        if let Err(error) = outcome {
                            self.retire_worker(shared, held, error);
                        }
                        log.wall = started.elapsed();
                        log
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker-serving thread panicked"))
                .collect()
        });

        let mut state = self.lock(&shared);
        if let Some(fatal) = state.fatal.take() {
            return Err(fatal);
        }
        if state.done != self.chunks.len() {
            return Err(DistError::Incomplete {
                remaining: self.chunks.len() - state.done,
            });
        }
        let mut parts = Vec::with_capacity(self.chunks.len());
        for (chunk, reports) in self.chunks.iter().zip(state.reports.drain(..)) {
            let reports = reports.expect("done == chunks implies every slot is filled");
            let rows = self.workloads[chunk.clone()]
                .iter()
                .zip(reports)
                .map(|(w, report)| SweepRow {
                    workload: w.clone(),
                    report,
                })
                .collect();
            parts.push(SweepReport { rows });
        }
        Ok(DistOutcome {
            report: SweepReport::merge(parts),
            workers: logs,
            chunks: self.chunks.len(),
        })
    }

    /// Accepts `nworkers` TCP connections on `listener` (within
    /// [`DistConfig::accept_timeout`]), then runs the sweep over them.
    /// Binding the listener first (port 0 works) lets callers learn the
    /// address before spawning workers.
    ///
    /// # Errors
    ///
    /// [`DistError::Timeout`] when too few workers connect in time, plus
    /// everything [`Coordinator::run`] reports.
    pub fn serve_listener(
        &self,
        listener: &TcpListener,
        nworkers: usize,
    ) -> Result<DistOutcome, DistError> {
        if nworkers == 0 {
            return Err(DistError::Config("need at least one worker".into()));
        }
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + self.config.accept_timeout;
        let mut transports = Vec::with_capacity(nworkers);
        while transports.len() < nworkers {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    transports.push(TcpTransport::from_stream(stream, self.config.recv_timeout)?);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(DistError::Timeout(format!(
                            "only {} of {nworkers} workers connected within {:?}",
                            transports.len(),
                            self.config.accept_timeout
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e.into()),
            }
        }
        self.run(transports)
    }

    /// Binds `addr`, then behaves as [`Coordinator::serve_listener`].
    ///
    /// # Errors
    ///
    /// [`DistError::Io`] when the address cannot be bound, plus
    /// everything [`Coordinator::serve_listener`] reports.
    pub fn serve_tcp(&self, addr: &str, nworkers: usize) -> Result<DistOutcome, DistError> {
        let listener = TcpListener::bind(addr)?;
        self.serve_listener(&listener, nworkers)
    }

    fn lock<'s>(&self, shared: &'s Shared) -> std::sync::MutexGuard<'s, QueueState> {
        shared
            .state
            .lock()
            .expect("queue mutex poisoned: a serving thread panicked")
    }

    /// One worker's conversation, from handshake to Drained. On `Err`
    /// the caller settles the held chunk via
    /// [`Coordinator::retire_worker`].
    fn serve_worker<T: Transport>(
        &self,
        transport: &mut T,
        shared: &Shared,
        held: &mut Option<usize>,
        log: &mut WorkerLog,
    ) -> Result<(), DistError> {
        match transport.recv()? {
            Frame::Hello {
                version: PROTOCOL_VERSION,
            } => {}
            Frame::Hello { version } => {
                let mismatch = DistError::VersionMismatch {
                    ours: PROTOCOL_VERSION,
                    theirs: version,
                };
                let _ = transport.send(&Frame::Error {
                    message: mismatch.to_string(),
                });
                // A worker from another build is not a queue failure:
                // report it on stderr and serve the remaining workers.
                eprintln!("dist: rejected worker {}: {mismatch}", transport.peer());
                return Ok(());
            }
            other => {
                return Err(DistError::Protocol(format!(
                    "expected Hello, got {other:?}"
                )))
            }
        }
        transport.send(&Frame::Welcome {
            version: PROTOCOL_VERSION,
            table_fingerprint: self.fingerprint,
            spec: self.spec.clone(),
            total_workloads: self.workloads.len() as u64,
        })?;

        loop {
            match transport.recv()? {
                Frame::TableRequest => transport.send(&Frame::TableBytes {
                    bytes: self.table_bytes.clone(),
                })?,
                Frame::FetchChunk => {
                    let next = {
                        let mut state = self.lock(shared);
                        loop {
                            if let Some(fatal) = &state.fatal {
                                let fatal = fatal.clone();
                                drop(state);
                                let _ = transport.send(&Frame::Error {
                                    message: fatal.to_string(),
                                });
                                return Ok(()); // the run is already lost; exit quietly
                            }
                            if let Some(id) = state.pending.pop_front() {
                                state.attempts[id] += 1;
                                break Some(id);
                            }
                            if state.done == self.chunks.len() {
                                break None;
                            }
                            // Work is outstanding on other workers; wait
                            // for a completion, a re-queue, or a fatal.
                            state = shared
                                .cv
                                .wait(state)
                                .expect("queue mutex poisoned while waiting");
                        }
                    };
                    match next {
                        Some(id) => {
                            *held = Some(id);
                            let range = self.chunks[id].clone();
                            transport.send(&Frame::Chunk {
                                id: id as u64,
                                workloads: self.workloads[range].to_vec(),
                            })?;
                        }
                        None => {
                            transport.send(&Frame::Drained)?;
                            return Ok(());
                        }
                    }
                }
                Frame::Rows { id, reports } => {
                    let id = id as usize;
                    if *held != Some(id) {
                        return Err(DistError::Protocol(format!(
                            "rows for chunk {id} but this worker holds {held:?}"
                        )));
                    }
                    let expected = self.chunks[id].len();
                    if reports.len() != expected {
                        return Err(DistError::Protocol(format!(
                            "chunk {id} carries {expected} workloads but the worker answered {}",
                            reports.len()
                        )));
                    }
                    *held = None;
                    log.chunks += 1;
                    log.rows += reports.len();
                    let mut state = self.lock(shared);
                    if state.reports[id].is_none() {
                        state.reports[id] = Some(reports);
                        state.done += 1;
                    }
                    shared.cv.notify_all();
                }
                Frame::Error { message } => {
                    // The worker hit a deterministic evaluation failure:
                    // retrying the chunk elsewhere would fail the same
                    // way, so the whole run aborts.
                    *held = None;
                    let error = DistError::Sweep(message);
                    let mut state = self.lock(shared);
                    state.fatal.get_or_insert(error.clone());
                    shared.cv.notify_all();
                    return Err(error);
                }
                other => {
                    return Err(DistError::Protocol(format!(
                        "unexpected frame from worker: {other:?}"
                    )))
                }
            }
        }
    }

    /// Settles a failed worker connection: re-queues its held chunk
    /// under the retry budget, or records the fatal error that ends the
    /// run. (A worker-reported `Sweep` failure arrives here with no held
    /// chunk — `serve_worker` already recorded it as fatal.)
    fn retire_worker(&self, shared: &Shared, held: Option<usize>, error: DistError) {
        let mut state = self.lock(shared);
        if let Some(id) = held {
            let attempts = state.attempts[id];
            if attempts > self.config.retry_budget {
                state.fatal.get_or_insert(DistError::RetryExhausted {
                    chunk: id,
                    attempts,
                    last: error.to_string(),
                });
            } else if state.reports[id].is_none() {
                state.pending.push_back(id);
            }
        }
        shared.cv.notify_all();
    }
}
