//! The coordinator half: chunked work-queue dispatch over any set of
//! [`Transport`]s, with bounded retries and an order-preserving merge.
//!
//! The workload list is split into *consecutive* chunks up front; chunk
//! order therefore encodes original workload order, and reassembling the
//! per-chunk reports with [`SweepReport::merge`] in chunk order
//! reproduces the single-process [`session::Session::sweep`] report
//! bitwise — no matter which worker evaluated which chunk, in what
//! order, or how many times a chunk had to be re-handed out.
//!
//! Dispatch is pull-based: workers ask ([`crate::proto::Frame::FetchChunk`])
//! and the coordinator answers with the next pending chunk, so fast
//! workers naturally take more of the queue and a straggler holds at most
//! one chunk. A worker that disconnects or times out while holding a
//! chunk returns it to the queue; each chunk carries a bounded attempt
//! budget so a poisoned chunk (or a flapping fleet) surfaces
//! [`DistError::RetryExhausted`] instead of cycling forever. A worker
//! that *reports* a failure ([`crate::proto::Frame::Error`]) aborts the
//! sweep without retry: sweep evaluation is deterministic, so the chunk
//! would fail identically everywhere.
//!
//! # Failure containment
//!
//! Three more mechanisms keep one bad connection from stalling or
//! corrupting the run (all deterministic, all exercised by the chaos
//! tests):
//!
//! - **Strikes and quarantine.** A malformed or unexpected frame is a
//!   *strike*, not a fatal error: the connection's held chunks return to
//!   the queue and the conversation continues. A connection exceeding
//!   [`DistConfig::quarantine_limit`] strikes is retired so a babbling
//!   worker cannot spin the coordinator forever.
//! - **Hedged re-dispatch.** With [`DistConfig::hedge`] enabled, an idle
//!   worker re-runs the lowest straggler chunk still in flight elsewhere
//!   (once per chunk). The first answer wins; later copies are discarded
//!   by chunk id, so duplicates never reach the merge and parity with
//!   the single-process sweep is preserved.
//! - **Bounded waits.** A worker waiting for the queue gives up after
//!   [`DistConfig::recv_timeout`] without global progress, so a silently
//!   wedged fleet ends in [`DistError::Timeout`] / [`DistError::Incomplete`]
//!   rather than a hang.

use std::collections::{HashMap, VecDeque};
use std::net::TcpListener;
use std::ops::Range;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use session::{Policy, SessionReport, SweepBuilder, SweepReport, SweepRow, SweepSpec};
use workloads::PerfTable;

use crate::backoff::Backoff;
use crate::proto::{Frame, PROTOCOL_VERSION};
use crate::transport::{TcpTransport, Transport};
use crate::DistError;

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Workloads per chunk; 0 (the default) sizes chunks automatically
    /// (~32 chunks over the whole sweep, at least 1 workload each) so the
    /// queue stays long enough for pull-based balancing.
    pub chunk_size: usize,
    /// Re-queues allowed per chunk after transport failures. Attempt
    /// `retry_budget + 1` failing is fatal
    /// ([`DistError::RetryExhausted`]). Default 2.
    pub retry_budget: usize,
    /// Per-connection read timeout on the coordinator side; a worker that
    /// holds a chunk silently for longer is treated as lost and its chunk
    /// re-queued. Also bounds how long an idle worker waits for the queue
    /// to move. Default 120 s.
    pub recv_timeout: Duration,
    /// How long [`Coordinator::serve_listener`] waits for the expected
    /// number of workers to connect. Default 60 s.
    pub accept_timeout: Duration,
    /// Hedged re-dispatch: when the queue is empty but chunks are still
    /// in flight, hand an idle worker a copy of the lowest straggler
    /// chunk (once per chunk; first answer wins, duplicates are
    /// discarded). Off by default — it trades duplicate work for tail
    /// latency, which distorts per-worker accounting in clean runs.
    pub hedge: bool,
    /// Protocol strikes (malformed or unexpected frames) a connection
    /// may accumulate before it is quarantined. Default 3.
    pub quarantine_limit: usize,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            chunk_size: 0,
            retry_budget: 2,
            recv_timeout: Duration::from_secs(120),
            accept_timeout: Duration::from_secs(60),
            hedge: false,
            quarantine_limit: 3,
        }
    }
}

/// Per-worker accounting from one coordinated run.
#[derive(Debug, Clone)]
pub struct WorkerLog {
    /// The transport's peer label (TCP address or loopback tag).
    pub peer: String,
    /// Chunks this worker completed.
    pub chunks: usize,
    /// Sweep rows this worker produced.
    pub rows: usize,
    /// Wall-clock time from handshake to disconnect.
    pub wall: Duration,
}

impl WorkerLog {
    /// Rows per second over this worker's connection lifetime.
    pub fn rows_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.rows as f64 / secs
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for WorkerLog {
    /// One aligned accounting row: peer, chunks, rows, wall, rows/s.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<24} {:>6} chunk(s) {:>8} row(s) {:>10.2?} {:>10.1} rows/s",
            self.peer,
            self.chunks,
            self.rows,
            self.wall,
            self.rows_per_sec()
        )
    }
}

/// A completed distributed sweep: the merged report plus accounting.
#[derive(Debug, Clone)]
pub struct DistOutcome {
    /// The merged sweep report, bitwise identical to a single-process
    /// run over the same workload list.
    pub report: SweepReport,
    /// Per-worker throughput accounting, in connection order.
    pub workers: Vec<WorkerLog>,
    /// Number of chunks the workload list was split into.
    pub chunks: usize,
    /// Chunks returned to the queue after a connection failed or struck.
    pub requeues: usize,
    /// Extra hand-outs of in-flight chunks (hedges and self-re-sends).
    pub hedges: usize,
    /// Redundant answers discarded by chunk id.
    pub duplicates: usize,
    /// Protocol strikes across all connections.
    pub strikes: usize,
    /// Coordinator-side metrics recorded during this run (empty when no
    /// [`obs`] recorder was installed).
    pub metrics: obs::MetricsSnapshot,
}

/// Book-keeping for one run, shared across worker-serving threads.
struct Shared {
    state: Mutex<QueueState>,
    cv: Condvar,
}

struct QueueState {
    /// Chunk indices awaiting hand-out (may contain stale entries for
    /// chunks that completed through another copy; hand-out skips them).
    pending: VecDeque<usize>,
    /// Hand-out attempts per chunk (1 = first try).
    attempts: Vec<usize>,
    /// Connections currently holding each chunk.
    inflight: Vec<usize>,
    /// Whether each chunk has used its one cross-worker hedge.
    hedged: Vec<bool>,
    /// Completed per-chunk reports, indexed by chunk.
    reports: Vec<Option<Vec<SessionReport>>>,
    /// Chunks completed so far.
    done: usize,
    /// Chunks returned to the queue by retire/strike.
    requeues: usize,
    /// Extra hand-outs of in-flight chunks.
    hedges: usize,
    /// Redundant answers discarded by chunk id.
    duplicates: usize,
    /// Protocol strikes across all connections.
    strikes: usize,
    /// First fatal error; ends the whole run.
    fatal: Option<DistError>,
}

impl QueueState {
    /// Returns `id` to the queue unless it is complete, already queued,
    /// or still held elsewhere.
    fn requeue_if_orphaned(&mut self, id: usize) {
        if self.reports[id].is_none() && self.inflight[id] == 0 && !self.pending.contains(&id) {
            self.pending.push_back(id);
            self.requeues += 1;
            obs::event!(Debug, "dist.chunk_requeued", "chunk {id} returned to the queue");
        }
    }
}

/// What a `FetchChunk` request is answered with.
enum NextChunk {
    /// Hand out this chunk.
    Hand(usize),
    /// The sweep is complete: send Drained and finish the conversation.
    Drained,
    /// The run is already lost: the Error frame went out, just exit.
    Abort,
}

/// Shards one sweep across workers. See the module docs for the
/// dispatch and retry semantics.
pub struct Coordinator {
    table_bytes: Vec<u8>,
    fingerprint: u64,
    workloads: Vec<Vec<usize>>,
    chunks: Vec<Range<usize>>,
    spec: SweepSpec,
    config: DistConfig,
}

impl Coordinator {
    /// Builds a coordinator from the three shards of a sweep (table,
    /// workload list, spec) — what [`SweepBuilder::shard`] returns.
    ///
    /// # Errors
    ///
    /// [`DistError::Config`] when the workload list is empty, the policy
    /// list is empty, or a policy name does not resolve — all checked
    /// here, before any worker sees the job.
    pub fn new(
        table: &PerfTable,
        workloads: Vec<Vec<usize>>,
        spec: SweepSpec,
        config: DistConfig,
    ) -> Result<Self, DistError> {
        if workloads.is_empty() {
            return Err(DistError::Config("no workloads to sweep".into()));
        }
        if spec.policies.is_empty() {
            return Err(DistError::Config("no policies requested".into()));
        }
        for name in &spec.policies {
            if Policy::by_name(name).is_none() {
                return Err(DistError::Config(format!("unknown policy {name:?}")));
            }
        }
        let chunk_size = if config.chunk_size == 0 {
            workloads.len().div_ceil(32).max(1)
        } else {
            config.chunk_size
        };
        let chunks: Vec<Range<usize>> = (0..workloads.len())
            .step_by(chunk_size)
            .map(|start| start..(start + chunk_size).min(workloads.len()))
            .collect();
        Ok(Coordinator {
            table_bytes: table.to_bytes(),
            fingerprint: table.content_fingerprint(),
            workloads,
            chunks,
            spec,
            config,
        })
    }

    /// Builds a coordinator straight from a configured [`SweepBuilder`]
    /// (the common entry point: configure the sweep exactly as for
    /// `run()`, then distribute it instead).
    ///
    /// # Errors
    ///
    /// [`DistError::Config`] on any builder validation failure (missing
    /// table, no workloads, unknown policy) or invalid `config`.
    pub fn from_sweep(sweep: SweepBuilder<'_>, config: DistConfig) -> Result<Self, DistError> {
        let (table, workloads, spec) = sweep
            .shard()
            .map_err(|e| DistError::Config(e.to_string()))?;
        Coordinator::new(table, workloads, spec, config)
    }

    /// Number of chunks the workload list was split into.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Runs the sweep over an explicit set of connected transports (one
    /// per worker), blocking until every chunk is answered or the run
    /// fails. This is the transport-agnostic core; TCP callers use
    /// [`Coordinator::serve_tcp`] / [`Coordinator::serve_listener`].
    ///
    /// # Errors
    ///
    /// [`DistError::Sweep`] when a worker reports a deterministic
    /// evaluation failure, [`DistError::RetryExhausted`] when one chunk
    /// burns through its attempt budget, [`DistError::Incomplete`] when
    /// every worker is gone with work outstanding, or
    /// [`DistError::Config`] when `workers` is empty.
    pub fn run<T: Transport + Send>(&self, workers: Vec<T>) -> Result<DistOutcome, DistError> {
        if workers.is_empty() {
            return Err(DistError::Config("no workers to run on".into()));
        }
        let shared = Shared {
            state: Mutex::new(QueueState {
                pending: (0..self.chunks.len()).collect(),
                attempts: vec![0; self.chunks.len()],
                inflight: vec![0; self.chunks.len()],
                hedged: vec![false; self.chunks.len()],
                reports: vec![None; self.chunks.len()],
                done: 0,
                requeues: 0,
                hedges: 0,
                duplicates: 0,
                strikes: 0,
                fatal: None,
            }),
            cv: Condvar::new(),
        };

        let ctx = obs::current();
        let _span = ctx.as_ref().map(|r| r.span("dist.run"));
        let before = ctx.as_ref().map(|r| r.snapshot());

        let logs: Vec<WorkerLog> = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .into_iter()
                .map(|mut transport| {
                    let shared = &shared;
                    let ctx = ctx.clone();
                    scope.spawn(move || {
                        let _obs = obs::install_current(&ctx);
                        let peer = transport.peer();
                        let started = Instant::now();
                        let mut log = WorkerLog {
                            peer,
                            chunks: 0,
                            rows: 0,
                            wall: Duration::ZERO,
                        };
                        let mut held: Vec<usize> = Vec::new();
                        let outcome =
                            self.serve_worker(&mut transport, shared, &mut held, &mut log);
                        if let Err(error) = outcome {
                            self.retire_worker(shared, held, error);
                        }
                        log.wall = started.elapsed();
                        log
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker-serving thread panicked"))
                .collect()
        });

        let mut state = self.lock(&shared);
        if let Some(fatal) = state.fatal.take() {
            return Err(fatal);
        }
        if state.done != self.chunks.len() {
            return Err(DistError::Incomplete {
                remaining: self.chunks.len() - state.done,
            });
        }
        let mut parts = Vec::with_capacity(self.chunks.len());
        let reports: Vec<_> = state.reports.drain(..).collect();
        for (chunk, reports) in self.chunks.iter().zip(reports) {
            let reports = reports.expect("done == chunks implies every slot is filled");
            let rows = self.workloads[chunk.clone()]
                .iter()
                .zip(reports)
                .map(|(w, report)| SweepRow {
                    workload: w.clone(),
                    report,
                })
                .collect();
            parts.push(SweepReport {
                rows,
                metrics: obs::MetricsSnapshot::default(),
            });
        }
        let metrics = match (&ctx, before) {
            (Some(rec), Some(before)) => {
                rec.counter("dist.chunks_completed").add(state.done as u64);
                rec.counter("dist.requeues").add(state.requeues as u64);
                rec.counter("dist.hedges").add(state.hedges as u64);
                rec.counter("dist.duplicates_discarded")
                    .add(state.duplicates as u64);
                rec.counter("dist.strikes").add(state.strikes as u64);
                drop(_span);
                obs::MetricsSnapshot::diff(&before, &rec.snapshot())
            }
            _ => obs::MetricsSnapshot::default(),
        };
        Ok(DistOutcome {
            report: SweepReport::merge(parts),
            workers: logs,
            chunks: self.chunks.len(),
            requeues: state.requeues,
            hedges: state.hedges,
            duplicates: state.duplicates,
            strikes: state.strikes,
            metrics,
        })
    }

    /// Accepts `nworkers` TCP connections on `listener` (within
    /// [`DistConfig::accept_timeout`]), then runs the sweep over them.
    /// Binding the listener first (port 0 works) lets callers learn the
    /// address before spawning workers.
    ///
    /// # Errors
    ///
    /// [`DistError::Timeout`] when too few workers connect in time, plus
    /// everything [`Coordinator::run`] reports.
    pub fn serve_listener(
        &self,
        listener: &TcpListener,
        nworkers: usize,
    ) -> Result<DistOutcome, DistError> {
        if nworkers == 0 {
            return Err(DistError::Config("need at least one worker".into()));
        }
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + self.config.accept_timeout;
        let mut backoff = Backoff::new(
            Duration::from_millis(1),
            Duration::from_millis(50),
            self.fingerprint,
        );
        let mut transports = Vec::with_capacity(nworkers);
        while transports.len() < nworkers {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    transports.push(TcpTransport::from_stream(stream, self.config.recv_timeout)?);
                    backoff.reset();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(DistError::Timeout(format!(
                            "only {} of {nworkers} workers connected within {:?}",
                            transports.len(),
                            self.config.accept_timeout
                        )));
                    }
                    backoff.sleep();
                }
                Err(e) => return Err(e.into()),
            }
        }
        self.run(transports)
    }

    /// Binds `addr`, then behaves as [`Coordinator::serve_listener`].
    ///
    /// # Errors
    ///
    /// [`DistError::Io`] when the address cannot be bound, plus
    /// everything [`Coordinator::serve_listener`] reports.
    pub fn serve_tcp(&self, addr: &str, nworkers: usize) -> Result<DistOutcome, DistError> {
        let listener = TcpListener::bind(addr)?;
        self.serve_listener(&listener, nworkers)
    }

    fn lock<'s>(&self, shared: &'s Shared) -> std::sync::MutexGuard<'s, QueueState> {
        shared
            .state
            .lock()
            .expect("queue mutex poisoned: a serving thread panicked")
    }

    /// Records a protocol strike against this connection: its held
    /// chunks go back to the queue (the conversation is desynchronized,
    /// so their answers can no longer be trusted to arrive) and the
    /// conversation continues — until the strike budget is exhausted and
    /// the connection is quarantined.
    fn strike(
        &self,
        shared: &Shared,
        held: &mut Vec<usize>,
        strikes: &mut usize,
        peer: &str,
        detail: &str,
    ) -> Result<(), DistError> {
        *strikes += 1;
        obs::event!(Debug, "dist.strike", "strike {strikes} against {peer}: {detail}");
        let mut state = self.lock(shared);
        state.strikes += 1;
        for id in held.drain(..) {
            state.inflight[id] = state.inflight[id].saturating_sub(1);
            state.requeue_if_orphaned(id);
        }
        shared.cv.notify_all();
        drop(state);
        if *strikes > self.config.quarantine_limit {
            obs::event!(
                Debug,
                "dist.quarantine",
                "worker {peer} quarantined after {strikes} strikes"
            );
            Err(DistError::Protocol(format!(
                "worker {peer} quarantined after {strikes} protocol strikes; last: {detail}"
            )))
        } else {
            Ok(())
        }
    }

    /// One worker's conversation, from handshake to Drained. On `Err`
    /// the caller settles the held chunks via
    /// [`Coordinator::retire_worker`].
    fn serve_worker<T: Transport>(
        &self,
        transport: &mut T,
        shared: &Shared,
        held: &mut Vec<usize>,
        log: &mut WorkerLog,
    ) -> Result<(), DistError> {
        let peer = transport.peer();
        let mut strikes = 0usize;
        // When each held chunk went out on this connection, for the
        // dist.chunk_us latency histogram (stale entries from struck or
        // re-handed chunks are simply overwritten or never read).
        let mut handed_at: HashMap<usize, Instant> = HashMap::new();
        let hello = loop {
            match transport.recv() {
                Ok(frame) => break frame,
                Err(DistError::Protocol(detail)) => {
                    self.strike(shared, held, &mut strikes, &peer, &detail)?
                }
                Err(e) => return Err(e),
            }
        };
        match hello {
            Frame::Hello {
                version: PROTOCOL_VERSION,
            } => {}
            Frame::Hello { version } => {
                let mismatch = DistError::VersionMismatch {
                    ours: PROTOCOL_VERSION,
                    theirs: version,
                };
                let _ = transport.send(&Frame::Error {
                    message: mismatch.to_string(),
                });
                // A worker from another build is not a queue failure:
                // warn (the event mirrors to stderr) and serve the
                // remaining workers.
                obs::event!(
                    Warn,
                    "dist.worker_rejected",
                    "rejected worker {}: {mismatch}",
                    transport.peer()
                );
                return Ok(());
            }
            other => {
                return Err(DistError::Protocol(format!(
                    "expected Hello, got {other:?}"
                )))
            }
        }
        transport.send(&Frame::Welcome {
            version: PROTOCOL_VERSION,
            table_fingerprint: self.fingerprint,
            spec: self.spec.clone(),
            total_workloads: self.workloads.len() as u64,
        })?;

        loop {
            let frame = match transport.recv() {
                Ok(frame) => frame,
                Err(DistError::Protocol(detail)) => {
                    // A malformed frame (e.g. a corrupted checksum) does
                    // not kill the connection: strike and keep serving.
                    self.strike(shared, held, &mut strikes, &peer, &detail)?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            match frame {
                Frame::TableRequest => transport.send(&Frame::TableBytes {
                    bytes: self.table_bytes.clone(),
                })?,
                Frame::FetchChunk => match self.next_chunk(transport, shared, held)? {
                    NextChunk::Hand(id) => {
                        held.push(id);
                        handed_at.insert(id, Instant::now());
                        let range = self.chunks[id].clone();
                        transport.send(&Frame::Chunk {
                            id: id as u64,
                            workloads: self.workloads[range].to_vec(),
                        })?;
                    }
                    NextChunk::Drained => {
                        transport.send(&Frame::Drained)?;
                        return Ok(());
                    }
                    NextChunk::Abort => return Ok(()),
                },
                Frame::Rows { id, reports } => {
                    let id = id as usize;
                    if id >= self.chunks.len() || reports.len() != self.chunks[id].len() {
                        let detail = format!(
                            "rows for chunk {id} with {} report(s) do not match the chunk map",
                            reports.len()
                        );
                        self.strike(shared, held, &mut strikes, &peer, &detail)?;
                        continue;
                    }
                    let mut state = self.lock(shared);
                    if let Some(pos) = held.iter().position(|&h| h == id) {
                        held.remove(pos);
                        state.inflight[id] = state.inflight[id].saturating_sub(1);
                    }
                    // First answer wins; a redundant copy (hedge, re-send
                    // or duplicated frame) is discarded by chunk id so
                    // the merge sees each chunk exactly once.
                    if state.reports[id].is_none() {
                        state.reports[id] = Some(reports);
                        state.done += 1;
                        log.chunks += 1;
                        log.rows += self.chunks[id].len();
                        if let (Some(rec), Some(at)) = (obs::current(), handed_at.remove(&id)) {
                            rec.histogram("dist.chunk_us")
                                .record(at.elapsed().as_micros() as f64);
                        }
                    } else {
                        state.duplicates += 1;
                    }
                    shared.cv.notify_all();
                }
                Frame::Error { message } => {
                    // The worker hit a deterministic evaluation failure:
                    // retrying the chunk elsewhere would fail the same
                    // way, so the whole run aborts.
                    let error = DistError::Sweep(message);
                    let mut state = self.lock(shared);
                    for id in held.drain(..) {
                        state.inflight[id] = state.inflight[id].saturating_sub(1);
                    }
                    state.fatal.get_or_insert(error.clone());
                    shared.cv.notify_all();
                    return Err(error);
                }
                other => {
                    let detail = format!("unexpected frame from worker: {other:?}");
                    self.strike(shared, held, &mut strikes, &peer, &detail)?;
                }
            }
        }
    }

    /// Picks the next chunk to hand this connection: a pending chunk if
    /// any, else a re-send of this connection's own straggler, else (with
    /// hedging on) a copy of the lowest chunk in flight elsewhere. Blocks
    /// — bounded by [`DistConfig::recv_timeout`] without progress — while
    /// work is outstanding on other connections.
    fn next_chunk<T: Transport>(
        &self,
        transport: &mut T,
        shared: &Shared,
        held: &[usize],
    ) -> Result<NextChunk, DistError> {
        let mut state = self.lock(shared);
        let mut deadline = Instant::now() + self.config.recv_timeout;
        let mut last_done = state.done;
        loop {
            if let Some(fatal) = &state.fatal {
                let fatal = fatal.clone();
                drop(state);
                let _ = transport.send(&Frame::Error {
                    message: fatal.to_string(),
                });
                return Ok(NextChunk::Abort); // the run is already lost
            }
            let popped = loop {
                match state.pending.pop_front() {
                    // Skip stale entries: the chunk completed through
                    // another copy after it was re-queued.
                    Some(id) if state.reports[id].is_some() => continue,
                    other => break other,
                }
            };
            if let Some(id) = popped {
                state.attempts[id] += 1;
                state.inflight[id] += 1;
                return Ok(NextChunk::Hand(id));
            }
            if state.done == self.chunks.len() {
                return Ok(NextChunk::Drained);
            }
            // This connection asked for work while one of its own chunks
            // is still unanswered — its answer was lost in flight
            // (dropped or mangled frame). Waiting would deadlock against
            // our own channel, so re-send the straggler, bounded by the
            // same attempt budget as re-queues.
            if let Some(&id) = held.iter().filter(|&&id| state.reports[id].is_none()).min() {
                if state.attempts[id] > self.config.retry_budget {
                    let fatal = DistError::RetryExhausted {
                        chunk: id,
                        attempts: state.attempts[id],
                        last: "the chunk's answers keep going missing".into(),
                    };
                    state.fatal.get_or_insert(fatal);
                    shared.cv.notify_all();
                    continue; // loop top reports the fatal to the worker
                }
                state.attempts[id] += 1;
                state.inflight[id] += 1;
                state.hedges += 1;
                obs::event!(
                    Debug,
                    "dist.hedge",
                    "re-sending chunk {id}: its answer went missing on this connection"
                );
                return Ok(NextChunk::Hand(id));
            }
            // Idle worker, work in flight elsewhere: hedge the lowest
            // straggler once so one slow or silent worker cannot drag
            // the tail of the run.
            if self.config.hedge {
                let straggler = (0..self.chunks.len()).find(|&id| {
                    state.reports[id].is_none() && state.inflight[id] > 0 && !state.hedged[id]
                });
                if let Some(id) = straggler {
                    state.hedged[id] = true;
                    state.inflight[id] += 1;
                    state.hedges += 1;
                    obs::event!(
                        Debug,
                        "dist.hedge",
                        "hedging straggler chunk {id} onto an idle worker"
                    );
                    return Ok(NextChunk::Hand(id));
                }
            }
            if state.done != last_done {
                last_done = state.done;
                deadline = Instant::now() + self.config.recv_timeout;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(DistError::Timeout(format!(
                    "no queue progress within {:?} with {} chunk(s) outstanding",
                    self.config.recv_timeout,
                    self.chunks.len() - state.done
                )));
            }
            let (guard, _) = shared
                .cv
                .wait_timeout(state, deadline - now)
                .expect("queue mutex poisoned while waiting");
            state = guard;
        }
    }

    /// Settles a failed worker connection: re-queues its held chunks
    /// under the retry budget, or records the fatal error that ends the
    /// run. (A worker-reported `Sweep` failure arrives here with no held
    /// chunks — `serve_worker` already recorded it as fatal.)
    fn retire_worker(&self, shared: &Shared, held: Vec<usize>, error: DistError) {
        let mut state = self.lock(shared);
        for id in held {
            state.inflight[id] = state.inflight[id].saturating_sub(1);
            if state.reports[id].is_some() {
                continue;
            }
            let attempts = state.attempts[id];
            if attempts > self.config.retry_budget {
                state.fatal.get_or_insert(DistError::RetryExhausted {
                    chunk: id,
                    attempts,
                    last: error.to_string(),
                });
            } else {
                state.requeue_if_orphaned(id);
            }
        }
        shared.cv.notify_all();
    }
}
