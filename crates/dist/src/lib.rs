//! Distributed sweeps: a sharded coordinator over [`session::Session::sweep`]
//! with a deterministic merge and fault-tolerant workers.
//!
//! The ROADMAP's "heavy traffic" lever: the 125 969-combo N=12/K=8
//! measurement sweep does not fit one machine's patience, but every sweep
//! row is an independent evaluation under identical per-workload knobs —
//! so sharding the workload list and merging shard reports in order
//! reproduces the single-process [`session::SweepReport`] *bitwise*. That
//! reproducibility guarantee (partitioning must never change results) is
//! this crate's first-class design constraint; the parity tests pin it,
//! including under injected mid-sweep worker failure.
//!
//! # Architecture
//!
//! * [`proto`] — the versioned, checksummed wire protocol (below).
//! * [`transport`] — a byte-faithful [`Transport`] abstraction:
//!   [`TcpTransport`] over std TCP, and an in-process [`loopback_pair`]
//!   that runs the *same encode/decode path* through a channel, so every
//!   protocol path is unit-testable without sockets.
//! * [`chaos`] — [`ChaosTransport`]: seeded deterministic fault
//!   injection (drop / delay / duplicate / corrupt / hang / crash) over
//!   any inner transport, TCP and loopback alike; the engine behind the
//!   failure-mode tests and the `paperbench chaos` storm.
//! * [`backoff`] — [`Backoff`]: the capped-exponential, seeded-jitter
//!   retry schedule shared by worker reconnects and the coordinator's
//!   accept poll.
//! * [`coordinator`] — [`Coordinator`]: splits the workload list into
//!   consecutive chunks, hands them out pull-based (work-queue style, so
//!   fast workers take more), re-queues chunks on worker
//!   disconnect/timeout under a bounded retry budget, strikes and
//!   quarantines connections that talk garbage, optionally hedges
//!   straggler chunks to idle workers, and reassembles rows in original
//!   workload order via [`session::SweepReport::merge`].
//! * [`worker`] — [`run_worker`]: connect, handshake, obtain the table
//!   (fingerprint-keyed [`workloads::TableStore`] cache hit, or bytes
//!   over the wire), then pull chunks until drained.
//!
//! # Failure-mode matrix
//!
//! What each injected (or real) fault looks like end to end. "Parity"
//! means the merged report stays bitwise-identical to the
//! single-process sweep — every recovery path below preserves it, since
//! duplicates are discarded by chunk id and chunk order fixes the merge.
//!
//! | fault | detection | recovery | user-visible outcome |
//! |-------|-----------|----------|----------------------|
//! | worker crash (hangup) | coordinator recv → `Disconnected` | held chunks re-queued under [`DistConfig::retry_budget`] | run completes on surviving workers; `requeues` counted |
//! | worker hang (silence) | coordinator recv → `Timeout` after [`DistConfig::recv_timeout`] | chunks re-queued; with [`DistConfig::hedge`] an idle worker re-runs the straggler sooner | run completes; `hedges`/`requeues` counted |
//! | corrupt frame | checksum/length check → `Protocol` | strike: held chunks re-queued, connection keeps serving; quarantined past [`DistConfig::quarantine_limit`] | run completes; `strikes` counted |
//! | dropped answer | worker asks for work while its chunk is open | coordinator re-sends the chunk to the same connection (budget-bounded) | run completes; `hedges` counted |
//! | duplicated frame | answer for an already-complete chunk | first answer wins, copy discarded by chunk id | run completes; `duplicates` counted |
//! | version skew | `Hello`/`Welcome` version check | connection rejected with an `Error` frame, fleet keeps serving | [`DistError::VersionMismatch`] on the skewed worker only |
//! | deterministic sweep failure | worker reports an `Error` frame | none — retrying would fail identically | [`DistError::Sweep`] aborts the run |
//! | chunk keeps failing | attempts exceed [`DistConfig::retry_budget`] | none | [`DistError::RetryExhausted`] names the chunk |
//! | every worker gone | scope drains with work outstanding | none | [`DistError::Incomplete`] with the remaining count |
//! | coordinator gone | worker recv → `Disconnected`/`Timeout` | worker reconnects under [`Backoff`] (CLI service mode) | worker exits cleanly after its last served sweep |
//!
//! # Wire protocol
//!
//! Every frame is length-prefixed and checksummed, mirroring the
//! `SYMBPERF` table format's integrity discipline. All integers are
//! little-endian; all `f64` travel as [`f64::to_bits`] so no value is
//! perturbed in transit (part of the bitwise-parity guarantee).
//!
//! ```text
//! frame := len:u32  body:[len bytes]  checksum:u64
//! body  := kind:u8  payload
//! ```
//!
//! `checksum` is FNV-1a 64 over `body`. A frame longer than
//! [`proto::MAX_FRAME_LEN`], a checksum mismatch, a trailing-byte
//! surplus, or an unknown `kind` all decode to [`DistError::Protocol`].
//!
//! ## Version handshake
//!
//! The worker speaks first: `Hello { version }`. The coordinator answers
//! `Welcome { version, table fingerprint, sweep spec, workload count }`
//! only when the versions match ([`proto::PROTOCOL_VERSION`]); otherwise
//! it answers an `Error` frame and drops the connection, and both sides
//! surface [`DistError::VersionMismatch`].
//!
//! ## Frames
//!
//! | kind | frame          | direction | payload |
//! |------|----------------|-----------|---------|
//! | 1    | `Hello`        | w → c     | protocol version |
//! | 2    | `Welcome`      | c → w     | version, table content fingerprint, [`session::SweepSpec`], total workload count |
//! | 3    | `TableRequest` | w → c     | — (cache miss: please ship the table) |
//! | 4    | `TableBytes`   | c → w     | canonical `SYMBPERF` bytes of the shared table |
//! | 5    | `FetchChunk`   | w → c     | — (pull-based work request) |
//! | 6    | `Chunk`        | c → w     | chunk id + workload index vectors |
//! | 7    | `Rows`         | w → c     | chunk id + serialized [`session::SessionReport`] per workload |
//! | 8    | `Drained`      | c → w     | — (no work left; disconnect cleanly) |
//! | 9    | `Error`        | both      | human-readable fatal error |
//!
//! ## Error frames
//!
//! `Error` is terminal in both directions. A worker sends it when a
//! chunk's evaluation fails *deterministically* (a
//! [`session::SweepError`] — retrying elsewhere would fail identically),
//! and the coordinator aborts the whole sweep rather than retry. The
//! coordinator sends it on version mismatch or when another worker
//! already surfaced a fatal error. Transport-level failures (disconnect,
//! timeout) are *not* error frames; the coordinator treats those as
//! worker loss and re-queues the held chunk under the retry budget.
//!
//! # Example
//!
//! Shard a sweep over three in-process workers (see
//! `examples/distributed_sweep.rs` for the full 495-mix version):
//!
//! ```no_run
//! use dist::{Coordinator, DistConfig, TcpTransport, WorkerConfig};
//! use session::{Policy, Session};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let table: workloads::PerfTable = unimplemented!();
//! let sweep = Session::sweep()
//!     .table(&table)
//!     .workloads(symbiosis::enumerate_workloads(12, 4))
//!     .policies([Policy::Worst, Policy::FcfsEvent, Policy::Optimal]);
//! let coordinator = Coordinator::from_sweep(sweep, DistConfig::default())?;
//! let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
//! let addr = listener.local_addr()?;
//! let workers: Vec<_> = (0..3)
//!     .map(|_| {
//!         std::thread::spawn(move || {
//!             let transport = TcpTransport::connect(&addr.to_string())?;
//!             dist::run_worker(transport, &WorkerConfig::default())
//!         })
//!     })
//!     .collect();
//! let outcome = coordinator.serve_listener(&listener, 3)?;
//! println!("{}", outcome.report); // bitwise equal to sweep.run()?
//! # Ok(())
//! # }
//! ```

use std::fmt;

pub mod backoff;
pub mod chaos;
pub mod coordinator;
pub mod proto;
pub mod transport;
pub mod worker;

pub use backoff::Backoff;
pub use chaos::{ChaosPlan, ChaosStats, ChaosTransport};
pub use coordinator::{Coordinator, DistConfig, DistOutcome, WorkerLog};
pub use proto::{Frame, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use transport::{loopback_pair, loopback_pair_with_chaos, TcpTransport, Transport};
pub use worker::{run_worker, WorkerConfig, WorkerSummary};

/// Everything that can go wrong in a distributed sweep, on either side of
/// the wire.
///
/// `Clone` so the coordinator can record one fatal error and surface it
/// from every worker-serving thread.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// An I/O failure that is not a timeout or disconnect.
    Io(String),
    /// The peer did not produce a frame within the configured read
    /// timeout. The coordinator treats this as worker loss.
    Timeout(String),
    /// The peer hung up (EOF, reset, broken pipe, injected fault).
    Disconnected(String),
    /// The byte stream violated the wire protocol: bad checksum,
    /// oversized frame, unknown kind, truncated or trailing payload, or a
    /// frame that is valid but unexpected in the current state.
    Protocol(String),
    /// The two sides speak different protocol versions.
    VersionMismatch {
        /// Our [`PROTOCOL_VERSION`].
        ours: u32,
        /// What the peer announced.
        theirs: u32,
    },
    /// The sweep configuration is invalid (empty workloads, unknown
    /// policy, missing table) — reported before any worker sees the job.
    Config(String),
    /// A chunk's evaluation failed deterministically on a worker; the
    /// sweep aborts without retry (every worker would fail identically).
    Sweep(String),
    /// The peer reported a fatal error frame.
    Remote(String),
    /// One chunk exhausted its retry budget.
    RetryExhausted {
        /// Index of the failing chunk.
        chunk: usize,
        /// Hand-out attempts made (initial + retries).
        attempts: usize,
        /// The last transport error that consumed the budget.
        last: String,
    },
    /// Every worker disconnected while work was still outstanding.
    Incomplete {
        /// Chunks not yet completed.
        remaining: usize,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(m) => write!(f, "i/o: {m}"),
            DistError::Timeout(m) => write!(f, "timed out: {m}"),
            DistError::Disconnected(m) => write!(f, "peer disconnected: {m}"),
            DistError::Protocol(m) => write!(f, "protocol violation: {m}"),
            DistError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
            DistError::Config(m) => write!(f, "sweep configuration: {m}"),
            DistError::Sweep(m) => write!(f, "sweep evaluation failed: {m}"),
            DistError::Remote(m) => write!(f, "peer reported: {m}"),
            DistError::RetryExhausted {
                chunk,
                attempts,
                last,
            } => write!(
                f,
                "chunk {chunk} failed on {attempts} worker(s), retry budget exhausted; last error: {last}"
            ),
            DistError::Incomplete { remaining } => write!(
                f,
                "all workers disconnected with {remaining} chunk(s) outstanding"
            ),
        }
    }
}

impl std::error::Error for DistError {}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => DistError::Timeout(e.to_string()),
            ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe => DistError::Disconnected(e.to_string()),
            _ => DistError::Io(e.to_string()),
        }
    }
}
