//! Deterministic fault injection for any [`Transport`].
//!
//! [`ChaosTransport`] wraps an inner transport and perturbs the frame
//! stream according to a seeded [`ChaosPlan`]: probabilistic per-frame
//! drop / delay / duplicate on send, bit-flip corruption on receive, and
//! two terminal frame-count triggers — **crash** (the underlying channel
//! closes, so the peer observes a hangup) and **hang** (this end falls
//! silent but the channel stays open, so the peer observes timeouts).
//! Every roll comes from a [`SplitMix64`] stream fixed by the plan's
//! seed, so a given `(plan, traffic)` pair replays the exact same fault
//! sequence — chaos tests are ordinary deterministic tests.
//!
//! The wrapper composes over loopback channels and TCP alike, which is
//! how both the unit tests and the `paperbench chaos` storm drive the
//! coordinator's recovery machinery (strikes, requeues, hedging) without
//! a real flaky network.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use symbiosis::rng::SplitMix64;

use crate::proto::Frame;
use crate::transport::Transport;
use crate::DistError;

/// A seeded fault schedule for one [`ChaosTransport`].
///
/// Probabilities are per-frame and independent; `0.0` disables a fault
/// class, `1.0` fires it on every frame. The two `*_after_frames`
/// triggers count frames crossing this end (sends and receives) and fire
/// at the start of the first operation once the count is reached.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Seed for the fault-roll stream.
    pub seed: u64,
    /// P(a sent frame is silently not delivered).
    pub drop: f64,
    /// P(a sent frame is delivered twice).
    pub duplicate: f64,
    /// P(a sent frame is delayed by up to [`max_delay`](Self::max_delay)).
    pub delay: f64,
    /// Upper bound of the seeded delay drawn when the delay fault fires.
    pub max_delay: Duration,
    /// P(a received frame has one seeded bit flipped — the re-decoded
    /// image always fails the length/checksum checks, so the caller sees
    /// a protocol error rather than silent data corruption).
    pub corrupt: f64,
    /// Fall silent (sends vanish, receives time out, channel stays open)
    /// once this many frames crossed.
    pub hang_after_frames: Option<usize>,
    /// Close the underlying channel (peer observes a hangup) once this
    /// many frames crossed.
    pub crash_after_frames: Option<usize>,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay: Duration::from_millis(10),
            corrupt: 0.0,
            hang_after_frames: None,
            crash_after_frames: None,
        }
    }
}

impl ChaosPlan {
    /// A plan whose only fault is a crash after `frames` crossed frames.
    pub fn crash_after(frames: usize) -> Self {
        ChaosPlan {
            crash_after_frames: Some(frames),
            ..ChaosPlan::default()
        }
    }

    /// A plan whose only fault is a hang after `frames` crossed frames.
    pub fn hang_after(frames: usize) -> Self {
        ChaosPlan {
            hang_after_frames: Some(frames),
            ..ChaosPlan::default()
        }
    }
}

/// Per-fault-class counters accumulated by a [`ChaosTransport`].
///
/// Shared behind `Arc<Mutex<..>>` (see
/// [`stats_handle`](ChaosTransport::stats_handle)) so tests and the
/// chaos experiment can read the tally after the transport moved into a
/// worker thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Frames silently dropped on send.
    pub drops: usize,
    /// Frames delivered twice on send.
    pub duplicates: usize,
    /// Frames delayed on send.
    pub delays: usize,
    /// Frames bit-flipped on receive.
    pub corruptions: usize,
    /// Whether the crash trigger fired.
    pub crashed: bool,
    /// Whether the hang trigger fired.
    pub hung: bool,
}

impl std::fmt::Display for ChaosStats {
    /// An aligned per-fault-class table, terminal triggers last.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<12} {:>8}", "fault", "count")?;
        writeln!(f, "{:<12} {:>8}", "drop", self.drops)?;
        writeln!(f, "{:<12} {:>8}", "duplicate", self.duplicates)?;
        writeln!(f, "{:<12} {:>8}", "delay", self.delays)?;
        writeln!(f, "{:<12} {:>8}", "corrupt", self.corruptions)?;
        writeln!(f, "{:<12} {:>8}", "crash", u8::from(self.crashed))?;
        write!(f, "{:<12} {:>8}", "hang", u8::from(self.hung))
    }
}

/// A [`Transport`] that injects the faults scheduled by a [`ChaosPlan`]
/// into an inner transport's frame stream.
#[derive(Debug)]
pub struct ChaosTransport<T: Transport> {
    inner: Option<T>,
    plan: ChaosPlan,
    rng: SplitMix64,
    crossed: usize,
    hung: bool,
    peer: String,
    stats: Arc<Mutex<ChaosStats>>,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` under the fault schedule of `plan`.
    pub fn new(inner: T, plan: ChaosPlan) -> Self {
        let peer = inner.peer();
        let rng = SplitMix64::new(plan.seed);
        ChaosTransport {
            inner: Some(inner),
            plan,
            rng,
            crossed: 0,
            hung: false,
            peer,
            stats: Arc::new(Mutex::new(ChaosStats::default())),
        }
    }

    /// A shared handle onto the fault counters, valid after the
    /// transport moves into another thread.
    pub fn stats_handle(&self) -> Arc<Mutex<ChaosStats>> {
        Arc::clone(&self.stats)
    }

    /// Whether the crash trigger has fired (the hang trigger leaves the
    /// end "alive" from the peer's point of view, so it does not count).
    pub fn died(&self) -> bool {
        self.inner.is_none() && !self.hung
    }

    fn stats(&self) -> std::sync::MutexGuard<'_, ChaosStats> {
        self.stats.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Fires the frame-count triggers due at the start of an operation
    /// and reports whether this end is already dead.
    fn trip(&mut self) -> Result<(), DistError> {
        if let Some(limit) = self.plan.hang_after_frames {
            if self.crossed >= limit && !self.hung {
                // Deliberate leak: dropping the inner transport would
                // close its channel and the peer would observe a hangup —
                // indistinguishable from a crash. Forgetting it keeps the
                // channel open-but-silent, which is what a hang looks
                // like from the other side.
                if let Some(inner) = self.inner.take() {
                    std::mem::forget(inner);
                }
                self.hung = true;
                self.stats().hung = true;
                obs::count!("chaos.hang", 1);
            }
        }
        if let Some(limit) = self.plan.crash_after_frames {
            if self.crossed >= limit && self.inner.is_some() {
                self.inner = None;
                self.stats().crashed = true;
                obs::count!("chaos.crash", 1);
            }
        }
        if self.inner.is_none() && !self.hung {
            return Err(DistError::Disconnected(
                "injected fault: this end is dead".into(),
            ));
        }
        Ok(())
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn send(&mut self, frame: &Frame) -> Result<(), DistError> {
        self.trip()?;
        if self.hung {
            // Silence: the caller believes the frame left, the peer
            // never sees it.
            self.crossed += 1;
            return Ok(());
        }
        // Draw every roll up front so the stream stays aligned across
        // plans that enable different fault subsets.
        let roll_drop = self.rng.next_f64();
        let roll_delay = self.rng.next_f64();
        let roll_duplicate = self.rng.next_f64();
        self.crossed += 1;
        if roll_drop < self.plan.drop {
            self.stats().drops += 1;
            obs::count!("chaos.drop", 1);
            return Ok(());
        }
        if roll_delay < self.plan.delay {
            let nanos = self.plan.max_delay.as_nanos() as u64;
            std::thread::sleep(Duration::from_nanos(self.rng.next_range(nanos.max(1))));
            self.stats().delays += 1;
            obs::count!("chaos.delay", 1);
        }
        let inner = self.inner.as_mut().expect("trip() verified liveness");
        inner.send(frame)?;
        if roll_duplicate < self.plan.duplicate {
            inner.send(frame)?;
            self.stats().duplicates += 1;
            obs::count!("chaos.duplicate", 1);
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, DistError> {
        self.trip()?;
        if self.hung {
            return Err(DistError::Timeout(
                "injected hang: this end is silent".into(),
            ));
        }
        let frame = self
            .inner
            .as_mut()
            .expect("trip() verified liveness")
            .recv()?;
        self.crossed += 1;
        let roll = self.rng.next_f64();
        if roll < self.plan.corrupt {
            let mut wire = frame.encode();
            let bit = self.rng.next_range((wire.len() as u64) * 8) as usize;
            wire[bit / 8] ^= 1 << (bit % 8);
            self.stats().corruptions += 1;
            obs::count!("chaos.corrupt", 1);
            // A single flipped bit always trips the length or checksum
            // check, so this surfaces as the protocol error a real
            // corrupted frame would produce.
            return Frame::decode_wire(&wire);
        }
        Ok(frame)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair_with_chaos;

    #[test]
    fn a_clean_plan_is_transparent() {
        let (mut a, mut b) = loopback_pair_with_chaos(ChaosPlan::default());
        a.send(&Frame::FetchChunk).unwrap();
        assert_eq!(b.recv().unwrap(), Frame::FetchChunk);
        b.send(&Frame::Drained).unwrap();
        assert_eq!(a.recv().unwrap(), Frame::Drained);
        assert_eq!(*b.stats_handle().lock().unwrap(), ChaosStats::default());
    }

    #[test]
    fn crash_kills_the_end_and_signals_the_peer() {
        let (mut coord, mut worker) = loopback_pair_with_chaos(ChaosPlan::crash_after(1));
        worker.send(&Frame::FetchChunk).unwrap();
        assert_eq!(coord.recv().unwrap(), Frame::FetchChunk);
        let err = worker.send(&Frame::FetchChunk).unwrap_err();
        assert!(matches!(err, DistError::Disconnected(_)), "{err}");
        assert!(worker.died());
        assert!(worker.stats_handle().lock().unwrap().crashed);
        // The peer observes a hangup, not silence.
        assert!(matches!(coord.recv(), Err(DistError::Disconnected(_))));
    }

    #[test]
    fn hang_goes_silent_without_hanging_up() {
        let (coord, mut worker) = loopback_pair_with_chaos(ChaosPlan::hang_after(1));
        let mut coord = coord.with_recv_timeout(Duration::from_millis(20));
        worker.send(&Frame::FetchChunk).unwrap();
        assert_eq!(coord.recv().unwrap(), Frame::FetchChunk);
        // Sends now vanish without an error...
        worker.send(&Frame::FetchChunk).unwrap();
        assert!(matches!(worker.recv(), Err(DistError::Timeout(_))));
        assert!(!worker.died(), "a hung end is silent, not dead");
        // ...and the peer times out instead of seeing a hangup.
        let err = coord.recv().unwrap_err();
        assert!(matches!(err, DistError::Timeout(_)), "{err}");
        assert!(worker.stats_handle().lock().unwrap().hung);
    }

    #[test]
    fn drops_vanish_and_duplicates_arrive_twice() {
        let plan = ChaosPlan {
            seed: 11,
            duplicate: 1.0,
            ..ChaosPlan::default()
        };
        let (mut coord, mut worker) = loopback_pair_with_chaos(plan);
        worker.send(&Frame::FetchChunk).unwrap();
        assert_eq!(coord.recv().unwrap(), Frame::FetchChunk);
        assert_eq!(coord.recv().unwrap(), Frame::FetchChunk);
        assert_eq!(worker.stats_handle().lock().unwrap().duplicates, 1);

        let plan = ChaosPlan {
            seed: 11,
            drop: 1.0,
            ..ChaosPlan::default()
        };
        let (coord, mut worker) = loopback_pair_with_chaos(plan);
        let mut coord = coord.with_recv_timeout(Duration::from_millis(20));
        worker.send(&Frame::FetchChunk).unwrap();
        assert!(matches!(coord.recv(), Err(DistError::Timeout(_))));
        assert_eq!(worker.stats_handle().lock().unwrap().drops, 1);
    }

    #[test]
    fn corruption_surfaces_as_a_protocol_error() {
        let plan = ChaosPlan {
            seed: 3,
            corrupt: 1.0,
            ..ChaosPlan::default()
        };
        let (mut coord, mut worker) = loopback_pair_with_chaos(plan);
        coord.send(&Frame::FetchChunk).unwrap();
        let err = worker.recv().unwrap_err();
        assert!(matches!(err, DistError::Protocol(_)), "{err}");
        assert_eq!(worker.stats_handle().lock().unwrap().corruptions, 1);
    }

    #[test]
    fn the_same_seed_replays_the_same_fault_sequence() {
        let plan = ChaosPlan {
            seed: 0xC4A05,
            drop: 0.5,
            ..ChaosPlan::default()
        };
        let run = |plan: ChaosPlan| {
            let (coord, mut worker) = loopback_pair_with_chaos(plan);
            let mut coord = coord.with_recv_timeout(Duration::from_millis(20));
            for _ in 0..32 {
                worker.send(&Frame::FetchChunk).unwrap();
            }
            let mut delivered = Vec::new();
            while let Ok(f) = coord.recv() {
                delivered.push(f);
            }
            let stats = worker.stats_handle().lock().unwrap().clone();
            (delivered.len(), stats)
        };
        let (a_count, a_stats) = run(plan.clone());
        let (b_count, b_stats) = run(plan);
        assert_eq!(a_count, b_count);
        assert_eq!(a_stats, b_stats);
        assert_eq!(a_count + a_stats.drops, 32);
        assert!(
            a_stats.drops > 0,
            "a 0.5 drop plan over 32 frames drops some"
        );
    }
}
