//! Frame encoding and decoding for the distributed-sweep wire protocol.
//!
//! See the crate-level docs for the frame table and handshake. The layout
//! discipline mirrors the `SYMBPERF` table format: little-endian integers,
//! `f64` as [`f64::to_bits`], and an FNV-1a 64 checksum — here per frame,
//! over the body (kind byte + payload).
//!
//! [`Frame::encode`] produces the full wire image (length prefix + body +
//! checksum); [`Frame::decode`] is its exact inverse and rejects anything
//! it would not itself produce. Both transports ([`crate::TcpTransport`]
//! and the loopback pair) move these same bytes, so a protocol bug cannot
//! hide behind the in-process shortcut.

use queueing::LatencyConfig;
use queueing::SizeDist;
use session::{Policy, PolicyReport, SessionReport, SweepSpec};
use symbiosis::{JobSize, Objective};
use workloads::WorkUnit;

use crate::DistError;

/// Version spoken by this build; bumped on any wire-visible change.
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on one frame's body length. Large enough for any real
/// table (the N=12/K=8 SMT table is ~4 MiB) with two orders of magnitude
/// of headroom; small enough that a corrupted length prefix cannot drive
/// an absurd allocation.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// FNV-1a 64 over `bytes` — the same checksum the `SYMBPERF` format uses.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One protocol message. The numeric kind of each variant is part of the
/// wire format; see the frame table in the crate docs.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → coordinator: opening handshake.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Coordinator → worker: handshake accepted; here is the job.
    Welcome {
        /// The coordinator's [`PROTOCOL_VERSION`].
        version: u32,
        /// Content fingerprint of the shared table
        /// ([`workloads::PerfTable::content_fingerprint`]) — the worker's
        /// [`workloads::TableStore`] cache key.
        table_fingerprint: u64,
        /// The transportable sweep configuration.
        spec: SweepSpec,
        /// Total workloads in the sweep (progress accounting).
        total_workloads: u64,
    },
    /// Worker → coordinator: table cache miss, ship the bytes.
    TableRequest,
    /// Coordinator → worker: the shared table in canonical `SYMBPERF`
    /// serialization (itself internally checksummed).
    TableBytes {
        /// `PerfTable::to_bytes()` of the shared table.
        bytes: Vec<u8>,
    },
    /// Worker → coordinator: ready for (more) work.
    FetchChunk,
    /// Coordinator → worker: evaluate these workloads.
    Chunk {
        /// Coordinator-assigned chunk index (echoed back in
        /// [`Frame::Rows`]).
        id: u64,
        /// The chunk's workloads, each a benchmark-index vector.
        workloads: Vec<Vec<usize>>,
    },
    /// Worker → coordinator: one chunk's results, one report per
    /// workload, in chunk order.
    Rows {
        /// The chunk these rows answer.
        id: u64,
        /// Per-workload session reports, bitwise as evaluated.
        reports: Vec<SessionReport>,
    },
    /// Coordinator → worker: no work left; hang up.
    Drained,
    /// Either direction: fatal, human-readable; terminal for the
    /// connection (and, worker → coordinator, for the whole sweep).
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::Welcome { .. } => 2,
            Frame::TableRequest => 3,
            Frame::TableBytes { .. } => 4,
            Frame::FetchChunk => 5,
            Frame::Chunk { .. } => 6,
            Frame::Rows { .. } => 7,
            Frame::Drained => 8,
            Frame::Error { .. } => 9,
        }
    }

    /// Serializes the frame to its full wire image:
    /// `len:u32 | body | fnv1a64(body):u64`.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = vec![self.kind()];
        match self {
            Frame::Hello { version } => put_u32(&mut body, *version),
            Frame::Welcome {
                version,
                table_fingerprint,
                spec,
                total_workloads,
            } => {
                put_u32(&mut body, *version);
                put_u64(&mut body, *table_fingerprint);
                put_spec(&mut body, spec);
                put_u64(&mut body, *total_workloads);
            }
            Frame::TableRequest | Frame::FetchChunk | Frame::Drained => {}
            Frame::TableBytes { bytes } => put_bytes(&mut body, bytes),
            Frame::Chunk { id, workloads } => {
                put_u64(&mut body, *id);
                put_u32(&mut body, workloads.len() as u32);
                for w in workloads {
                    put_u32(&mut body, w.len() as u32);
                    for &b in w {
                        put_u32(&mut body, b as u32);
                    }
                }
            }
            Frame::Rows { id, reports } => {
                put_u64(&mut body, *id);
                put_u32(&mut body, reports.len() as u32);
                for r in reports {
                    put_report(&mut body, r);
                }
            }
            Frame::Error { message } => put_str(&mut body, message),
        }
        let mut out = Vec::with_capacity(4 + body.len() + 8);
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        put_u64(&mut out, fnv64(&body));
        out
    }

    /// Decodes one frame body (the bytes between length prefix and
    /// checksum); the transports verify length and checksum before
    /// calling this.
    ///
    /// # Errors
    ///
    /// [`DistError::Protocol`] on an empty body, unknown kind, truncated
    /// payload, trailing bytes, or an out-of-range enum discriminant.
    pub fn decode(body: &[u8]) -> Result<Frame, DistError> {
        let mut dec = Dec::new(body);
        let kind = dec.u8()?;
        let frame = match kind {
            1 => Frame::Hello {
                version: dec.u32()?,
            },
            2 => Frame::Welcome {
                version: dec.u32()?,
                table_fingerprint: dec.u64()?,
                spec: get_spec(&mut dec)?,
                total_workloads: dec.u64()?,
            },
            3 => Frame::TableRequest,
            4 => Frame::TableBytes {
                bytes: dec.bytes()?,
            },
            5 => Frame::FetchChunk,
            6 => {
                let id = dec.u64()?;
                let n = dec.u32()? as usize;
                let mut workloads = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let k = dec.u32()? as usize;
                    let mut w = Vec::with_capacity(k.min(1 << 16));
                    for _ in 0..k {
                        w.push(dec.u32()? as usize);
                    }
                    workloads.push(w);
                }
                Frame::Chunk { id, workloads }
            }
            7 => {
                let id = dec.u64()?;
                let n = dec.u32()? as usize;
                let mut reports = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    reports.push(get_report(&mut dec)?);
                }
                Frame::Rows { id, reports }
            }
            8 => Frame::Drained,
            9 => Frame::Error {
                message: dec.str()?,
            },
            k => return Err(DistError::Protocol(format!("unknown frame kind {k}"))),
        };
        dec.finish()?;
        Ok(frame)
    }

    /// Splits a full wire image back into a frame: checks the length
    /// prefix, verifies the checksum, then decodes the body. Used by the
    /// loopback transport (TCP reads the three sections incrementally).
    ///
    /// # Errors
    ///
    /// [`DistError::Protocol`] on any mismatch between the bytes and what
    /// [`Frame::encode`] produces.
    pub fn decode_wire(wire: &[u8]) -> Result<Frame, DistError> {
        if wire.len() < 4 + 8 {
            return Err(DistError::Protocol(format!(
                "wire image of {} bytes is shorter than an empty frame",
                wire.len()
            )));
        }
        let len = u32::from_le_bytes(wire[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(DistError::Protocol(format!(
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
            )));
        }
        if wire.len() != 4 + len + 8 {
            return Err(DistError::Protocol(format!(
                "frame length prefix says {len} body bytes but the image carries {}",
                wire.len().saturating_sub(4 + 8)
            )));
        }
        let body = &wire[4..4 + len];
        let stated = u64::from_le_bytes(wire[4 + len..].try_into().expect("8 bytes"));
        let actual = fnv64(body);
        if stated != actual {
            return Err(DistError::Protocol(format!(
                "frame checksum mismatch: stated {stated:#018x}, computed {actual:#018x}"
            )));
        }
        Frame::decode(body)
    }
}

// --- primitive writers ---------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u64(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

// --- primitive reader ----------------------------------------------------

/// A bounds-checked little-endian cursor over one frame body.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DistError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(DistError::Protocol(format!(
                "truncated frame: wanted {n} bytes at offset {} of {}",
                self.pos,
                self.bytes.len()
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8, DistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, DistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, DistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, DistError> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| DistError::Protocol("string field is not UTF-8".into()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, DistError> {
        let n = self.u64()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn finish(&self) -> Result<(), DistError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DistError::Protocol(format!(
                "{} trailing bytes after frame payload",
                self.bytes.len() - self.pos
            )))
        }
    }
}

// --- composite payloads ---------------------------------------------------

fn put_spec(buf: &mut Vec<u8>, spec: &SweepSpec) {
    put_u32(buf, spec.policies.len() as u32);
    for p in &spec.policies {
        put_str(buf, p);
    }
    put_u8(
        buf,
        match spec.unit {
            WorkUnit::Weighted => 0,
            WorkUnit::Plain => 1,
        },
    );
    put_u8(
        buf,
        match spec.objective {
            Objective::MaxThroughput => 0,
            Objective::MinThroughput => 1,
        },
    );
    put_u64(buf, spec.fcfs_jobs);
    put_u8(
        buf,
        match spec.job_size {
            JobSize::Deterministic => 0,
            JobSize::Exponential => 1,
        },
    );
    put_u64(buf, spec.seed);
    match &spec.latency {
        None => put_u8(buf, 0),
        Some(cfg) => {
            put_u8(buf, 1);
            put_f64(buf, cfg.arrival_rate);
            put_u64(buf, cfg.measured_jobs);
            put_u64(buf, cfg.warmup_jobs);
            put_u8(
                buf,
                match cfg.sizes {
                    SizeDist::Deterministic => 0,
                    SizeDist::Exponential => 1,
                },
            );
            put_u64(buf, cfg.seed);
        }
    }
    put_u64(buf, spec.lp_dense_limit as u64);
    put_u64(buf, spec.markov_dense_limit as u64);
    put_u64(buf, spec.markov_accel_limit as u64);
}

fn get_spec(dec: &mut Dec<'_>) -> Result<SweepSpec, DistError> {
    let n = dec.u32()? as usize;
    let mut policies = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        policies.push(dec.str()?);
    }
    let unit = match dec.u8()? {
        0 => WorkUnit::Weighted,
        1 => WorkUnit::Plain,
        v => return Err(DistError::Protocol(format!("bad work unit tag {v}"))),
    };
    let objective = match dec.u8()? {
        0 => Objective::MaxThroughput,
        1 => Objective::MinThroughput,
        v => return Err(DistError::Protocol(format!("bad objective tag {v}"))),
    };
    let fcfs_jobs = dec.u64()?;
    let job_size = match dec.u8()? {
        0 => JobSize::Deterministic,
        1 => JobSize::Exponential,
        v => return Err(DistError::Protocol(format!("bad job size tag {v}"))),
    };
    let seed = dec.u64()?;
    let latency = match dec.u8()? {
        0 => None,
        1 => Some(LatencyConfig {
            arrival_rate: dec.f64()?,
            measured_jobs: dec.u64()?,
            warmup_jobs: dec.u64()?,
            sizes: match dec.u8()? {
                0 => SizeDist::Deterministic,
                1 => SizeDist::Exponential,
                v => return Err(DistError::Protocol(format!("bad size dist tag {v}"))),
            },
            seed: dec.u64()?,
        }),
        v => return Err(DistError::Protocol(format!("bad latency flag {v}"))),
    };
    let lp_dense_limit = dec.u64()? as usize;
    let markov_dense_limit = dec.u64()? as usize;
    let markov_accel_limit = dec.u64()? as usize;
    Ok(SweepSpec {
        policies,
        unit,
        objective,
        fcfs_jobs,
        job_size,
        seed,
        latency,
        lp_dense_limit,
        markov_dense_limit,
        markov_accel_limit,
    })
}

fn put_report(buf: &mut Vec<u8>, report: &SessionReport) {
    put_u32(buf, report.rows.len() as u32);
    for row in &report.rows {
        put_str(buf, row.policy.name());
        put_f64(buf, row.throughput);
        match &row.fractions {
            None => put_u8(buf, 0),
            Some(fr) => {
                put_u8(buf, 1);
                put_u64(buf, fr.len() as u64);
                for &f in fr {
                    put_f64(buf, f);
                }
            }
        }
        match &row.latency {
            None => put_u8(buf, 0),
            Some(l) => {
                put_u8(buf, 1);
                put_f64(buf, l.mean_turnaround);
                put_f64(buf, l.utilization);
                put_f64(buf, l.empty_fraction);
                put_f64(buf, l.throughput);
                put_f64(buf, l.mean_jobs_in_system);
                put_u64(buf, l.completed);
            }
        }
        match &row.batch {
            None => put_u8(buf, 0),
            Some(b) => {
                put_u8(buf, 1);
                put_f64(buf, b.makespan);
                put_f64(buf, b.throughput);
                put_f64(buf, b.mean_turnaround);
            }
        }
    }
}

fn get_report(dec: &mut Dec<'_>) -> Result<SessionReport, DistError> {
    let n = dec.u32()? as usize;
    let mut rows = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let name = dec.str()?;
        let policy = Policy::by_name(&name)
            .ok_or_else(|| DistError::Protocol(format!("unknown policy name {name:?}")))?;
        let throughput = dec.f64()?;
        let fractions = match dec.u8()? {
            0 => None,
            1 => {
                let k = dec.u64()? as usize;
                let mut fr = Vec::with_capacity(k.min(1 << 20));
                for _ in 0..k {
                    fr.push(dec.f64()?);
                }
                Some(fr)
            }
            v => return Err(DistError::Protocol(format!("bad fractions flag {v}"))),
        };
        let latency = match dec.u8()? {
            0 => None,
            1 => Some(queueing::LatencyReport {
                mean_turnaround: dec.f64()?,
                utilization: dec.f64()?,
                empty_fraction: dec.f64()?,
                throughput: dec.f64()?,
                mean_jobs_in_system: dec.f64()?,
                completed: dec.u64()?,
            }),
            v => return Err(DistError::Protocol(format!("bad latency flag {v}"))),
        };
        let batch = match dec.u8()? {
            0 => None,
            1 => Some(queueing::BatchReport {
                makespan: dec.f64()?,
                throughput: dec.f64()?,
                mean_turnaround: dec.f64()?,
            }),
            v => return Err(DistError::Protocol(format!("bad batch flag {v}"))),
        };
        rows.push(PolicyReport {
            policy,
            throughput,
            fractions,
            latency,
            batch,
        });
    }
    Ok(SessionReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> SweepSpec {
        SweepSpec {
            policies: vec!["OPTIMAL".into(), "FCFS-EVENT".into()],
            unit: WorkUnit::Weighted,
            objective: Objective::MaxThroughput,
            fcfs_jobs: 4000,
            job_size: JobSize::Exponential,
            seed: 0xBEEF,
            latency: Some(LatencyConfig {
                arrival_rate: 1.25,
                measured_jobs: 500,
                warmup_jobs: 50,
                sizes: SizeDist::Exponential,
                seed: 7,
            }),
            lp_dense_limit: 64,
            markov_dense_limit: 32,
            markov_accel_limit: 512,
        }
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
            },
            Frame::Welcome {
                version: PROTOCOL_VERSION,
                table_fingerprint: 0xDEAD_BEEF_F00D_CAFE,
                spec: sample_spec(),
                total_workloads: 495,
            },
            Frame::TableRequest,
            Frame::TableBytes {
                bytes: vec![1, 2, 3, 255, 0, 42],
            },
            Frame::FetchChunk,
            Frame::Chunk {
                id: 3,
                workloads: vec![vec![0, 5, 7, 11], vec![1, 2, 3, 4]],
            },
            Frame::Rows {
                id: 3,
                reports: vec![SessionReport {
                    rows: vec![PolicyReport {
                        policy: Policy::Optimal,
                        throughput: 2.625_481_828,
                        fractions: Some(vec![0.25, 0.75]),
                        latency: Some(queueing::LatencyReport {
                            mean_turnaround: 10.5,
                            utilization: 0.9,
                            empty_fraction: 0.01,
                            throughput: 1.1,
                            mean_jobs_in_system: 4.2,
                            completed: 500,
                        }),
                        batch: Some(queueing::BatchReport {
                            makespan: 100.0,
                            throughput: 1.9,
                            mean_turnaround: 55.0,
                        }),
                    }],
                }],
            },
            Frame::Drained,
            Frame::Error {
                message: "look out — ünïcode".into(),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips_through_its_wire_image() {
        for frame in sample_frames() {
            let wire = frame.encode();
            let back = Frame::decode_wire(&wire).expect("decode what we encoded");
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn f64_payloads_survive_bit_exactly() {
        let ugly = f64::MIN_POSITIVE * 3.0; // subnormal-adjacent
        let frame = Frame::Rows {
            id: 0,
            reports: vec![SessionReport {
                rows: vec![PolicyReport {
                    policy: Policy::Worst,
                    throughput: ugly,
                    fractions: Some(vec![-0.0, f64::MAX, 1e-300]),
                    latency: None,
                    batch: None,
                }],
            }],
        };
        let back = Frame::decode_wire(&frame.encode()).unwrap();
        let Frame::Rows { reports, .. } = back else {
            panic!("wrong frame kind");
        };
        let row = &reports[0].rows[0];
        assert_eq!(row.throughput.to_bits(), ugly.to_bits());
        let fr = row.fractions.as_ref().unwrap();
        assert_eq!(fr[0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(fr[1].to_bits(), f64::MAX.to_bits());
        assert_eq!(fr[2].to_bits(), 1e-300f64.to_bits());
    }

    #[test]
    fn corruption_is_rejected() {
        let wire = Frame::Welcome {
            version: PROTOCOL_VERSION,
            table_fingerprint: 1,
            spec: sample_spec(),
            total_workloads: 10,
        }
        .encode();

        // Flip one payload byte: checksum mismatch.
        let mut flipped = wire.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            Frame::decode_wire(&flipped),
            Err(DistError::Protocol(m)) if m.contains("checksum")
        ));

        // Truncate: length prefix no longer matches the image.
        let truncated = &wire[..wire.len() - 3];
        assert!(matches!(
            Frame::decode_wire(truncated),
            Err(DistError::Protocol(_))
        ));

        // Unknown frame kind (fix up the checksum so only the kind is bad).
        let mut unknown = Frame::Drained.encode();
        unknown[4] = 200;
        let len = unknown.len();
        let sum = fnv64(&unknown[4..len - 8]);
        unknown[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Frame::decode_wire(&unknown),
            Err(DistError::Protocol(m)) if m.contains("unknown frame kind")
        ));

        // Trailing garbage inside a checksummed body.
        let mut padded_body = vec![8u8, 0, 0, 0]; // Drained kind + 3 extra bytes
        padded_body.push(0);
        let mut padded = Vec::new();
        padded.extend_from_slice(&(padded_body.len() as u32).to_le_bytes());
        padded.extend_from_slice(&padded_body);
        padded.extend_from_slice(&fnv64(&padded_body).to_le_bytes());
        assert!(matches!(
            Frame::decode_wire(&padded),
            Err(DistError::Protocol(m)) if m.contains("trailing")
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            Frame::decode_wire(&wire),
            Err(DistError::Protocol(m)) if m.contains("exceeds")
        ));
    }

    #[test]
    fn spec_with_no_latency_round_trips() {
        let spec = SweepSpec {
            latency: None,
            ..sample_spec()
        };
        let wire = Frame::Welcome {
            version: PROTOCOL_VERSION,
            table_fingerprint: 0,
            spec: spec.clone(),
            total_workloads: 1,
        }
        .encode();
        let Frame::Welcome { spec: back, .. } = Frame::decode_wire(&wire).unwrap() else {
            panic!("wrong frame kind");
        };
        assert_eq!(back, spec);
    }
}
