//! Capped exponential backoff with seeded jitter.
//!
//! Every retry loop in this crate — worker reconnects, the coordinator's
//! accept poll — shares this one helper so the retry cadence is tunable
//! in a single place and reproducible under a fixed seed. The delay for
//! attempt `n` is drawn from the *equal jitter* scheme: half of
//! `min(cap, base · 2^n)` is fixed, the other half is uniform random, so
//! simultaneous retriers decorrelate without ever retrying faster than
//! half the nominal schedule.

use std::time::Duration;

use symbiosis::rng::SplitMix64;

/// Capped exponential backoff schedule with seeded equal jitter.
///
/// [`next_delay`](Backoff::next_delay) advances the attempt counter;
/// [`reset`](Backoff::reset) rewinds it after a success so the next
/// failure starts from `base` again. The jitter stream is deterministic
/// per seed, which keeps chaos tests reproducible.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: SplitMix64,
}

impl Backoff {
    /// A schedule starting at `base`, doubling each attempt, never
    /// exceeding `cap`. The `seed` fixes the jitter stream.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff {
            base,
            cap,
            attempt: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// The delay to sleep before the next retry, advancing the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let nominal = self
            .base
            .saturating_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let half = nominal / 2;
        half + Duration::from_secs_f64(half.as_secs_f64() * self.rng.next_f64())
    }

    /// Sleeps for [`next_delay`](Backoff::next_delay).
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }

    /// Rewinds the schedule to the first attempt (call after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(80), 0xB0FF);
        let delays: Vec<Duration> = (0..6).map(|_| b.next_delay()).collect();
        // Equal jitter: each delay lies in [nominal/2, nominal].
        let nominals = [10u64, 20, 40, 80, 80, 80];
        for (d, n) in delays.iter().zip(nominals) {
            let nominal = Duration::from_millis(n);
            assert!(*d >= nominal / 2, "{d:?} under half of {nominal:?}");
            assert!(*d <= nominal, "{d:?} over {nominal:?}");
        }
    }

    #[test]
    fn reset_rewinds_to_the_base_delay() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 7);
        for _ in 0..5 {
            b.next_delay();
        }
        b.reset();
        assert!(b.next_delay() <= Duration::from_millis(10));
    }

    #[test]
    fn the_seed_fixes_the_jitter_stream() {
        let mut a = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 42);
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 42);
        for _ in 0..8 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }
}
