//! The worker half: connect, handshake, obtain the shared table, then
//! pull chunks until the coordinator says [`Frame::Drained`].
//!
//! Table acquisition is dedup-aware: the coordinator's `Welcome` carries
//! the table's content fingerprint
//! ([`workloads::PerfTable::content_fingerprint`]), and a worker with a
//! [`TableStore`] cache first tries a fingerprint-keyed load — only on a
//! miss does it pull the bytes over the wire (and saves them back, so
//! the next sweep against the same table is a cache hit). Either way the
//! table the worker evaluates is verified against the fingerprint, so a
//! stale or mislabelled cache entry can never poison a sweep.

use std::time::Duration;

use session::SessionReport;
use workloads::{PerfTable, TableStore};

use crate::backoff::Backoff;
use crate::proto::{Frame, PROTOCOL_VERSION};
use crate::transport::{TcpTransport, Transport};
use crate::DistError;

/// Worker-side knobs.
#[derive(Debug, Default)]
pub struct WorkerConfig {
    /// Threads for the in-chunk sweep fan-out; 0 (the default) uses the
    /// sweep builder's default (available parallelism).
    pub threads: usize,
    /// Fingerprint-keyed table cache; `None` always fetches the table
    /// over the wire.
    pub cache: Option<TableStore>,
}

/// What one worker did over one coordinator connection.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSummary {
    /// Chunks evaluated.
    pub chunks: usize,
    /// Sweep rows produced.
    pub rows: usize,
    /// True when the table came from the local cache instead of the
    /// wire.
    pub table_from_cache: bool,
    /// The shared table's content fingerprint.
    pub fingerprint: u64,
}

/// Connects to a coordinator, retrying under capped exponential backoff
/// with seeded jitter until `patience` runs out — workers typically
/// start before the coordinator finishes building its table, so the
/// first connect may be early. The jitter decorrelates a fleet of
/// workers all retrying against the same address; the `seed` fixes the
/// schedule for reproducible tests.
///
/// # Errors
///
/// The last connection error once `patience` is spent.
pub fn connect_retry(addr: &str, patience: Duration, seed: u64) -> Result<TcpTransport, DistError> {
    let deadline = std::time::Instant::now() + patience;
    let mut backoff = Backoff::new(Duration::from_millis(50), Duration::from_secs(2), seed);
    loop {
        match TcpTransport::connect(addr) {
            Ok(t) => return Ok(t),
            Err(e) if std::time::Instant::now() >= deadline => return Err(e),
            Err(_) => backoff.sleep(),
        }
    }
}

/// Serves one coordinator connection to completion: handshake, table
/// acquisition, then chunk evaluation until [`Frame::Drained`].
///
/// # Errors
///
/// [`DistError::VersionMismatch`] when the coordinator speaks another
/// protocol version, [`DistError::Remote`] when it reports a fatal
/// error, [`DistError::Sweep`] when a chunk's evaluation fails (also
/// reported back over the wire before returning), and transport errors
/// when the coordinator goes away.
pub fn run_worker<T: Transport>(
    mut transport: T,
    config: &WorkerConfig,
) -> Result<WorkerSummary, DistError> {
    transport.send(&Frame::Hello {
        version: PROTOCOL_VERSION,
    })?;
    let (fingerprint, spec) = match transport.recv()? {
        Frame::Welcome {
            version: PROTOCOL_VERSION,
            table_fingerprint,
            spec,
            ..
        } => (table_fingerprint, spec),
        Frame::Welcome { version, .. } => {
            return Err(DistError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: version,
            })
        }
        Frame::Error { message } => return Err(DistError::Remote(message)),
        other => {
            return Err(DistError::Protocol(format!(
                "expected Welcome, got {other:?}"
            )))
        }
    };

    let cached = config
        .cache
        .as_ref()
        .and_then(|c| c.load_content(fingerprint));
    let table_from_cache = cached.is_some();
    if config.cache.is_some() {
        if table_from_cache {
            obs::count!("dist.table_cache_hit", 1);
        } else {
            obs::count!("dist.table_cache_miss", 1);
        }
    }
    let table = match cached {
        Some(table) => table,
        None => {
            transport.send(&Frame::TableRequest)?;
            let bytes = match transport.recv()? {
                Frame::TableBytes { bytes } => bytes,
                Frame::Error { message } => return Err(DistError::Remote(message)),
                other => {
                    return Err(DistError::Protocol(format!(
                        "expected TableBytes, got {other:?}"
                    )))
                }
            };
            let table = PerfTable::from_bytes(&bytes)
                .map_err(|e| DistError::Protocol(format!("table bytes did not parse: {e}")))?;
            let actual = table.content_fingerprint();
            if actual != fingerprint {
                return Err(DistError::Protocol(format!(
                    "table fingerprint mismatch: announced {fingerprint:#018x}, received {actual:#018x}"
                )));
            }
            if let Some(cache) = &config.cache {
                // Cache persistence is an optimisation; a full disk must
                // not kill the sweep.
                if let Err(e) = cache.save_content(&table) {
                    obs::event!(
                        Warn,
                        "dist.worker.table_cache_write_failed",
                        "could not cache table: {e}"
                    );
                }
            }
            table
        }
    };

    let mut summary = WorkerSummary {
        chunks: 0,
        rows: 0,
        table_from_cache,
        fingerprint,
    };
    loop {
        transport.send(&Frame::FetchChunk)?;
        match transport.recv()? {
            Frame::Chunk { id, workloads } => {
                let mut sweep = spec.sweep(&table).workloads(workloads);
                if config.threads > 0 {
                    sweep = sweep.threads(config.threads);
                }
                match sweep.run() {
                    Ok(report) => {
                        let reports: Vec<SessionReport> =
                            report.rows.into_iter().map(|row| row.report).collect();
                        summary.chunks += 1;
                        summary.rows += reports.len();
                        transport.send(&Frame::Rows { id, reports })?;
                    }
                    Err(e) => {
                        let error = DistError::Sweep(e.to_string());
                        let _ = transport.send(&Frame::Error {
                            message: e.to_string(),
                        });
                        return Err(error);
                    }
                }
            }
            Frame::Drained => return Ok(summary),
            Frame::Error { message } => return Err(DistError::Remote(message)),
            other => {
                return Err(DistError::Protocol(format!(
                    "expected Chunk or Drained, got {other:?}"
                )))
            }
        }
    }
}
