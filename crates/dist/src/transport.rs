//! Byte-faithful frame transports: std TCP and an in-process loopback.
//!
//! Both implementations move the *same* wire image ([`Frame::encode`] /
//! [`Frame::decode_wire`]): the loopback pair is not a shortcut around
//! serialization, it is TCP minus the socket — which is what lets the
//! protocol tests (including checksum, version and fault paths) run
//! without binding ports, and lets a [`ChaosTransport`] wrapper kill a
//! "worker" mid-conversation deterministically (see [`crate::chaos`]).

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::Duration;

use crate::chaos::{ChaosPlan, ChaosTransport};
use crate::proto::{Frame, MAX_FRAME_LEN};
use crate::DistError;

/// Books one frame crossing this end into the current [`obs`] recorder
/// (no-op without one). Both concrete transports call it with the full
/// wire-image length, so `dist.bytes_*` counts exactly what TCP would
/// put on the network.
fn record_wire(sent: bool, bytes: usize) {
    if let Some(rec) = obs::current() {
        if sent {
            rec.counter("dist.frames_sent").add(1);
            rec.counter("dist.bytes_sent").add(bytes as u64);
        } else {
            rec.counter("dist.frames_received").add(1);
            rec.counter("dist.bytes_received").add(bytes as u64);
        }
    }
}

/// A bidirectional frame pipe. `send` must deliver the frame's full wire
/// image or fail; `recv` must return exactly one decoded frame or fail.
pub trait Transport {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`DistError::Disconnected`] / [`DistError::Io`] when the peer is
    /// gone or the pipe breaks.
    fn send(&mut self, frame: &Frame) -> Result<(), DistError>;

    /// Receives the next frame, blocking up to the transport's read
    /// timeout.
    ///
    /// # Errors
    ///
    /// [`DistError::Timeout`] when no frame arrives in time,
    /// [`DistError::Disconnected`] on EOF, [`DistError::Protocol`] on
    /// malformed bytes.
    fn recv(&mut self) -> Result<Frame, DistError>;

    /// Human-readable peer label for error messages and accounting.
    fn peer(&self) -> String {
        "peer".into()
    }
}

// --- TCP -----------------------------------------------------------------

/// A [`Transport`] over one `std::net::TcpStream`.
pub struct TcpTransport {
    stream: TcpStream,
    peer: String,
}

impl TcpTransport {
    /// Connects to a coordinator (or accepts a worker: see
    /// [`TcpTransport::from_stream`]) with the default 120 s read
    /// timeout.
    ///
    /// # Errors
    ///
    /// [`DistError::Io`] when the address does not resolve or the
    /// connection is refused.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, DistError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, Duration::from_secs(120))
    }

    /// Wraps an accepted or connected stream, disabling Nagle (frames are
    /// request/response sized) and applying `read_timeout`.
    ///
    /// # Errors
    ///
    /// [`DistError::Io`] when the socket options cannot be set.
    pub fn from_stream(stream: TcpStream, read_timeout: Duration) -> Result<Self, DistError> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp peer".into());
        Ok(TcpTransport { stream, peer })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), DistError> {
        let wire = frame.encode();
        self.stream.write_all(&wire)?;
        record_wire(true, wire.len());
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, DistError> {
        let mut len_buf = [0u8; 4];
        self.stream.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME_LEN {
            return Err(DistError::Protocol(format!(
                "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
            )));
        }
        let mut wire = vec![0u8; 4 + len + 8];
        wire[..4].copy_from_slice(&len_buf);
        self.stream.read_exact(&mut wire[4..])?;
        record_wire(false, wire.len());
        Frame::decode_wire(&wire)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

// --- loopback ------------------------------------------------------------

/// One end of an in-process frame pipe. Frames are fully encoded to
/// their wire image on `send` and decoded on `recv`, so the loopback
/// exercises the identical byte path as TCP.
pub struct LoopbackTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    recv_timeout: Duration,
    label: String,
}

/// An in-process transport pair (coordinator end, worker end) with a
/// generous read timeout.
pub fn loopback_pair() -> (LoopbackTransport, LoopbackTransport) {
    let (a_tx, b_rx) = mpsc::channel();
    let (b_tx, a_rx) = mpsc::channel();
    let coordinator = LoopbackTransport {
        tx: a_tx,
        rx: a_rx,
        recv_timeout: Duration::from_secs(120),
        label: "loopback worker".into(),
    };
    let worker = LoopbackTransport {
        tx: b_tx,
        rx: b_rx,
        recv_timeout: Duration::from_secs(120),
        label: "loopback coordinator".into(),
    };
    (coordinator, worker)
}

/// An in-process transport pair whose *second* (worker) end injects the
/// faults of `plan`. The coordinator end never fails on its own; it
/// observes an injected crash as a disconnect (like a real dropped
/// socket) and an injected hang as a read timeout.
pub fn loopback_pair_with_chaos(
    plan: ChaosPlan,
) -> (LoopbackTransport, ChaosTransport<LoopbackTransport>) {
    let (coordinator, worker) = loopback_pair();
    (coordinator, ChaosTransport::new(worker, plan))
}

impl LoopbackTransport {
    /// Overrides the read timeout (default 120 s).
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }
}

impl Transport for LoopbackTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), DistError> {
        let wire = frame.encode();
        let bytes = wire.len();
        self.tx
            .send(wire)
            .map_err(|_| DistError::Disconnected("loopback peer dropped its receiver".into()))?;
        record_wire(true, bytes);
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, DistError> {
        let wire = match self.rx.recv_timeout(self.recv_timeout) {
            Ok(wire) => wire,
            Err(RecvTimeoutError::Timeout) => {
                // Distinguish "peer is slow" from "peer is gone": a
                // disconnected channel with no pending frames reports
                // Disconnected on the next try_recv.
                return match self.rx.try_recv() {
                    Ok(wire) => {
                        record_wire(false, wire.len());
                        Frame::decode_wire(&wire)
                    }
                    Err(TryRecvError::Disconnected) => Err(DistError::Disconnected(
                        "loopback peer dropped its sender".into(),
                    )),
                    Err(TryRecvError::Empty) => Err(DistError::Timeout(format!(
                        "no frame within {:?}",
                        self.recv_timeout
                    ))),
                };
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(DistError::Disconnected(
                    "loopback peer dropped its sender".into(),
                ))
            }
        };
        record_wire(false, wire.len());
        Frame::decode_wire(&wire)
    }

    fn peer(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn loopback_moves_frames_both_ways() {
        let (mut c, mut w) = loopback_pair();
        w.send(&Frame::Hello { version: 1 }).unwrap();
        assert_eq!(c.recv().unwrap(), Frame::Hello { version: 1 });
        c.send(&Frame::Drained).unwrap();
        assert_eq!(w.recv().unwrap(), Frame::Drained);
    }

    #[test]
    fn loopback_recv_times_out_when_the_peer_is_alive_but_silent() {
        let (c, _w) = loopback_pair();
        let mut c = c.with_recv_timeout(Duration::from_millis(10));
        assert!(matches!(c.recv(), Err(DistError::Timeout(_))));
    }

    #[test]
    fn tcp_round_trips_a_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut t = TcpTransport::connect(addr).unwrap();
            t.send(&Frame::Hello { version: 7 }).unwrap();
            t.recv().unwrap()
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpTransport::from_stream(stream, Duration::from_secs(5)).unwrap();
        assert_eq!(server.recv().unwrap(), Frame::Hello { version: 7 });
        server
            .send(&Frame::Error {
                message: "bye".into(),
            })
            .unwrap();
        assert_eq!(
            client.join().unwrap(),
            Frame::Error {
                message: "bye".into()
            }
        );
    }

    #[test]
    fn tcp_hangup_reads_as_disconnected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpTransport::from_stream(stream, Duration::from_secs(5)).unwrap();
        drop(client.join().unwrap());
        assert!(matches!(server.recv(), Err(DistError::Disconnected(_))));
    }
}
