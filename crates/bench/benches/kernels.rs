//! Criterion benches of the performance-critical kernels behind the
//! paper's experiments: the simplex solver, the coschedule simulator, the
//! FCFS estimators, and the discrete-event scheduler step.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use lp::{LinearProgram, Relation};
use queueing::{
    run_latency_experiment, ContentionModel, FcfsScheduler, LatencyConfig, MaxItScheduler,
    Scheduler, SizeDist, SrptScheduler,
};
use simproc::{Machine, MachineConfig};
use symbiosis::{
    enumerate_coschedules, fcfs_throughput, fcfs_throughput_markov, optimal_schedule, JobSize,
    Objective, WorkloadRates,
};
use workloads::spec2006;

/// The Section IV scheduling LP at paper scale: 35 coschedule variables,
/// 4 equality constraints.
fn scheduling_rates() -> WorkloadRates {
    WorkloadRates::build(4, 4, |s| {
        let per_job = [1.0, 0.8, 0.5, 0.3];
        let het = s.heterogeneity() as f64;
        s.counts()
            .iter()
            .zip(per_job)
            .map(|(&c, r)| c as f64 * r * (0.55 + 0.12 * het))
            .collect()
    })
    .expect("valid table")
}

fn bench_simplex(c: &mut Criterion) {
    let rates = scheduling_rates();
    c.bench_function("lp/optimal_schedule_n4_k4", |b| {
        b.iter(|| optimal_schedule(&rates, Objective::MaxThroughput).expect("solves"))
    });
    // A larger LP: N = 8 -> 330 variables, 8 constraints.
    let big = WorkloadRates::build(8, 4, |s| {
        let het = s.heterogeneity() as f64;
        s.counts()
            .iter()
            .enumerate()
            .map(|(b, &cnt)| cnt as f64 * (0.3 + 0.08 * b as f64) * (0.6 + 0.1 * het))
            .collect()
    })
    .expect("valid table");
    c.bench_function("lp/optimal_schedule_n8_k4", |b| {
        b.iter(|| optimal_schedule(&big, Objective::MaxThroughput).expect("solves"))
    });
    c.bench_function("lp/raw_simplex_20x8", |b| {
        b.iter_batched(
            || {
                let mut p = LinearProgram::maximize(&[1.0; 20]);
                for i in 0..8 {
                    let row: Vec<f64> = (0..20)
                        .map(|j| ((i * 7 + j * 3) % 11) as f64 / 11.0)
                        .collect();
                    p.constraint(&row, Relation::Le, 1.0 + i as f64 * 0.1);
                }
                p
            },
            |p| p.solve().expect("solves"),
            BatchSize::SmallInput,
        )
    });
}

fn bench_simproc(c: &mut Criterion) {
    let suite = spec2006();
    let machine = Machine::new(MachineConfig::smt4().with_windows(1_000, 4_000))
        .expect("valid config");
    c.bench_function("simproc/smt4_coschedule_5k_cycles", |b| {
        b.iter(|| {
            machine
                .simulate(&[&suite[0], &suite[5], &suite[7], &suite[11]])
                .expect("simulates")
        })
    });
    let quad = Machine::new(MachineConfig::quadcore().with_windows(1_000, 4_000))
        .expect("valid config");
    c.bench_function("simproc/quadcore_coschedule_5k_cycles", |b| {
        b.iter(|| {
            quad.simulate(&[&suite[0], &suite[5], &suite[7], &suite[11]])
                .expect("simulates")
        })
    });
}

fn bench_fcfs(c: &mut Criterion) {
    let rates = scheduling_rates();
    c.bench_function("fcfs/event_sim_5k_jobs", |b| {
        b.iter(|| fcfs_throughput(&rates, 5_000, JobSize::Deterministic, 1).expect("runs"))
    });
    c.bench_function("fcfs/markov_chain_35_states", |b| {
        b.iter(|| fcfs_throughput_markov(&rates).expect("solves"))
    });
}

fn bench_des(c: &mut Criterion) {
    let rates = ContentionModel::new(vec![1.0, 0.7, 0.5, 0.3], 0.2, 4);
    let cfg = LatencyConfig {
        arrival_rate: 1.2,
        measured_jobs: 2_000,
        warmup_jobs: 200,
        sizes: SizeDist::Exponential,
        seed: 3,
    };
    let policies: [(&str, fn() -> Box<dyn Scheduler>); 3] = [
        ("fcfs", || Box::new(FcfsScheduler)),
        ("maxit", || Box::new(MaxItScheduler)),
        ("srpt", || Box::new(SrptScheduler)),
    ];
    for (name, make) in policies {
        c.bench_function(&format!("des/latency_2k_jobs_{name}"), |b| {
            b.iter_batched(
                make,
                |mut s| run_latency_experiment(&rates, s.as_mut(), &cfg).expect("runs"),
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_enumeration(c: &mut Criterion) {
    c.bench_function("enumerate/coschedules_12_choose_4_multiset", |b| {
        b.iter(|| enumerate_coschedules(12, 4))
    });
}

criterion_group!(
    benches,
    bench_simplex,
    bench_simproc,
    bench_fcfs,
    bench_des,
    bench_enumeration
);
criterion_main!(benches);
