//! Benchmarks of the performance-critical kernels behind the paper's
//! experiments: the simplex solver, the coschedule simulator, the FCFS
//! estimators, and the discrete-event scheduler step.
//!
//! Self-contained harness (no external bench framework): each kernel is
//! auto-calibrated to a target batch duration, timed over several batches,
//! and reported as the median ns/iteration. `cargo bench -p paperbench`
//! prints the table and rewrites `BENCH_session.json` at the workspace
//! root so successive PRs accumulate a perf trajectory.
//!
//! With `BENCH_SMOKE=1` the harness runs every kernel on a reduced budget
//! (shorter batches, fewer of them) — CI uses that to guarantee the
//! emitted JSON never silently loses a kernel: after the run the harness
//! checks [`EXPECTED_BENCHMARKS`] against the results and exits non-zero
//! on any gap.

use std::hint::black_box;
use std::time::Instant;

use dist::{loopback_pair, run_worker, Coordinator, DistConfig, WorkerConfig};
use lp::sparse::stationary_sor;
use lp::{LinearProgram, Relation};
use queueing::{run_latency_experiment, ContentionModel, LatencyConfig, SizeDist};
use session::{Policy, Session};
use simproc::{BenchmarkProfile, Machine, MachineConfig};
use symbiosis::{
    enumerate_coschedules, fcfs_throughput, fcfs_throughput_markov, markov_chain, optimal_schedule,
    CoscheduleIter, JobSize, Objective, RateModel, WorkloadRates,
};
use workloads::{spec2006, PerfTable, TableStore};

/// Every kernel the harness must emit; the post-run check fails the
/// process if `BENCH_session.json` would miss one, so perf-trajectory
/// coverage cannot silently rot.
const EXPECTED_BENCHMARKS: &[&str] = &[
    "lp/optimal_schedule_n4_k4",
    "lp/optimal_schedule_n8_k4",
    "lp/optimal_colgen_n12_k8",
    "lp/raw_simplex_20x8",
    "simproc/smt4_coschedule_5k_cycles",
    "simproc/quadcore_coschedule_5k_cycles",
    "fcfs/event_sim_5k_jobs",
    "fcfs/markov_chain_35_states",
    "fcfs/markov_sparse_n12_k4",
    "fcfs/markov_sparse_n12_k8",
    "fcfs/markov_sor_n12_k8",
    "fcfs/markov_sparse_n12_k10",
    "rates/flat_lookup_n12_k8",
    "table/build_3bench_tiny_windows",
    "table/store_warm_load_3bench",
    "des/latency_2k_jobs_fcfs",
    "des/latency_2k_jobs_maxit",
    "des/latency_2k_jobs_srpt",
    "sweep/latency_fig5_leg",
    "predict/fit_sampled_n12_k8",
    "serve/steady_state_jobs_sec",
    "dist/sweep_495_mixes_3_workers",
    "enumerate/coschedules_12_choose_4_multiset",
    "enumerate/stream_vs_vec",
];

/// Solver-iteration counters summed into the optional `solver_iters`
/// trajectory field: one deterministic convergence figure per kernel, so
/// `bench-delta` can flag a solver that starts needing more sweeps to
/// converge even when wall time stays flat.
const SOLVER_ITER_COUNTERS: &[&str] = &[
    "lp.gauss_seidel.sweeps",
    "lp.sor.sweeps",
    "lp.multicolor.sweeps",
    "lp.colgen.pricing_rounds",
];

/// One benchmark's outcome.
struct Measurement {
    name: &'static str,
    median_ns: f64,
    batches: usize,
    iters_per_batch: u64,
    /// Total solver sweeps/pricing rounds one untimed probe run recorded
    /// (`None` for kernels that never touch the iterative solvers).
    solver_iters: Option<u64>,
}

/// True when CI asks for the reduced-budget smoke run.
fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Times `f` adaptively: calibrates an iteration count for ~40ms batches
/// (~4ms under `BENCH_SMOKE`), then reports the median per-iteration time
/// over 7 batches (3 under smoke).
fn bench<F: FnMut()>(name: &'static str, mut f: F) -> Measurement {
    let (target_batch_ns, batches): (f64, usize) = if smoke_mode() {
        (4_000_000.0, 3)
    } else {
        (40_000_000.0, 7)
    };

    // Warm up and calibrate.
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = t0.elapsed().as_nanos() as f64;
        if elapsed >= target_batch_ns / 4.0 || iters >= 1 << 20 {
            let scale = (target_batch_ns / elapsed.max(1.0)).clamp(0.25, 1024.0);
            iters = ((iters as f64 * scale) as u64).max(1);
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = (0..batches)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    // One untimed probe run under a private recorder: the deterministic
    // solvers report their sweep counts, which become the kernel's
    // convergence figure in the trajectory file.
    let rec = obs::Recorder::new();
    {
        let _obs = obs::install(&rec);
        f();
    }
    let snap = rec.snapshot();
    let solver_iters: u64 = SOLVER_ITER_COUNTERS
        .iter()
        .filter_map(|k| snap.counters.get(*k))
        .sum();

    Measurement {
        name,
        median_ns: per_iter[batches / 2],
        batches,
        iters_per_batch: iters,
        solver_iters: (solver_iters > 0).then_some(solver_iters),
    }
}

/// The Section IV scheduling LP at paper scale: 35 coschedule variables,
/// 4 equality constraints.
fn scheduling_rates() -> WorkloadRates {
    WorkloadRates::build(4, 4, |s| {
        let per_job = [1.0, 0.8, 0.5, 0.3];
        let het = s.heterogeneity() as f64;
        s.counts()
            .iter()
            .zip(per_job)
            .map(|(&c, r)| c as f64 * r * (0.55 + 0.12 * het))
            .collect()
    })
    .expect("valid table")
}

/// A deterministic symbiosis-sensitive table at an arbitrary `(N, K)`
/// shape — backing the big-machine scaling kernels.
fn scaling_rates(n: usize, k: usize) -> WorkloadRates {
    WorkloadRates::build(n, k, |s| {
        let het = s.heterogeneity() as f64 / k as f64;
        s.counts()
            .iter()
            .enumerate()
            .map(|(b, &c)| {
                if c == 0 {
                    0.0
                } else {
                    c as f64 * (0.5 + 0.07 * b as f64) * (0.3 + 0.25 * het)
                }
            })
            .collect()
    })
    .expect("valid table")
}

fn main() {
    let mut results: Vec<Measurement> = Vec::new();

    let rates = scheduling_rates();
    results.push(bench("lp/optimal_schedule_n4_k4", || {
        black_box(optimal_schedule(&rates, Objective::MaxThroughput).expect("solves"));
    }));

    // A larger LP: N = 8 -> 330 variables, 8 constraints.
    let big = WorkloadRates::build(8, 4, |s| {
        let het = s.heterogeneity() as f64;
        s.counts()
            .iter()
            .enumerate()
            .map(|(b, &cnt)| cnt as f64 * (0.3 + 0.08 * b as f64) * (0.6 + 0.1 * het))
            .collect()
    })
    .expect("valid table");
    results.push(bench("lp/optimal_schedule_n8_k4", || {
        black_box(optimal_schedule(&big, Objective::MaxThroughput).expect("solves"));
    }));

    // The big-machine frontier: N = 12 on K = 8 is 75 582 coschedule
    // columns — far past the dense-tableau threshold, so this solve runs
    // the column-generation path (dense is ~infeasible at this shape).
    let huge = scaling_rates(12, 8);
    results.push(bench("lp/optimal_colgen_n12_k8", || {
        black_box(optimal_schedule(&huge, Objective::MaxThroughput).expect("solves"));
    }));

    results.push(bench("lp/raw_simplex_20x8", || {
        let mut p = LinearProgram::maximize(&[1.0; 20]);
        for i in 0..8 {
            let row: Vec<f64> = (0..20)
                .map(|j| ((i * 7 + j * 3) % 11) as f64 / 11.0)
                .collect();
            p.constraint(&row, Relation::Le, 1.0 + i as f64 * 0.1);
        }
        black_box(p.solve().expect("solves"));
    }));

    let suite = spec2006();
    let machine =
        Machine::new(MachineConfig::smt4().with_windows(1_000, 4_000)).expect("valid config");
    results.push(bench("simproc/smt4_coschedule_5k_cycles", || {
        black_box(
            machine
                .simulate(&[&suite[0], &suite[5], &suite[7], &suite[11]])
                .expect("simulates"),
        );
    }));
    let quad =
        Machine::new(MachineConfig::quadcore().with_windows(1_000, 4_000)).expect("valid config");
    results.push(bench("simproc/quadcore_coschedule_5k_cycles", || {
        black_box(
            quad.simulate(&[&suite[0], &suite[5], &suite[7], &suite[11]])
                .expect("simulates"),
        );
    }));

    results.push(bench("fcfs/event_sim_5k_jobs", || {
        black_box(fcfs_throughput(&rates, 5_000, JobSize::Deterministic, 1).expect("runs"));
    }));
    results.push(bench("fcfs/markov_chain_35_states", || {
        black_box(fcfs_throughput_markov(&rates).expect("solves"));
    }));

    // Sparse Markov chains: 1365 states (N = 12, K = 4) would already be a
    // ~2.5 Gflop dense LU; 75 582 states (K = 8) is flatly out of reach
    // dense. Both run CSR + Gauss–Seidel through the default dispatch.
    let scaling_k4 = scaling_rates(12, 4);
    results.push(bench("fcfs/markov_sparse_n12_k4", || {
        black_box(fcfs_throughput_markov(&scaling_k4).expect("solves"));
    }));
    results.push(bench("fcfs/markov_sparse_n12_k8", || {
        black_box(fcfs_throughput_markov(&huge).expect("solves"));
    }));

    // The raw stationary solve on the prebuilt 75 582-state chain: chain
    // assembly is hoisted out of the timer, so this kernel isolates the
    // adaptive-omega SOR iteration the accelerated dispatch runs.
    let (huge_inflow, huge_outflow) = markov_chain(&huge);
    results.push(bench("fcfs/markov_sor_n12_k8", || {
        black_box(stationary_sor(&huge_inflow, &huge_outflow, 1e-12, 20_000).expect("solves"));
    }));

    // K = 10 stress shape: 352 716 states — past DEFAULT_MARKOV_ACCEL_LIMIT,
    // so the default dispatch runs the multi-colored parallel SOR sweep.
    let scaling_k10 = scaling_rates(12, 10);
    results.push(bench("fcfs/markov_sparse_n12_k10", || {
        black_box(fcfs_throughput_markov(&scaling_k10).expect("solves"));
    }));

    // The flat rank-indexed rate probes the Markov generator leans on: one
    // `index_of_counts` + one rate read per state over the full N = 12 /
    // K = 8 enumeration — O(N) arithmetic per probe, no hashing, no heap.
    results.push(bench("rates/flat_lookup_n12_k8", || {
        let mut acc = 0.0f64;
        for (si, s) in huge.coschedules().iter().enumerate() {
            let idx = huge.index_of_counts(s.counts()).expect("in table");
            acc += huge.rate(idx, si % 12);
        }
        black_box(acc);
    }));

    // Cold table build vs warm store load: the gap is what a cached
    // `--table-cache` run skips per table.
    let tiny_suite: Vec<BenchmarkProfile> = suite.iter().take(3).cloned().collect();
    let tiny_config = MachineConfig::smt4().with_windows(1_000, 3_000);
    let tiny_machine = Machine::new(tiny_config.clone()).expect("valid config");
    results.push(bench("table/build_3bench_tiny_windows", || {
        black_box(PerfTable::build(&tiny_machine, &tiny_suite, 4).expect("builds"));
    }));
    let store_dir = std::env::temp_dir().join(format!("symb-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = TableStore::new(&store_dir);
    let warmup = store
        .get_or_build(&tiny_config, &tiny_suite, 4)
        .expect("cold build");
    assert!(!warmup.cache_hit);
    results.push(bench("table/store_warm_load_3bench", || {
        let outcome = store
            .get_or_build(&tiny_config, &tiny_suite, 4)
            .expect("warm load");
        assert!(outcome.cache_hit, "warm run must skip PerfTable::build");
        black_box(outcome.table);
    }));
    let _ = std::fs::remove_dir_all(&store_dir);

    let des_rates = ContentionModel::new(vec![1.0, 0.7, 0.5, 0.3], 0.2, 4);
    let des_cfg = LatencyConfig {
        arrival_rate: 1.2,
        measured_jobs: 2_000,
        warmup_jobs: 200,
        sizes: SizeDist::Exponential,
        seed: 3,
    };
    for policy in [Policy::Fcfs, Policy::MaxIt, Policy::Srpt] {
        let name: &'static str = match policy {
            Policy::Fcfs => "des/latency_2k_jobs_fcfs",
            Policy::MaxIt => "des/latency_2k_jobs_maxit",
            _ => "des/latency_2k_jobs_srpt",
        };
        results.push(bench(name, || {
            let mut sched = policy.latency_scheduler(&[]).expect("latency policy");
            black_box(run_latency_experiment(&des_rates, sched.as_mut(), &des_cfg).expect("runs"));
        }));
    }

    // The latency fan-out behind the migrated Figure 5 leg: one shared
    // synthetic table, the four Section VI schedulers per workload
    // (including the LP-target derivation for MAXTP), fanned out through
    // `Session::sweep` with a Poisson-arrival configuration.
    let sweep_table =
        PerfTable::synthetic((0..6).map(|b| format!("syn{b}")).collect(), 4, |combo| {
            combo
                .iter()
                .map(|&b| (0.5 + 0.1 * b as f64) / (1.0 + 0.15 * (combo.len() as f64 - 1.0)))
                .collect()
        })
        .expect("synthetic table builds");
    let sweep_latency_cfg = LatencyConfig {
        arrival_rate: 1.0,
        measured_jobs: 400,
        warmup_jobs: 40,
        sizes: SizeDist::Exponential,
        seed: 7,
    };
    results.push(bench("sweep/latency_fig5_leg", || {
        black_box(
            Session::sweep()
                .table(&sweep_table)
                .workloads(vec![vec![0, 1, 2, 3], vec![1, 2, 4, 5]])
                .policies(Policy::LATENCY)
                .latency(sweep_latency_cfg.clone())
                .seed(7)
                .threads(2)
                .run()
                .expect("sweep runs"),
        );
    }));

    // The sampled-fit kernel behind `model_accuracy`: fitting the richer
    // least-squares interference model to a stratified 12 000-combo sample
    // of the N = 12 / K = 8 enumeration (the ≤ 10% measurement budget).
    // Sample extraction is done once outside the timer — the kernel is the
    // fit itself, the step a residual-driven refit loop would re-run.
    let plan = predict::stratified_plan(12, 8, 12_000, 0x5EED).expect("plan");
    let sampled_table = workloads::PerfTable::synthetic_sampled(
        (0..12).map(|b| format!("syn{b:02}")).collect(),
        8,
        plan.indices(),
        |combo| {
            combo
                .iter()
                .map(|&b| (0.6 + 0.11 * (b % 7) as f64) / (1.0 + 0.2 * (combo.len() as f64 - 1.0)))
                .collect()
        },
    )
    .expect("sampled table builds");
    let fit_samples = predict::samples_from_table(
        &sampled_table,
        &(0..12).collect::<Vec<_>>(),
        workloads::WorkUnit::Weighted,
    )
    .expect("samples extract");
    results.push(bench("predict/fit_sampled_n12_k8", || {
        black_box(
            predict::PredictedModel::fit(
                12,
                8,
                fit_samples.clone(),
                Box::new(predict::InterferenceFitter),
            )
            .expect("fits"),
        );
    }));

    // The online-service loop: one complete steady-state serve run —
    // seeded arrivals through the bounded queue, beam placement priced on
    // the live predicted model, inline twin refits — at small scale. The
    // per-iteration time over 200 jobs is the steady-state cost per job a
    // live deployment pays for the whole loop.
    let serve_truth = symbiosis::AnalyticModel::new(4, 4, |counts: &[u32], ty| {
        let distinct = counts.iter().filter(|&&c| c > 0).count() as f64;
        let load: u32 = counts.iter().sum();
        (0.7 + 0.1 * ty as f64) * (1.0 + 0.2 * (distinct - 1.0))
            / (1.0 + 0.35 * (load as f64 - 1.0))
    });
    let serve_seed_samples: Vec<predict::RateSample> = (1..=2)
        .flat_map(|s| enumerate_coschedules(4, s))
        .map(|c| predict::RateSample {
            counts: c.counts().to_vec(),
            rates: (0..4)
                .map(|ty| RateModel::total_rate(&serve_truth, c.counts(), ty))
                .collect(),
        })
        .collect();
    let serve_cfg = serve::ServeConfig {
        arrival_rate: 2.0,
        jobs: 200,
        seed: 11,
        batch: 50,
        probes: 2,
        background_twin: false,
        ..serve::ServeConfig::default()
    };
    results.push(bench("serve/steady_state_jobs_sec", || {
        let model = predict::PredictedModel::fit(
            4,
            4,
            serve_seed_samples.clone(),
            Box::new(predict::InterferenceFitter),
        )
        .expect("fits");
        black_box(
            serve::run_serve(
                &serve_truth,
                model,
                Box::new(serve::BeamPlacer::new(4)),
                &serve_cfg,
            )
            .expect("serves"),
        );
    }));

    // The distributed-sweep round trip at fig1 scale: serialize the table
    // and spec, shard all 495 four-type mixes across three workers over
    // the loopback transport, and merge the rows back in workload order.
    // The delta against a single-process `Session::sweep()` of the same
    // table is the coordination overhead the `dist` crate charges.
    let dist_table =
        PerfTable::synthetic((0..12).map(|b| format!("syn{b:02}")).collect(), 4, |c| {
            c.iter()
                .map(|&b| (0.55 + 0.09 * (b % 5) as f64) / (1.0 + 0.18 * (c.len() as f64 - 1.0)))
                .collect()
        })
        .expect("synthetic table builds");
    results.push(bench("dist/sweep_495_mixes_3_workers", || {
        let coordinator = Coordinator::from_sweep(
            Session::sweep()
                .table(&dist_table)
                .workloads(symbiosis::enumerate_workloads(12, 4))
                .policies([Policy::Worst, Policy::FcfsEvent, Policy::Optimal])
                .fcfs_jobs(2_000)
                .seed(9),
            DistConfig::default(),
        )
        .expect("coordinator builds");
        let mut coordinator_ends = Vec::new();
        let fleet: Vec<_> = (0..3)
            .map(|_| {
                let (c_end, w_end) = loopback_pair();
                coordinator_ends.push(c_end);
                std::thread::spawn(move || {
                    run_worker(
                        w_end,
                        &WorkerConfig {
                            threads: 2,
                            cache: None,
                        },
                    )
                    .expect("worker completes")
                })
            })
            .collect();
        let outcome = coordinator.run(coordinator_ends).expect("sweep merges");
        for handle in fleet {
            handle.join().expect("worker thread");
        }
        assert_eq!(outcome.report.len(), 495);
        black_box(outcome.report);
    }));

    results.push(bench("enumerate/coschedules_12_choose_4_multiset", || {
        black_box(enumerate_coschedules(12, 4));
    }));
    // The streaming iterator drains the same 1365-coschedule space without
    // materialising the Vec — the allocation gap is the point of this pair.
    results.push(bench("enumerate/stream_vs_vec", || {
        black_box(CoscheduleIter::new(12, 4).count());
    }));

    println!(
        "{:<44} {:>14} {:>8} {:>12} {:>12}",
        "kernel", "median ns/iter", "batches", "iters/batch", "solver iters"
    );
    for m in &results {
        println!(
            "{:<44} {:>14.0} {:>8} {:>12} {:>12}",
            m.name,
            m.median_ns,
            m.batches,
            m.iters_per_batch,
            m.solver_iters
                .map_or_else(|| "-".to_string(), |n| n.to_string())
        );
    }

    // Emit the JSON trajectory file at the workspace root.
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, m) in results.iter().enumerate() {
        let solver = m
            .solver_iters
            .map_or_else(String::new, |n| format!(", \"solver_iters\": {n}"));
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns_per_iter\": {:.1}, \"batches\": {}, \"iters_per_batch\": {}{}}}{}\n",
            m.name,
            m.median_ns,
            m.batches,
            m.iters_per_batch,
            solver,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_session.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            // A stale trajectory file must not pass CI's coverage checks.
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
    }

    // Coverage guard: the trajectory file must contain every expected
    // kernel (and the expected list must track every kernel run), or the
    // harness fails — CI's smoke step relies on this.
    let missing: Vec<&str> = EXPECTED_BENCHMARKS
        .iter()
        .copied()
        .filter(|name| !results.iter().any(|m| m.name == *name))
        .collect();
    let unlisted: Vec<&str> = results
        .iter()
        .map(|m| m.name)
        .filter(|name| !EXPECTED_BENCHMARKS.contains(name))
        .collect();
    if !missing.is_empty() || !unlisted.is_empty() {
        eprintln!("benchmark coverage check failed:");
        if !missing.is_empty() {
            eprintln!("  missing from this run: {missing:?}");
        }
        if !unlisted.is_empty() {
            eprintln!("  not in EXPECTED_BENCHMARKS: {unlisted:?}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "benchmark coverage check passed ({} kernels{})",
        results.len(),
        if smoke_mode() { ", smoke budget" } else { "" }
    );
}
