//! Artefact parity for the experiments migrated off the hand-rolled
//! fan-out onto `Session::sweep()` (fig2, fig3, fig5, fig6, fairness):
//! each one is run
//! through the [`paperbench::Experiment`] registry at reduced scale and
//! compared **byte-for-byte** against a reference artefact computed the
//! pre-migration way — sequential loops over the `symbiosis`/`queueing`
//! free functions with hand-rolled folds.
//!
//! The references deliberately duplicate the old aggregation code: that
//! duplication is the test. If the sweep surface ever stops reproducing
//! the old numbers (or the Display formatting drifts), the byte
//! comparison fails.

use std::sync::OnceLock;

use paperbench::experiments::{fig2, fig3, fig5, fig6};
use paperbench::{by_name, mean, pearson, ExperimentContext, Study, StudyConfig};
use queueing::{
    run_batch_experiment, run_latency_experiment, BatchConfig, LatencyConfig, SizeDist,
};
use session::Policy;
use symbiosis::{
    fairness_experiment, fcfs_throughput, fit_linear_bottleneck, optimal_schedule,
    per_type_rate_difference, throughput_bounds, JobSize, Objective, WorkloadRates,
};

use paperbench::Chip;

fn parity_config() -> StudyConfig {
    let mut cfg = StudyConfig::fast();
    cfg.warmup_cycles = 1_000;
    cfg.measure_cycles = 4_000;
    cfg.sample = Some(3);
    cfg.fcfs_jobs = 2_500;
    cfg.seed = 0xA27E_FAC7;
    cfg
}

fn context() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::new(parity_config()))
}

fn study() -> &'static Study {
    context().study().expect("study builds")
}

/// Runs one registry entry and returns its printed artefact.
fn registry_artefact(name: &str) -> String {
    by_name(name)
        .unwrap_or_else(|| panic!("{name} is registered"))
        .run(context())
        .unwrap_or_else(|e| panic!("{name} runs: {e}"))
}

/// The old MAXTP target derivation: LP-optimal coschedule fractions.
fn maxtp_targets(rates: &WorkloadRates, fractions: &[f64]) -> Vec<(Vec<u32>, f64)> {
    rates
        .coschedules()
        .iter()
        .zip(fractions)
        .filter(|(_, &x)| x > 1e-9)
        .map(|(s, &x)| (s.counts().to_vec(), x))
        .collect()
}

#[test]
fn fig2_artefact_matches_free_function_reference() {
    let study = study();
    let cfg = study.config();
    let mut chips = Vec::new();
    for chip in Chip::ALL {
        let table = study.table(chip);
        let mut points = Vec::new();
        for w in study.workloads() {
            let rates = table.workload_rates(&w).expect("valid workload");
            let (worst, best) = throughput_bounds(&rates).expect("bounds solve");
            let fcfs = fcfs_throughput(&rates, cfg.fcfs_jobs, JobSize::Deterministic, cfg.seed)
                .expect("fcfs runs");
            points.push(fig2::Point {
                optimal_vs_worst: best.throughput / worst.throughput,
                fcfs_vs_worst: fcfs.throughput / worst.throughput,
            });
        }
        // The old least-squares fit of (y - 1) = a (x - 1).
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut bridges = Vec::new();
        for p in &points {
            let x = p.optimal_vs_worst - 1.0;
            let y = p.fcfs_vs_worst - 1.0;
            sxx += x * x;
            sxy += x * y;
            if x > 1e-6 {
                bridges.push((y / x).clamp(0.0, 1.5));
            }
        }
        chips.push(fig2::ChipFig2 {
            chip,
            slope: if sxx > 1e-12 { sxy / sxx } else { 0.0 },
            bridge_fraction: mean(&bridges),
            points,
        });
    }
    let reference = fig2::Fig2 { chips }.to_string();
    assert_eq!(registry_artefact("fig2"), reference);
}

#[test]
fn fig3_artefact_matches_free_function_reference() {
    let study = study();
    let mut chips = Vec::new();
    for chip in Chip::ALL {
        let table = study.table(chip);
        let mut points = Vec::new();
        for w in study.workloads() {
            let rates = table.workload_rates(&w).expect("valid workload");
            let fit = fit_linear_bottleneck(&rates).expect("fit solves");
            let (worst, best) = throughput_bounds(&rates).expect("bounds solve");
            points.push(fig3::Point {
                bottleneck_mse: fit.mse,
                optimal_vs_worst: best.throughput / worst.throughput,
                rate_difference: per_type_rate_difference(&rates),
            });
        }
        let xs: Vec<f64> = points.iter().map(|p| p.bottleneck_mse).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.optimal_vs_worst).collect();
        let correlation_all = pearson(&xs, &ys);
        let mut diffs: Vec<f64> = points.iter().map(|p| p.rate_difference).collect();
        diffs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = diffs[diffs.len() / 2];
        let similar: Vec<&fig3::Point> = points
            .iter()
            .filter(|p| p.rate_difference <= median)
            .collect();
        let sx: Vec<f64> = similar.iter().map(|p| p.bottleneck_mse).collect();
        let sy: Vec<f64> = similar.iter().map(|p| p.optimal_vs_worst).collect();
        chips.push(fig3::ChipFig3 {
            chip,
            points,
            correlation_all,
            correlation_similar_jobs: pearson(&sx, &sy),
        });
    }
    let reference = fig3::Fig3 { chips }.to_string();
    assert_eq!(registry_artefact("fig3"), reference);
}

#[test]
fn fig5_artefact_matches_free_function_reference() {
    let study = study();
    let cfg = study.config();
    let workloads = study.workloads();
    let table = study.table(Chip::Smt);
    let measured_jobs = (cfg.fcfs_jobs / 2).clamp(2_000, 20_000);
    let loads = [0.8, 0.9, 0.95];

    let mut cells = Vec::new();
    for &load in &loads {
        // Per workload and policy: (turnaround, utilization, empty).
        let mut runs: Vec<Vec<(f64, f64, f64)>> = Vec::new();
        for w in &workloads {
            let rates = table.workload_rates(w).expect("valid workload");
            let view = table.workload_view(w).expect("valid workload");
            let fcfs_tp = fcfs_throughput(&rates, cfg.fcfs_jobs, JobSize::Deterministic, cfg.seed)
                .expect("fcfs runs")
                .throughput;
            let best = optimal_schedule(&rates, Objective::MaxThroughput).expect("lp solves");
            let targets = maxtp_targets(&rates, &best.fractions);
            let latency_cfg = LatencyConfig {
                arrival_rate: load * fcfs_tp,
                measured_jobs,
                warmup_jobs: measured_jobs / 10,
                sizes: SizeDist::Exponential,
                seed: cfg.seed ^ (load * 1000.0) as u64,
            };
            let mut per_policy = Vec::new();
            for policy in fig5::POLICIES {
                let mut sched = policy
                    .latency_scheduler(&targets)
                    .expect("latency policy has a scheduler");
                let report = run_latency_experiment(&view, sched.as_mut(), &latency_cfg)
                    .expect("experiment runs");
                per_policy.push((
                    report.mean_turnaround,
                    report.utilization,
                    report.empty_fraction,
                ));
            }
            runs.push(per_policy);
        }
        let mut row = Vec::new();
        for pi in 0..fig5::POLICIES.len() {
            let tnorm: Vec<f64> = runs.iter().map(|r| r[pi].0 / r[0].0).collect();
            let util: Vec<f64> = runs.iter().map(|r| r[pi].1).collect();
            let empty: Vec<f64> = runs.iter().map(|r| r[pi].2).collect();
            row.push(fig5::Cell {
                turnaround_vs_fcfs: mean(&tnorm),
                utilization: mean(&util),
                empty_fraction: mean(&empty),
            });
        }
        cells.push(row);
    }
    let reference = fig5::Fig5 {
        loads: loads.to_vec(),
        cells,
        workloads: workloads.len(),
    }
    .to_string();
    assert_eq!(registry_artefact("fig5"), reference);
}

#[test]
fn fig6_artefact_matches_free_function_reference() {
    let study = study();
    let cfg = study.config();
    let table = study.table(Chip::Smt);
    let measured_jobs = (cfg.fcfs_jobs / 2).clamp(2_000, 20_000);

    let mut points = Vec::new();
    for w in study.workloads() {
        let rates = table.workload_rates(&w).expect("valid workload");
        let view = table.workload_view(&w).expect("valid workload");
        let (worst, best) = throughput_bounds(&rates).expect("bounds solve");
        let targets = maxtp_targets(&rates, &best.fractions);
        let batch_cfg = BatchConfig {
            jobs: measured_jobs,
            sizes: SizeDist::Deterministic,
            seed: cfg.seed ^ 0xF16,
        };
        let mut achieved = Vec::new();
        for policy in Policy::LATENCY {
            let mut sched = policy
                .latency_scheduler(&targets)
                .expect("latency policy has a scheduler");
            let report =
                run_batch_experiment(&view, sched.as_mut(), &batch_cfg).expect("experiment runs");
            achieved.push(report.throughput);
        }
        let fcfs = achieved[0];
        points.push(fig6::Point {
            lp_max: best.throughput / fcfs,
            lp_min: worst.throughput / fcfs,
            maxit: achieved[1] / fcfs,
            srpt: achieved[2] / fcfs,
            maxtp: achieved[3] / fcfs,
        });
    }
    points.sort_by(|a, b| a.lp_max.partial_cmp(&b.lp_max).expect("finite"));
    let means = fig6::Point {
        lp_max: mean(&points.iter().map(|p| p.lp_max).collect::<Vec<_>>()),
        lp_min: mean(&points.iter().map(|p| p.lp_min).collect::<Vec<_>>()),
        maxit: mean(&points.iter().map(|p| p.maxit).collect::<Vec<_>>()),
        srpt: mean(&points.iter().map(|p| p.srpt).collect::<Vec<_>>()),
        maxtp: mean(&points.iter().map(|p| p.maxtp).collect::<Vec<_>>()),
    };
    let reference = fig6::Fig6 { points, means }.to_string();
    assert_eq!(registry_artefact("fig6"), reference);
}

#[test]
fn fairness_artefact_matches_free_function_reference() {
    let study = study();
    let cfg = study.config();
    let table = study.table(Chip::Smt);
    let mut experiments = Vec::new();
    for w in study.workloads() {
        let rates = table.workload_rates(&w).expect("valid workload");
        experiments
            .push(fairness_experiment(&rates, cfg.fcfs_jobs, cfg.seed).expect("experiment runs"));
    }
    let gains: Vec<f64> = experiments
        .iter()
        .map(|e| e.optimal_after / e.optimal_before - 1.0)
        .collect();
    let before: Vec<f64> = experiments.iter().map(|e| e.fraction_before).collect();
    let after: Vec<f64> = experiments.iter().map(|e| e.fraction_after).collect();
    let fcfs: Vec<f64> = experiments
        .iter()
        .map(|e| (e.fcfs_after / e.fcfs_before - 1.0).abs())
        .collect();
    let worst: Vec<f64> = experiments
        .iter()
        .map(|e| (e.worst_after / e.worst_before - 1.0).abs())
        .collect();
    let reference = paperbench::experiments::fairness::Fairness {
        optimal_gain: mean(&gains),
        fraction_before: mean(&before),
        fraction_after: mean(&after),
        fcfs_shift: mean(&fcfs),
        worst_shift: mean(&worst),
        workloads: experiments.len(),
    }
    .to_string();
    assert_eq!(registry_artefact("fairness"), reference);
}
