//! API parity: every migrated experiment path produces *byte-identical*
//! numbers through the new `Session` API as through the old free
//! functions, for a fixed seed. Uses a reduced-scale measured table so the
//! suite stays fast.

use std::sync::OnceLock;

use paperbench::experiments::{fairness, fig1, sec7};
use paperbench::StudyConfig;
use simproc::BenchmarkProfile;
use simproc::{Machine, MachineConfig};
use symbiosis::{
    analyze_variability, fairness_experiment, fcfs_throughput, optimal_schedule, FcfsParams,
    JobSize, Objective, WorkloadRates,
};
use workloads::{spec2006, PerfTable};

fn tiny_table() -> &'static PerfTable {
    static TABLE: OnceLock<PerfTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let machine =
            Machine::new(MachineConfig::smt4().with_windows(2_000, 8_000)).expect("valid config");
        let suite: Vec<BenchmarkProfile> = spec2006().into_iter().take(5).collect();
        PerfTable::build(&machine, &suite, 4).expect("table builds")
    })
}

fn parity_config() -> StudyConfig {
    let mut cfg = StudyConfig::fast();
    cfg.fcfs_jobs = 6_000;
    cfg.seed = 0xBEEF;
    cfg
}

fn workloads() -> [[usize; 4]; 3] {
    [[0, 1, 2, 3], [0, 1, 2, 4], [1, 2, 3, 4]]
}

#[test]
fn fig1_variability_matches_free_functions_bitwise() {
    let table = tiny_table();
    let cfg = parity_config();
    for w in workloads() {
        let rates: WorkloadRates = table.workload_rates(&w).expect("valid workload");
        let via_session = fig1::workload_variability(&rates, &cfg).expect("session path");
        let via_free = analyze_variability(
            &rates,
            FcfsParams {
                jobs: cfg.fcfs_jobs,
                sizes: JobSize::Deterministic,
                seed: cfg.seed,
            },
        )
        .expect("free-function path");
        // PartialEq on every field — f64s compare bitwise-equal values.
        assert_eq!(via_session, via_free, "workload {w:?}");
    }
}

#[test]
fn sec7_throughputs_match_free_functions_bitwise() {
    let table = tiny_table();
    let cfg = parity_config();
    for w in workloads() {
        let (fcfs_s, opt_s) = sec7::workload_throughputs(table, &w, &cfg).expect("session path");
        let rates = table.workload_rates(&w).expect("valid workload");
        let fcfs_f = fcfs_throughput(&rates, cfg.fcfs_jobs, JobSize::Deterministic, cfg.seed)
            .expect("fcfs runs")
            .throughput;
        let opt_f = optimal_schedule(&rates, Objective::MaxThroughput)
            .expect("lp solves")
            .throughput;
        assert_eq!(fcfs_s.to_bits(), fcfs_f.to_bits(), "workload {w:?}: FCFS");
        assert_eq!(opt_s.to_bits(), opt_f.to_bits(), "workload {w:?}: optimal");
    }
}

#[test]
fn fairness_counterfactual_matches_free_function_bitwise() {
    let table = tiny_table();
    let cfg = parity_config();
    for w in workloads() {
        let rates = table.workload_rates(&w).expect("valid workload");
        let via_session = fairness::counterfactual(&rates, &cfg).expect("session path");
        let via_free =
            fairness_experiment(&rates, cfg.fcfs_jobs, cfg.seed).expect("free-function path");
        assert_eq!(via_session, via_free, "workload {w:?}");
    }
}
