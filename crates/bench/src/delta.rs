//! `bench-delta`: diff two `BENCH_session.json` perf-trajectory files.
//!
//! The bench harness (`cargo bench -p paperbench`) rewrites
//! `BENCH_session.json` at the workspace root on every run. This module
//! compares a baseline file against a fresh one kernel-by-kernel, prints a
//! per-kernel speedup table, and flags regressions beyond a threshold —
//! the CI smoke job runs it against the committed baseline so a PR cannot
//! silently slow a pinned kernel down.
//!
//! The parser is deliberately tiny: it only reads the flat one-object-per-
//! line layout our own harness emits (no external JSON dependency), and
//! errors out loudly on anything else rather than guessing.

use std::fmt;

/// One kernel's median from a trajectory file.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMedian {
    pub name: String,
    pub median_ns: f64,
    /// Deterministic solver sweep/pricing-round count, when the harness
    /// recorded one (`"solver_iters"` is optional in the trajectory).
    pub solver_iters: Option<u64>,
}

/// Parses the `BENCH_session.json` layout written by `benches/kernels.rs`:
/// one `{"name": ..., "median_ns_per_iter": ...}` object per line.
pub fn parse_session(text: &str) -> Result<Vec<KernelMedian>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(npos) = line.find("\"name\":") else {
            continue;
        };
        let rest = &line[npos + "\"name\":".len()..];
        let q0 = rest
            .find('"')
            .ok_or_else(|| format!("malformed name field: {line}"))?;
        let q1 = rest[q0 + 1..]
            .find('"')
            .ok_or_else(|| format!("unterminated name: {line}"))?;
        let name = rest[q0 + 1..q0 + 1 + q1].to_string();

        let key = "\"median_ns_per_iter\":";
        let mpos = line
            .find(key)
            .ok_or_else(|| format!("kernel {name} has no median_ns_per_iter"))?;
        let tail = line[mpos + key.len()..].trim_start();
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        let median_ns: f64 = num
            .parse()
            .map_err(|e| format!("kernel {name}: bad median {num:?}: {e}"))?;
        if !median_ns.is_finite() || median_ns <= 0.0 {
            return Err(format!("kernel {name}: non-positive median {median_ns}"));
        }

        // Optional convergence figure (older baselines predate it).
        let solver_iters = match line.find("\"solver_iters\":") {
            Some(spos) => {
                let tail = line[spos + "\"solver_iters\":".len()..].trim_start();
                let num: String = tail.chars().take_while(char::is_ascii_digit).collect();
                Some(
                    num.parse::<u64>()
                        .map_err(|e| format!("kernel {name}: bad solver_iters {num:?}: {e}"))?,
                )
            }
            None => None,
        };
        out.push(KernelMedian {
            name,
            median_ns,
            solver_iters,
        });
    }
    if out.is_empty() {
        return Err("no benchmark entries found".into());
    }
    Ok(out)
}

/// One kernel present in both files.
#[derive(Debug, Clone)]
pub struct DeltaRow {
    pub name: String,
    pub base_ns: f64,
    pub new_ns: f64,
    /// Solver iteration counts, when *both* files carry them for this
    /// kernel — the convergence comparison is skipped otherwise.
    pub iters: Option<(u64, u64)>,
}

impl DeltaRow {
    /// Speedup of the new run over the baseline (`> 1` is faster).
    pub fn speedup(&self) -> f64 {
        self.base_ns / self.new_ns
    }
}

/// The full comparison of two trajectory files.
#[derive(Debug)]
pub struct DeltaReport {
    pub rows: Vec<DeltaRow>,
    /// Kernels in the baseline that the new run no longer emits.
    pub missing_in_new: Vec<String>,
    /// Kernels the new run added (normal when a PR pins new kernels).
    pub added_in_new: Vec<String>,
}

/// Joins two parsed trajectories by kernel name, in baseline order.
pub fn diff(base: &[KernelMedian], new: &[KernelMedian]) -> DeltaReport {
    let mut rows = Vec::new();
    let mut missing_in_new = Vec::new();
    for b in base {
        match new.iter().find(|n| n.name == b.name) {
            Some(n) => rows.push(DeltaRow {
                name: b.name.clone(),
                base_ns: b.median_ns,
                new_ns: n.median_ns,
                iters: b.solver_iters.zip(n.solver_iters),
            }),
            None => missing_in_new.push(b.name.clone()),
        }
    }
    let added_in_new = new
        .iter()
        .filter(|n| !base.iter().any(|b| b.name == n.name))
        .map(|n| n.name.clone())
        .collect();
    DeltaReport {
        rows,
        missing_in_new,
        added_in_new,
    }
}

impl DeltaReport {
    /// Rows slower than the baseline by more than `threshold` (a fraction:
    /// `0.2` tolerates up to +20% median time before flagging).
    pub fn regressions(&self, threshold: f64) -> Vec<&DeltaRow> {
        self.rows
            .iter()
            .filter(|r| r.new_ns > r.base_ns * (1.0 + threshold))
            .collect()
    }

    /// Rows whose solver now needs more than `threshold` extra iterations
    /// to converge (compared only when both files carry counts). The
    /// counts are deterministic, so unlike wall time this catches a
    /// convergence regression even on a noisy runner — and even when the
    /// wall time stayed flat.
    pub fn iter_regressions(&self, threshold: f64) -> Vec<&DeltaRow> {
        self.rows
            .iter()
            .filter(|r| {
                r.iters
                    .is_some_and(|(base, new)| new as f64 > base as f64 * (1.0 + threshold))
            })
            .collect()
    }
}

impl fmt::Display for DeltaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<44} {:>14} {:>14} {:>9}",
            "kernel", "base ns/iter", "new ns/iter", "speedup"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<44} {:>14.0} {:>14.0} {:>8.2}x",
                r.name,
                r.base_ns,
                r.new_ns,
                r.speedup()
            )?;
        }
        let with_iters: Vec<&DeltaRow> = self.rows.iter().filter(|r| r.iters.is_some()).collect();
        if !with_iters.is_empty() {
            writeln!(
                f,
                "\nsolver convergence (deterministic iteration counts)\n\
                 {:<44} {:>14} {:>14} {:>9}",
                "kernel", "base iters", "new iters", "ratio"
            )?;
            for r in with_iters {
                let (base, new) = r.iters.expect("filtered to Some");
                writeln!(
                    f,
                    "{:<44} {:>14} {:>14} {:>8.2}x",
                    r.name,
                    base,
                    new,
                    new as f64 / base as f64
                )?;
            }
        }
        for name in &self.missing_in_new {
            writeln!(f, "{name:<44} (missing from new run)")?;
        }
        for name in &self.added_in_new {
            writeln!(f, "{name:<44} (new kernel, no baseline)")?;
        }
        Ok(())
    }
}

/// Driver for the `bench-delta` binary: compares `base_path` against
/// `new_path` and returns an error listing every kernel that regressed by
/// more than `threshold`. Missing/added kernels are reported but do not
/// fail the run (the harness's own coverage guard owns completeness).
pub fn run_delta(base_path: &str, new_path: &str, threshold: f64) -> Result<String, String> {
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
    let base = parse_session(&read(base_path)?).map_err(|e| format!("{base_path}: {e}"))?;
    let new = parse_session(&read(new_path)?).map_err(|e| format!("{new_path}: {e}"))?;
    let report = diff(&base, &new);
    let rendered = format!("{report}");
    let regressions = report.regressions(threshold);
    let iter_regressions = report.iter_regressions(threshold);
    if regressions.is_empty() && iter_regressions.is_empty() {
        return Ok(rendered);
    }
    let mut msg = rendered;
    if !regressions.is_empty() {
        msg.push_str(&format!(
            "\n{} kernel(s) regressed beyond the {:.0}% threshold:\n",
            regressions.len(),
            threshold * 100.0
        ));
        for r in regressions {
            msg.push_str(&format!(
                "  {}: {:.0} -> {:.0} ns/iter ({:+.1}%)\n",
                r.name,
                r.base_ns,
                r.new_ns,
                (r.new_ns / r.base_ns - 1.0) * 100.0
            ));
        }
    }
    if !iter_regressions.is_empty() {
        msg.push_str(&format!(
            "\n{} kernel(s) need more solver iterations than the baseline (beyond {:.0}%):\n",
            iter_regressions.len(),
            threshold * 100.0
        ));
        for r in iter_regressions {
            let (base, new) = r.iters.expect("iter regression has counts");
            msg.push_str(&format!(
                "  {}: {base} -> {new} iterations ({:+.1}%)\n",
                r.name,
                (new as f64 / base as f64 - 1.0) * 100.0
            ));
        }
    }
    Err(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "benchmarks": [
    {"name": "a/fast", "median_ns_per_iter": 100.0, "batches": 7, "iters_per_batch": 10},
    {"name": "b/slow", "median_ns_per_iter": 2000.0, "batches": 7, "iters_per_batch": 1, "solver_iters": 120},
    {"name": "c/gone", "median_ns_per_iter": 5.0, "batches": 7, "iters_per_batch": 100}
  ]
}
"#;

    const NEW: &str = r#"{
  "benchmarks": [
    {"name": "a/fast", "median_ns_per_iter": 130.0, "batches": 7, "iters_per_batch": 10, "solver_iters": 40},
    {"name": "b/slow", "median_ns_per_iter": 500.0, "batches": 7, "iters_per_batch": 1, "solver_iters": 300},
    {"name": "d/new", "median_ns_per_iter": 42.0, "batches": 7, "iters_per_batch": 100}
  ]
}
"#;

    #[test]
    fn parses_the_harness_layout() {
        let parsed = parse_session(BASE).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].name, "a/fast");
        assert_eq!(parsed[1].median_ns, 2000.0);
        assert_eq!(parsed[0].solver_iters, None, "field is optional");
        assert_eq!(parsed[1].solver_iters, Some(120));
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(parse_session("{}").is_err());
        assert!(parse_session("{\"name\": \"x\", \"median_ns_per_iter\": -3}").is_err());
        assert!(parse_session("{\"name\": \"x\"}").is_err());
    }

    #[test]
    fn diff_joins_by_name_and_tracks_membership() {
        let report = diff(&parse_session(BASE).unwrap(), &parse_session(NEW).unwrap());
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.missing_in_new, vec!["c/gone".to_string()]);
        assert_eq!(report.added_in_new, vec!["d/new".to_string()]);
        let slow = &report.rows[1];
        assert!((slow.speedup() - 4.0).abs() < 1e-12, "2000 / 500 = 4x");
        // Counts compare only when both sides have them: a/fast's
        // baseline predates the field, so its new count is ignored.
        assert_eq!(report.rows[0].iters, None);
        assert_eq!(slow.iters, Some((120, 300)));
    }

    #[test]
    fn iteration_growth_is_a_regression_even_when_wall_time_improves() {
        let report = diff(&parse_session(BASE).unwrap(), &parse_session(NEW).unwrap());
        // b/slow got 4x faster in wall time but needs 2.5x the sweeps.
        let iter_regs = report.iter_regressions(0.20);
        assert_eq!(iter_regs.len(), 1);
        assert_eq!(iter_regs[0].name, "b/slow");
        assert!(report.iter_regressions(2.0).is_empty(), "+150% within 200%");
        let table = format!("{report}");
        assert!(table.contains("solver convergence"), "{table}");
        assert!(table.contains("120"), "{table}");
    }

    #[test]
    fn regression_threshold_is_a_fraction_over_baseline() {
        let report = diff(&parse_session(BASE).unwrap(), &parse_session(NEW).unwrap());
        // a/fast went 100 -> 130 ns: +30%.
        assert_eq!(report.regressions(0.20).len(), 1);
        assert_eq!(report.regressions(0.20)[0].name, "a/fast");
        assert!(report.regressions(0.35).is_empty());
    }

    #[test]
    fn run_delta_round_trips_through_files() {
        let dir = std::env::temp_dir().join(format!("bench-delta-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base_p = dir.join("base.json");
        let new_p = dir.join("new.json");
        std::fs::write(&base_p, BASE).unwrap();
        std::fs::write(&new_p, NEW).unwrap();
        let strict = run_delta(base_p.to_str().unwrap(), new_p.to_str().unwrap(), 0.20);
        assert!(strict.is_err(), "a/fast (+30%) must trip the 20% gate");
        let msg = strict.unwrap_err();
        assert!(msg.contains("a/fast"), "{msg}");
        assert!(
            msg.contains("more solver iterations"),
            "b/slow's 120 -> 300 sweeps must trip the convergence gate: {msg}"
        );
        // Loose enough for both wall time (+30%) and iterations (+150%).
        let lax = run_delta(base_p.to_str().unwrap(), new_p.to_str().unwrap(), 2.0);
        let table = lax.expect("within threshold");
        assert!(table.contains("4.00x"), "b/slow speedup shown: {table}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
