//! `bench-delta`: diff two `BENCH_session.json` perf-trajectory files.
//!
//! The bench harness (`cargo bench -p paperbench`) rewrites
//! `BENCH_session.json` at the workspace root on every run. This module
//! compares a baseline file against a fresh one kernel-by-kernel, prints a
//! per-kernel speedup table, and flags regressions beyond a threshold —
//! the CI smoke job runs it against the committed baseline so a PR cannot
//! silently slow a pinned kernel down.
//!
//! The parser is deliberately tiny: it only reads the flat one-object-per-
//! line layout our own harness emits (no external JSON dependency), and
//! errors out loudly on anything else rather than guessing.

use std::fmt;

/// One kernel's median from a trajectory file.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMedian {
    pub name: String,
    pub median_ns: f64,
}

/// Parses the `BENCH_session.json` layout written by `benches/kernels.rs`:
/// one `{"name": ..., "median_ns_per_iter": ...}` object per line.
pub fn parse_session(text: &str) -> Result<Vec<KernelMedian>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(npos) = line.find("\"name\":") else {
            continue;
        };
        let rest = &line[npos + "\"name\":".len()..];
        let q0 = rest
            .find('"')
            .ok_or_else(|| format!("malformed name field: {line}"))?;
        let q1 = rest[q0 + 1..]
            .find('"')
            .ok_or_else(|| format!("unterminated name: {line}"))?;
        let name = rest[q0 + 1..q0 + 1 + q1].to_string();

        let key = "\"median_ns_per_iter\":";
        let mpos = line
            .find(key)
            .ok_or_else(|| format!("kernel {name} has no median_ns_per_iter"))?;
        let tail = line[mpos + key.len()..].trim_start();
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        let median_ns: f64 = num
            .parse()
            .map_err(|e| format!("kernel {name}: bad median {num:?}: {e}"))?;
        if !median_ns.is_finite() || median_ns <= 0.0 {
            return Err(format!("kernel {name}: non-positive median {median_ns}"));
        }
        out.push(KernelMedian { name, median_ns });
    }
    if out.is_empty() {
        return Err("no benchmark entries found".into());
    }
    Ok(out)
}

/// One kernel present in both files.
#[derive(Debug, Clone)]
pub struct DeltaRow {
    pub name: String,
    pub base_ns: f64,
    pub new_ns: f64,
}

impl DeltaRow {
    /// Speedup of the new run over the baseline (`> 1` is faster).
    pub fn speedup(&self) -> f64 {
        self.base_ns / self.new_ns
    }
}

/// The full comparison of two trajectory files.
#[derive(Debug)]
pub struct DeltaReport {
    pub rows: Vec<DeltaRow>,
    /// Kernels in the baseline that the new run no longer emits.
    pub missing_in_new: Vec<String>,
    /// Kernels the new run added (normal when a PR pins new kernels).
    pub added_in_new: Vec<String>,
}

/// Joins two parsed trajectories by kernel name, in baseline order.
pub fn diff(base: &[KernelMedian], new: &[KernelMedian]) -> DeltaReport {
    let mut rows = Vec::new();
    let mut missing_in_new = Vec::new();
    for b in base {
        match new.iter().find(|n| n.name == b.name) {
            Some(n) => rows.push(DeltaRow {
                name: b.name.clone(),
                base_ns: b.median_ns,
                new_ns: n.median_ns,
            }),
            None => missing_in_new.push(b.name.clone()),
        }
    }
    let added_in_new = new
        .iter()
        .filter(|n| !base.iter().any(|b| b.name == n.name))
        .map(|n| n.name.clone())
        .collect();
    DeltaReport {
        rows,
        missing_in_new,
        added_in_new,
    }
}

impl DeltaReport {
    /// Rows slower than the baseline by more than `threshold` (a fraction:
    /// `0.2` tolerates up to +20% median time before flagging).
    pub fn regressions(&self, threshold: f64) -> Vec<&DeltaRow> {
        self.rows
            .iter()
            .filter(|r| r.new_ns > r.base_ns * (1.0 + threshold))
            .collect()
    }
}

impl fmt::Display for DeltaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<44} {:>14} {:>14} {:>9}",
            "kernel", "base ns/iter", "new ns/iter", "speedup"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<44} {:>14.0} {:>14.0} {:>8.2}x",
                r.name,
                r.base_ns,
                r.new_ns,
                r.speedup()
            )?;
        }
        for name in &self.missing_in_new {
            writeln!(f, "{name:<44} (missing from new run)")?;
        }
        for name in &self.added_in_new {
            writeln!(f, "{name:<44} (new kernel, no baseline)")?;
        }
        Ok(())
    }
}

/// Driver for the `bench-delta` binary: compares `base_path` against
/// `new_path` and returns an error listing every kernel that regressed by
/// more than `threshold`. Missing/added kernels are reported but do not
/// fail the run (the harness's own coverage guard owns completeness).
pub fn run_delta(base_path: &str, new_path: &str, threshold: f64) -> Result<String, String> {
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
    let base = parse_session(&read(base_path)?).map_err(|e| format!("{base_path}: {e}"))?;
    let new = parse_session(&read(new_path)?).map_err(|e| format!("{new_path}: {e}"))?;
    let report = diff(&base, &new);
    let rendered = format!("{report}");
    let regressions = report.regressions(threshold);
    if regressions.is_empty() {
        Ok(rendered)
    } else {
        let mut msg = format!(
            "{rendered}\n{} kernel(s) regressed beyond the {:.0}% threshold:\n",
            regressions.len(),
            threshold * 100.0
        );
        for r in regressions {
            msg.push_str(&format!(
                "  {}: {:.0} -> {:.0} ns/iter ({:+.1}%)\n",
                r.name,
                r.base_ns,
                r.new_ns,
                (r.new_ns / r.base_ns - 1.0) * 100.0
            ));
        }
        Err(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "benchmarks": [
    {"name": "a/fast", "median_ns_per_iter": 100.0, "batches": 7, "iters_per_batch": 10},
    {"name": "b/slow", "median_ns_per_iter": 2000.0, "batches": 7, "iters_per_batch": 1},
    {"name": "c/gone", "median_ns_per_iter": 5.0, "batches": 7, "iters_per_batch": 100}
  ]
}
"#;

    const NEW: &str = r#"{
  "benchmarks": [
    {"name": "a/fast", "median_ns_per_iter": 130.0, "batches": 7, "iters_per_batch": 10},
    {"name": "b/slow", "median_ns_per_iter": 500.0, "batches": 7, "iters_per_batch": 1},
    {"name": "d/new", "median_ns_per_iter": 42.0, "batches": 7, "iters_per_batch": 100}
  ]
}
"#;

    #[test]
    fn parses_the_harness_layout() {
        let parsed = parse_session(BASE).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].name, "a/fast");
        assert_eq!(parsed[1].median_ns, 2000.0);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(parse_session("{}").is_err());
        assert!(parse_session("{\"name\": \"x\", \"median_ns_per_iter\": -3}").is_err());
        assert!(parse_session("{\"name\": \"x\"}").is_err());
    }

    #[test]
    fn diff_joins_by_name_and_tracks_membership() {
        let report = diff(&parse_session(BASE).unwrap(), &parse_session(NEW).unwrap());
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.missing_in_new, vec!["c/gone".to_string()]);
        assert_eq!(report.added_in_new, vec!["d/new".to_string()]);
        let slow = &report.rows[1];
        assert!((slow.speedup() - 4.0).abs() < 1e-12, "2000 / 500 = 4x");
    }

    #[test]
    fn regression_threshold_is_a_fraction_over_baseline() {
        let report = diff(&parse_session(BASE).unwrap(), &parse_session(NEW).unwrap());
        // a/fast went 100 -> 130 ns: +30%.
        assert_eq!(report.regressions(0.20).len(), 1);
        assert_eq!(report.regressions(0.20)[0].name, "a/fast");
        assert!(report.regressions(0.35).is_empty());
    }

    #[test]
    fn run_delta_round_trips_through_files() {
        let dir = std::env::temp_dir().join(format!("bench-delta-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base_p = dir.join("base.json");
        let new_p = dir.join("new.json");
        std::fs::write(&base_p, BASE).unwrap();
        std::fs::write(&new_p, NEW).unwrap();
        let strict = run_delta(base_p.to_str().unwrap(), new_p.to_str().unwrap(), 0.20);
        assert!(strict.is_err(), "a/fast (+30%) must trip the 20% gate");
        assert!(strict.unwrap_err().contains("a/fast"));
        let lax = run_delta(base_p.to_str().unwrap(), new_p.to_str().unwrap(), 0.50);
        let table = lax.expect("within threshold");
        assert!(table.contains("4.00x"), "b/slow speedup shown: {table}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
