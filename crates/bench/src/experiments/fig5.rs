//! Figure 5: turnaround time, processor utilisation and empty fraction for
//! the FCFS, MAXIT, SRPT and MAXTP schedulers at loads 0.8 / 0.9 / 0.95 of
//! the FCFS maximum throughput (SMT configuration).

use std::fmt;

use queueing::{LatencyConfig, SizeDist};
use session::Policy;

use crate::mean;
use crate::study::{Chip, Study};

/// The four policies of Section VI, in paper order (registry entries).
pub const POLICIES: [Policy; 4] = Policy::LATENCY;

/// Averaged metrics for one (policy, load) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Mean turnaround normalised to FCFS at the same load.
    pub turnaround_vs_fcfs: f64,
    /// Mean busy contexts.
    pub utilization: f64,
    /// Fraction of time the system is empty.
    pub empty_fraction: f64,
}

/// The full Figure 5 grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5 {
    /// Load levels relative to the FCFS maximum throughput.
    pub loads: Vec<f64>,
    /// `cells[load][policy]`, policies in [`POLICIES`] order.
    pub cells: Vec<Vec<Cell>>,
    /// Workloads averaged.
    pub workloads: usize,
}

/// Per-workload raw measurements for one load level.
struct WorkloadRun {
    /// Per policy: (turnaround, utilization, empty fraction).
    per_policy: Vec<(f64, f64, f64)>,
}

/// Runs the Figure 5 experiment on the SMT configuration.
///
/// Each load level is one [`Study::sweep`]: the per-workload leg first
/// measures the FCFS maximum throughput (an event-policy session row),
/// derives the load-dependent arrival rate from it, then runs all four
/// latency policies through a second session with that
/// [`LatencyConfig`] — both sessions come preconfigured from the sweep via
/// [`session::SweepItem::session`].
///
/// # Errors
///
/// Propagates simulation/analysis failures as strings.
pub fn run(study: &Study) -> Result<Fig5, String> {
    let loads = vec![0.8, 0.9, 0.95];
    let workloads = study.workloads();
    let cfg = study.config();
    // The DES leg is the most expensive part of the whole harness; use a
    // modest number of measured jobs per run (the averages over workloads
    // smooth the noise).
    let measured_jobs = (cfg.fcfs_jobs / 2).clamp(2_000, 20_000);

    let mut cells = Vec::new();
    for &load in &loads {
        let runs: Vec<WorkloadRun> = study
            .sweep(Chip::Smt)
            .map(|item| {
                let view = item.view()?;
                let fcfs_tp = item
                    .session()
                    .rates(&view)
                    .policy(Policy::FcfsEvent)
                    .run()
                    .map_err(|e| e.to_string())?
                    .throughput(Policy::FcfsEvent)
                    .expect("requested");
                let latency_cfg = LatencyConfig {
                    arrival_rate: load * fcfs_tp,
                    measured_jobs,
                    warmup_jobs: measured_jobs / 10,
                    sizes: SizeDist::Exponential,
                    seed: cfg.seed ^ (load * 1000.0) as u64,
                };
                let report = item
                    .session()
                    .rates(&view)
                    .policies(POLICIES)
                    .latency(latency_cfg)
                    .run()
                    .map_err(|e| e.to_string())?;
                let per_policy = report
                    .rows
                    .iter()
                    .map(|row| {
                        let l = row.latency.as_ref().expect("latency rows carry reports");
                        (l.mean_turnaround, l.utilization, l.empty_fraction)
                    })
                    .collect();
                Ok(WorkloadRun { per_policy })
            })
            .map_err(|e| e.to_string())?;
        let mut row = Vec::new();
        for (pi, _) in POLICIES.iter().enumerate() {
            let tnorm: Vec<f64> = runs
                .iter()
                .map(|r| r.per_policy[pi].0 / r.per_policy[0].0)
                .collect();
            let util: Vec<f64> = runs.iter().map(|r| r.per_policy[pi].1).collect();
            let empty: Vec<f64> = runs.iter().map(|r| r.per_policy[pi].2).collect();
            row.push(Cell {
                turnaround_vs_fcfs: mean(&tnorm),
                utilization: mean(&util),
                empty_fraction: mean(&empty),
            });
        }
        cells.push(row);
    }
    Ok(Fig5 {
        loads,
        cells,
        workloads: workloads.len(),
    })
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 5: scheduler comparison on the SMT config ({} workloads)",
            self.workloads
        )?;
        for (metric, pick) in [
            ("turnaround time (normalised to FCFS)", 0usize),
            ("processor utilization (busy contexts)", 1),
            ("processor empty fraction", 2),
        ] {
            writeln!(f, "\n-- {metric} --")?;
            write!(f, "{:>8}", "load")?;
            for p in POLICIES {
                write!(f, " {:>8}", p.name())?;
            }
            writeln!(f)?;
            for (li, &load) in self.loads.iter().enumerate() {
                write!(f, "{load:>8.2}")?;
                for cell in &self.cells[li] {
                    let v = match pick {
                        0 => cell.turnaround_vs_fcfs,
                        1 => cell.utilization,
                        _ => cell.empty_fraction,
                    };
                    write!(f, " {v:>8.3}")?;
                }
                writeln!(f)?;
            }
        }
        writeln!(
            f,
            "\npaper: SRPT wins turnaround at loads .8/.9; at .95 MAXTP cuts turnaround\n\
             ~23% below FCFS, with the lowest utilisation and highest empty fraction"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use std::sync::OnceLock;

    fn fast_study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| {
            let mut cfg = StudyConfig::fast();
            cfg.sample = Some(6);
            Study::new(cfg).expect("study builds")
        })
    }

    #[test]
    fn fig5_produces_sane_grid() {
        let fig = run(fast_study()).unwrap();
        assert_eq!(fig.loads.len(), 3);
        for row in &fig.cells {
            assert_eq!(row.len(), POLICIES.len());
            // FCFS normalised to itself.
            assert!((row[0].turnaround_vs_fcfs - 1.0).abs() < 1e-9);
            for cell in row {
                assert!(cell.turnaround_vs_fcfs > 0.2 && cell.turnaround_vs_fcfs < 3.0);
                assert!(cell.utilization > 0.0 && cell.utilization <= 4.0 + 1e-9);
                assert!((0.0..=1.0).contains(&cell.empty_fraction));
            }
        }
        // Utilisation grows with load for FCFS.
        assert!(fig.cells[2][0].utilization >= fig.cells[0][0].utilization - 0.05);
        // SRPT does not lose badly to FCFS on turnaround (it is designed to
        // reduce it; sampling noise allows small excursions).
        for row in &fig.cells {
            assert!(
                row[2].turnaround_vs_fcfs < 1.2,
                "SRPT {} should not be far above FCFS",
                row[2].turnaround_vs_fcfs
            );
        }
    }
}
