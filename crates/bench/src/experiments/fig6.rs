//! Figure 6: achieved throughput in a saturated system (arrival rate above
//! the maximum throughput) for MAXIT, SRPT and MAXTP, relative to FCFS,
//! together with the theoretical LP bounds.

use std::fmt;

use session::Policy;

use crate::mean;
use crate::study::{Chip, Study};

/// One workload's saturated-throughput measurements, relative to FCFS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// LP maximum over FCFS achieved throughput.
    pub lp_max: f64,
    /// LP minimum over FCFS achieved throughput.
    pub lp_min: f64,
    /// MAXIT over FCFS.
    pub maxit: f64,
    /// SRPT over FCFS.
    pub srpt: f64,
    /// MAXTP over FCFS.
    pub maxtp: f64,
}

/// The full Figure 6 (SMT configuration, points ordered by rising LP max).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6 {
    /// One point per workload.
    pub points: Vec<Point>,
    /// Mean over workloads of each relative throughput.
    pub means: Point,
}

/// Runs the Figure 6 experiment on the SMT configuration.
///
/// One standard [`Study::sweep`]: the LP bounds and all four latency
/// policies are ordinary policy rows. Without a
/// [`session::SweepBuilder::latency`] configuration the latency rows run
/// the paper's maximum-throughput experiment — a fixed batch of equal
/// deterministic jobs on a fully loaded machine, run to completion, so
/// schedulers pay back any jobs they postponed.
///
/// # Errors
///
/// Propagates simulation/analysis failures as strings.
pub fn run(study: &Study) -> Result<Fig6, String> {
    let cfg = study.config();
    let measured_jobs = (cfg.fcfs_jobs / 2).clamp(2_000, 20_000);

    let sweep = cfg.run_sweep(
        study
            .sweep(Chip::Smt)
            .policies([Policy::Worst, Policy::Optimal])
            .policies(Policy::LATENCY)
            .fcfs_jobs(measured_jobs)
            .seed(cfg.seed ^ 0xF16),
    )?;
    let mut points: Vec<Point> = sweep
        .rows
        .iter()
        .map(|row| {
            let tp = |p: Policy| row.report.throughput(p).expect("requested");
            let fcfs = tp(Policy::Fcfs);
            Point {
                lp_max: tp(Policy::Optimal) / fcfs,
                lp_min: tp(Policy::Worst) / fcfs,
                maxit: tp(Policy::MaxIt) / fcfs,
                srpt: tp(Policy::Srpt) / fcfs,
                maxtp: tp(Policy::MaxTp) / fcfs,
            }
        })
        .collect();
    points.sort_by(|a, b| a.lp_max.partial_cmp(&b.lp_max).expect("finite"));
    let means = Point {
        lp_max: mean(&points.iter().map(|p| p.lp_max).collect::<Vec<_>>()),
        lp_min: mean(&points.iter().map(|p| p.lp_min).collect::<Vec<_>>()),
        maxit: mean(&points.iter().map(|p| p.maxit).collect::<Vec<_>>()),
        srpt: mean(&points.iter().map(|p| p.srpt).collect::<Vec<_>>()),
        maxtp: mean(&points.iter().map(|p| p.maxtp).collect::<Vec<_>>()),
    };
    Ok(Fig6 { points, means })
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6: saturated throughput relative to FCFS (SMT, {} workloads,\n\
             ordered by increasing LP maximum)",
            self.points.len()
        )?;
        writeln!(
            f,
            "{:>8} {:>8} {:>8} {:>8} {:>8}",
            "lp max", "lp min", "MAXIT", "SRPT", "MAXTP"
        )?;
        for p in self.points.iter().take(15) {
            writeln!(
                f,
                "{:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                p.lp_max, p.lp_min, p.maxit, p.srpt, p.maxtp
            )?;
        }
        if self.points.len() > 15 {
            writeln!(f, "... ({} more points)", self.points.len() - 15)?;
        }
        let m = &self.means;
        writeln!(
            f,
            "\nmeans: lp max {:.3}, lp min {:.3}, MAXIT {:.3}, SRPT {:.3}, MAXTP {:.3}",
            m.lp_max, m.lp_min, m.maxit, m.srpt, m.maxtp
        )?;
        writeln!(
            f,
            "\npaper: SRPT matches FCFS; MAXIT slightly below FCFS; MAXTP tracks the\n\
             LP maximum almost exactly"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use std::sync::OnceLock;

    fn fast_study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| {
            let mut cfg = StudyConfig::fast();
            cfg.sample = Some(6);
            Study::new(cfg).expect("study builds")
        })
    }

    #[test]
    fn fig6_schedulers_respect_lp_bounds() {
        let fig = run(fast_study()).unwrap();
        for p in &fig.points {
            // Every achieved throughput lies within the theoretical bounds
            // (small tolerance for finite-run noise).
            // Batch semantics force every scheduler to execute the whole
            // workload, so the LP bounds apply up to finite-batch noise
            // (the realised type mix fluctuates around equal work).
            for v in [1.0, p.maxit, p.srpt, p.maxtp] {
                assert!(
                    v <= p.lp_max + 0.06,
                    "achieved {v} above LP max {}",
                    p.lp_max
                );
                assert!(
                    v >= p.lp_min - 0.06,
                    "achieved {v} below LP min {}",
                    p.lp_min
                );
            }
        }
        // MAXTP approaches the LP maximum on average; SRPT stays near FCFS.
        assert!(
            fig.means.lp_max - fig.means.maxtp < 0.08,
            "MAXTP mean {} should track LP max {}",
            fig.means.maxtp,
            fig.means.lp_max
        );
        // With batch semantics SRPT cannot starve its way ahead: it stays
        // in FCFS's neighbourhood (the paper: identical max throughput).
        assert!(
            (fig.means.srpt - 1.0).abs() < 0.06,
            "SRPT mean {} should stay near FCFS",
            fig.means.srpt
        );
    }

    #[test]
    fn points_sorted_by_lp_max() {
        let fig = run(fast_study()).unwrap();
        for pair in fig.points.windows(2) {
            assert!(pair[0].lp_max <= pair[1].lp_max + 1e-12);
        }
    }
}
