//! Figure 3: throughput variability against the linear-bottleneck
//! least-squares error, coloured by per-type performance difference.

use std::fmt;

use session::Policy;
use symbiosis::{fit_linear_bottleneck, per_type_rate_difference};

use crate::study::{Chip, Study};
use crate::{mean, pearson};

/// One workload's point in the Figure 3 scatter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Linear-bottleneck mean squared error (X axis).
    pub bottleneck_mse: f64,
    /// Optimal / worst throughput ratio (Y axis).
    pub optimal_vs_worst: f64,
    /// Per-type mean WIPC difference (colour axis).
    pub rate_difference: f64,
}

/// Figure 3 for one chip.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipFig3 {
    /// Which configuration.
    pub chip: Chip,
    /// One point per workload.
    pub points: Vec<Point>,
    /// Pearson correlation between MSE and throughput ratio, all points.
    pub correlation_all: Option<f64>,
    /// Same, restricted to the half of workloads with the smallest
    /// per-type rate difference (the paper: these correlate much better).
    pub correlation_similar_jobs: Option<f64>,
}

/// The full Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3 {
    /// SMT and quad-core scatters.
    pub chips: Vec<ChipFig3>,
}

/// Runs the Figure 3 analysis: one [`Study::sweep`] per chip. The
/// bottleneck fit and the rate difference are table statistics, not policy
/// rows, so the sweep's custom map carries them — with the LP bounds as
/// policy rows through the per-item [`session::SweepItem::session`].
///
/// # Errors
///
/// Propagates analysis failures as strings.
pub fn run(study: &Study) -> Result<Fig3, String> {
    let mut chips = Vec::new();
    for chip in Chip::ALL {
        let points: Vec<Point> = study
            .sweep(chip)
            .map(|item| {
                let rates = item.rates()?;
                let fit = fit_linear_bottleneck(&rates).map_err(|e| e.to_string())?;
                let report = item
                    .session()
                    .rates(&rates)
                    .policies([Policy::Worst, Policy::Optimal])
                    .run()
                    .map_err(|e| e.to_string())?;
                let worst = report.throughput(Policy::Worst).expect("requested");
                let best = report.throughput(Policy::Optimal).expect("requested");
                Ok(Point {
                    bottleneck_mse: fit.mse,
                    optimal_vs_worst: best / worst,
                    rate_difference: per_type_rate_difference(&rates),
                })
            })
            .map_err(|e| e.to_string())?;
        let xs: Vec<f64> = points.iter().map(|p| p.bottleneck_mse).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.optimal_vs_worst).collect();
        let correlation_all = pearson(&xs, &ys);
        // Median split on rate difference.
        let mut diffs: Vec<f64> = points.iter().map(|p| p.rate_difference).collect();
        diffs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = diffs[diffs.len() / 2];
        let similar: Vec<&Point> = points
            .iter()
            .filter(|p| p.rate_difference <= median)
            .collect();
        let sx: Vec<f64> = similar.iter().map(|p| p.bottleneck_mse).collect();
        let sy: Vec<f64> = similar.iter().map(|p| p.optimal_vs_worst).collect();
        chips.push(ChipFig3 {
            chip,
            points,
            correlation_all,
            correlation_similar_jobs: pearson(&sx, &sy),
        });
    }
    Ok(Fig3 { chips })
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3: throughput variability vs linear-bottleneck LSQ error"
        )?;
        for c in &self.chips {
            writeln!(
                f,
                "\n== {} configuration ({} workloads) ==",
                c.chip.label(),
                c.points.len()
            )?;
            writeln!(
                f,
                "correlation(mse, opt/worst): all {:.2}, similar-speed jobs {:.2}",
                c.correlation_all.unwrap_or(f64::NAN),
                c.correlation_similar_jobs.unwrap_or(f64::NAN)
            )?;
            writeln!(
                f,
                "{:>12} {:>14} {:>12}",
                "lsq error", "optimal/worst", "rate diff"
            )?;
            for p in c.points.iter().take(12) {
                writeln!(
                    f,
                    "{:>12.5} {:>14.4} {:>12.4}",
                    p.bottleneck_mse, p.optimal_vs_worst, p.rate_difference
                )?;
            }
            if c.points.len() > 12 {
                writeln!(f, "... ({} more points)", c.points.len() - 12)?;
            }
            let mse_mean = mean(
                &c.points
                    .iter()
                    .map(|p| p.bottleneck_mse)
                    .collect::<Vec<_>>(),
            );
            writeln!(f, "mean lsq error {mse_mean:.5}")?;
        }
        writeln!(
            f,
            "\npaper: small-error workloads have small throughput variability;\n\
             high per-type rate differences weaken the correlation"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use std::sync::OnceLock;

    fn fast_study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| Study::new(StudyConfig::fast()).expect("study builds"))
    }

    #[test]
    fn bottleneck_error_tracks_variability() {
        let fig = run(fast_study()).unwrap();
        for c in &fig.chips {
            for p in &c.points {
                assert!(p.bottleneck_mse >= 0.0);
                assert!(p.optimal_vs_worst >= 1.0 - 1e-6);
                assert!(p.rate_difference >= 0.0);
            }
            // The paper's qualitative claim: a (near-)zero bottleneck error
            // implies little room for scheduling.
            let near_zero: Vec<&Point> = c
                .points
                .iter()
                .filter(|p| p.bottleneck_mse < 1e-3)
                .collect();
            for p in near_zero {
                assert!(
                    p.optimal_vs_worst < 1.2,
                    "{}: near-bottleneck workload with ratio {}",
                    c.chip.label(),
                    p.optimal_vs_worst
                );
            }
            // Correlation should be positive.
            if let Some(r) = c.correlation_all {
                assert!(r > 0.0, "{}: correlation {}", c.chip.label(), r);
            }
        }
    }
}
