//! Section V-B sensitivity: with N = 8 job types the optimal scheduler's
//! gain over FCFS stays small (the paper reports 4.5% on the SMT config,
//! versus 3% for N = 4).

use std::fmt;

use session::Policy;
use symbiosis::enumerate_workloads;

use crate::study::{Chip, Study};
use crate::{max, mean, pct};

/// Result of the N = 8 sensitivity experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct N8 {
    /// Mean optimal gain over FCFS for N = 4 (baseline).
    pub gain_n4: f64,
    /// Mean optimal gain over FCFS for N = 8.
    pub gain_n8: f64,
    /// Maximum N = 8 gain observed.
    pub max_gain_n8: f64,
    /// Workloads analysed at each N.
    pub workloads: (usize, usize),
}

fn mean_gain(study: &Study, n: usize) -> Result<(f64, f64, usize), String> {
    let cfg = study.config();
    let workloads = cfg.sample_workloads(enumerate_workloads(12, n));
    let sweep = cfg.run_sweep(
        cfg.sweep(study.table(Chip::Smt), workloads)
            .policies([Policy::Optimal, Policy::FcfsEvent]),
    )?;
    let gains = sweep.gains(Policy::Optimal, Policy::FcfsEvent);
    Ok((mean(&gains), max(&gains), sweep.len()))
}

/// Runs the N = 8 sensitivity on the SMT configuration.
///
/// # Errors
///
/// Propagates analysis failures as strings.
pub fn run(study: &Study) -> Result<N8, String> {
    let (gain_n4, _, w4) = mean_gain(study, 4)?;
    let (gain_n8, max_gain_n8, w8) = mean_gain(study, 8)?;
    Ok(N8 {
        gain_n4,
        gain_n8,
        max_gain_n8,
        workloads: (w4, w8),
    })
}

impl fmt::Display for N8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Section V-B: sensitivity to the number of job types (SMT)"
        )?;
        writeln!(
            f,
            "N = 4: mean optimal gain over FCFS {} ({} workloads)",
            pct(self.gain_n4),
            self.workloads.0
        )?;
        writeln!(
            f,
            "N = 8: mean optimal gain over FCFS {} (max {}, {} workloads)",
            pct(self.gain_n8),
            pct(self.max_gain_n8),
            self.workloads.1
        )?;
        writeln!(
            f,
            "\npaper: increasing N to 8 lifts the average gain only to 4.5%"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use std::sync::OnceLock;

    fn fast_study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| {
            let mut cfg = StudyConfig::fast();
            cfg.sample = Some(6);
            Study::new(cfg).expect("study builds")
        })
    }

    #[test]
    fn more_types_do_not_unlock_large_gains() {
        let res = run(fast_study()).unwrap();
        assert!(res.gain_n4 >= -1e-9);
        assert!(res.gain_n8 >= -1e-9);
        // The paper's point: even with twice the types, gains stay small.
        assert!(
            res.gain_n8 < 0.15,
            "N=8 gain {} should remain modest",
            res.gain_n8
        );
        // More types give the scheduler (weakly) more freedom.
        assert!(res.gain_n8 > res.gain_n4 - 0.02);
    }
}
