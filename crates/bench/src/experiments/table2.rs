//! Table II: instantaneous throughput and time fractions per coschedule
//! heterogeneity, for the FCFS, optimal and worst schedulers.

use std::fmt;

use symbiosis::{heterogeneity_table, random_draw_heterogeneity_probability};

use crate::mean;
use crate::study::{Chip, Study};

/// One averaged Table II row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Distinct job types in the group's coschedules.
    pub heterogeneity: usize,
    /// Mean instantaneous throughput (WIPC) of the group.
    pub mean_it: f64,
    /// Mean FCFS time fraction.
    pub fcfs: f64,
    /// Mean optimal-scheduler time fraction.
    pub optimal: f64,
    /// Mean worst-scheduler time fraction.
    pub worst: f64,
    /// Theoretical i.i.d. uniform draw probability for this heterogeneity.
    pub random_draw: f64,
}

/// Table II for one chip, averaged over workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipTable2 {
    /// Which configuration.
    pub chip: Chip,
    /// One row per heterogeneity level 1..=4.
    pub rows: Vec<Row>,
}

/// The full Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// SMT and quad-core sub-tables.
    pub chips: Vec<ChipTable2>,
    /// Workloads averaged per chip.
    pub workloads: usize,
}

/// Runs the Table II analysis.
///
/// # Errors
///
/// Propagates analysis failures as strings.
pub fn run(study: &Study) -> Result<Table2, String> {
    let workloads = study.workloads();
    let n = study.config().workload_size;
    let k = 4usize;
    let mut chips = Vec::new();
    for chip in Chip::ALL {
        // The heterogeneity fold is not a policy row, so it rides the
        // sweep's custom-map escape hatch over the shared pool.
        let tables = study
            .sweep(chip)
            .map(|item| {
                heterogeneity_table(
                    &item.rates()?,
                    study.config().fcfs_jobs,
                    study.config().seed,
                )
                .map_err(|e| e.to_string())
            })
            .map_err(|e| e.to_string())?;
        let max_het = n.min(k);
        let mut rows = Vec::new();
        for het in 1..=max_het {
            let collect = |f: &dyn Fn(&symbiosis::HeterogeneityRow) -> f64| -> Vec<f64> {
                tables.iter().filter_map(|t| t.row(het).map(f)).collect()
            };
            rows.push(Row {
                heterogeneity: het,
                mean_it: mean(&collect(&|r| r.mean_instantaneous_throughput)),
                fcfs: mean(&collect(&|r| r.fcfs_fraction)),
                optimal: mean(&collect(&|r| r.optimal_fraction)),
                worst: mean(&collect(&|r| r.worst_fraction)),
                random_draw: random_draw_heterogeneity_probability(n, k, het),
            });
        }
        chips.push(ChipTable2 { chip, rows });
    }
    Ok(Table2 {
        chips,
        workloads: workloads.len(),
    })
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table II: time fractions by coschedule heterogeneity ({} workloads)",
            self.workloads
        )?;
        for c in &self.chips {
            writeln!(f, "\n== {} configuration ==", c.chip.label())?;
            writeln!(
                f,
                "{:>4} {:>10} {:>10} {:>10} {:>10} {:>12}",
                "het", "avg IT", "frac FCFS", "frac opt", "frac worst", "random draw"
            )?;
            for r in &c.rows {
                writeln!(
                    f,
                    "{:>4} {:>10.2} {:>9.0}% {:>9.0}% {:>9.0}% {:>11.0}%",
                    r.heterogeneity,
                    r.mean_it,
                    100.0 * r.fcfs,
                    100.0 * r.optimal,
                    100.0 * r.worst,
                    100.0 * r.random_draw
                )?;
            }
        }
        writeln!(
            f,
            "\npaper (SMT): IT rises with heterogeneity (1.74..1.97); worst scheduler \n\
             sits 80% in homogeneous coschedules; FCFS tracks the random-draw mix \n\
             (2/33/56/9%); optimal skews heterogeneous (72% at het=4 on the quad-core)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Chip, StudyConfig};
    use std::sync::OnceLock;

    fn fast_study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| Study::new(StudyConfig::fast()).expect("study builds"))
    }

    #[test]
    fn table2_reproduces_paper_shape() {
        let t2 = run(fast_study()).unwrap();
        for c in &t2.chips {
            assert_eq!(c.rows.len(), 4);
            // Fractions are distributions.
            for which in [0usize, 1, 2] {
                let total: f64 = c
                    .rows
                    .iter()
                    .map(|r| match which {
                        0 => r.fcfs,
                        1 => r.optimal,
                        _ => r.worst,
                    })
                    .sum();
                assert!((total - 1.0).abs() < 0.02, "fractions sum to {total}");
            }
            // Heterogeneous coschedules are faster on average on the SMT
            // machine (fetch-bandwidth complementarity). The quad-core
            // contrast needs warmed caches, so it is only asserted for the
            // full-scale run (see EXPERIMENTS.md), not this fast study.
            if matches!(c.chip, Chip::Smt) {
                assert!(
                    c.rows[3].mean_it >= c.rows[0].mean_it,
                    "{}: het4 {} vs het1 {}",
                    c.chip.label(),
                    c.rows[3].mean_it,
                    c.rows[0].mean_it
                );
            }
            // The worst scheduler mostly picks homogeneous coschedules.
            assert!(
                c.rows[0].worst > c.rows[3].worst,
                "worst scheduler prefers homogeneous groups"
            );
            // FCFS stays close to the random-draw mix.
            for r in &c.rows {
                assert!(
                    (r.fcfs - r.random_draw).abs() < 0.15,
                    "FCFS {} vs draw {}",
                    r.fcfs,
                    r.random_draw
                );
            }
        }
    }
}
