//! Ablation of the unit of work (Section III-B): the paper reports results
//! in weighted instructions but states that "our qualitative conclusions
//! also hold for the instruction as unit of work". This experiment checks
//! that claim for the reproduction: the optimal-over-FCFS gain stays small
//! under both units, and per-workload gains correlate strongly.

use std::fmt;

use session::Policy;
use workloads::WorkUnit;

use crate::study::{Chip, Study};
use crate::{max, mean, pct, pearson};

/// Per-unit summary statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitSummary {
    /// Mean optimal gain over FCFS.
    pub mean_gain: f64,
    /// Maximum gain over workloads.
    pub max_gain: f64,
}

/// The full ablation result (SMT configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct UnitAblation {
    /// Weighted-instruction statistics (the paper's reported unit).
    pub weighted: UnitSummary,
    /// Plain-instruction statistics.
    pub plain: UnitSummary,
    /// Pearson correlation of per-workload gains across the two units.
    pub gain_correlation: Option<f64>,
    /// Workloads analysed.
    pub workloads: usize,
}

/// Runs the work-unit ablation on the SMT configuration.
///
/// # Errors
///
/// Propagates analysis failures as strings.
pub fn run(study: &Study) -> Result<UnitAblation, String> {
    let gains_for = |unit: WorkUnit| -> Result<Vec<f64>, String> {
        let sweep = study.config().run_sweep(
            study
                .sweep(Chip::Smt)
                .unit(unit)
                .policies([Policy::Optimal, Policy::FcfsEvent]),
        )?;
        Ok(sweep.gains(Policy::Optimal, Policy::FcfsEvent))
    };
    let weighted = gains_for(WorkUnit::Weighted)?;
    let plain = gains_for(WorkUnit::Plain)?;
    Ok(UnitAblation {
        weighted: UnitSummary {
            mean_gain: mean(&weighted),
            max_gain: max(&weighted),
        },
        plain: UnitSummary {
            mean_gain: mean(&plain),
            max_gain: max(&plain),
        },
        gain_correlation: pearson(&weighted, &plain),
        workloads: weighted.len(),
    })
}

impl fmt::Display for UnitAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Unit-of-work ablation (SMT, {} workloads): optimal gain over FCFS",
            self.workloads
        )?;
        writeln!(f, "{:<22} {:>10} {:>10}", "unit", "mean gain", "max gain")?;
        writeln!(
            f,
            "{:<22} {:>10} {:>10}",
            "weighted instruction",
            pct(self.weighted.mean_gain),
            pct(self.weighted.max_gain)
        )?;
        writeln!(
            f,
            "{:<22} {:>10} {:>10}",
            "plain instruction",
            pct(self.plain.mean_gain),
            pct(self.plain.max_gain)
        )?;
        writeln!(
            f,
            "per-workload gain correlation across units: {:.2}",
            self.gain_correlation.unwrap_or(f64::NAN)
        )?;
        writeln!(
            f,
            "\npaper (Section III-B): \"we checked that our qualitative conclusions\n\
             also hold for the instruction as unit of work\""
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use std::sync::OnceLock;

    fn fast_study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| Study::new(StudyConfig::fast()).expect("study builds"))
    }

    #[test]
    fn conclusions_hold_under_both_units() {
        let res = run(fast_study()).unwrap();
        // Small gains under both units.
        assert!(res.weighted.mean_gain >= -1e-9);
        assert!(res.plain.mean_gain >= -1e-9);
        assert!(res.weighted.mean_gain < 0.2, "{}", res.weighted.mean_gain);
        assert!(res.plain.mean_gain < 0.2, "{}", res.plain.mean_gain);
        // Gains move together across workloads.
        if let Some(r) = res.gain_correlation {
            assert!(r > 0.5, "units should agree on which workloads gain: {r}");
        }
    }
}
