//! Section VII: using optimal throughput as a metric in a
//! microarchitecture study — comparing SMT fetch policies (ICOUNT vs
//! round-robin) and ROB partitioning (dynamic vs static) under both the
//! FCFS and the optimal scheduler.

use std::fmt;

use session::Policy as SessionPolicy;
use simproc::{FetchPolicy, MachineConfig, RobPartitioning};
use workloads::PerfTable;

use crate::study::{Study, StudyConfig};
use crate::{mean, pct};

/// One SMT front-end/back-end policy combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Policy {
    /// Fetch arbitration.
    pub fetch: FetchPolicy,
    /// ROB sharing.
    pub rob: RobPartitioning,
}

impl Policy {
    /// The four combinations studied by the paper, RR/static first.
    pub const ALL: [Policy; 4] = [
        Policy {
            fetch: FetchPolicy::RoundRobin,
            rob: RobPartitioning::Static,
        },
        Policy {
            fetch: FetchPolicy::RoundRobin,
            rob: RobPartitioning::Dynamic,
        },
        Policy {
            fetch: FetchPolicy::Icount,
            rob: RobPartitioning::Static,
        },
        Policy {
            fetch: FetchPolicy::Icount,
            rob: RobPartitioning::Dynamic,
        },
    ];

    /// Short label, e.g. `ICOUNT/dyn`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}",
            match self.fetch {
                FetchPolicy::Icount => "ICOUNT",
                FetchPolicy::RoundRobin => "RR",
            },
            match self.rob {
                RobPartitioning::Dynamic => "dyn",
                RobPartitioning::Static => "static",
            }
        )
    }
}

/// Per-policy average throughputs.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyResult {
    /// The policy.
    pub policy: Policy,
    /// Mean FCFS throughput over workloads.
    pub fcfs: f64,
    /// Mean optimal throughput over workloads.
    pub optimal: f64,
}

/// The full Section VII study.
#[derive(Debug, Clone, PartialEq)]
pub struct Sec7 {
    /// One row per policy, in [`Policy::ALL`] order.
    pub rows: Vec<PolicyResult>,
    /// Fraction of workloads whose best policy changes when switching the
    /// scheduler from FCFS to optimal (the paper: ~10%).
    pub ranking_changes: f64,
    /// Mean optimal-over-FCFS gain for the best policy (scheduling
    /// headroom to compare against the microarchitectural gain).
    pub scheduling_gain: f64,
    /// Workloads analysed.
    pub workloads: usize,
}

/// FCFS and optimal average throughput of one workload, obtained through
/// a single-workload [`session::Session::sweep`] over the table's measured
/// rate model. Matches the old `fcfs_throughput` + `optimal_schedule` pair
/// bitwise (pinned by the parity suite).
///
/// # Errors
///
/// Propagates sweep failures as strings.
pub fn workload_throughputs(
    table: &PerfTable,
    workload: &[usize],
    config: &StudyConfig,
) -> Result<(f64, f64), String> {
    let report = config
        .sweep(table, vec![workload.to_vec()])
        .policies([SessionPolicy::FcfsEvent, SessionPolicy::Optimal])
        .run()
        .map_err(|e| e.to_string())?;
    Ok((
        report.throughputs(SessionPolicy::FcfsEvent)[0],
        report.throughputs(SessionPolicy::Optimal)[0],
    ))
}

/// Runs the Section VII study. Builds one performance table per policy
/// (the study's dominant cost — cached through the table store when the
/// config names one), then sweeps the workloads on each.
///
/// # Errors
///
/// Propagates simulation/analysis failures as strings.
pub fn run(study: &Study) -> Result<Sec7, String> {
    let cfg = study.config();
    let workloads = study.workloads();

    // Per policy: build the table, then sweep FCFS + optimal over it.
    let mut per_policy_fcfs: Vec<Vec<f64>> = Vec::new();
    let mut per_policy_opt: Vec<Vec<f64>> = Vec::new();
    for policy in Policy::ALL {
        let mc = MachineConfig::smt4()
            .with_fetch_policy(policy.fetch)
            .with_rob_partitioning(policy.rob);
        let table = cfg.build_table(mc).map_err(|e| e.to_string())?;
        let sweep = cfg
            .sweep(&table, workloads.clone())
            .policies([SessionPolicy::FcfsEvent, SessionPolicy::Optimal])
            .run()
            .map_err(|e| e.to_string())?;
        per_policy_fcfs.push(sweep.throughputs(SessionPolicy::FcfsEvent));
        per_policy_opt.push(sweep.throughputs(SessionPolicy::Optimal));
    }

    let rows: Vec<PolicyResult> = Policy::ALL
        .iter()
        .enumerate()
        .map(|(i, &policy)| PolicyResult {
            policy,
            fcfs: mean(&per_policy_fcfs[i]),
            optimal: mean(&per_policy_opt[i]),
        })
        .collect();

    // Per workload: does the argmax policy change between schedulers?
    let argmax = |values: &[f64]| -> usize {
        values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0
    };
    let mut changes = 0usize;
    let mut gains = Vec::new();
    for wi in 0..workloads.len() {
        let fcfs_per_policy: Vec<f64> = (0..4).map(|p| per_policy_fcfs[p][wi]).collect();
        let opt_per_policy: Vec<f64> = (0..4).map(|p| per_policy_opt[p][wi]).collect();
        let best_fcfs = argmax(&fcfs_per_policy);
        let best_opt = argmax(&opt_per_policy);
        if best_fcfs != best_opt {
            changes += 1;
        }
        gains.push(opt_per_policy[best_opt] / fcfs_per_policy[best_opt] - 1.0);
    }

    Ok(Sec7 {
        rows,
        ranking_changes: changes as f64 / workloads.len() as f64,
        scheduling_gain: mean(&gains),
        workloads: workloads.len(),
    })
}

impl fmt::Display for Sec7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Section VII: SMT fetch/ROB policies under FCFS vs optimal scheduling\n\
             ({} workloads)",
            self.workloads
        )?;
        writeln!(
            f,
            "{:<14} {:>12} {:>14}",
            "policy", "FCFS avg TP", "optimal avg TP"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>12.3} {:>14.3}",
                r.policy.label(),
                r.fcfs,
                r.optimal
            )?;
        }
        let rr_static = &self.rows[0];
        let icount_dyn = &self.rows[3];
        writeln!(
            f,
            "\nICOUNT/dyn over RR/static: {} (FCFS), {} (optimal)",
            pct(icount_dyn.fcfs / rr_static.fcfs - 1.0),
            pct(icount_dyn.optimal / rr_static.optimal - 1.0)
        )?;
        writeln!(
            f,
            "workloads whose best policy flips with the scheduler: {:.0}%",
            100.0 * self.ranking_changes
        )?;
        writeln!(
            f,
            "mean scheduling headroom (optimal over FCFS, best policy): {}",
            pct(self.scheduling_gain)
        )?;
        writeln!(
            f,
            "\npaper: ICOUNT+dynamic wins under both schedulers (+1.7% FCFS / +1.5%\n\
             optimal over RR+static); ~10% of workloads flip their preferred policy;\n\
             scheduling headroom (3.3%) is comparable to the microarchitectural gain"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use std::sync::OnceLock;

    fn fast_study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| {
            let mut cfg = StudyConfig::fast();
            cfg.sample = Some(6);
            Study::new(cfg).expect("study builds")
        })
    }

    #[test]
    fn policy_study_produces_positive_throughputs() {
        let res = run(fast_study()).unwrap();
        assert_eq!(res.rows.len(), 4);
        for r in &res.rows {
            assert!(r.fcfs > 0.0);
            assert!(
                r.optimal >= r.fcfs - 1e-6,
                "{}: optimal {} must dominate FCFS {}",
                r.policy.label(),
                r.optimal,
                r.fcfs
            );
        }
        assert!((0.0..=1.0).contains(&res.ranking_changes));
        assert!(res.scheduling_gain >= -1e-9);
    }

    #[test]
    fn policy_labels_are_distinct() {
        let labels: Vec<String> = Policy::ALL.iter().map(Policy::label).collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 4, "{labels:?}");
    }
}
