//! The big-machine scaling scenario: N ∈ {4, 8, 12} job types on a
//! synthetic 8-context machine, driven through [`session::Session::sweep`].
//!
//! This extends the Section V-B sensitivity study ([`crate::experiments::n8`])
//! past what exhaustive simulation can reach: a K = 8 performance table
//! over 12 benchmarks spans 125 969 combos, and the N = 12 scheduling LP
//! has `C(19, 8)` = 75 582 coschedule columns. The table therefore comes
//! from a deterministic analytic contention model
//! ([`synthetic_table`]); the LP legs beyond
//! `symbiosis::DEFAULT_LP_DENSE_LIMIT` coschedules run through column
//! generation and the large FCFS Markov chains through the sparse
//! Gauss–Seidel path — the solver frontier this scenario exists to
//! exercise.

use std::fmt;
use std::time::Instant;

use session::Policy;
use simproc::MachineConfig;
use symbiosis::{enumerate_workloads, CoscheduleIter};
use workloads::PerfTable;

use crate::study::StudyConfig;
use crate::{max, mean, pct};

/// Hardware contexts of the synthetic big machine.
pub const CONTEXTS: usize = 8;

/// Benchmarks in the synthetic suite (mirrors the paper's 12).
pub const SUITE: usize = 12;

/// Benchmarks in the K = 10 stress leg's sub-suite. Eight types on ten
/// contexts put the single full workload at `C(17, 10)` = 19 448
/// coschedules — past both the LP dense limit (column generation) and the
/// Markov acceleration limit (multi-colored parallel SOR) — while the
/// sub-suite table stays cheap enough to build on every run.
pub const K10_SUITE: usize = 8;

/// One workload-size leg of the scaling scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Leg {
    /// Job types per workload.
    pub n: usize,
    /// Coschedules per rate table (`C(n + K - 1, K)`).
    pub coschedules: usize,
    /// Mean optimal gain over FCFS across the leg's workloads.
    pub mean_gain: f64,
    /// Maximum gain observed.
    pub max_gain: f64,
    /// Workloads analysed.
    pub workloads: usize,
    /// Wall-clock seconds the leg's sweep took.
    pub wall_secs: f64,
}

/// The really-simulated leg: the same scenario shape on a table that was
/// *simulated* (smt8 machine, [`crate::study::StudyConfig::K8_SUITE`]
/// sub-suite) rather than synthesised. Present only when
/// [`crate::study::StudyConfig::simulated_k8`] is set.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedLeg {
    /// Benchmarks in the simulated sub-suite.
    pub suite: usize,
    /// Coschedules in the simulated table (all sizes 1..=K).
    pub table_combos: usize,
    /// The scaling leg over that table.
    pub leg: Leg,
}

/// The K = 10 stress leg: the full [`K10_SUITE`]-type workload on the
/// ten-context machine ([`simproc::MachineConfig::smt10`]'s shape over the
/// synthetic contention model), compared OPTIMAL vs the exact FCFS Markov
/// chain — the largest stationary solve the scenario exercises.
#[derive(Debug, Clone, PartialEq)]
pub struct K10Leg {
    /// Hardware contexts (10, from [`simproc::MachineConfig::smt10`]).
    pub contexts: usize,
    /// Benchmarks in the sub-suite ([`K10_SUITE`]).
    pub suite: usize,
    /// Coschedules in the sub-suite table (all sizes 1..=10).
    pub table_combos: usize,
    /// The stress leg itself.
    pub leg: Leg,
}

/// Result of the scaling scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct N12K8 {
    /// One entry per analysed workload size, in request order.
    pub legs: Vec<Leg>,
    /// The really-simulated smt8 leg, when
    /// [`crate::study::StudyConfig::simulated_k8`] is set.
    pub simulated: Option<SimulatedLeg>,
    /// The always-on K = 10 stress leg.
    pub k10: K10Leg,
}

/// Deterministic per-slot IPC model of the synthetic 8-context machine:
/// per-benchmark solo speeds, contention growing with occupancy, relief
/// growing with coschedule heterogeneity (the symbiosis the optimal
/// scheduler can exploit), plus a small benchmark-pair-specific term so
/// rate tables are not perfectly symmetric.
pub(crate) fn slot_ipc(combo: &[usize], slot: usize) -> f64 {
    let b = combo[slot];
    let base = 0.6 + 0.11 * (b % 7) as f64 + 0.04 * (b / 7) as f64;
    let k = combo.len() as f64;
    if combo.len() == 1 {
        return base;
    }
    let distinct = {
        let mut d = 1;
        for w in combo.windows(2) {
            if w[0] != w[1] {
                d += 1;
            }
        }
        d as f64
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &c in combo {
        h = (h ^ c as u64).wrapping_mul(0x100_0000_01b3);
    }
    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    let jitter = 0.97 + 0.06 * (h % 1000) as f64 / 1000.0;
    base * (1.0 / (1.0 + 0.21 * (k - 1.0))) * (0.82 + 0.28 * distinct / k) * jitter
}

/// Benchmark names of the synthetic suite — shared with the
/// `model_accuracy` experiment so its sampled table labels the same
/// machine identically.
pub(crate) fn suite_names() -> Vec<String> {
    (0..SUITE).map(|b| format!("syn{b:02}")).collect()
}

/// Builds the synthetic K = 8 performance table (streamed, never
/// simulated).
///
/// # Errors
///
/// Propagates table validation failures as strings (cannot happen for the
/// built-in model).
pub fn synthetic_table() -> Result<PerfTable, String> {
    PerfTable::synthetic(suite_names(), CONTEXTS, |combo| {
        (0..combo.len()).map(|slot| slot_ipc(combo, slot)).collect()
    })
    .map_err(|e| e.to_string())
}

/// Runs the full scenario: N = 4, 8 and 12 on the 8-context machine.
///
/// # Errors
///
/// Propagates analysis failures as strings.
pub fn run(cfg: &StudyConfig) -> Result<N12K8, String> {
    run_for(cfg, &[4, 8, 12])
}

/// Runs the scenario for explicit workload sizes (tests use a reduced
/// list; the binary runs all three).
///
/// # Errors
///
/// Propagates analysis failures as strings.
pub fn run_for(cfg: &StudyConfig, ns: &[usize]) -> Result<N12K8, String> {
    let table = synthetic_table()?;
    let mut legs = Vec::with_capacity(ns.len());
    for &n in ns {
        let workloads = cfg.sample_workloads(enumerate_workloads(SUITE, n));
        let start = Instant::now();
        let sweep = cfg.run_sweep(
            cfg.sweep(&table, workloads)
                .policies([Policy::Optimal, Policy::FcfsEvent]),
        )?;
        let gains = sweep.gains(Policy::Optimal, Policy::FcfsEvent);
        legs.push(Leg {
            n,
            coschedules: CoscheduleIter::count_total(n, CONTEXTS),
            mean_gain: mean(&gains),
            max_gain: max(&gains),
            workloads: sweep.len(),
            wall_secs: start.elapsed().as_secs_f64(),
        });
    }
    let simulated = if cfg.simulated_k8 {
        Some(simulated_leg(cfg)?)
    } else {
        None
    };
    let k10 = k10_leg(cfg)?;
    Ok(N12K8 {
        legs,
        simulated,
        k10,
    })
}

/// The K = 10 stress leg: builds the sub-suite synthetic table for the
/// ten-context machine and sweeps its single full workload with
/// OPTIMAL (column generation) vs FCFS-MARKOV (19 448 states, the
/// accelerated multi-colored SOR path).
fn k10_leg(cfg: &StudyConfig) -> Result<K10Leg, String> {
    let contexts = MachineConfig::smt10().contexts();
    let names: Vec<String> = suite_names().into_iter().take(K10_SUITE).collect();
    let table = PerfTable::synthetic(names, contexts, |combo| {
        (0..combo.len()).map(|slot| slot_ipc(combo, slot)).collect()
    })
    .map_err(|e| e.to_string())?;
    // One workload: all K10_SUITE types at once.
    let workloads = enumerate_workloads(K10_SUITE, K10_SUITE);
    let start = Instant::now();
    let sweep = cfg.run_sweep(
        cfg.sweep(&table, workloads)
            .policies([Policy::Optimal, Policy::FcfsMarkov]),
    )?;
    let gains = sweep.gains(Policy::Optimal, Policy::FcfsMarkov);
    Ok(K10Leg {
        contexts,
        suite: K10_SUITE,
        table_combos: table.len(),
        leg: Leg {
            n: K10_SUITE,
            coschedules: CoscheduleIter::count_total(K10_SUITE, contexts),
            mean_gain: mean(&gains),
            max_gain: max(&gains),
            workloads: sweep.len(),
            wall_secs: start.elapsed().as_secs_f64(),
        },
    })
}

/// The `--simulated-k8` leg: N = 4 workloads from the really-simulated
/// smt8 sub-suite table ([`StudyConfig::build_k8_table`]), swept with the
/// same OPTIMAL-vs-FCFS comparison as the synthetic legs.
fn simulated_leg(cfg: &StudyConfig) -> Result<SimulatedLeg, String> {
    let suite = StudyConfig::K8_SUITE.len();
    let n = 4;
    let table = cfg.build_k8_table().map_err(|e| e.to_string())?;
    let workloads = cfg.sample_workloads(enumerate_workloads(suite, n));
    let start = Instant::now();
    let sweep = cfg.run_sweep(
        cfg.sweep(&table, workloads)
            .policies([Policy::Optimal, Policy::FcfsEvent]),
    )?;
    let gains = sweep.gains(Policy::Optimal, Policy::FcfsEvent);
    Ok(SimulatedLeg {
        suite,
        table_combos: table.len(),
        leg: Leg {
            n,
            coschedules: CoscheduleIter::count_total(n, CONTEXTS),
            mean_gain: mean(&gains),
            max_gain: max(&gains),
            workloads: sweep.len(),
            wall_secs: start.elapsed().as_secs_f64(),
        },
    })
}

/// One formatted leg row, shared by every table in the report.
fn leg_row(f: &mut fmt::Formatter<'_>, leg: &Leg) -> fmt::Result {
    writeln!(
        f,
        "{:<6} {:>12} {:>12} {:>12} {:>10} {:>10}",
        leg.n,
        leg.coschedules,
        pct(leg.mean_gain),
        pct(leg.max_gain),
        leg.workloads,
        format!("{:.2}s", leg.wall_secs),
    )
}

/// The shared column header (the last column is the wall-clock the leg's
/// sweep took).
fn leg_header(f: &mut fmt::Formatter<'_>) -> fmt::Result {
    writeln!(
        f,
        "{:<6} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "N", "coschedules", "mean gain", "max gain", "workloads", "wall"
    )
}

impl fmt::Display for N12K8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Big-machine scaling: N job types on K = {CONTEXTS} contexts (synthetic suite)"
        )?;
        leg_header(f)?;
        for leg in &self.legs {
            leg_row(f, leg)?;
        }
        if let Some(sim) = &self.simulated {
            writeln!(
                f,
                "\nReally-simulated smt8 leg ({} benchmarks, {} simulated combos):",
                sim.suite, sim.table_combos
            )?;
            leg_header(f)?;
            leg_row(f, &sim.leg)?;
        }
        writeln!(
            f,
            "\nK = {} stress leg ({} benchmarks, {} combos, OPTIMAL vs FCFS-MARKOV):",
            self.k10.contexts, self.k10.suite, self.k10.table_combos
        )?;
        leg_header(f)?;
        leg_row(f, &self.k10.leg)?;
        writeln!(
            f,
            "\nLP legs past {} coschedules run column generation; sparse FCFS Markov\n\
             chains past {} states run the multi-colored parallel SOR sweep. The\n\
             N = 12 table (75 582 coschedules) was the ROADMAP's 'bigger machines'\n\
             blocker; the K = 10 leg's 19 448-state chain proves the accelerated\n\
             stationary solver end-to-end.",
            symbiosis::DEFAULT_LP_DENSE_LIMIT,
            symbiosis::DEFAULT_MARKOV_ACCEL_LIMIT
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_legs_run_through_sweep_and_colgen() {
        let mut cfg = StudyConfig::fast();
        cfg.sample = Some(4);
        cfg.fcfs_jobs = 2_000;
        // N = 8 on K = 8 is 6435 coschedules — past the dense limit, so
        // this leg exercises column generation end-to-end through
        // Session::sweep(); N = 4 (165) stays dense.
        let res = run_for(&cfg, &[4, 8]).unwrap();
        assert_eq!(res.legs.len(), 2);
        assert!(res.simulated.is_none(), "simulated leg is opt-in");
        assert_eq!(res.legs[0].coschedules, 165);
        assert_eq!(res.legs[1].coschedules, 6435);
        assert!(res.legs[1].coschedules > symbiosis::DEFAULT_LP_DENSE_LIMIT);
        for leg in &res.legs {
            // The optimal scheduler can only gain over FCFS; the synthetic
            // model's heterogeneity bonus guarantees real headroom.
            assert!(
                leg.mean_gain > -1e-9,
                "N={} mean gain {}",
                leg.n,
                leg.mean_gain
            );
            assert!(leg.max_gain < 1.0, "gains stay plausible");
            assert_eq!(leg.workloads, 4);
            assert!(leg.wall_secs >= 0.0, "wall clock is measured");
        }
        // The always-on K = 10 stress leg: the single full workload of the
        // sub-suite, with a chain big enough for the accelerated solver.
        let k10 = &res.k10;
        assert_eq!(k10.contexts, 10);
        assert_eq!(k10.suite, K10_SUITE);
        assert_eq!(k10.leg.n, K10_SUITE);
        assert_eq!(k10.leg.coschedules, 19_448);
        assert!(k10.leg.coschedules > symbiosis::DEFAULT_MARKOV_ACCEL_LIMIT);
        assert_eq!(k10.leg.workloads, 1);
        assert!(
            k10.leg.mean_gain > -1e-9,
            "OPTIMAL >= FCFS-MARKOV, got gain {}",
            k10.leg.mean_gain
        );
        assert!(k10.leg.max_gain < 1.0);
        // All coschedules of K10_SUITE benchmarks, sizes 1..=10.
        let expected: usize = (1..=k10.contexts)
            .map(|s| CoscheduleIter::count_total(K10_SUITE, s))
            .sum();
        assert_eq!(k10.table_combos, expected);
    }

    /// The `--simulated-k8` leg end-to-end at tiny simulator windows:
    /// really-simulated smt8 table, OPTIMAL-vs-FCFS sweep over N = 4
    /// workloads of the six-benchmark sub-suite.
    #[test]
    fn simulated_leg_sweeps_the_really_simulated_smt8_table() {
        let mut cfg = StudyConfig::fast();
        cfg.warmup_cycles = 500;
        cfg.measure_cycles = 1_500;
        cfg.sample = Some(3);
        cfg.fcfs_jobs = 2_000;
        cfg.simulated_k8 = true;
        let res = run_for(&cfg, &[]).unwrap();
        assert!(res.legs.is_empty());
        let sim = res.simulated.expect("gated leg runs when the flag is set");
        assert_eq!(sim.suite, StudyConfig::K8_SUITE.len());
        // All coschedules of 6 benchmarks, sizes 1..=8.
        let expected: usize = (1..=CONTEXTS)
            .map(|s| CoscheduleIter::count_total(sim.suite, s))
            .sum();
        assert_eq!(sim.table_combos, expected);
        assert_eq!(expected, 3_002);
        assert_eq!(sim.leg.n, 4);
        assert_eq!(sim.leg.coschedules, 165);
        assert_eq!(sim.leg.workloads, 3);
        assert!(sim.leg.mean_gain > -1e-9, "gain {}", sim.leg.mean_gain);
        assert!(sim.leg.max_gain < 1.0);
    }

    #[test]
    fn synthetic_table_is_complete_and_deterministic() {
        let a = synthetic_table().unwrap();
        assert_eq!(a.contexts(), CONTEXTS);
        // Sum over sizes 1..=8 of C(11 + s, s).
        let expected: usize = (1..=CONTEXTS)
            .map(|s| CoscheduleIter::count_total(SUITE, s))
            .sum();
        assert_eq!(a.len(), expected);
        assert_eq!(expected, 125_969);
        let b = synthetic_table().unwrap();
        assert_eq!(a, b, "model is deterministic");
    }
}
