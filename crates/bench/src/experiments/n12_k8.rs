//! The big-machine scaling scenario: N ∈ {4, 8, 12} job types on a
//! synthetic 8-context machine, driven through [`session::Session::sweep`].
//!
//! This extends the Section V-B sensitivity study ([`crate::experiments::n8`])
//! past what exhaustive simulation can reach: a K = 8 performance table
//! over 12 benchmarks spans 125 969 combos, and the N = 12 scheduling LP
//! has `C(19, 8)` = 75 582 coschedule columns. The table therefore comes
//! from a deterministic analytic contention model
//! ([`synthetic_table`]); the LP legs beyond
//! `symbiosis::DEFAULT_LP_DENSE_LIMIT` coschedules run through column
//! generation and the large FCFS Markov chains through the sparse
//! Gauss–Seidel path — the solver frontier this scenario exists to
//! exercise.

use std::fmt;

use session::Policy;
use symbiosis::{enumerate_workloads, CoscheduleIter};
use workloads::PerfTable;

use crate::study::StudyConfig;
use crate::{max, mean, pct};

/// Hardware contexts of the synthetic big machine.
pub const CONTEXTS: usize = 8;

/// Benchmarks in the synthetic suite (mirrors the paper's 12).
pub const SUITE: usize = 12;

/// One workload-size leg of the scaling scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Leg {
    /// Job types per workload.
    pub n: usize,
    /// Coschedules per rate table (`C(n + K - 1, K)`).
    pub coschedules: usize,
    /// Mean optimal gain over FCFS across the leg's workloads.
    pub mean_gain: f64,
    /// Maximum gain observed.
    pub max_gain: f64,
    /// Workloads analysed.
    pub workloads: usize,
}

/// The really-simulated leg: the same scenario shape on a table that was
/// *simulated* (smt8 machine, [`crate::study::StudyConfig::K8_SUITE`]
/// sub-suite) rather than synthesised. Present only when
/// [`crate::study::StudyConfig::simulated_k8`] is set.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedLeg {
    /// Benchmarks in the simulated sub-suite.
    pub suite: usize,
    /// Coschedules in the simulated table (all sizes 1..=K).
    pub table_combos: usize,
    /// The scaling leg over that table.
    pub leg: Leg,
}

/// Result of the scaling scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct N12K8 {
    /// One entry per analysed workload size, in request order.
    pub legs: Vec<Leg>,
    /// The really-simulated smt8 leg, when
    /// [`crate::study::StudyConfig::simulated_k8`] is set.
    pub simulated: Option<SimulatedLeg>,
}

/// Deterministic per-slot IPC model of the synthetic 8-context machine:
/// per-benchmark solo speeds, contention growing with occupancy, relief
/// growing with coschedule heterogeneity (the symbiosis the optimal
/// scheduler can exploit), plus a small benchmark-pair-specific term so
/// rate tables are not perfectly symmetric.
pub(crate) fn slot_ipc(combo: &[usize], slot: usize) -> f64 {
    let b = combo[slot];
    let base = 0.6 + 0.11 * (b % 7) as f64 + 0.04 * (b / 7) as f64;
    let k = combo.len() as f64;
    if combo.len() == 1 {
        return base;
    }
    let distinct = {
        let mut d = 1;
        for w in combo.windows(2) {
            if w[0] != w[1] {
                d += 1;
            }
        }
        d as f64
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &c in combo {
        h = (h ^ c as u64).wrapping_mul(0x100_0000_01b3);
    }
    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    let jitter = 0.97 + 0.06 * (h % 1000) as f64 / 1000.0;
    base * (1.0 / (1.0 + 0.21 * (k - 1.0))) * (0.82 + 0.28 * distinct / k) * jitter
}

/// Benchmark names of the synthetic suite — shared with the
/// `model_accuracy` experiment so its sampled table labels the same
/// machine identically.
pub(crate) fn suite_names() -> Vec<String> {
    (0..SUITE).map(|b| format!("syn{b:02}")).collect()
}

/// Builds the synthetic K = 8 performance table (streamed, never
/// simulated).
///
/// # Errors
///
/// Propagates table validation failures as strings (cannot happen for the
/// built-in model).
pub fn synthetic_table() -> Result<PerfTable, String> {
    PerfTable::synthetic(suite_names(), CONTEXTS, |combo| {
        (0..combo.len()).map(|slot| slot_ipc(combo, slot)).collect()
    })
    .map_err(|e| e.to_string())
}

/// Runs the full scenario: N = 4, 8 and 12 on the 8-context machine.
///
/// # Errors
///
/// Propagates analysis failures as strings.
pub fn run(cfg: &StudyConfig) -> Result<N12K8, String> {
    run_for(cfg, &[4, 8, 12])
}

/// Runs the scenario for explicit workload sizes (tests use a reduced
/// list; the binary runs all three).
///
/// # Errors
///
/// Propagates analysis failures as strings.
pub fn run_for(cfg: &StudyConfig, ns: &[usize]) -> Result<N12K8, String> {
    let table = synthetic_table()?;
    let mut legs = Vec::with_capacity(ns.len());
    for &n in ns {
        let workloads = cfg.sample_workloads(enumerate_workloads(SUITE, n));
        let sweep = cfg.run_sweep(
            cfg.sweep(&table, workloads)
                .policies([Policy::Optimal, Policy::FcfsEvent]),
        )?;
        let gains = sweep.gains(Policy::Optimal, Policy::FcfsEvent);
        legs.push(Leg {
            n,
            coschedules: CoscheduleIter::count_total(n, CONTEXTS),
            mean_gain: mean(&gains),
            max_gain: max(&gains),
            workloads: sweep.len(),
        });
    }
    let simulated = if cfg.simulated_k8 {
        Some(simulated_leg(cfg)?)
    } else {
        None
    };
    Ok(N12K8 { legs, simulated })
}

/// The `--simulated-k8` leg: N = 4 workloads from the really-simulated
/// smt8 sub-suite table ([`StudyConfig::build_k8_table`]), swept with the
/// same OPTIMAL-vs-FCFS comparison as the synthetic legs.
fn simulated_leg(cfg: &StudyConfig) -> Result<SimulatedLeg, String> {
    let suite = StudyConfig::K8_SUITE.len();
    let n = 4;
    let table = cfg.build_k8_table().map_err(|e| e.to_string())?;
    let workloads = cfg.sample_workloads(enumerate_workloads(suite, n));
    let sweep = cfg.run_sweep(
        cfg.sweep(&table, workloads)
            .policies([Policy::Optimal, Policy::FcfsEvent]),
    )?;
    let gains = sweep.gains(Policy::Optimal, Policy::FcfsEvent);
    Ok(SimulatedLeg {
        suite,
        table_combos: table.len(),
        leg: Leg {
            n,
            coschedules: CoscheduleIter::count_total(n, CONTEXTS),
            mean_gain: mean(&gains),
            max_gain: max(&gains),
            workloads: sweep.len(),
        },
    })
}

impl fmt::Display for N12K8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Big-machine scaling: N job types on K = {CONTEXTS} contexts (synthetic suite)"
        )?;
        writeln!(
            f,
            "{:<6} {:>12} {:>12} {:>12} {:>10}",
            "N", "coschedules", "mean gain", "max gain", "workloads"
        )?;
        for leg in &self.legs {
            writeln!(
                f,
                "{:<6} {:>12} {:>12} {:>12} {:>10}",
                leg.n,
                leg.coschedules,
                pct(leg.mean_gain),
                pct(leg.max_gain),
                leg.workloads
            )?;
        }
        if let Some(sim) = &self.simulated {
            writeln!(
                f,
                "\nReally-simulated smt8 leg ({} benchmarks, {} simulated combos):",
                sim.suite, sim.table_combos
            )?;
            writeln!(
                f,
                "{:<6} {:>12} {:>12} {:>12} {:>10}",
                sim.leg.n,
                sim.leg.coschedules,
                pct(sim.leg.mean_gain),
                pct(sim.leg.max_gain),
                sim.leg.workloads
            )?;
        }
        writeln!(
            f,
            "\nLP legs past {} coschedules run column generation; the N = 12 table\n\
             (75 582 coschedules) was the ROADMAP's 'bigger machines' blocker.",
            symbiosis::DEFAULT_LP_DENSE_LIMIT
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_legs_run_through_sweep_and_colgen() {
        let mut cfg = StudyConfig::fast();
        cfg.sample = Some(4);
        cfg.fcfs_jobs = 2_000;
        // N = 8 on K = 8 is 6435 coschedules — past the dense limit, so
        // this leg exercises column generation end-to-end through
        // Session::sweep(); N = 4 (165) stays dense.
        let res = run_for(&cfg, &[4, 8]).unwrap();
        assert_eq!(res.legs.len(), 2);
        assert!(res.simulated.is_none(), "simulated leg is opt-in");
        assert_eq!(res.legs[0].coschedules, 165);
        assert_eq!(res.legs[1].coschedules, 6435);
        assert!(res.legs[1].coschedules > symbiosis::DEFAULT_LP_DENSE_LIMIT);
        for leg in &res.legs {
            // The optimal scheduler can only gain over FCFS; the synthetic
            // model's heterogeneity bonus guarantees real headroom.
            assert!(
                leg.mean_gain > -1e-9,
                "N={} mean gain {}",
                leg.n,
                leg.mean_gain
            );
            assert!(leg.max_gain < 1.0, "gains stay plausible");
            assert_eq!(leg.workloads, 4);
        }
    }

    /// The `--simulated-k8` leg end-to-end at tiny simulator windows:
    /// really-simulated smt8 table, OPTIMAL-vs-FCFS sweep over N = 4
    /// workloads of the six-benchmark sub-suite.
    #[test]
    fn simulated_leg_sweeps_the_really_simulated_smt8_table() {
        let mut cfg = StudyConfig::fast();
        cfg.warmup_cycles = 500;
        cfg.measure_cycles = 1_500;
        cfg.sample = Some(3);
        cfg.fcfs_jobs = 2_000;
        cfg.simulated_k8 = true;
        let res = run_for(&cfg, &[]).unwrap();
        assert!(res.legs.is_empty());
        let sim = res.simulated.expect("gated leg runs when the flag is set");
        assert_eq!(sim.suite, StudyConfig::K8_SUITE.len());
        // All coschedules of 6 benchmarks, sizes 1..=8.
        let expected: usize = (1..=CONTEXTS)
            .map(|s| CoscheduleIter::count_total(sim.suite, s))
            .sum();
        assert_eq!(sim.table_combos, expected);
        assert_eq!(expected, 3_002);
        assert_eq!(sim.leg.n, 4);
        assert_eq!(sim.leg.coschedules, 165);
        assert_eq!(sim.leg.workloads, 3);
        assert!(sim.leg.mean_gain > -1e-9, "gain {}", sim.leg.mean_gain);
        assert!(sim.leg.max_gain < 1.0);
    }

    #[test]
    fn synthetic_table_is_complete_and_deterministic() {
        let a = synthetic_table().unwrap();
        assert_eq!(a.contexts(), CONTEXTS);
        // Sum over sizes 1..=8 of C(11 + s, s).
        let expected: usize = (1..=CONTEXTS)
            .map(|s| CoscheduleIter::count_total(SUITE, s))
            .sum();
        assert_eq!(a.len(), expected);
        assert_eq!(expected, 125_969);
        let b = synthetic_table().unwrap();
        assert_eq!(a, b, "model is deterministic");
    }
}
