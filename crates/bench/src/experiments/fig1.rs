//! Figure 1: variation of per-job IPC, per-coschedule instantaneous
//! throughput, and average throughput, for both configurations.

use std::fmt;

use session::Policy;
use symbiosis::{instantaneous_spread, per_job_spreads, WorkloadRates, WorkloadVariability};

use crate::study::{Chip, Study, StudyConfig};
use crate::{max, mean, min, pct};

/// One Figure 1 bar: relative excursions around its zero line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bar {
    /// Mean (over workloads/jobs) relative maximum (the "avg best" bar).
    pub avg_best: f64,
    /// Mean relative minimum (negative; "avg worst").
    pub avg_worst: f64,
    /// Extreme relative maximum over everything ("max best").
    pub max_best: f64,
    /// Extreme relative minimum ("min worst").
    pub min_worst: f64,
}

impl Bar {
    fn from_rel(rel_max: &[f64], rel_min: &[f64]) -> Bar {
        Bar {
            avg_best: mean(rel_max),
            avg_worst: mean(rel_min),
            max_best: max(rel_max),
            min_worst: min(rel_min),
        }
    }

    /// The paper's variability for this bar: `avg_best - avg_worst`.
    pub fn variability(&self) -> f64 {
        self.avg_best - self.avg_worst
    }
}

/// Figure 1 statistics for one chip configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipFig1 {
    /// Which configuration.
    pub chip: Chip,
    /// Per-job IPC variation around the per-job average.
    pub per_job: Bar,
    /// Instantaneous throughput variation around the coschedule average.
    pub instantaneous: Bar,
    /// Average-throughput variation around the FCFS zero line
    /// (best scheduler up, worst scheduler down).
    pub average: Bar,
}

/// The full Figure 1 (both configurations).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1 {
    /// SMT and quad-core statistics.
    pub chips: Vec<ChipFig1>,
    /// Number of workloads analysed per chip.
    pub workloads: usize,
}

/// One workload's variability statistics, with the throughput legs
/// obtained through the `Session` API (the spread legs are pure table
/// statistics). Produces exactly the numbers the pre-`Session`
/// `analyze_variability` free function produced — the parity suite pins
/// that equivalence bitwise.
///
/// # Errors
///
/// Propagates session/analysis failures as strings.
pub fn workload_variability(
    rates: &WorkloadRates,
    config: &StudyConfig,
) -> Result<WorkloadVariability, String> {
    let report = config
        .session()
        .rates(rates)
        .policies([Policy::Optimal, Policy::Worst, Policy::FcfsEvent])
        .run()
        .map_err(|e| e.to_string())?;
    Ok(WorkloadVariability {
        per_job: per_job_spreads(rates).map_err(|e| e.to_string())?,
        instantaneous: instantaneous_spread(rates),
        fcfs: report.throughput(Policy::FcfsEvent).expect("requested"),
        best: report.throughput(Policy::Optimal).expect("requested"),
        worst: report.throughput(Policy::Worst).expect("requested"),
    })
}

/// Runs the Figure 1 analysis: one [`Study::sweep`] per chip fans
/// [`workload_variability`] out over the shared worker pool (the spread
/// legs are not policy rows, so the sweep's custom-map escape hatch
/// carries them).
///
/// # Errors
///
/// Propagates failures from the underlying analyses as strings (the
/// binaries report and exit).
pub fn run(study: &Study) -> Result<Fig1, String> {
    let workloads = study.workloads();
    let mut chips = Vec::new();
    for chip in Chip::ALL {
        let results = study
            .sweep(chip)
            .map(|item| workload_variability(&item.rates()?, study.config()))
            .map_err(|e| e.to_string())?;
        let mut pj_max = Vec::new();
        let mut pj_min = Vec::new();
        let mut it_max = Vec::new();
        let mut it_min = Vec::new();
        let mut avg_max = Vec::new();
        let mut avg_min = Vec::new();
        for v in results {
            for s in &v.per_job {
                pj_max.push(s.rel_max());
                pj_min.push(s.rel_min());
            }
            it_max.push(v.instantaneous.rel_max());
            it_min.push(v.instantaneous.rel_min());
            avg_max.push(v.optimal_gain());
            avg_min.push(v.worst_loss());
        }
        chips.push(ChipFig1 {
            chip,
            per_job: Bar::from_rel(&pj_max, &pj_min),
            instantaneous: Bar::from_rel(&it_max, &it_min),
            average: Bar::from_rel(&avg_max, &avg_min),
        });
    }
    Ok(Fig1 {
        chips,
        workloads: workloads.len(),
    })
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1: variability of per-job IPC / instantaneous TP / average TP"
        )?;
        writeln!(f, "({} workloads of 4 job types)", self.workloads)?;
        for c in &self.chips {
            writeln!(f, "\n== {} configuration ==", c.chip.label())?;
            writeln!(
                f,
                "{:<18} {:>9} {:>9} {:>9} {:>9} {:>12}",
                "bar", "avg best", "avg worst", "max best", "min worst", "variability"
            )?;
            for (name, bar) in [
                ("per-job IPC", &c.per_job),
                ("instantaneous TP", &c.instantaneous),
                ("average TP", &c.average),
            ] {
                writeln!(
                    f,
                    "{:<18} {:>9} {:>9} {:>9} {:>9} {:>12}",
                    name,
                    pct(bar.avg_best),
                    pct(bar.avg_worst),
                    pct(bar.max_best),
                    pct(bar.min_worst),
                    pct(bar.variability()),
                )?;
            }
        }
        writeln!(
            f,
            "\npaper (SMT): per-job 37%, instantaneous 69%, average 12%;\n\
             optimal only +3% over FCFS on average (max +12%), worst -9% (min -18%)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use std::sync::OnceLock;

    fn fast_study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| Study::new(StudyConfig::fast()).expect("study builds"))
    }

    #[test]
    fn fig1_reproduces_paper_shape() {
        let fig = run(fast_study()).unwrap();
        assert_eq!(fig.chips.len(), 2);
        for c in &fig.chips {
            // The paper's central observation: average-throughput
            // variability is far below per-job variability.
            assert!(
                c.average.variability() < c.per_job.variability(),
                "{}: average {} must be below per-job {}",
                c.chip.label(),
                c.average.variability(),
                c.per_job.variability()
            );
            // Optimal gain over FCFS is small on average (single digits at
            // full scale; the fast study's tiny simulator windows leave
            // caches cold, which inflates quad-core symbiosis, so the
            // ceiling here is generous).
            assert!(
                c.average.avg_best < 0.25,
                "{}: optimal gain {} should be small",
                c.chip.label(),
                c.average.avg_best
            );
            // Signs are sane.
            assert!(c.per_job.avg_best > 0.0);
            assert!(c.per_job.avg_worst < 0.0);
            assert!(c.average.avg_best >= -1e-9);
            assert!(c.average.avg_worst <= 1e-9);
        }
    }

    #[test]
    fn display_contains_table() {
        let fig = run(fast_study()).unwrap();
        let text = fig.to_string();
        assert!(text.contains("SMT configuration"));
        assert!(text.contains("per-job IPC"));
    }
}
