//! Beyond the paper — the distributed-sweep demonstration: shard a
//! fig1-scale sweep across a worker fleet, verify the merged report is
//! bitwise identical to the single-process run, and report per-worker
//! throughput accounting.
//!
//! Two modes, selected by the study configuration:
//!
//! * default — spawn three in-process worker threads talking real TCP
//!   over loopback (self-contained; what `paperbench all` runs);
//! * `--distribute ADDR:N` — bind `ADDR` and wait for `N` external
//!   `paperbench --worker ADDR` processes (what the CI `dist-smoke` job
//!   runs, cold and warm table cache).

use std::fmt;
use std::time::{Duration, Instant};

use dist::{run_worker, Coordinator, DistConfig, DistOutcome, TcpTransport, WorkerConfig};
use session::Policy;

use crate::study::{Chip, Study};

/// How many in-process workers the self-contained mode spawns.
const LOCAL_WORKERS: usize = 3;

/// The policies swept — the headline throughput trio.
const POLICIES: [Policy; 3] = [Policy::Worst, Policy::FcfsEvent, Policy::Optimal];

/// One worker's accounting line.
pub struct WorkerLine {
    /// Peer label (TCP address of the connected worker).
    pub peer: String,
    /// Chunks the worker completed.
    pub chunks: usize,
    /// Sweep rows the worker produced.
    pub rows: usize,
    /// Rows per second over the worker's connection lifetime.
    pub rows_per_sec: f64,
}

/// The distributed-sweep artefact.
pub struct DistSweep {
    /// Worker count.
    pub workers: usize,
    /// Where the workers came from.
    pub mode: String,
    /// Workloads swept.
    pub workloads: usize,
    /// Chunks the workload list was split into.
    pub chunks: usize,
    /// Wall time of the single-process reference run.
    pub single_wall: Duration,
    /// Wall time of the distributed run (including worker ramp-up).
    pub dist_wall: Duration,
    /// Per-worker accounting.
    pub lines: Vec<WorkerLine>,
    /// Mean OPTIMAL gain over FCFS from the merged report (the sweep's
    /// headline number, proving the merged rows are usable as-is).
    pub mean_gain: f64,
}

/// Runs the demonstration: single-process reference, distributed run,
/// bitwise parity check.
///
/// # Errors
///
/// Propagates sweep/distribution failures as strings; a parity mismatch
/// (which the dist test suite pins as impossible) is an error, never a
/// silent artefact.
pub fn run(study: &Study) -> Result<DistSweep, String> {
    let cfg = study.config();
    let sweep = || study.sweep(Chip::Smt).policies(POLICIES);

    let t0 = Instant::now();
    let reference = sweep().run().map_err(|e| e.to_string())?;
    let single_wall = t0.elapsed();

    let coordinator =
        Coordinator::from_sweep(sweep(), DistConfig::default()).map_err(|e| e.to_string())?;
    let t1 = Instant::now();
    let (outcome, workers, mode) = match &cfg.distribute {
        Some(spec) => {
            let outcome = coordinator
                .serve_tcp(&spec.addr, spec.workers)
                .map_err(|e| e.to_string())?;
            (outcome, spec.workers, format!("external, at {}", spec.addr))
        }
        None => (
            local_fleet(&coordinator, cfg.threads)?,
            LOCAL_WORKERS,
            "in-process TCP loopback".into(),
        ),
    };
    let dist_wall = t1.elapsed();

    if outcome.report != reference {
        return Err("distributed sweep diverged from the single-process run".into());
    }

    Ok(DistSweep {
        workers,
        mode,
        workloads: reference.len(),
        chunks: outcome.chunks,
        single_wall,
        dist_wall,
        lines: outcome
            .workers
            .iter()
            .map(|w| WorkerLine {
                peer: w.peer.clone(),
                chunks: w.chunks,
                rows: w.rows,
                rows_per_sec: w.rows_per_sec(),
            })
            .collect(),
        mean_gain: outcome.report.mean_gain(Policy::Optimal, Policy::FcfsEvent),
    })
}

/// The self-contained fleet: real TCP over loopback, worker threads in
/// this process. The study's thread budget is split across the workers
/// so the comparison against the single-process run is not just "three
/// times the cores".
fn local_fleet(coordinator: &Coordinator, threads: usize) -> Result<DistOutcome, String> {
    let listener =
        std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind loopback: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?
        .to_string();
    let per_worker = (threads / LOCAL_WORKERS).max(1);
    let fleet: Vec<_> = (0..LOCAL_WORKERS)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let transport = TcpTransport::connect(addr.as_str())?;
                run_worker(
                    transport,
                    &WorkerConfig {
                        threads: per_worker,
                        cache: None,
                    },
                )
            })
        })
        .collect();
    let outcome = coordinator
        .serve_listener(&listener, LOCAL_WORKERS)
        .map_err(|e| e.to_string())?;
    for handle in fleet {
        handle
            .join()
            .map_err(|_| "worker thread panicked".to_string())?
            .map_err(|e| e.to_string())?;
    }
    Ok(outcome)
}

impl fmt::Display for DistSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Beyond the paper — distributed sweep: coordinator + {} worker(s) ({})",
            self.workers, self.mode
        )?;
        writeln!(
            f,
            "sweep                : {} workloads x {} policies in {} chunk(s)",
            self.workloads,
            POLICIES.len(),
            self.chunks
        )?;
        writeln!(f, "single-process       : {:.2?}", self.single_wall)?;
        let speedup = if self.dist_wall.as_secs_f64() > 0.0 {
            self.single_wall.as_secs_f64() / self.dist_wall.as_secs_f64()
        } else {
            0.0
        };
        writeln!(
            f,
            "distributed          : {:.2?} ({speedup:.2}x)",
            self.dist_wall
        )?;
        writeln!(
            f,
            "parity               : PASS — merged report bitwise-identical to Session::sweep()"
        )?;
        writeln!(f, "worker accounting:")?;
        for (i, w) in self.lines.iter().enumerate() {
            writeln!(
                f,
                "  worker {} ({}): {} chunk(s), {} row(s), {:.1} rows/s",
                i + 1,
                w.peer,
                w.chunks,
                w.rows,
                w.rows_per_sec
            )?;
        }
        write!(
            f,
            "mean OPTIMAL gain over FCFS across the merged rows: {:+.1}%",
            100.0 * self.mean_gain
        )
    }
}
