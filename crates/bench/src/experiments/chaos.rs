//! Beyond the paper — the chaos experiment: seeded fault storms over
//! the distributed sweep and the online service, proving the robustness
//! machinery end to end.
//!
//! Three legs, every fault drawn from a seeded [`ChaosPlan`] so the
//! storm reproduces from the configuration alone:
//!
//! 1. **Distributed fault storm** — a three-worker TCP sweep where one
//!    worker crashes mid-chunk, one falls silent, and the survivor's
//!    frames are duplicated while the coordinator's ends delay and
//!    bit-flip frames. The merged report must stay bitwise identical to
//!    the single-process run and finish inside a wall-clock bound.
//! 2. **Serve degradation soak** — the online service starts from a
//!    model fitted against the *wrong* machine; the circuit breaker
//!    trips on the twin's `fit_q90` health signal, placements fall back
//!    to FCFS, and the breaker recovers once refits on live
//!    measurements pull the residuals back down.
//! 3. **Twin worker panic** — an injected panic in the background refit
//!    worker must surface as a clean [`ServeError::Twin`] instead of a
//!    poisoned lock or a hung shutdown.

use std::fmt;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dist::{
    run_worker, ChaosPlan, ChaosStats, ChaosTransport, Coordinator, DistConfig, TcpTransport,
    WorkerConfig,
};
use predict::{InterferenceFitter, PredictedModel, RateSample};
use serve::{run_serve, BeamPlacer, BreakerConfig, ServeConfig, ServeError, ServeReport};
use session::{Policy, Session, SweepBuilder, SweepReport};
use simproc::{BenchmarkProfile, Machine, MachineConfig};
use symbiosis::{enumerate_workloads, AnalyticModel, CoscheduleIter, RateModel};
use workloads::{spec2006, PerfTable};

use crate::study::StudyConfig;

/// Workers in the storm: one crasher, one hanger, one worker whose
/// answers get duplicated, and one clean worker whose coordinator end
/// corrupts every received frame (the guaranteed-corruption casualty).
const STORM_WORKERS: usize = 4;

/// Frames across the crashing worker's transport before it dies: past
/// the 6-frame cold handshake + first chunk, so it crashes holding work.
const CRASH_AFTER_FRAMES: usize = 10;

/// Frames across the hanging worker's transport before it falls silent.
const HANG_AFTER_FRAMES: usize = 8;

/// P(the surviving worker's sent frame is delivered twice).
const DUPLICATE_P: f64 = 0.25;

/// P(a coordinator-sent frame is delayed), and the delay bound.
const DELAY_P: f64 = 0.20;

/// P(a received frame has one bit flipped) on the sacrificial fourth
/// connection's coordinator end. Every frame: the corruption is
/// guaranteed to be observed, and that worker is a write-off by design
/// (the other three carry the sweep, so parity never depends on it).
const CORRUPT_P: f64 = 1.0;

/// Hard wall-clock bound on the storm: a run that survives the faults
/// but creeps past this has lost the recovery argument.
const STORM_WALL_BOUND: Duration = Duration::from_secs(60);

/// The policies swept in the storm leg.
const POLICIES: [Policy; 3] = [Policy::Worst, Policy::FcfsEvent, Policy::Optimal];

/// Aggregated per-fault-class tally across every chaotic transport.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Frames silently dropped on send.
    pub drops: usize,
    /// Frames delivered twice on send.
    pub duplicates: usize,
    /// Frames delayed on send.
    pub delays: usize,
    /// Frames bit-flipped on receive.
    pub corruptions: usize,
    /// Transports whose crash trigger fired.
    pub crashed: usize,
    /// Transports whose hang trigger fired.
    pub hung: usize,
}

impl FaultTally {
    fn absorb(&mut self, stats: &ChaosStats) {
        self.drops += stats.drops;
        self.duplicates += stats.duplicates;
        self.delays += stats.delays;
        self.corruptions += stats.corruptions;
        self.crashed += usize::from(stats.crashed);
        self.hung += usize::from(stats.hung);
    }
}

/// The chaos artefact: storm accounting plus breaker and panic evidence.
pub struct ChaosStudy {
    /// Workloads in the storm sweep.
    pub workloads: usize,
    /// Chunks the workload list was split into.
    pub chunks: usize,
    /// FCFS jobs per sweep cell.
    pub jobs: u64,
    /// Injected-fault tally across all six chaotic transports.
    pub faults: FaultTally,
    /// Chunk requeues the coordinator performed.
    pub requeues: usize,
    /// Straggler chunks re-dispatched (hedged).
    pub hedges: usize,
    /// Duplicate chunk answers discarded by id.
    pub duplicates_discarded: usize,
    /// Protocol strikes recorded against connections.
    pub strikes: usize,
    /// Wall time of the storm (bounded by [`STORM_WALL_BOUND`]).
    pub storm_wall: Duration,
    /// Jobs streamed through each serve leg.
    pub serve_jobs: usize,
    /// The stale seed model's first refit `fit_q90`.
    pub q90_first: f64,
    /// The calibration run's final refit `fit_q90`.
    pub q90_last: f64,
    /// Trip threshold handed to the breaker.
    pub trip_q90: f64,
    /// Recovery threshold handed to the breaker.
    pub recover_q90: f64,
    /// Breaker trips observed in the degradation soak.
    pub trips: usize,
    /// Breaker recoveries observed.
    pub recoveries: usize,
    /// Placements served by the FCFS fallback while open.
    pub fallback_calls: usize,
    /// Refit generation of the first trip.
    pub trip_generation: u64,
    /// Refit generation of the first recovery.
    pub recover_generation: u64,
    /// Jobs completed in the degradation soak.
    pub completed: u64,
    /// Jobs submitted in the degradation soak.
    pub submitted: u64,
    /// Mean slowdown of the degradation soak.
    pub mean_slowdown: f64,
    /// The error surfaced by the injected twin-worker panic.
    pub twin_panic: String,
}

/// Storm scale from the study config: full runs sweep 4 000 FCFS jobs
/// per cell, `--fast` (and the tests) proportionally fewer.
fn storm_jobs(cfg: &StudyConfig) -> u64 {
    (cfg.fcfs_jobs / 10).clamp(1_000, 4_000)
}

/// Serve-leg scale: how many jobs stream through each service run.
fn serve_jobs(cfg: &StudyConfig) -> usize {
    (cfg.fcfs_jobs / 10).clamp(200, 600) as usize
}

/// The storm's own tiny table: 5 benchmarks on short-window smt4, built
/// fresh so the leg never waits on the full study tables.
fn tiny_table(threads: usize) -> Result<PerfTable, String> {
    let machine = Machine::new(MachineConfig::smt4().with_windows(2_000, 6_000))
        .map_err(|e| e.to_string())?;
    let suite: Vec<BenchmarkProfile> = spec2006().into_iter().take(5).collect();
    PerfTable::build(&machine, &suite, threads).map_err(|e| e.to_string())
}

fn storm_sweep<'t>(table: &'t PerfTable, cfg: &StudyConfig) -> SweepBuilder<'t> {
    Session::sweep()
        .table(table)
        .workloads(enumerate_workloads(5, 3)) // 10 mixes
        .policies(POLICIES)
        .fcfs_jobs(storm_jobs(cfg))
        .seed(cfg.seed)
        .threads(cfg.threads)
}

/// Bitwise parity between the storm's merged report and the reference.
fn parity(distributed: &SweepReport, reference: &SweepReport) -> bool {
    if distributed != reference {
        return false;
    }
    distributed.rows.iter().zip(&reference.rows).all(|(d, r)| {
        d.workload == r.workload
            && d.report
                .rows
                .iter()
                .zip(&r.report.rows)
                .all(|(dp, rp)| dp.throughput.to_bits() == rp.throughput.to_bits())
    })
}

/// Runs the distributed fault storm; fills the storm fields of `out`.
fn run_storm(cfg: &StudyConfig, out: &mut ChaosStudy) -> Result<(), String> {
    let table = tiny_table(cfg.threads)?;
    let reference = storm_sweep(&table, cfg).run().map_err(|e| e.to_string())?;

    let dist_cfg = DistConfig {
        chunk_size: 1, // 10 chunks: every fault lands on a small blast radius
        retry_budget: 8,
        recv_timeout: Duration::from_secs(3),
        hedge: true,
        quarantine_limit: 16,
        ..DistConfig::default()
    };
    let coordinator =
        Coordinator::from_sweep(storm_sweep(&table, cfg), dist_cfg).map_err(|e| e.to_string())?;
    out.workloads = reference.len();
    out.chunks = coordinator.chunk_count();

    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind storm listener: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();

    // Worker-side plans: a crasher, a hanger, a worker whose answers
    // get duplicated, and a clean worker (the corruption casualty — its
    // faults live on the coordinator end). All seeded off the study
    // seed. Workers connect and are accepted one at a time so the
    // coordinator-end plans line up with the worker-side ones even
    // though TCP accept order is otherwise scheduler-dependent.
    let worker_plans = [
        ChaosPlan {
            seed: cfg.seed ^ 0x01,
            ..ChaosPlan::crash_after(CRASH_AFTER_FRAMES)
        },
        ChaosPlan {
            seed: cfg.seed ^ 0x02,
            ..ChaosPlan::hang_after(HANG_AFTER_FRAMES)
        },
        ChaosPlan {
            seed: cfg.seed ^ 0x03,
            duplicate: DUPLICATE_P,
            ..ChaosPlan::default()
        },
        ChaosPlan::default(),
    ];
    let per_worker_threads = (cfg.threads / STORM_WORKERS).max(1);
    let mut stats: Vec<Arc<Mutex<ChaosStats>>> = Vec::new();
    let mut fleet = Vec::new();
    let mut ends = Vec::with_capacity(STORM_WORKERS);
    for (i, plan) in worker_plans.into_iter().enumerate() {
        let stream =
            TcpStream::connect(addr.as_str()).map_err(|e| format!("worker connect: {e}"))?;
        // A generous read timeout: the fault triggers themselves return
        // immediately, this only guards against a wedged coordinator.
        let transport = TcpTransport::from_stream(stream, Duration::from_secs(10))
            .map_err(|e| e.to_string())?;
        let chaotic = ChaosTransport::new(transport, plan);
        stats.push(chaotic.stats_handle());
        let worker_cfg = WorkerConfig {
            threads: per_worker_threads,
            cache: None,
        };
        fleet.push(std::thread::spawn(move || run_worker(chaotic, &worker_cfg)));

        // The matching coordinator end: seeded delays everywhere, plus
        // total receive corruption on the last (sacrificial) connection.
        let (accepted, _) = listener
            .accept()
            .map_err(|e| format!("storm accept: {e}"))?;
        let transport = TcpTransport::from_stream(accepted, dist_cfg_recv_timeout())
            .map_err(|e| e.to_string())?;
        let corrupt = if i == STORM_WORKERS - 1 {
            CORRUPT_P
        } else {
            0.0
        };
        let chaotic = ChaosTransport::new(
            transport,
            ChaosPlan {
                seed: cfg.seed ^ (0x10 + i as u64),
                delay: DELAY_P,
                corrupt,
                ..ChaosPlan::default()
            },
        );
        stats.push(chaotic.stats_handle());
        ends.push(chaotic);
    }

    let t0 = Instant::now();
    let outcome = coordinator
        .run(ends)
        .map_err(|e| format!("storm sweep failed: {e}"))?;
    out.storm_wall = t0.elapsed();
    for handle in fleet {
        // Victims exit with Disconnected/Timeout by design; a panic is
        // the only thing that may not happen.
        let _ = handle.join().map_err(|_| "storm worker panicked")?;
    }

    if !parity(&outcome.report, &reference) {
        return Err("storm sweep diverged from the single-process run".into());
    }
    if out.storm_wall > STORM_WALL_BOUND {
        return Err(format!(
            "storm took {:.1?}, past the {STORM_WALL_BOUND:?} bound",
            out.storm_wall
        ));
    }

    for handle in &stats {
        let snapshot = handle
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        out.faults.absorb(&snapshot);
    }
    out.jobs = storm_jobs(cfg);
    out.requeues = outcome.requeues;
    out.hedges = outcome.hedges;
    out.duplicates_discarded = outcome.duplicates;
    out.strikes = outcome.strikes;
    Ok(())
}

/// The coordinator-side socket read timeout: above the DistConfig recv
/// timeout so the deadline logic, not the OS, decides a worker is dead.
fn dist_cfg_recv_timeout() -> Duration {
    Duration::from_secs(5)
}

/// Ground truth for the serve legs: real symbiosis on a 4-context chip.
fn service_truth() -> AnalyticModel<impl Fn(&[u32], usize) -> f64> {
    AnalyticModel::new(4, 4, |counts: &[u32], ty| {
        let distinct = counts.iter().filter(|&&c| c > 0).count() as f64;
        let load: u32 = counts.iter().sum();
        (0.7 + 0.1 * ty as f64) * (1.0 + 0.22 * (distinct - 1.0))
            / (1.0 + 0.38 * (load as f64 - 1.0))
    })
}

/// The *wrong* machine the chaos twin was trained on: symbiosis
/// inverted (heterogeneity hurts) and contention overstated. A model
/// seeded here prices the real machine badly until live refits fix it.
fn stale_truth() -> AnalyticModel<impl Fn(&[u32], usize) -> f64> {
    AnalyticModel::new(4, 4, |counts: &[u32], ty| {
        let distinct = counts.iter().filter(|&&c| c > 0).count() as f64;
        let load: u32 = counts.iter().sum();
        (0.7 + 0.1 * ty as f64) * (1.0 - 0.15 * (distinct - 1.0))
            / (1.0 + 0.9 * (load as f64 - 1.0))
    })
}

/// Fits a twin seed from solo and pair measurements of `from`.
fn seed_model(from: &dyn RateModel) -> Result<PredictedModel, String> {
    let n = from.num_types();
    let samples: Vec<RateSample> = (1..=2)
        .flat_map(|s| CoscheduleIter::new(n, s))
        .map(|c| RateSample {
            counts: c.counts().to_vec(),
            rates: (0..n).map(|ty| from.total_rate(c.counts(), ty)).collect(),
        })
        .collect();
    PredictedModel::fit(n, from.contexts(), samples, Box::new(InterferenceFitter))
        .map_err(|e| e.to_string())
}

fn serve_base_cfg(cfg: &StudyConfig) -> ServeConfig {
    ServeConfig {
        arrival_rate: 2.5,
        jobs: serve_jobs(cfg),
        seed: cfg.seed,
        queue_capacity: 256,
        batch: 40,
        probes: 3,
        background_twin: true,
        breaker: None,
        twin_panic_at_batch: None,
    }
}

fn run_serve_leg(cfg: &ServeConfig, truth: &dyn RateModel) -> Result<ServeReport, String> {
    let stale = stale_truth();
    run_serve(
        truth,
        seed_model(&stale)?,
        Box::new(BeamPlacer::new(6)),
        cfg,
    )
    .map_err(|e| e.to_string())
}

/// Runs the degradation soak: calibrate thresholds from a breaker-free
/// run of the same seeded stream, then prove the breaker trips on the
/// stale model and recovers once the twin has refitted on live data.
fn run_degradation(cfg: &StudyConfig, out: &mut ChaosStudy) -> Result<(), String> {
    let truth = service_truth();
    let base = serve_base_cfg(cfg);
    out.serve_jobs = base.jobs;

    let calibration = run_serve_leg(&base, &truth)?;
    let first = calibration
        .refits
        .first()
        .ok_or("calibration run never refitted")?
        .fit_q90;
    let last = calibration
        .refits
        .last()
        .ok_or("calibration run never refitted")?
        .fit_q90;
    if last >= first {
        return Err(format!(
            "the twin did not improve on the stale seed (fit_q90 {first} -> {last})"
        ));
    }
    // Trip just under the stale model's opening health so generation 1
    // opens the breaker; recover at the geometric mean of the endpoints
    // so a converging twin closes it again with real hysteresis margin.
    out.q90_first = first;
    out.q90_last = last;
    out.trip_q90 = first * 0.95;
    out.recover_q90 = (out.trip_q90 * last).sqrt().min(out.trip_q90);

    let soaked = run_serve_leg(
        &ServeConfig {
            breaker: Some(BreakerConfig {
                trip_q90: out.trip_q90,
                recover_q90: out.recover_q90,
            }),
            ..base
        },
        &truth,
    )?;
    let report = soaked.breaker.ok_or("breaker report missing")?;
    out.trips = report.trips;
    out.recoveries = report.recoveries;
    out.fallback_calls = report.fallback_calls;
    out.trip_generation = report
        .events
        .iter()
        .find(|e| e.opened)
        .map_or(0, |e| e.generation);
    out.recover_generation = report
        .events
        .iter()
        .find(|e| !e.opened)
        .map_or(0, |e| e.generation);
    out.completed = soaked.completed;
    out.submitted = soaked.submitted;
    out.mean_slowdown = soaked.mean_slowdown;
    if out.trips == 0 {
        return Err("the breaker never tripped on the stale model".into());
    }
    if out.recoveries == 0 {
        return Err("the breaker never recovered after the twin refitted".into());
    }
    if soaked.completed != soaked.submitted {
        return Err(format!(
            "degradation soak lost jobs: {} submitted, {} completed",
            soaked.submitted, soaked.completed
        ));
    }
    Ok(())
}

/// Runs the twin-panic leg: the injected refit-worker panic must come
/// back as [`ServeError::Twin`], not a poisoned lock or a hang.
fn run_twin_panic(cfg: &StudyConfig, out: &mut ChaosStudy) -> Result<(), String> {
    let truth = service_truth();
    let panic_cfg = ServeConfig {
        twin_panic_at_batch: Some(1),
        ..serve_base_cfg(cfg)
    };
    let stale = stale_truth();
    match run_serve(
        &truth,
        seed_model(&stale)?,
        Box::new(BeamPlacer::new(6)),
        &panic_cfg,
    ) {
        Err(ServeError::Twin(e)) => {
            out.twin_panic = e.to_string();
            Ok(())
        }
        Err(other) => Err(format!("expected a twin error, got: {other}")),
        Ok(_) => Err("the injected twin panic must fail the run".into()),
    }
}

/// Runs all three chaos legs.
///
/// # Errors
///
/// Any leg failing its robustness contract (parity, wall bound, breaker
/// trip + recovery, clean panic surfacing) is an error, never a silent
/// artefact.
pub fn run(cfg: &StudyConfig) -> Result<ChaosStudy, String> {
    let mut out = ChaosStudy {
        workloads: 0,
        chunks: 0,
        jobs: 0,
        faults: FaultTally::default(),
        requeues: 0,
        hedges: 0,
        duplicates_discarded: 0,
        strikes: 0,
        storm_wall: Duration::ZERO,
        serve_jobs: 0,
        q90_first: 0.0,
        q90_last: 0.0,
        trip_q90: 0.0,
        recover_q90: 0.0,
        trips: 0,
        recoveries: 0,
        fallback_calls: 0,
        trip_generation: 0,
        recover_generation: 0,
        completed: 0,
        submitted: 0,
        mean_slowdown: 0.0,
        twin_panic: String::new(),
    };
    run_storm(cfg, &mut out)?;
    run_degradation(cfg, &mut out)?;
    run_twin_panic(cfg, &mut out)?;
    Ok(out)
}

impl fmt::Display for ChaosStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Beyond the paper — chaos layer: seeded fault injection across dist and serve"
        )?;
        writeln!(f, "\ndistributed fault storm:")?;
        writeln!(
            f,
            "  sweep              : {} workloads x {} policies in {} chunk(s), {} jobs/cell, {} TCP workers",
            self.workloads,
            POLICIES.len(),
            self.chunks,
            self.jobs,
            STORM_WORKERS
        )?;
        writeln!(
            f,
            "  injected (workers) : crash@{CRASH_AFTER_FRAMES} frames, hang@{HANG_AFTER_FRAMES} frames, duplicate p={DUPLICATE_P}"
        )?;
        writeln!(
            f,
            "  injected (coord)   : delay p={DELAY_P} everywhere; corrupt p={CORRUPT_P} on the sacrificial 4th connection"
        )?;
        writeln!(
            f,
            "  faults observed    : crashed={} hung={} drops={} duplicates={} delays={} corruptions={}",
            self.faults.crashed,
            self.faults.hung,
            self.faults.drops,
            self.faults.duplicates,
            self.faults.delays,
            self.faults.corruptions
        )?;
        writeln!(
            f,
            "  recovery           : requeues={} hedges={} duplicate-answers-discarded={} strikes={}",
            self.requeues, self.hedges, self.duplicates_discarded, self.strikes
        )?;
        writeln!(
            f,
            "  parity             : PASS — merged report bitwise-identical to Session::sweep()"
        )?;
        writeln!(
            f,
            "  wall               : {:.2?} (bound {:?})",
            self.storm_wall, STORM_WALL_BOUND
        )?;
        writeln!(f, "\nserve degradation soak ({} jobs):", self.serve_jobs)?;
        writeln!(
            f,
            "  twin health        : fit_q90 {:.3} (stale seed) -> {:.3} (converged, breaker-free run)",
            self.q90_first, self.q90_last
        )?;
        writeln!(
            f,
            "  breaker thresholds : trip >= {:.3}, recover <= {:.3}",
            self.trip_q90, self.recover_q90
        )?;
        writeln!(
            f,
            "  breaker            : trips={} (generation {}), recoveries={} (generation {}), fallback placements={}",
            self.trips,
            self.trip_generation,
            self.recoveries,
            self.recover_generation,
            self.fallback_calls
        )?;
        writeln!(
            f,
            "  conservation       : {} submitted, {} completed, mean slowdown {:.3}",
            self.submitted, self.completed, self.mean_slowdown
        )?;
        writeln!(f, "\ntwin worker panic:")?;
        writeln!(
            f,
            "  injected at refit batch 1 -> surfaced cleanly as: {}",
            self.twin_panic
        )?;
        write!(
            f,
            "\nEvery fault above is drawn from a seeded ChaosPlan; the storm, the\n\
             breaker trip/recovery and the panic all reproduce from the seed alone."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg() -> StudyConfig {
        let mut cfg = StudyConfig::fast();
        cfg.fcfs_jobs = 10_000; // 1 000 storm jobs/cell, 600 serve jobs
        cfg.threads = 4;
        cfg
    }

    /// The acceptance criterion in one piece: the storm holds parity
    /// under crash + hang + duplicate + corrupt faults, the breaker
    /// demonstrably trips and recovers, and the twin panic surfaces.
    #[test]
    fn chaos_legs_hold_their_robustness_contracts() {
        let res = run(&test_cfg()).unwrap();
        assert_eq!(res.faults.crashed, 1, "the crash trigger fired once");
        assert_eq!(res.faults.hung, 1, "the hang trigger fired once");
        assert!(res.faults.corruptions >= 1, "corruption was observed");
        // The crashed worker's held chunk comes back either as a requeue
        // (no one else had it) or as a hedge (an idle worker already did).
        assert!(
            res.requeues + res.hedges >= 1,
            "lost chunks were re-dispatched"
        );
        assert!(res.strikes >= 1, "corrupt frames drew strikes");
        assert!(res.trips >= 1, "the breaker tripped on the stale model");
        assert!(res.recoveries >= 1, "the breaker recovered after refits");
        assert!(res.fallback_calls > 0, "FCFS actually served while open");
        assert!(res.twin_panic.contains("panicked"));
        let text = res.to_string();
        assert!(text.contains("chaos layer"));
        assert!(text.contains("parity             : PASS"));
        assert!(text.contains("recoveries="));
    }
}
