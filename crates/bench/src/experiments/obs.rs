//! Beyond the paper: the observability registry check — an instrumented
//! sweep leg plus an instrumented serve leg, pretty-printing the
//! [`obs::MetricsSnapshot`] each report embeds.
//!
//! Every other experiment runs with instrumentation *disabled* (no
//! recorder installed, so every hook is a single relaxed atomic load).
//! This one installs a recorder around both legs and asserts the
//! embedding contract end-to-end:
//!
//! - the sweep leg's [`session::SweepReport::metrics`] carries exactly
//!   one `sweep.items` count per workload, per-item latency histograms,
//!   and the solver-internal counters (`lp.*` sweep counts,
//!   `fcfs.markov_solve` / `optimal.lp_solve` spans) recorded by worker
//!   threads through the re-installed pool context;
//! - the serve leg's [`serve::ServeReport::metrics`] carries the queue
//!   depth gauge, placement latency histogram, and twin refit metrics.
//!
//! With `--trace PATH` (or `SYMBIOSIS_TRACE`) the driver has already
//! installed a process-global recorder streaming JSONL; both legs then
//! report into *that* recorder, so the capture doubles as the obs-smoke
//! CI fixture validated by `paperbench validate-trace`.

use std::fmt;

use serve::{run_serve, PolicyPlacer, ServeConfig};
use session::Policy;
use symbiosis::{enumerate_workloads, RateModel};

use crate::experiments::n12_k8;
use crate::experiments::serve::{balanced_counts, seed_model, LOAD_FACTOR, SYNTH_TYPES};
use crate::study::StudyConfig;

/// Workload size of the sweep leg: keeps every rate table dense (165
/// coschedules) and every FCFS Markov chain tiny, so the leg is cheap
/// enough for CI while still driving the LP and Markov instrumentation.
pub const SWEEP_N: usize = 3;

/// Workloads the sweep leg evaluates (the first of
/// `enumerate_workloads(12, SWEEP_N)` in request order).
pub const SWEEP_WORKLOADS: usize = 8;

/// Jobs the serve leg streams — enough for queue-depth motion, sheds
/// under load, and several background twin refits.
pub const SERVE_JOBS: usize = 200;

/// Result of the observability check.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsStudy {
    /// Job types in the synthetic suite.
    pub types: usize,
    /// Hardware contexts.
    pub contexts: usize,
    /// Workloads the sweep leg evaluated.
    pub sweep_workloads: usize,
    /// Jobs the serve leg streamed.
    pub serve_jobs: usize,
    /// True when a `--trace` / `SYMBIOSIS_TRACE` global recorder was
    /// already installed (the legs then stream JSONL into it).
    pub traced: bool,
    /// The sweep leg's embedded metric delta.
    pub sweep_metrics: obs::MetricsSnapshot,
    /// The serve leg's embedded metric delta.
    pub serve_metrics: obs::MetricsSnapshot,
}

/// Runs both instrumented legs and checks the embedding contract.
///
/// # Errors
///
/// Propagates table/sweep/serve failures, and reports a broken contract
/// (missing or miscounted embedded metrics) as an error — this
/// experiment is the registry's guard that instrumentation stays wired.
pub fn run(cfg: &StudyConfig) -> Result<ObsStudy, String> {
    // Reuse the driver's global recorder when `--trace` installed one;
    // otherwise run on a private recorder so the legs always measure.
    let external = obs::current();
    let traced = external.is_some();
    let rec = external.unwrap_or_default();
    let _guard = obs::install(&rec);

    let table = n12_k8::synthetic_table()?;

    // Sweep leg: a small fixed slice so the runtime stays CI-friendly
    // regardless of --fast/--full. FCFS-MARKOV (not the event sim)
    // keeps the stationary-solver instrumentation in the picture.
    let mut workloads = enumerate_workloads(n12_k8::SUITE, SWEEP_N);
    workloads.truncate(SWEEP_WORKLOADS);
    let sweep = cfg.run_sweep(
        cfg.sweep(&table, workloads)
            .policies([Policy::Optimal, Policy::FcfsMarkov]),
    )?;
    let items = sweep.metrics.counters.get("sweep.items").copied();
    if items != Some(sweep.len() as u64) {
        return Err(format!(
            "sweep leg embedded {items:?} sweep.items for {} rows — instrumentation unwired?",
            sweep.len()
        ));
    }

    // Serve leg: the online service on the SYNTH_TYPES-restricted truth,
    // greedy placer, background twin — the serve experiment's scenario
    // at a fraction of its job count.
    let types: Vec<usize> = (0..SYNTH_TYPES).collect();
    let truth = table.workload_view(&types).map_err(|e| e.to_string())?;
    let (n, k) = (truth.num_types(), truth.contexts());
    let capacity = truth.instantaneous_throughput(&balanced_counts(n, k));
    let serve_cfg = ServeConfig {
        arrival_rate: LOAD_FACTOR * capacity,
        jobs: SERVE_JOBS,
        seed: cfg.seed,
        batch: 50,
        background_twin: true,
        ..ServeConfig::default()
    };
    let report = run_serve(
        &truth,
        seed_model(&truth)?,
        Box::new(PolicyPlacer::greedy()),
        &serve_cfg,
    )
    .map_err(|e| e.to_string())?;
    if !report.metrics.gauges.contains_key("serve.queue_depth")
        || !report.metrics.histograms.contains_key("serve.place_us")
    {
        return Err(format!(
            "serve leg embedded no queue/placement metrics — instrumentation unwired? got:\n{}",
            report.metrics
        ));
    }

    Ok(ObsStudy {
        types: n12_k8::SUITE,
        contexts: n12_k8::CONTEXTS,
        sweep_workloads: sweep.len(),
        serve_jobs: SERVE_JOBS,
        traced,
        sweep_metrics: sweep.metrics,
        serve_metrics: report.metrics,
    })
}

impl fmt::Display for ObsStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Observability check: instrumented sweep + serve legs on the synthetic \
             N = {} / K = {} machine",
            self.types, self.contexts
        )?;
        writeln!(
            f,
            "trace stream: {}\n",
            if self.traced {
                "active (--trace / SYMBIOSIS_TRACE)"
            } else {
                "inactive (pass --trace PATH to capture JSONL)"
            }
        )?;
        writeln!(
            f,
            "sweep leg — {} workload(s) of size {SWEEP_N}, OPTIMAL + FCFS-MARKOV:",
            self.sweep_workloads
        )?;
        write!(f, "{}", self.sweep_metrics)?;
        writeln!(
            f,
            "\nserve leg — {} job(s), GREEDY placer, background digital twin:",
            self.serve_jobs
        )?;
        write!(f, "{}", self.serve_metrics)?;
        writeln!(
            f,
            "\nEvery counter/gauge/histogram above was recorded by production code\n\
             paths; without an installed recorder each site costs one relaxed\n\
             atomic load (see the bench crate's BENCH_session.json delta)."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_legs_embed_their_instrumentation() {
        let res = run(&StudyConfig::fast()).unwrap();
        assert!(!res.traced, "tests install no global trace recorder");
        assert_eq!(res.sweep_workloads, SWEEP_WORKLOADS);

        // Sweep leg: per-item accounting plus solver internals recorded
        // from pool worker threads.
        let sm = &res.sweep_metrics;
        assert_eq!(sm.counters["sweep.items"], SWEEP_WORKLOADS as u64);
        assert_eq!(
            sm.histograms["sweep.item_us"].count,
            SWEEP_WORKLOADS as u64
        );
        assert!(
            sm.histograms.contains_key("optimal.lp_solve"),
            "missing LP span: {sm}"
        );
        assert!(
            sm.histograms.contains_key("fcfs.markov_solve"),
            "missing Markov span: {sm}"
        );
        assert!(
            sm.gauges.contains_key("sweep.pool_active"),
            "missing pool gauge: {sm}"
        );

        // Serve leg: dispatcher and twin instrumentation.
        let vm = &res.serve_metrics;
        assert!(vm.gauges["serve.queue_depth"].max >= 1);
        assert!(vm.histograms["serve.place_us"].count >= 1);
        assert!(vm.counters.get("twin.refits").copied().unwrap_or(0) >= 1);
        assert!(vm.histograms.contains_key("serve.run"), "missing span: {vm}");
    }

    #[test]
    fn display_prints_both_snapshots() {
        let res = run(&StudyConfig::fast()).unwrap();
        let text = format!("{res}");
        assert!(text.contains("sweep leg"), "{text}");
        assert!(text.contains("serve leg"), "{text}");
        assert!(text.contains("sweep.items"), "{text}");
        assert!(text.contains("serve.queue_depth"), "{text}");
    }
}
