//! Beyond the paper: the *online* scheduling service with a live
//! digital-twin model loop ([`serve`] crate), run as a registry
//! experiment.
//!
//! The paper's schedulers are evaluated offline: a full rate table in,
//! a throughput or latency figure out. This experiment closes the loop
//! the way a datacentre node would have to: jobs arrive over time, the
//! dispatcher prices candidate coschedules through a *predicted* model
//! that starts out knowing only the cheap small co-runs, and every
//! completed coschedule feeds a measurement back into the twin
//! ([`serve::TwinLoop`]), which refits in the background and steers
//! active probes toward its worst residuals.
//!
//! Three placers compete on the same seeded arrival stream — the FCFS
//! placer (no symbiosis), the greedy MAXIT placer (Section VI
//! reused online) and a bounded beam search — and are bracketed by the
//! offline OPTIMAL / FCFS-event saturated bounds from a [`session`]
//! `Session` over the same ground truth. By default the ground truth is
//! the [`crate::experiments::n12_k8`] synthetic table restricted to
//! [`SYNTH_TYPES`] types; with `--simulated-k8` it is the *really
//! simulated* smt8 table ([`crate::study::StudyConfig::build_k8_table`]).

use std::fmt;

use predict::{InterferenceFitter, PredictedModel, RateSample};
use serve::{run_serve, BeamPlacer, Placer, PolicyPlacer, ServeConfig};
use session::Policy;
use symbiosis::{CoscheduleIter, RateModel};

use crate::experiments::n12_k8;
use crate::pct;
use crate::study::StudyConfig;

/// Job types the synthetic ground truth is restricted to (of the
/// 12-benchmark [`n12_k8`] suite): keeps every twin refit's
/// full-coschedule error scan at `C(15, 8)` = 6 435 combos.
pub const SYNTH_TYPES: usize = 8;

/// Beam width of the beam-search placer.
pub const BEAM_WIDTH: usize = 8;

/// Fraction of the balanced-coschedule completion rate the Poisson
/// arrival stream loads the machine with. The balanced coschedule is
/// near-optimal, so realized FCFS-mix service capacity sits well below
/// it: 0.80 puts the symbiosis-blind placer near its saturation point
/// while symbiosis-aware placement keeps real headroom — the queue is
/// deep enough that coschedule choice matters, but every placer stays
/// stable.
pub const LOAD_FACTOR: f64 = 0.80;

/// One placer's scorecard over the shared arrival stream.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerRow {
    /// Placer name as reported by the dispatcher.
    pub placer: String,
    /// Completed jobs per unit virtual time.
    pub jobs_per_time: f64,
    /// Work completed per unit virtual time.
    pub throughput: f64,
    /// Mean slowdown (turnaround over solo execution time).
    pub mean_slowdown: f64,
    /// Jobs shed at the full queue.
    pub rejected: u64,
    /// Twin refits performed during the run.
    pub refits: usize,
    /// Model error vs truth before the first refit.
    pub error_start: f64,
    /// Model error vs truth after the last refit.
    pub error_end: f64,
}

/// Result of the online-service experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStudy {
    /// Job types in the scenario.
    pub types: usize,
    /// Hardware contexts.
    pub contexts: usize,
    /// True when the ground truth is the really-simulated smt8 table.
    pub simulated: bool,
    /// Jobs generated per run.
    pub jobs: usize,
    /// Poisson arrival rate the stream was generated with.
    pub arrival_rate: f64,
    /// Seed shared by every placer run.
    pub seed: u64,
    /// One row per placer, in comparison order (FCFS first, beam last).
    pub rows: Vec<PlacerRow>,
    /// Offline saturated OPTIMAL throughput over the same truth.
    pub offline_optimal: f64,
    /// Offline saturated FCFS-event throughput over the same truth.
    pub offline_fcfs: f64,
}

/// Derives the service scale from the study config: full runs stream
/// 4 000 jobs, `--fast` (and the tests) 400.
pub fn jobs_for(cfg: &StudyConfig) -> usize {
    (cfg.fcfs_jobs / 10).clamp(200, 4_000) as usize
}

/// Measures `counts` against `truth` in the per-type total-rate
/// convention of [`RateSample`].
fn measure(truth: &dyn RateModel, counts: &[u32]) -> RateSample {
    RateSample {
        counts: counts.to_vec(),
        rates: (0..counts.len())
            .map(|ty| truth.total_rate(counts, ty))
            .collect(),
    }
}

/// Fits the twin's starting model from the cheap measurements only:
/// every coschedule of size 1 and 2 (solos and pairs). Shared with the
/// `obs` experiment's serve leg.
pub(crate) fn seed_model(truth: &dyn RateModel) -> Result<PredictedModel, String> {
    let n = truth.num_types();
    let samples: Vec<RateSample> = (1..=2)
        .flat_map(|s| CoscheduleIter::new(n, s))
        .map(|c| measure(truth, c.counts()))
        .collect();
    PredictedModel::fit(n, truth.contexts(), samples, Box::new(InterferenceFitter))
        .map_err(|e| e.to_string())
}

/// The balanced full coschedule (contexts split as evenly as possible
/// over the types) — the load-calibration reference point. Shared with
/// the `obs` experiment's serve leg.
pub(crate) fn balanced_counts(n: usize, k: usize) -> Vec<u32> {
    let mut counts = vec![(k / n) as u32; n];
    for slot in counts.iter_mut().take(k % n) {
        *slot += 1;
    }
    counts
}

/// Runs the full experiment: three placers over the shared stream plus
/// the offline session bounds.
///
/// # Errors
///
/// Propagates table/fit/serve/session failures as strings.
pub fn run(cfg: &StudyConfig) -> Result<ServeStudy, String> {
    let (table, types_n, simulated) = if cfg.simulated_k8 {
        let table = cfg.build_k8_table().map_err(|e| e.to_string())?;
        (table, StudyConfig::K8_SUITE.len(), true)
    } else {
        (n12_k8::synthetic_table()?, SYNTH_TYPES, false)
    };
    let types: Vec<usize> = (0..types_n).collect();
    let truth = table.workload_view(&types).map_err(|e| e.to_string())?;
    let truth_rates = table.workload_rates(&types).map_err(|e| e.to_string())?;

    let n = truth.num_types();
    let k = truth.contexts();
    // Load the machine at LOAD_FACTOR of the balanced-coschedule
    // completion rate (mean job size is 1 unit of work, so jobs per
    // time equals work per time).
    let balanced = balanced_counts(n, k);
    let capacity = truth.instantaneous_throughput(&balanced);
    let serve_cfg = ServeConfig {
        arrival_rate: LOAD_FACTOR * capacity,
        jobs: jobs_for(cfg),
        seed: cfg.seed,
        batch: 50,
        background_twin: true,
        ..ServeConfig::default()
    };

    let placers: Vec<Box<dyn Placer>> = vec![
        Box::new(PolicyPlacer::fcfs()),
        Box::new(PolicyPlacer::greedy()),
        Box::new(BeamPlacer::new(BEAM_WIDTH)),
    ];
    let mut rows = Vec::with_capacity(placers.len());
    for placer in placers {
        let report = run_serve(&truth, seed_model(&truth)?, placer, &serve_cfg)
            .map_err(|e| e.to_string())?;
        rows.push(PlacerRow {
            placer: report.placer.clone(),
            jobs_per_time: report.jobs_per_time,
            throughput: report.throughput,
            mean_slowdown: report.mean_slowdown,
            rejected: report.rejected,
            refits: report.refits.len(),
            error_start: report.errors.first().map_or(f64::NAN, |e| e.mean_abs_rel),
            error_end: report.errors.last().map_or(f64::NAN, |e| e.mean_abs_rel),
        });
    }

    // The offline brackets: saturated OPTIMAL and FCFS-event throughput
    // over the same ground truth, through the standard session surface.
    let offline = cfg
        .session()
        .rates(&truth_rates)
        .policies([Policy::Optimal, Policy::FcfsEvent])
        .run()
        .map_err(|e| e.to_string())?;

    Ok(ServeStudy {
        types: n,
        contexts: k,
        simulated,
        jobs: serve_cfg.jobs,
        arrival_rate: serve_cfg.arrival_rate,
        seed: cfg.seed,
        rows,
        offline_optimal: offline
            .throughput(Policy::Optimal)
            .ok_or_else(|| "no OPTIMAL row".to_string())?,
        offline_fcfs: offline
            .throughput(Policy::FcfsEvent)
            .ok_or_else(|| "no FCFS row".to_string())?,
    })
}

impl fmt::Display for ServeStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Online service: N = {} types on K = {} contexts ({} truth, digital twin refitting live)",
            self.types,
            self.contexts,
            if self.simulated {
                "really-simulated smt8"
            } else {
                "synthetic"
            }
        )?;
        writeln!(
            f,
            "{} jobs, Poisson arrival rate {:.3} ({}% of balanced capacity), seed {:#x}\n",
            self.jobs,
            self.arrival_rate,
            (100.0 * LOAD_FACTOR).round(),
            self.seed
        )?;
        writeln!(
            f,
            "{:<10} {:>10} {:>10} {:>14} {:>6} {:>7} {:>18}",
            "placer",
            "jobs/time",
            "work/time",
            "mean slowdown",
            "shed",
            "refits",
            "model err (start)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>10.4} {:>10.4} {:>14.3} {:>6} {:>7} {:>8} -> {:>6}",
                r.placer,
                r.jobs_per_time,
                r.throughput,
                r.mean_slowdown,
                r.rejected,
                r.refits,
                pct(r.error_start),
                pct(r.error_end)
            )?;
        }
        writeln!(
            f,
            "\noffline saturated bounds over the same truth: OPTIMAL {:.4}, FCFS-event {:.4} work/time",
            self.offline_optimal, self.offline_fcfs
        )?;
        writeln!(
            f,
            "\nEvery run replays the same seeded arrival stream; the twin starts from\n\
             solo + pair measurements only and refits on completed-coschedule\n\
             measurements plus residual-steered active probes."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> StudyConfig {
        let mut cfg = StudyConfig::fast();
        cfg.fcfs_jobs = 4_000; // 400 serve jobs
        cfg
    }

    /// The acceptance criterion: on the shipped scenario the beam-search
    /// placer beats the FCFS placer on mean slowdown.
    #[test]
    fn beam_search_beats_fcfs_on_mean_slowdown() {
        let res = run(&fast_cfg()).unwrap();
        assert_eq!(res.rows.len(), 3);
        let fcfs = &res.rows[0];
        let beam = &res.rows[2];
        assert_eq!(fcfs.placer, "FCFS");
        assert_eq!(beam.placer, "BEAM");
        assert!(
            beam.mean_slowdown < fcfs.mean_slowdown,
            "beam {} vs FCFS {}",
            beam.mean_slowdown,
            fcfs.mean_slowdown
        );
    }

    /// The whole study is deterministic from the config seed.
    #[test]
    fn study_is_deterministic_from_the_seed() {
        let cfg = fast_cfg();
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a, b);
    }

    /// Each run's twin learns: the error after the last refit is below
    /// the seed model's, and the online throughputs stay bracketed by
    /// plausibility bounds.
    #[test]
    fn twins_learn_and_reports_are_plausible() {
        let res = run(&fast_cfg()).unwrap();
        assert!(res.offline_optimal >= res.offline_fcfs * 0.99);
        for row in &res.rows {
            assert!(row.refits >= 2, "{} refit {} times", row.placer, row.refits);
            assert!(
                row.error_end < row.error_start,
                "{} error {} -> {}",
                row.placer,
                row.error_start,
                row.error_end
            );
            assert!(row.jobs_per_time > 0.0 && row.mean_slowdown >= 1.0 - 1e-9);
        }
    }
}
