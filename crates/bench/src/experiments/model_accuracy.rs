//! Beyond the paper: the first *simulated* (sampled + predicted)
//! N = 12 / K = 8 table.
//!
//! The paper predicts co-run performance from per-job profiles instead of
//! measuring every combination; this experiment makes that move on the
//! big-machine scenario the reproduction could previously only *synthesise*
//! ([`crate::experiments::n12_k8`]). A stratified seeded sample of at most
//! 10% of the 125 969-combo K = 8 sweep is "measured" (the deterministic
//! analytic machine stands in for the simulator at this scale — the point
//! is the budget, not the oracle), an interference model is fitted per
//! [`predict::Fitter`], and the fitted [`predict::PredictedModel`] is then
//! scored three ways against the fully measured reference:
//!
//! 1. **throughput error** over all 75 582 full coschedules (most never
//!    sampled);
//! 2. **OPTIMAL rank agreement** — Kendall tau between measured and
//!    predicted per-workload OPTIMAL throughputs, with the predicted leg
//!    running through `Session::sweep()` over the model's materialised
//!    predicted table; and
//! 3. the headline **N = 12 / K = 8 policy table** (OPTIMAL / WORST /
//!    FCFS-MARKOV), with the predicted column produced by a [`session`]
//!    `Session` consuming the [`predict::PredictedModel`] directly — the
//!    ROADMAP's "model-predicted rate sources" rung, end to end.

use std::fmt;

use predict::{
    samples_from_table, stratified_plan, BottleneckFitter, ErrorSummary, Fitter,
    InterferenceFitter, PredictedModel,
};
use session::Policy;
use symbiosis::enumerate_workloads;
use workloads::{PerfTable, WorkUnit};

use crate::experiments::n12_k8::{self, CONTEXTS, SUITE};
use crate::study::StudyConfig;
use crate::{kendall_tau, pct};

/// Combos actually measured: 12 000 of 125 969 (9.5%, within the ≤ 10%
/// acceptance budget).
pub const SAMPLE_BUDGET: usize = 12_000;

/// Job types per rank-agreement workload (the paper's N = 4 mixes).
pub const RANK_WORKLOAD_SIZE: usize = 4;

/// Measurement budget of the `--simulated-k8` leg: 300 of the 3 002
/// simulated combos (10.0%, same acceptance budget as the synthetic leg).
pub const SIMULATED_SAMPLE_BUDGET: usize = 300;

/// One fitter's scorecard.
#[derive(Debug, Clone, PartialEq)]
pub struct FitterRow {
    /// Fitter registry name.
    pub fitter: &'static str,
    /// Training samples (the measured subset).
    pub samples: usize,
    /// In-sample residual summary (fit quality on measured combos).
    pub fit: ErrorSummary,
    /// Predicted-vs-measured throughput error over every full coschedule.
    pub full: ErrorSummary,
    /// Kendall tau between measured and predicted per-workload OPTIMAL
    /// throughputs.
    pub rank_tau: f64,
}

/// One headline-policy comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// The policy evaluated on both rate sources.
    pub policy: Policy,
    /// Throughput under the fitted predicted model.
    pub predicted: f64,
    /// Throughput under the fully measured reference table.
    pub measured: f64,
}

/// The `--simulated-k8` leg: the predict-instead-of-measure move on the
/// *really simulated* smt8 table — train on a stratified ≤ 10% sample,
/// score against every simulated combo.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedAccuracy {
    /// Benchmarks in the simulated sub-suite.
    pub suite: usize,
    /// Training samples (the stratified ≤ 10% measurement plan, minus any
    /// combos the simulator window starved).
    pub train: usize,
    /// Simulated coschedules in the full table.
    pub total: usize,
    /// In-sample residual summary on the training combos.
    pub fit: ErrorSummary,
    /// Predicted-vs-simulated throughput error over every full
    /// K = 8 coschedule (the vast majority never trained on).
    pub full: ErrorSummary,
}

/// Result of the model-accuracy experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelAccuracy {
    /// Combos measured.
    pub budget: usize,
    /// Combos in the full enumeration.
    pub total: usize,
    /// Seed the sampling plan was drawn from.
    pub seed: u64,
    /// Per-fitter scorecards, in fitter order.
    pub rows: Vec<FitterRow>,
    /// Workloads behind the rank-agreement column.
    pub rank_workloads: usize,
    /// Fitter used for the headline table.
    pub headline_fitter: &'static str,
    /// The simulated (sampled + predicted) N = 12 / K = 8 policy table.
    pub headline: Vec<PolicyRow>,
    /// The really-simulated smt8 generalisation leg, when
    /// [`StudyConfig::simulated_k8`] is set.
    pub simulated: Option<SimulatedAccuracy>,
}

/// Runs the full experiment: both fitters, rank agreement, and the
/// headline table with OPTIMAL / WORST / FCFS-MARKOV.
///
/// # Errors
///
/// Propagates sampling/fit/analysis failures as strings.
pub fn run(cfg: &StudyConfig) -> Result<ModelAccuracy, String> {
    run_with(cfg, &[Policy::Worst, Policy::Optimal, Policy::FcfsMarkov])
}

/// [`run`] with an explicit headline policy list (tests use an LP-only
/// list: the 75 582-state Markov chain is a release-build affair).
///
/// # Errors
///
/// Propagates sampling/fit/analysis failures as strings.
pub fn run_with(cfg: &StudyConfig, headline: &[Policy]) -> Result<ModelAccuracy, String> {
    let err = |e: &dyn std::fmt::Display| e.to_string();

    // The fully measured reference: the analytic K = 8 machine, swept
    // exhaustively (what the sampled pipeline is trying to avoid needing).
    let measured = n12_k8::synthetic_table()?;
    let types: Vec<usize> = (0..SUITE).collect();
    let truth = measured.workload_rates(&types).map_err(|e| err(&e))?;

    // Measure only the stratified sample budget.
    let plan = stratified_plan(SUITE, CONTEXTS, SAMPLE_BUDGET, cfg.seed).map_err(|e| err(&e))?;
    debug_assert!(plan.fraction() <= 0.10, "acceptance budget is 10%");
    let names = n12_k8::suite_names();
    let sampled = PerfTable::synthetic_sampled(names.clone(), CONTEXTS, plan.indices(), |combo| {
        (0..combo.len())
            .map(|slot| n12_k8::slot_ipc(combo, slot))
            .collect()
    })
    .map_err(|e| err(&e))?;
    let samples = samples_from_table(&sampled, &types, WorkUnit::Weighted).map_err(|e| err(&e))?;

    // Rank-agreement leg: measured OPTIMAL landscape over N = 4 mixes.
    let workloads = cfg.sample_workloads(enumerate_workloads(SUITE, RANK_WORKLOAD_SIZE));
    let measured_sweep = cfg
        .sweep(&measured, workloads.clone())
        .policies([Policy::Optimal])
        .run()
        .map_err(|e| err(&e))?;
    let measured_optimal = measured_sweep.throughputs(Policy::Optimal);

    let fitters: Vec<Box<dyn Fitter>> =
        vec![Box::new(BottleneckFitter), Box::new(InterferenceFitter)];
    let mut rows = Vec::with_capacity(fitters.len());
    let mut headline_rows = Vec::new();
    let headline_fitter = InterferenceFitter.name();
    for fitter in fitters {
        let model =
            PredictedModel::fit(SUITE, CONTEXTS, samples.clone(), fitter).map_err(|e| err(&e))?;

        // Predicted OPTIMAL landscape through the sweep surface: the
        // predicted table is a rate source like any other.
        let predicted_table = model.to_table(names.clone()).map_err(|e| err(&e))?;
        let predicted_sweep = cfg
            .sweep(&predicted_table, workloads.clone())
            .unit(WorkUnit::Plain)
            .policies([Policy::Optimal])
            .run()
            .map_err(|e| err(&e))?;
        let tau = kendall_tau(
            &measured_optimal,
            &predicted_sweep.throughputs(Policy::Optimal),
        )
        .ok_or_else(|| "degenerate rank-agreement sample".to_string())?;

        if model.fitter_name() == headline_fitter {
            // The headline N = 12 leg: a Session consuming the predicted
            // model directly, against the same Session on measured rates.
            let predicted_report = cfg
                .session()
                .rates(&model)
                .policies(headline.iter().copied())
                .run()
                .map_err(|e| err(&e))?;
            let measured_report = cfg
                .session()
                .rates(&truth)
                .policies(headline.iter().copied())
                .run()
                .map_err(|e| err(&e))?;
            headline_rows = headline
                .iter()
                .map(|&policy| PolicyRow {
                    policy,
                    predicted: predicted_report.throughput(policy).expect("row present"),
                    measured: measured_report.throughput(policy).expect("row present"),
                })
                .collect();
        }

        rows.push(FitterRow {
            fitter: model.fitter_name(),
            samples: model.samples().len(),
            fit: model.fit_error(),
            full: model.error_against(&truth),
            rank_tau: tau,
        });
    }

    let simulated = if cfg.simulated_k8 {
        Some(simulated_leg(cfg)?)
    } else {
        None
    };

    Ok(ModelAccuracy {
        budget: plan.len(),
        total: plan.total(),
        seed: cfg.seed,
        rows,
        rank_workloads: workloads.len(),
        headline_fitter,
        headline: headline_rows,
        simulated,
    })
}

/// The `--simulated-k8` leg: fit the interference model on a stratified
/// ≤ 10% sample ([`SIMULATED_SAMPLE_BUDGET`]) of the *really simulated*
/// smt8 table and score it against every simulated combo — the same
/// predict-instead-of-measure move as the synthetic pipeline, but with a
/// cycle-level simulator as the oracle.
fn simulated_leg(cfg: &StudyConfig) -> Result<SimulatedAccuracy, String> {
    let err = |e: &dyn std::fmt::Display| e.to_string();
    let suite = StudyConfig::K8_SUITE.len();
    let table = cfg.build_k8_table().map_err(|e| err(&e))?;
    let contexts = table.contexts();
    let types: Vec<usize> = (0..suite).collect();
    let truth = table.workload_rates(&types).map_err(|e| err(&e))?;
    let all = samples_from_table(&table, &types, WorkUnit::Weighted).map_err(|e| err(&e))?;
    let total = all.len();

    // The stratified plan indexes the size-major coschedule enumeration;
    // map its indices to count vectors (recorded-combo order is sorted by
    // combo, not by enumeration position).
    let plan =
        stratified_plan(suite, contexts, SIMULATED_SAMPLE_BUDGET, cfg.seed).map_err(|e| err(&e))?;
    debug_assert!(plan.fraction() <= 0.10, "acceptance budget is 10%");
    let picked: std::collections::HashSet<usize> = plan.indices().iter().copied().collect();
    let mut selected: std::collections::HashSet<Vec<u32>> =
        std::collections::HashSet::with_capacity(picked.len());
    let mut idx = 0usize;
    for size in 1..=contexts {
        for combo in symbiosis::CoscheduleIter::new(suite, size) {
            if picked.contains(&idx) {
                selected.insert(combo.counts().to_vec());
            }
            idx += 1;
        }
    }

    // Drop the occasional sample where a thread starved outright within
    // the simulator window (a present type with rate 0 is unfittable and,
    // at paper-scale windows, unobserved).
    let train: Vec<_> = all
        .into_iter()
        .filter(|s| selected.contains(&s.counts))
        .filter(|s| {
            s.counts
                .iter()
                .zip(&s.rates)
                .all(|(&c, &r)| c == 0 || r > 0.0)
        })
        .collect();
    let model = PredictedModel::fit(suite, contexts, train, Box::new(InterferenceFitter))
        .map_err(|e| err(&e))?;
    Ok(SimulatedAccuracy {
        suite,
        train: model.samples().len(),
        total,
        fit: model.fit_error(),
        full: model.error_against(&truth),
    })
}

impl fmt::Display for ModelAccuracy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Model accuracy: sampled + predicted rates for N = {SUITE} on K = {CONTEXTS} contexts"
        )?;
        writeln!(
            f,
            "measured {} of {} combos ({:.1}%, stratified by size, seed {:#x})\n",
            self.budget,
            self.total,
            100.0 * self.budget as f64 / self.total as f64,
            self.seed
        )?;
        writeln!(
            f,
            "{:<18} {:>8} {:>12} {:>12} {:>10} {:>10}",
            "fitter", "samples", "fit MAE", "table MAE", "p95", "rank tau"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<18} {:>8} {:>11.2}% {:>11.2}% {:>9.2}% {:>+10.2}",
                r.fitter,
                r.samples,
                100.0 * r.fit.mean_abs_rel,
                100.0 * r.full.mean_abs_rel,
                100.0 * r.full.p95_abs_rel,
                r.rank_tau
            )?;
        }
        writeln!(
            f,
            "(table MAE/p95: throughput error over all {} full coschedules; \
             rank tau over {} N = {RANK_WORKLOAD_SIZE} workloads)",
            self.rows
                .first()
                .map(|r| r.full.coschedules)
                .unwrap_or_default(),
            self.rank_workloads
        )?;
        if !self.headline.is_empty() {
            writeln!(
                f,
                "\nSimulated (sampled + predicted) N = {SUITE} / K = {CONTEXTS} table \
                 — {} fitter:",
                self.headline_fitter
            )?;
            writeln!(
                f,
                "{:<14} {:>12} {:>12} {:>9}",
                "policy", "predicted", "measured", "error"
            )?;
            for row in &self.headline {
                writeln!(
                    f,
                    "{:<14} {:>12.4} {:>12.4} {:>9}",
                    row.policy.name(),
                    row.predicted,
                    row.measured,
                    pct(row.predicted / row.measured - 1.0)
                )?;
            }
        }
        if let Some(sim) = &self.simulated {
            writeln!(
                f,
                "\nReally-simulated smt8 leg ({} benchmarks, trained on {} of {} \
                 simulated combos, stratified):",
                sim.suite, sim.train, sim.total
            )?;
            writeln!(
                f,
                "fit MAE {:.2}%, full-coschedule MAE {:.2}% (p95 {:.2}%) over {} combos",
                100.0 * sim.fit.mean_abs_rel,
                100.0 * sim.full.mean_abs_rel,
                100.0 * sim.full.p95_abs_rel,
                sim.full.coschedules
            )?;
        }
        writeln!(
            f,
            "\nThe ≤ 10% budget replaces {} measurements with model predictions —\n\
             the paper's predict-instead-of-measure move at the scale the\n\
             exhaustive sweep cannot reach.",
            self.total - self.budget
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole pipeline at debug-test scale: LP-only headline (the
    /// 75 582-state Markov chain runs in the release binaries and CI),
    /// reduced rank-agreement sample.
    #[test]
    fn sampled_predicted_pipeline_scores_both_fitters() {
        let mut cfg = StudyConfig::fast();
        cfg.sample = Some(4);
        let res = run_with(&cfg, &[Policy::Optimal]).unwrap();
        assert!(res.simulated.is_none(), "simulated leg is opt-in");

        // Acceptance: the budget stays within 10% of the full sweep.
        assert_eq!(res.budget, SAMPLE_BUDGET);
        assert_eq!(res.total, 125_969);
        assert!((res.budget as f64) <= 0.10 * res.total as f64);

        assert_eq!(res.rows.len(), 2);
        assert_eq!(res.rows[0].fitter, "bottleneck");
        assert_eq!(res.rows[1].fitter, "interference-lsq");
        for row in &res.rows {
            assert_eq!(row.samples, SAMPLE_BUDGET);
            assert_eq!(row.full.coschedules, 75_582);
            assert!(row.full.mean_abs_rel.is_finite() && row.full.mean_abs_rel >= 0.0);
            assert!((-1.0..=1.0).contains(&row.rank_tau));
        }
        // The richer model must beat the rigid bottleneck baseline on the
        // full-table error (the generator is not a pure bottleneck).
        assert!(
            res.rows[1].full.mean_abs_rel < res.rows[0].full.mean_abs_rel,
            "interference {} vs bottleneck {}",
            res.rows[1].full.mean_abs_rel,
            res.rows[0].full.mean_abs_rel
        );
        // The fitted model tracks the measured machine usefully: single-digit
        // mean error and a strongly positive workload ranking agreement.
        assert!(
            res.rows[1].full.mean_abs_rel < 0.10,
            "mean err {}",
            res.rows[1].full.mean_abs_rel
        );
        assert!(res.rows[1].rank_tau > 0.0, "tau {}", res.rows[1].rank_tau);

        // Headline table: predicted vs measured OPTIMAL at N = 12.
        assert_eq!(res.headline.len(), 1);
        let h = &res.headline[0];
        assert_eq!(h.policy, Policy::Optimal);
        assert!(h.predicted > 0.0 && h.measured > 0.0);
        assert!(
            (h.predicted / h.measured - 1.0).abs() < 0.15,
            "predicted {} vs measured {}",
            h.predicted,
            h.measured
        );
    }

    /// The `--simulated-k8` leg: trained on a stratified 10% of the
    /// really-simulated table, scored over every simulated combo.
    #[test]
    fn simulated_k8_leg_fits_a_stratified_sample() {
        let mut cfg = StudyConfig::fast();
        cfg.warmup_cycles = 500;
        cfg.measure_cycles = 1_500;
        cfg.simulated_k8 = true;
        let res = simulated_leg(&cfg).unwrap();
        assert_eq!(res.suite, 6);
        assert_eq!(res.total, 3_002);
        // The 300-combo budget, minus any combos starved by the tiny test
        // windows.
        assert!(
            (250..=SIMULATED_SAMPLE_BUDGET).contains(&res.train),
            "train {} of {SIMULATED_SAMPLE_BUDGET}",
            res.train
        );
        assert!(res.fit.mean_abs_rel.is_finite() && res.fit.mean_abs_rel >= 0.0);
        assert!(res.full.mean_abs_rel.is_finite());
        // Tiny windows are noisy; the stratified fit must still land in a
        // usable band on the real simulated machine (paper-scale windows
        // land far tighter).
        assert!(res.full.mean_abs_rel < 0.5, "MAE {}", res.full.mean_abs_rel);
    }
}
