//! Section V-D counterfactual: equalising per-job rates inside the fully
//! heterogeneous coschedule (same instantaneous throughput) lets the
//! optimal scheduler select it nearly all the time on the SMT config.

use std::fmt;

use session::Policy;
use symbiosis::{rebalanced_heterogeneous, FairnessExperiment, WorkloadRates};

use crate::study::{Chip, Study, StudyConfig};
use crate::{mean, pct};

/// Averaged before/after numbers for the counterfactual.
#[derive(Debug, Clone, PartialEq)]
pub struct Fairness {
    /// Mean optimal throughput gain from rebalancing.
    pub optimal_gain: f64,
    /// Mean time fraction of the heterogeneous coschedule before.
    pub fraction_before: f64,
    /// Mean time fraction after.
    pub fraction_after: f64,
    /// Mean |relative FCFS change|.
    pub fcfs_shift: f64,
    /// Mean |relative worst-scheduler change|.
    pub worst_shift: f64,
    /// Workloads analysed.
    pub workloads: usize,
}

/// The Section V-D counterfactual expressed as two `Session` runs: the
/// original and the rebalanced table each evaluated under the optimal,
/// worst and event-FCFS policies. Produces exactly the numbers the
/// pre-`Session` `fairness_experiment` free function produced — the parity
/// suite pins that equivalence bitwise.
///
/// # Errors
///
/// Propagates session/analysis failures as strings; requires `N == K` so
/// the fully heterogeneous coschedule exists.
pub fn counterfactual(
    rates: &WorkloadRates,
    config: &StudyConfig,
) -> Result<FairnessExperiment, String> {
    let (si, rebalanced) = rebalanced_heterogeneous(rates).map_err(|e| e.to_string())?;

    let evaluate = |table: &WorkloadRates| {
        config
            .session()
            .rates(table)
            .policies([Policy::Optimal, Policy::Worst, Policy::FcfsEvent])
            .run()
            .map_err(|e| e.to_string())
    };
    let before = evaluate(rates)?;
    let after = evaluate(&rebalanced)?;
    let fraction = |report: &session::SessionReport| {
        report
            .row(Policy::Optimal)
            .expect("requested")
            .fractions
            .as_ref()
            .expect("LP rows carry fractions")[si]
    };
    Ok(FairnessExperiment {
        coschedule: si,
        optimal_before: before.throughput(Policy::Optimal).expect("requested"),
        optimal_after: after.throughput(Policy::Optimal).expect("requested"),
        fraction_before: fraction(&before),
        fraction_after: fraction(&after),
        fcfs_before: before.throughput(Policy::FcfsEvent).expect("requested"),
        fcfs_after: after.throughput(Policy::FcfsEvent).expect("requested"),
        worst_before: before.throughput(Policy::Worst).expect("requested"),
        worst_after: after.throughput(Policy::Worst).expect("requested"),
    })
}

/// Runs the fairness counterfactual over the study workloads (SMT): a
/// [`Study::sweep`] fans [`counterfactual`] out over the shared worker
/// pool (the rebalanced-table leg is not a policy row, so it rides the
/// sweep's custom map).
///
/// # Errors
///
/// Propagates analysis failures as strings.
pub fn run(study: &Study) -> Result<Fairness, String> {
    let experiments: Vec<_> = study
        .sweep(Chip::Smt)
        .map(|item| counterfactual(&item.rates()?, study.config()))
        .map_err(|e| e.to_string())?;
    let gains: Vec<f64> = experiments
        .iter()
        .map(|e| e.optimal_after / e.optimal_before - 1.0)
        .collect();
    let before: Vec<f64> = experiments.iter().map(|e| e.fraction_before).collect();
    let after: Vec<f64> = experiments.iter().map(|e| e.fraction_after).collect();
    let fcfs: Vec<f64> = experiments
        .iter()
        .map(|e| (e.fcfs_after / e.fcfs_before - 1.0).abs())
        .collect();
    let worst: Vec<f64> = experiments
        .iter()
        .map(|e| (e.worst_after / e.worst_before - 1.0).abs())
        .collect();
    Ok(Fairness {
        optimal_gain: mean(&gains),
        fraction_before: mean(&before),
        fraction_after: mean(&after),
        fcfs_shift: mean(&fcfs),
        worst_shift: mean(&worst),
        workloads: experiments.len(),
    })
}

impl fmt::Display for Fairness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Section V-D: equal-rate counterfactual on the fully heterogeneous\n\
             coschedule (SMT, {} workloads)",
            self.workloads
        )?;
        writeln!(
            f,
            "mean optimal-throughput gain:        {}",
            pct(self.optimal_gain)
        )?;
        writeln!(
            f,
            "heterogeneous coschedule fraction:   {:.0}% -> {:.0}%",
            100.0 * self.fraction_before,
            100.0 * self.fraction_after
        )?;
        writeln!(
            f,
            "mean |FCFS shift|:                   {}",
            pct(self.fcfs_shift)
        )?;
        writeln!(
            f,
            "mean |worst shift|:                  {}",
            pct(self.worst_shift)
        )?;
        writeln!(
            f,
            "\npaper: after equalising, the optimal scheduler selects the heterogeneous\n\
             coschedule most of the time and average throughput rises substantially,\n\
             while FCFS and worst remain (nearly) unchanged"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use std::sync::OnceLock;

    fn fast_study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| Study::new(StudyConfig::fast()).expect("study builds"))
    }

    #[test]
    fn rebalancing_helps_optimal_but_not_others() {
        let res = run(fast_study()).unwrap();
        assert!(res.optimal_gain >= -1e-6, "gain {}", res.optimal_gain);
        assert!(
            res.fraction_after >= res.fraction_before - 1e-6,
            "fraction must not fall"
        );
        assert!(res.worst_shift < 1e-6, "worst scheduler unaffected");
        assert!(
            res.fcfs_shift < 0.06,
            "FCFS barely moves: {}",
            res.fcfs_shift
        );
    }
}
