//! One module per reproduced paper artefact, tied together by the
//! [`Experiment`] registry.
//!
//! | Registry name | Module | Paper artefact |
//! |---------------|--------|----------------|
//! | `fig1` | [`fig1`] | Figure 1 — variability of per-job IPC, instantaneous and average throughput |
//! | `fig2` | [`fig2`] | Figure 2 — FCFS-vs-worst against optimal-vs-worst scatter |
//! | `fig3` | [`fig3`] | Figure 3 — throughput variability vs linear-bottleneck LSQ error |
//! | `table2` | [`table2`] | Table II — coschedule heterogeneity time fractions |
//! | `fig4` | [`fig4`] | Figure 4 — turnaround vs arrival rate (M/M/4 worked example) |
//! | `fig5` | [`fig5`] | Figure 5 — turnaround / utilisation / empty fraction per scheduler |
//! | `fig6` | [`fig6`] | Figure 6 — saturated throughput per scheduler vs LP bounds |
//! | `n8` | [`n8`] | Section V-B — N = 8 sensitivity |
//! | `n12_k8` | [`n12_k8`] | Beyond the paper — N = 12 / K = 8 big-machine scaling (sparse solvers) |
//! | `model_accuracy` | [`model_accuracy`] | Beyond the paper — sampled + predicted N = 12 / K = 8 rate models (`predict` crate) |
//! | `fairness` | [`fairness`] | Section V-D — fairness counterfactual |
//! | `sec7` | [`sec7`] | Section VII — fetch/ROB policy study under FCFS vs optimal scheduling |
//! | `unit_ablation` | [`unit_ablation`] | Section III-B claim — conclusions hold for the plain instruction as unit of work |
//! | `serve` | [`self::serve`] | Beyond the paper — online scheduling service with a live digital-twin model loop |
//! | `dist_sweep` | [`dist_sweep`] | Beyond the paper — sharded sweep across fault-tolerant workers with deterministic merge |
//! | `chaos` | [`chaos`] | Beyond the paper — seeded fault storms over dist and serve: parity under faults, breaker trip/recovery, clean panic surfacing |
//! | `obs` | [`self::obs`] | Beyond the paper — observability check: instrumented sweep + serve legs, embedded metric snapshots, optional JSONL trace |
//!
//! Every entry is invocable through the unified driver
//! (`cargo run --release -p paperbench --bin paperbench -- <name>`), and
//! [`REGISTRY`] preserves the historical `all`-binary print order so the
//! combined artefact stream stays byte-identical across the migration.

pub mod chaos;
pub mod dist_sweep;
pub mod fairness;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod model_accuracy;
pub mod n12_k8;
pub mod n8;
pub mod obs;
pub mod sec7;
pub mod serve;
pub mod table2;
pub mod unit_ablation;

use std::sync::OnceLock;
use std::time::Instant;

use crate::study::{Study, StudyConfig};

/// Shared context for one driver invocation: the parsed [`StudyConfig`]
/// plus a lazily built [`Study`].
///
/// The study (two simulated performance tables over the full suite) is the
/// dominant cost of most experiments, but some need none of it —
/// [`fig4`] is purely analytic and [`n12_k8`] builds its own synthetic
/// table — so construction is deferred to the first
/// [`ExperimentContext::study`] call and shared by every later one
/// (`paperbench all` builds the tables exactly once).
pub struct ExperimentContext {
    config: StudyConfig,
    study: OnceLock<Result<Study, String>>,
}

impl ExperimentContext {
    /// Wraps a parsed configuration; no tables are built yet.
    pub fn new(config: StudyConfig) -> Self {
        ExperimentContext {
            config,
            study: OnceLock::new(),
        }
    }

    /// The run's configuration (experiment knobs, sampling, table cache).
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The shared [`Study`], building both performance tables on first
    /// use (or loading them through the config's table cache).
    ///
    /// # Errors
    ///
    /// Propagates simulator/table/store failures as strings; the failure
    /// is sticky for the context's lifetime.
    pub fn study(&self) -> Result<&Study, String> {
        self.study
            .get_or_init(|| {
                eprintln!("building performance tables (this is the expensive part)...");
                let t0 = Instant::now();
                let study = Study::new(self.config.clone()).map_err(|e| e.to_string())?;
                eprintln!("tables ready in {:.1?}", t0.elapsed());
                Ok(study)
            })
            .as_ref()
            .map_err(Clone::clone)
    }
}

/// One reproduced paper artefact, runnable by name through the registry.
///
/// Implementations are thin adapters over the experiment modules' `run`
/// functions: they pull what they need from the [`ExperimentContext`]
/// (the shared study, or just the config) and render the artefact with its
/// `Display` implementation — the exact text the per-experiment binaries
/// have always printed.
pub trait Experiment: Sync {
    /// Registry key, e.g. `fig1` (also the name of the compatibility
    /// binary).
    fn name(&self) -> &'static str;

    /// Which figure/table/section of the paper this reproduces.
    fn paper_artefact(&self) -> &'static str;

    /// One-line description of what the experiment actually computes and
    /// reports — the `paperbench --list` line (the artefact label says
    /// *where* in the paper; this says *what happens*).
    fn description(&self) -> &'static str;

    /// Runs the experiment and returns the printed artefact.
    ///
    /// # Errors
    ///
    /// Propagates table-construction and analysis failures as strings.
    fn run(&self, ctx: &ExperimentContext) -> Result<String, String>;
}

macro_rules! registry {
    ($( $ty:ident { name: $name:literal, artefact: $artefact:literal, desc: $desc:literal, run: $run:expr } ),+ $(,)?) => {
        $(
            struct $ty;
            impl Experiment for $ty {
                fn name(&self) -> &'static str {
                    $name
                }
                fn paper_artefact(&self) -> &'static str {
                    $artefact
                }
                fn description(&self) -> &'static str {
                    $desc
                }
                fn run(&self, ctx: &ExperimentContext) -> Result<String, String> {
                    let run: fn(&ExperimentContext) -> Result<String, String> = $run;
                    run(ctx)
                }
            }
        )+
        /// Every experiment, in the `all` artefact print order (kept from
        /// the pre-registry `all` binary so its combined output is
        /// byte-identical).
        pub const REGISTRY: &[&dyn Experiment] = &[$(&$ty),+];
    };
}

registry! {
    Fig1 {
        name: "fig1",
        artefact: "Figure 1 — per-job IPC / instantaneous / average throughput variability",
        desc: "sweeps every workload and reports per-job, instantaneous and average throughput spreads",
        run: |ctx| Ok(fig1::run(ctx.study()?)?.to_string())
    },
    Fig2 {
        name: "fig2",
        artefact: "Figure 2 — FCFS-vs-worst against optimal-vs-worst scatter",
        desc: "correlates the FCFS-over-worst gain with the optimal-over-worst headroom per workload",
        run: |ctx| Ok(fig2::run(ctx.study()?)?.to_string())
    },
    Fig3 {
        name: "fig3",
        artefact: "Figure 3 — throughput variability vs linear-bottleneck LSQ error",
        desc: "fits the linear-bottleneck model per workload and plots its error against variability",
        run: |ctx| Ok(fig3::run(ctx.study()?)?.to_string())
    },
    Table2 {
        name: "table2",
        artefact: "Table II — coschedule heterogeneity time fractions",
        desc: "measures the time each scheduler spends in every coschedule-heterogeneity class",
        run: |ctx| Ok(table2::run(ctx.study()?)?.to_string())
    },
    Fig4 {
        name: "fig4",
        artefact: "Figure 4 — turnaround vs arrival rate (analytic M/M/4)",
        desc: "solves the analytic M/M/4 worked example (no simulation, no tables)",
        run: |_ctx| Ok(fig4::run()?.to_string())
    },
    Fig5 {
        name: "fig5",
        artefact: "Figure 5 — turnaround / utilisation / empty fraction per scheduler",
        desc: "runs the Poisson-arrival latency experiment for the four Section VI schedulers",
        run: |ctx| Ok(fig5::run(ctx.study()?)?.to_string())
    },
    Fig6 {
        name: "fig6",
        artefact: "Figure 6 — saturated throughput per scheduler vs LP bounds",
        desc: "compares each scheduler's saturated throughput against the LP optimal/worst bounds",
        run: |ctx| Ok(fig6::run(ctx.study()?)?.to_string())
    },
    N8 {
        name: "n8",
        artefact: "Section V-B — N = 8 sensitivity",
        desc: "repeats the headline throughput comparison with N = 8 job types per workload",
        run: |ctx| Ok(n8::run(ctx.study()?)?.to_string())
    },
    N12K8 {
        name: "n12_k8",
        artefact: "Beyond the paper — N = 12 / K = 8 big-machine scaling",
        desc: "scales to 12 types on a synthetic 8-context machine through the sparse solvers",
        run: |ctx| Ok(n12_k8::run(ctx.config())?.to_string())
    },
    ModelAccuracy {
        name: "model_accuracy",
        artefact: "Beyond the paper — sampled + predicted N = 12 / K = 8 rate models",
        desc: "fits interference models on a <=10% sample of the K = 8 sweep and scores the predictions",
        run: |ctx| Ok(model_accuracy::run(ctx.config())?.to_string())
    },
    Fairness {
        name: "fairness",
        artefact: "Section V-D — fairness counterfactual",
        desc: "redistributes per-job rates inside the heterogeneous coschedule and re-solves the LP",
        run: |ctx| Ok(fairness::run(ctx.study()?)?.to_string())
    },
    Sec7 {
        name: "sec7",
        artefact: "Section VII — fetch/ROB policy study under FCFS vs optimal",
        desc: "re-runs the study across fetch/ROB microarchitecture policies on both chips",
        run: |ctx| Ok(sec7::run(ctx.study()?)?.to_string())
    },
    UnitAblation {
        name: "unit_ablation",
        artefact: "Section III-B — plain-instruction unit-of-work ablation",
        desc: "repeats the headline comparison with plain instructions as the unit of work",
        run: |ctx| Ok(unit_ablation::run(ctx.study()?)?.to_string())
    },
    Serve {
        name: "serve",
        artefact: "Beyond the paper — online service with a live digital-twin model loop",
        desc: "streams seeded arrivals through queue/dispatcher/twin and compares placers against offline bounds",
        run: |ctx| Ok(self::serve::run(ctx.config())?.to_string())
    },
    DistSweepExp {
        name: "dist_sweep",
        artefact: "Beyond the paper — sharded sweep across fault-tolerant workers",
        desc: "shards the headline sweep over a worker fleet and verifies the merged report bitwise",
        run: |ctx| Ok(dist_sweep::run(ctx.study()?)?.to_string())
    },
    ChaosExp {
        name: "chaos",
        artefact: "Beyond the paper — chaos layer: seeded fault storms over dist and serve",
        desc: "injects seeded crash/hang/corrupt/duplicate faults and proves parity, breaker trip/recovery and clean panic surfacing",
        run: |ctx| Ok(chaos::run(ctx.config())?.to_string())
    },
    ObsExp {
        name: "obs",
        artefact: "Beyond the paper — observability: metrics, spans and JSONL tracing across the stack",
        desc: "runs instrumented sweep + serve legs and pretty-prints the metric snapshots each report embeds",
        run: |ctx| Ok(self::obs::run(ctx.config())?.to_string())
    },
}

/// Looks an experiment up by registry name (exact match).
pub fn by_name(name: &str) -> Option<&'static dyn Experiment> {
    REGISTRY.iter().copied().find(|e| e.name() == name)
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        assert_eq!(REGISTRY.len(), 17);
        let mut names: Vec<&str> = REGISTRY.iter().map(|e| e.name()).collect();
        for name in &names {
            assert!(by_name(name).is_some(), "{name} resolves");
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len(), "names are unique");
        assert!(by_name("bogus").is_none());
    }

    #[test]
    fn registry_keeps_the_all_binary_print_order() {
        let order: Vec<&str> = REGISTRY.iter().map(|e| e.name()).collect();
        assert_eq!(
            order,
            [
                "fig1",
                "fig2",
                "fig3",
                "table2",
                "fig4",
                "fig5",
                "fig6",
                "n8",
                "n12_k8",
                "model_accuracy",
                "fairness",
                "sec7",
                "unit_ablation",
                "serve",
                "dist_sweep",
                "chaos",
                "obs"
            ]
        );
    }

    #[test]
    fn every_experiment_describes_itself() {
        for e in REGISTRY {
            let desc = e.description();
            assert!(!desc.is_empty(), "{} has no description", e.name());
            assert!(
                !desc.contains('\n'),
                "{} description must be one line",
                e.name()
            );
            assert_ne!(
                desc,
                e.paper_artefact(),
                "{} description must add to the artefact label",
                e.name()
            );
        }
    }

    #[test]
    fn analytic_experiments_run_without_building_tables() {
        let ctx = ExperimentContext::new(StudyConfig::fast());
        let artefact = by_name("fig4").unwrap().run(&ctx).unwrap();
        assert!(artefact.contains("Figure 4"));
        assert!(
            ctx.study.get().is_none(),
            "fig4 must not force the study build"
        );
    }
}
