//! One module per reproduced paper artefact.
//!
//! | Module | Paper artefact |
//! |--------|----------------|
//! | [`fig1`] | Figure 1 — variability of per-job IPC, instantaneous and average throughput |
//! | [`fig2`] | Figure 2 — FCFS-vs-worst against optimal-vs-worst scatter |
//! | [`fig3`] | Figure 3 — throughput variability vs linear-bottleneck LSQ error |
//! | [`table2`] | Table II — coschedule heterogeneity time fractions |
//! | [`fig4`] | Figure 4 — turnaround vs arrival rate (M/M/4 worked example) |
//! | [`fig5`] | Figure 5 — turnaround / utilisation / empty fraction per scheduler |
//! | [`fig6`] | Figure 6 — saturated throughput per scheduler vs LP bounds |
//! | [`n8`] | Section V-B — N = 8 sensitivity |
//! | [`n12_k8`] | Beyond the paper — N = 12 / K = 8 big-machine scaling (sparse solvers) |
//! | [`fairness`] | Section V-D — fairness counterfactual |
//! | [`sec7`] | Section VII — fetch/ROB policy study under FCFS vs optimal scheduling |
//! | [`unit_ablation`] | Section III-B claim — conclusions hold for the plain instruction as unit of work |

pub mod fairness;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod n12_k8;
pub mod n8;
pub mod sec7;
pub mod table2;
pub mod unit_ablation;
