//! Figure 2: how much of the worst→best throughput gap does agnostic FCFS
//! already bridge?

use std::fmt;

use session::Policy;

use crate::mean;
use crate::study::{Chip, Study};

/// One workload's point in the Figure 2 scatter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Optimal throughput normalised to the worst scheduler (X axis).
    pub optimal_vs_worst: f64,
    /// FCFS throughput normalised to the worst scheduler (Y axis).
    pub fcfs_vs_worst: f64,
}

/// Figure 2 statistics for one chip.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipFig2 {
    /// Which configuration.
    pub chip: Chip,
    /// One point per workload.
    pub points: Vec<Point>,
    /// Least-squares slope of `(y-1) = a (x-1)` (the paper's 0.73 / 0.56).
    pub slope: f64,
    /// Mean fraction of the worst→best gap that FCFS bridges
    /// (the paper's 76% / 63%).
    pub bridge_fraction: f64,
}

/// The full Figure 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2 {
    /// SMT and quad-core scatters.
    pub chips: Vec<ChipFig2>,
}

/// Runs the Figure 2 analysis: one [`Study::sweep`] per chip evaluates the
/// LP bounds and the event-driven FCFS baseline as standard policy rows.
///
/// # Errors
///
/// Propagates analysis failures as strings.
pub fn run(study: &Study) -> Result<Fig2, String> {
    let mut chips = Vec::new();
    for chip in Chip::ALL {
        let sweep = study.config().run_sweep(study.sweep(chip).policies([
            Policy::Worst,
            Policy::Optimal,
            Policy::FcfsEvent,
        ]))?;
        let worst = sweep.throughputs(Policy::Worst);
        let best = sweep.throughputs(Policy::Optimal);
        let fcfs = sweep.throughputs(Policy::FcfsEvent);
        let points: Vec<Point> = (0..sweep.len())
            .map(|i| Point {
                optimal_vs_worst: best[i] / worst[i],
                fcfs_vs_worst: fcfs[i] / worst[i],
            })
            .collect();
        // Fit (y - 1) = a (x - 1) through the origin of the shifted frame.
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut bridges = Vec::new();
        for p in &points {
            let x = p.optimal_vs_worst - 1.0;
            let y = p.fcfs_vs_worst - 1.0;
            sxx += x * x;
            sxy += x * y;
            if x > 1e-6 {
                bridges.push((y / x).clamp(0.0, 1.5));
            }
        }
        chips.push(ChipFig2 {
            chip,
            slope: if sxx > 1e-12 { sxy / sxx } else { 0.0 },
            bridge_fraction: mean(&bridges),
            points,
        });
    }
    Ok(Fig2 { chips })
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 2: FCFS vs worst against optimal vs worst")?;
        for c in &self.chips {
            writeln!(
                f,
                "\n== {} configuration ({} workloads) ==",
                c.chip.label(),
                c.points.len()
            )?;
            writeln!(
                f,
                "slope {:.2}   FCFS bridges {:.0}% of the worst->best gap",
                c.slope,
                100.0 * c.bridge_fraction
            )?;
            writeln!(f, "{:>16} {:>16}", "optimal/worst", "fcfs/worst")?;
            for p in c.points.iter().take(12) {
                writeln!(f, "{:>16.4} {:>16.4}", p.optimal_vs_worst, p.fcfs_vs_worst)?;
            }
            if c.points.len() > 12 {
                writeln!(f, "... ({} more points)", c.points.len() - 12)?;
            }
        }
        writeln!(
            f,
            "\npaper: slope 0.73 (SMT) / 0.56 (quad-core); FCFS bridges 76% / 63%"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use std::sync::OnceLock;

    fn fast_study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| Study::new(StudyConfig::fast()).expect("study builds"))
    }

    #[test]
    fn fcfs_sits_between_bounds_and_bridges_most_of_the_gap() {
        let fig = run(fast_study()).unwrap();
        for c in &fig.chips {
            for p in &c.points {
                assert!(p.optimal_vs_worst >= 1.0 - 1e-6);
                assert!(
                    p.fcfs_vs_worst <= p.optimal_vs_worst + 1e-6,
                    "FCFS cannot beat the optimum"
                );
                assert!(p.fcfs_vs_worst >= 1.0 - 0.02, "FCFS ~never below worst");
            }
            // The paper's observation: FCFS bridges most of the gap. At
            // the fast test scale (short simulator windows, 12 workloads)
            // the quad-core estimate is noisy, so assert a loose floor;
            // the full-scale run lands near the paper's 0.63-0.76.
            assert!(
                c.bridge_fraction > 0.3,
                "{}: bridge {}",
                c.chip.label(),
                c.bridge_fraction
            );
            assert!(c.slope > 0.3 && c.slope <= 1.0, "slope {}", c.slope);
        }
    }
}
