//! Figure 4: turnaround time as a function of arrival rate, and the
//! paper's M/M/4 worked example (3% faster service → 16% less turnaround).

use std::fmt;

use queueing::MmcQueue;

/// One point of the turnaround-vs-arrival-rate curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Arrival rate `lambda`.
    pub lambda: f64,
    /// Mean turnaround with the baseline service rate.
    pub base_turnaround: f64,
    /// Mean turnaround with the 3%-faster service rate (the dotted line).
    pub improved_turnaround: f64,
}

/// The Figure 4 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// The solid + dotted curves.
    pub curve: Vec<CurvePoint>,
    /// Worked example at `lambda = 3.5, mu = 1`: (jobs in system, turnaround).
    pub example_base: (f64, f64),
    /// Worked example at `mu = 1.03`.
    pub example_improved: (f64, f64),
    /// Relative turnaround reduction from the 3% service-rate increase.
    pub turnaround_reduction: f64,
}

/// Builds the analytic Figure 4 (no simulation required).
///
/// # Errors
///
/// Returns an error string if queue construction fails (cannot happen for
/// the fixed parameters used here).
pub fn run() -> Result<Fig4, String> {
    let servers = 4u32;
    let mu_base = 1.0;
    let mu_fast = 1.03;
    let mut curve = Vec::new();
    // Coarse grid over the stable region, refined near the asymptote where
    // the paper's point D lives.
    let mut lambdas: Vec<f64> = (1..=14).map(|i| i as f64 * 0.25).collect();
    lambdas.extend([3.6, 3.7, 3.8, 3.85, 3.9, 3.95, 3.98]);
    for lambda in lambdas {
        let base = MmcQueue::new(lambda, mu_base, servers).map_err(|e| e.to_string())?;
        let fast = MmcQueue::new(lambda, mu_fast, servers).map_err(|e| e.to_string())?;
        curve.push(CurvePoint {
            lambda,
            base_turnaround: base.mean_turnaround(),
            improved_turnaround: fast.mean_turnaround(),
        });
    }
    let base = MmcQueue::new(3.5, mu_base, servers).map_err(|e| e.to_string())?;
    let fast = MmcQueue::new(3.5, mu_fast, servers).map_err(|e| e.to_string())?;
    let reduction = 1.0 - fast.mean_turnaround() / base.mean_turnaround();
    Ok(Fig4 {
        curve,
        example_base: (base.mean_jobs_in_system(), base.mean_turnaround()),
        example_improved: (fast.mean_jobs_in_system(), fast.mean_turnaround()),
        turnaround_reduction: reduction,
    })
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4: turnaround time vs arrival rate (M/M/4)")?;
        writeln!(
            f,
            "{:>8} {:>14} {:>16}",
            "lambda", "W (mu = 1.00)", "W (mu = 1.03)"
        )?;
        for p in &self.curve {
            writeln!(
                f,
                "{:>8.2} {:>14.3} {:>16.3}",
                p.lambda, p.base_turnaround, p.improved_turnaround
            )?;
        }
        writeln!(
            f,
            "\nworked example at lambda = 3.5: L = {:.1} jobs, W = {:.2}",
            self.example_base.0, self.example_base.1
        )?;
        writeln!(
            f,
            "after +3% service rate:        L = {:.1} jobs, W = {:.2}  ({:.0}% less turnaround)",
            self.example_improved.0,
            self.example_improved.1,
            100.0 * self.turnaround_reduction
        )?;
        writeln!(
            f,
            "\npaper: L 8.7 -> 7.3, W 2.5 -> 2.1, a 16% reduction from 3% more throughput"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worked_example_matches_paper() {
        let fig = run().unwrap();
        assert!(
            (fig.example_base.0 - 8.7).abs() < 0.15,
            "{:?}",
            fig.example_base
        );
        assert!((fig.example_base.1 - 2.5).abs() < 0.05);
        assert!((fig.example_improved.0 - 7.3).abs() < 0.2);
        assert!((fig.example_improved.1 - 2.1).abs() < 0.06);
        assert!((fig.turnaround_reduction - 0.16).abs() < 0.03);
    }

    #[test]
    fn curve_is_monotone_and_diverges() {
        let fig = run().unwrap();
        for pair in fig.curve.windows(2) {
            assert!(pair[1].base_turnaround > pair[0].base_turnaround);
            assert!(
                pair[0].improved_turnaround < pair[0].base_turnaround,
                "faster service always reduces turnaround"
            );
        }
        let last = fig.curve.last().unwrap();
        assert!(last.base_turnaround > 5.0, "divergence near saturation");
    }
}
