//! The unified experiment driver: `paperbench <name>|all [flags]` runs
//! any registry experiment (`paperbench --list` enumerates them). Flags:
//! --fast --full --sample N --jobs N --threads N --table-cache PATH
//! --lp-dense-limit N --markov-dense-limit N.

fn main() -> std::process::ExitCode {
    paperbench::cli::main()
}
