//! Compatibility shim: runs the `fairness` registry experiment through the
//! unified driver (`paperbench fairness`). Flags as in `paperbench --list`.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("fairness")
}
