//! Compatibility shim: runs the `unit_ablation` registry experiment through the
//! unified driver (`paperbench unit_ablation`). Flags as in `paperbench --list`.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("unit_ablation")
}
