//! Regenerates the Section III-B unit-of-work ablation. Flags: --fast
//! --full --sample N --jobs N --threads N --table-cache PATH.

use paperbench::experiments::unit_ablation;
use paperbench::{Study, StudyConfig};

fn main() {
    let config = match StudyConfig::from_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    eprintln!("building performance tables...");
    let study = match Study::new(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to build study: {e}");
            std::process::exit(1);
        }
    };
    match unit_ablation::run(&study) {
        Ok(result) => println!("{result}"),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
