//! Compatibility shim: runs the `chaos` registry experiment through the
//! unified driver (`paperbench chaos`). Flags as in `paperbench --list`;
//! `--fast` runs the reduced-scale storm the CI smoke job uses.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("chaos")
}
