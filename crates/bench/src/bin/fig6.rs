//! Regenerates the paper artefact implemented in
//! `paperbench::experiments::fig6`. Flags: --fast --full --sample N
//! --jobs N --threads N --table-cache PATH.

use paperbench::experiments::fig6;
use paperbench::{Study, StudyConfig};

fn main() {
    let config = match StudyConfig::from_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    eprintln!("building performance tables (this is the expensive part)...");
    let t0 = std::time::Instant::now();
    let study = match Study::new(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to build study: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "tables ready in {:.1?}; running experiment...",
        t0.elapsed()
    );
    match fig6::run(&study) {
        Ok(result) => println!("{result}"),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
