//! Compatibility shim: runs the `fig6` registry experiment through the
//! unified driver (`paperbench fig6`). Flags as in `paperbench --list`.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("fig6")
}
