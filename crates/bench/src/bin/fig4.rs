//! Compatibility shim: runs the `fig4` registry experiment through the
//! unified driver (`paperbench fig4`). Flags as in `paperbench --list`.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("fig4")
}
