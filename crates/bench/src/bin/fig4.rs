//! Regenerates Figure 4 (analytic M/M/4 curves; no simulation needed).

use paperbench::experiments::fig4;

fn main() {
    match fig4::run() {
        Ok(result) => println!("{result}"),
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
