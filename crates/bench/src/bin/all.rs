//! Compatibility shim: runs every registry experiment on one shared study
//! through the unified driver (`paperbench all`).

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("all")
}
