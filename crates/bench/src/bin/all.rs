//! Runs every experiment on one shared study and prints all artefacts.
//! Flags: --fast --full --sample N --jobs N --threads N --table-cache PATH.

use paperbench::experiments::{
    fairness, fig1, fig2, fig3, fig4, fig5, fig6, n12_k8, n8, sec7, table2, unit_ablation,
};
use paperbench::{Study, StudyConfig};

fn main() {
    let config = match StudyConfig::from_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    eprintln!("building performance tables...");
    let t0 = std::time::Instant::now();
    let study = match Study::new(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to build study: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("tables ready in {:.1?}", t0.elapsed());

    let divider = "=".repeat(74);
    macro_rules! section {
        ($name:expr, $result:expr) => {
            println!("{divider}");
            let t = std::time::Instant::now();
            match $result {
                Ok(r) => println!("{r}"),
                Err(e) => eprintln!("{} failed: {e}", $name),
            }
            eprintln!("[{} took {:.1?}]", $name, t.elapsed());
        };
    }
    section!("fig1", fig1::run(&study));
    section!("fig2", fig2::run(&study));
    section!("fig3", fig3::run(&study));
    section!("table2", table2::run(&study));
    section!("fig4", fig4::run());
    section!("fig5", fig5::run(&study));
    section!("fig6", fig6::run(&study));
    section!("n8", n8::run(&study));
    section!("n12_k8", n12_k8::run(study.config()));
    section!("fairness", fairness::run(&study));
    section!("sec7", sec7::run(&study));
    section!("unit_ablation", unit_ablation::run(&study));
}
