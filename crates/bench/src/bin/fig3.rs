//! Compatibility shim: runs the `fig3` registry experiment through the
//! unified driver (`paperbench fig3`). Flags as in `paperbench --list`.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("fig3")
}
