//! `bench-delta BASE NEW [--threshold FRAC]` — diff two
//! `BENCH_session.json` perf-trajectory files kernel-by-kernel.
//!
//! Prints a per-kernel speedup table and exits non-zero when any kernel
//! shared by both files is slower than the baseline by more than the
//! threshold fraction (default `0.20`, i.e. +20% median ns/iter). CI's
//! bench-smoke job runs this against the committed baseline; locally,
//! compare any two saved trajectories:
//!
//! ```text
//! cargo run -p paperbench --bin bench-delta -- old.json BENCH_session.json
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold = 0.20f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--threshold needs a fraction, e.g. --threshold 0.2");
                    return ExitCode::FAILURE;
                };
                if !v.is_finite() || v < 0.0 {
                    eprintln!("--threshold must be a non-negative fraction, got {v}");
                    return ExitCode::FAILURE;
                }
                threshold = v;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                eprintln!("usage: bench-delta BASE NEW [--threshold FRAC]");
                return ExitCode::FAILURE;
            }
            path => paths.push(path),
        }
        i += 1;
    }
    let [base, new] = paths.as_slice() else {
        eprintln!("usage: bench-delta BASE NEW [--threshold FRAC]");
        return ExitCode::FAILURE;
    };
    match paperbench::delta::run_delta(base, new, threshold) {
        Ok(table) => {
            print!("{table}");
            println!(
                "bench-delta: no kernel regressed beyond {:.0}%",
                threshold * 100.0
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprint!("{msg}");
            ExitCode::FAILURE
        }
    }
}
