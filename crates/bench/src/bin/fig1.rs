//! Compatibility shim: runs the `fig1` registry experiment through the
//! unified driver (`paperbench fig1`). Flags as in `paperbench --list`.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("fig1")
}
