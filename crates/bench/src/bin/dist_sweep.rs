//! Compatibility shim: runs the `dist_sweep` registry experiment through
//! the unified driver (`paperbench dist_sweep`). Flags as in
//! `paperbench --list`; add `--distribute ADDR:N` to use external
//! `paperbench --worker ADDR` processes instead of the in-process fleet.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("dist_sweep")
}
