//! Compatibility shim: runs the `model_accuracy` registry experiment
//! through the unified driver (`paperbench model_accuracy`). Flags as in
//! `paperbench --list`.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("model_accuracy")
}
