//! Compatibility shim: runs the `serve` registry experiment through the
//! unified driver (`paperbench serve`). Flags as in `paperbench --list`.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("serve")
}
