//! Prints the big-machine scaling scenario: N = 4 / 8 / 12 job types on a
//! synthetic 8-context machine (column generation + sparse Markov).
//! Flags: --fast --full --sample N --jobs N --threads N.

use paperbench::experiments::n12_k8;
use paperbench::StudyConfig;

fn main() {
    let config = match StudyConfig::from_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let t0 = std::time::Instant::now();
    match n12_k8::run(&config) {
        Ok(res) => {
            println!("{res}");
            eprintln!("[n12_k8 took {:.1?}]", t0.elapsed());
        }
        Err(e) => {
            eprintln!("n12_k8 failed: {e}");
            std::process::exit(1);
        }
    }
}
