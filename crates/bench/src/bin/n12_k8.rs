//! Compatibility shim: runs the `n12_k8` registry experiment through the
//! unified driver (`paperbench n12_k8`). Flags as in `paperbench --list`.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("n12_k8")
}
