//! Compatibility shim: runs the `table2` registry experiment through the
//! unified driver (`paperbench table2`). Flags as in `paperbench --list`.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("table2")
}
