//! Compatibility shim: runs the `fig2` registry experiment through the
//! unified driver (`paperbench fig2`). Flags as in `paperbench --list`.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("fig2")
}
