//! Compatibility shim: runs the `fig5` registry experiment through the
//! unified driver (`paperbench fig5`). Flags as in `paperbench --list`.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("fig5")
}
