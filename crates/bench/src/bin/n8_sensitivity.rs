//! Compatibility shim: runs the `n8` registry experiment through the
//! unified driver (`paperbench n8`). Flags as in `paperbench --list`.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("n8")
}
