//! Compatibility shim: runs the `sec7` registry experiment through the
//! unified driver (`paperbench sec7`). Flags as in `paperbench --list`.

fn main() -> std::process::ExitCode {
    paperbench::cli::run_named("sec7")
}
