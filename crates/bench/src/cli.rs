//! The unified experiment driver behind the `paperbench` binary and the
//! per-experiment compatibility shims.
//!
//! `paperbench <name> [flags]` runs one [`Experiment`] from the registry;
//! `paperbench all [flags]` runs every entry in registry order on one
//! shared [`ExperimentContext`] (tables are built once and reused);
//! `paperbench --list` prints the registry. Flags are the shared
//! [`StudyConfig::from_args`] set, so `--table-cache`, `--sample`,
//! `--lp-dense-limit` and friends behave identically for every entry.

use std::process::ExitCode;
use std::time::Instant;

use crate::experiments::{by_name, Experiment, ExperimentContext, REGISTRY};
use crate::study::StudyConfig;

/// Width of the separator line between artefacts in an `all` run (kept
/// from the pre-registry `all` binary for byte-identical output).
const DIVIDER_WIDTH: usize = 74;

fn usage() -> String {
    let mut text = String::from(
        "usage: paperbench <experiment>|all [flags]\n\
         \n\
         experiments:\n",
    );
    for e in REGISTRY {
        text.push_str(&format!("  {:<14} {}\n", e.name(), e.paper_artefact()));
    }
    text.push_str(
        "\nflags: --fast --full --sample N --jobs N --threads N --table-cache PATH \
         --trace PATH --lp-dense-limit N --markov-dense-limit N --distribute ADDR:NWORKERS \
         --dist-retries N --dist-timeout-secs N --dist-hedge\n\
         \n\
         worker mode: paperbench --worker ADDR [flags]\n\
         serves a --distribute coordinator at ADDR until it goes away\n\
         \n\
         trace tools: paperbench validate-trace PATH\n\
         checks every JSONL line of a --trace capture against the schema\n",
    );
    text
}

/// The `--list` output: one line per registry entry pairing the artefact
/// label (where in the paper) with the [`Experiment::description`] (what
/// the experiment computes).
fn listing() -> String {
    let mut text = String::new();
    for e in REGISTRY {
        text.push_str(&format!("{:<14} {}\n", e.name(), e.paper_artefact()));
        text.push_str(&format!("{:<14}   {}\n", "", e.description()));
    }
    text
}

/// Entry point of the `paperbench` driver binary: first argument selects
/// the experiment (or `all` / `--list`), the rest are [`StudyConfig`]
/// flags.
pub fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let selector = match args.next() {
        Some(s) => s,
        None => {
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };
    match selector.as_str() {
        "--list" | "list" => {
            print!("{}", listing());
            ExitCode::SUCCESS
        }
        "--help" | "-h" => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        "all" => with_config(args, run_all),
        // Offline schema check for a `--trace` capture (the obs-smoke CI
        // job runs this over a fresh `paperbench obs --trace` stream).
        "validate-trace" => match args.next() {
            Some(path) => validate_trace_file(&path),
            None => {
                eprintln!("usage: paperbench validate-trace PATH");
                ExitCode::from(2)
            }
        },
        // `--worker ADDR` is a mode, not an experiment: re-chain the flag
        // so `from_args` parses it, then `with_config` intercepts it.
        "--worker" => with_config(std::iter::once(selector).chain(args), run_all),
        name => match by_name(name) {
            Some(experiment) => with_config(args, |ctx| run_single(experiment, &ctx)),
            None => {
                eprintln!("unknown experiment {name:?}\n\n{}", usage());
                ExitCode::from(2)
            }
        },
    }
}

/// Entry point of the per-experiment compatibility shims (`--bin fig1`
/// etc.): every CLI argument is a config flag, the selector is fixed
/// (`"all"` or a registry name).
pub fn run_named(name: &str) -> ExitCode {
    if name == "all" {
        return with_config(std::env::args().skip(1), run_all);
    }
    let experiment = by_name(name).expect("shim names a registry entry");
    with_config(std::env::args().skip(1), |ctx| run_single(experiment, &ctx))
}

fn with_config<I, F>(args: I, run: F) -> ExitCode
where
    I: IntoIterator<Item = String>,
    F: FnOnce(ExperimentContext) -> ExitCode,
{
    match StudyConfig::from_args(args) {
        Ok(config) => {
            // `--trace PATH` installs a process-global recorder for the
            // whole run; every instrumented layer (solver, sweep, dist,
            // serve) picks it up via `obs::current()`.
            let recorder = match config.trace.as_ref() {
                Some(path) => match std::fs::File::create(path) {
                    Ok(file) => {
                        let rec =
                            obs::Recorder::with_trace(Box::new(std::io::BufWriter::new(file)));
                        obs::set_global(rec.clone());
                        Some(rec)
                    }
                    Err(e) => {
                        eprintln!("could not open trace file {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                },
                None => None,
            };
            let code = if let Some(addr) = config.worker.clone() {
                run_worker_service(&addr, &config)
            } else {
                run(ExperimentContext::new(config))
            };
            if let Some(rec) = recorder {
                obs::clear_global();
                // Close the stream with one line per metric so a capture
                // carries final totals, not just in-flight events.
                rec.trace_snapshot();
                rec.flush();
            }
            code
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

/// `paperbench validate-trace PATH`: run [`obs::validate::validate_trace`]
/// over a captured JSONL stream and report the verdict.
fn validate_trace_file(path: &str) -> ExitCode {
    match std::fs::read_to_string(path) {
        Ok(text) => match obs::validate::validate_trace(&text) {
            Ok(n) => {
                println!("{path}: {n} valid trace line(s)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("could not read {path}: {e}");
            ExitCode::from(2)
        }
    }
}

/// `--worker ADDR`: serve a distributed-sweep coordinator instead of
/// running an experiment. The worker reconnects between sweep legs (one
/// experiment may distribute several) and exits cleanly once the
/// coordinator stops answering after at least one served sweep.
fn run_worker_service(addr: &str, config: &StudyConfig) -> ExitCode {
    use std::time::Duration;

    let worker_config = dist::WorkerConfig {
        threads: config.threads,
        cache: config.table_cache.clone().map(workloads::TableStore::new),
    };
    let mut served = 0usize;
    loop {
        // The first connect is patient — the coordinator may still be
        // building its table. Reconnects between sweep legs are quick so
        // the worker exits soon after the coordinator finishes. The
        // backoff inside connect_retry is seeded per-process so a fleet
        // of workers does not hammer the listener in lockstep.
        let patience = if served == 0 {
            Duration::from_secs(60)
        } else {
            Duration::from_secs(3)
        };
        match dist::worker::connect_retry(addr, patience, config.seed ^ std::process::id() as u64) {
            Ok(transport) => match dist::run_worker(transport, &worker_config) {
                Ok(summary) => {
                    served += 1;
                    eprintln!(
                        "worker: sweep {served}: {} chunk(s), {} row(s), table {}",
                        summary.chunks,
                        summary.rows,
                        if summary.table_from_cache {
                            "from cache"
                        } else {
                            "over the wire"
                        }
                    );
                }
                // A connection that dies after a served sweep is a between-
                // legs race: the old listener's TCP backlog can complete
                // our reconnect handshake and then reset it when it drops.
                // Go back to connecting — the next leg's listener picks us
                // up, and once the coordinator process is really gone the
                // connect is refused, which exits cleanly below.
                Err(
                    e @ (dist::DistError::Disconnected(_)
                    | dist::DistError::Timeout(_)
                    | dist::DistError::Io(_)),
                ) if served > 0 => {
                    eprintln!("worker: connection lost between legs ({e}); reconnecting");
                }
                Err(e) => {
                    eprintln!("worker: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) if served > 0 => {
                eprintln!("worker: coordinator gone after {served} sweep(s) ({e}); done");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("worker: could not reach coordinator at {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
}

fn run_single(experiment: &dyn Experiment, ctx: &ExperimentContext) -> ExitCode {
    let t0 = Instant::now();
    match experiment.run(ctx) {
        Ok(artefact) => {
            println!("{artefact}");
            eprintln!("[{} took {:.1?}]", experiment.name(), t0.elapsed());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs every registry entry on one shared context, printing each artefact
/// behind a divider (the historical `all` stdout format). Failures are
/// reported on stderr and the remaining experiments still run; the exit
/// code reflects whether everything succeeded — which is what the CI
/// smoke job asserts.
fn run_all(ctx: ExperimentContext) -> ExitCode {
    let divider = "=".repeat(DIVIDER_WIDTH);
    let mut failures = 0usize;
    for experiment in REGISTRY {
        println!("{divider}");
        let t0 = Instant::now();
        match experiment.run(&ctx) {
            Ok(artefact) => println!("{artefact}"),
            Err(e) => {
                eprintln!("{} failed: {e}", experiment.name());
                failures += 1;
            }
        }
        eprintln!("[{} took {:.1?}]", experiment.name(), t0.elapsed());
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} experiment(s) failed");
        ExitCode::FAILURE
    }
}
