//! The unified experiment driver behind the `paperbench` binary and the
//! per-experiment compatibility shims.
//!
//! `paperbench <name> [flags]` runs one [`Experiment`] from the registry;
//! `paperbench all [flags]` runs every entry in registry order on one
//! shared [`ExperimentContext`] (tables are built once and reused);
//! `paperbench --list` prints the registry. Flags are the shared
//! [`StudyConfig::from_args`] set, so `--table-cache`, `--sample`,
//! `--lp-dense-limit` and friends behave identically for every entry.

use std::process::ExitCode;
use std::time::Instant;

use crate::experiments::{by_name, Experiment, ExperimentContext, REGISTRY};
use crate::study::StudyConfig;

/// Width of the separator line between artefacts in an `all` run (kept
/// from the pre-registry `all` binary for byte-identical output).
const DIVIDER_WIDTH: usize = 74;

fn usage() -> String {
    let mut text = String::from(
        "usage: paperbench <experiment>|all [flags]\n\
         \n\
         experiments:\n",
    );
    for e in REGISTRY {
        text.push_str(&format!("  {:<14} {}\n", e.name(), e.paper_artefact()));
    }
    text.push_str(
        "\nflags: --fast --full --sample N --jobs N --threads N --table-cache PATH \
         --lp-dense-limit N --markov-dense-limit N\n",
    );
    text
}

/// The `--list` output: one line per registry entry pairing the artefact
/// label (where in the paper) with the [`Experiment::description`] (what
/// the experiment computes).
fn listing() -> String {
    let mut text = String::new();
    for e in REGISTRY {
        text.push_str(&format!("{:<14} {}\n", e.name(), e.paper_artefact()));
        text.push_str(&format!("{:<14}   {}\n", "", e.description()));
    }
    text
}

/// Entry point of the `paperbench` driver binary: first argument selects
/// the experiment (or `all` / `--list`), the rest are [`StudyConfig`]
/// flags.
pub fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let selector = match args.next() {
        Some(s) => s,
        None => {
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };
    match selector.as_str() {
        "--list" | "list" => {
            print!("{}", listing());
            ExitCode::SUCCESS
        }
        "--help" | "-h" => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        "all" => with_config(args, run_all),
        name => match by_name(name) {
            Some(experiment) => with_config(args, |ctx| run_single(experiment, &ctx)),
            None => {
                eprintln!("unknown experiment {name:?}\n\n{}", usage());
                ExitCode::from(2)
            }
        },
    }
}

/// Entry point of the per-experiment compatibility shims (`--bin fig1`
/// etc.): every CLI argument is a config flag, the selector is fixed
/// (`"all"` or a registry name).
pub fn run_named(name: &str) -> ExitCode {
    if name == "all" {
        return with_config(std::env::args().skip(1), run_all);
    }
    let experiment = by_name(name).expect("shim names a registry entry");
    with_config(std::env::args().skip(1), |ctx| run_single(experiment, &ctx))
}

fn with_config<I, F>(args: I, run: F) -> ExitCode
where
    I: IntoIterator<Item = String>,
    F: FnOnce(ExperimentContext) -> ExitCode,
{
    match StudyConfig::from_args(args) {
        Ok(config) => run(ExperimentContext::new(config)),
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

fn run_single(experiment: &dyn Experiment, ctx: &ExperimentContext) -> ExitCode {
    let t0 = Instant::now();
    match experiment.run(ctx) {
        Ok(artefact) => {
            println!("{artefact}");
            eprintln!("[{} took {:.1?}]", experiment.name(), t0.elapsed());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs every registry entry on one shared context, printing each artefact
/// behind a divider (the historical `all` stdout format). Failures are
/// reported on stderr and the remaining experiments still run; the exit
/// code reflects whether everything succeeded — which is what the CI
/// smoke job asserts.
fn run_all(ctx: ExperimentContext) -> ExitCode {
    let divider = "=".repeat(DIVIDER_WIDTH);
    let mut failures = 0usize;
    for experiment in REGISTRY {
        println!("{divider}");
        let t0 = Instant::now();
        match experiment.run(&ctx) {
            Ok(artefact) => println!("{artefact}"),
            Err(e) => {
                eprintln!("{} failed: {e}", experiment.name());
                failures += 1;
            }
        }
        eprintln!("[{} took {:.1?}]", experiment.name(), t0.elapsed());
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} experiment(s) failed");
        ExitCode::FAILURE
    }
}
