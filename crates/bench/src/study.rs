//! Shared experiment context: machine configurations, performance tables
//! and workload enumeration used by all figure/table reproductions.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

use session::{Session, SessionBuilder, SweepBuilder, SweepReport};
use simproc::{Machine, MachineConfig, MachineError};
use symbiosis::enumerate_workloads;
use workloads::{spec2006, PerfTable, TableError, TableStore, WorkloadView};

/// Where a distributed sweep leg recruits its workers: the coordinator
/// listen address and how many workers must connect. Parsed from
/// `--distribute ADDR:NWORKERS` (the *last* colon splits, so
/// `host:port:n` works).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributeSpec {
    /// Address the coordinator binds (`host:port`; port 0 is valid for
    /// in-process setups but useless across processes).
    pub addr: String,
    /// Workers to wait for before dispatching.
    pub workers: usize,
}

impl DistributeSpec {
    fn parse(value: &str) -> Result<Self, String> {
        let (addr, n) = value
            .rsplit_once(':')
            .ok_or_else(|| format!("--distribute wants ADDR:NWORKERS, got {value:?}"))?;
        let workers: usize = n
            .parse()
            .map_err(|e| format!("--distribute worker count: {e}"))?;
        if workers == 0 {
            return Err("--distribute needs at least one worker".into());
        }
        if addr.is_empty() {
            return Err("--distribute needs a bind address".into());
        }
        Ok(DistributeSpec {
            addr: addr.to_owned(),
            workers,
        })
    }
}

/// Which of the paper's two machine configurations an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Chip {
    /// 4-way SMT, 4-wide out-of-order core (Section V-A, first config).
    Smt,
    /// Quad-core with private L1/L2, shared L3 + bus (second config).
    Quad,
}

impl Chip {
    /// Both configurations, in paper order.
    pub const ALL: [Chip; 2] = [Chip::Smt, Chip::Quad];

    /// Human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Chip::Smt => "SMT",
            Chip::Quad => "quad-core",
        }
    }

    /// The corresponding simulator configuration.
    pub fn machine_config(&self) -> MachineConfig {
        match self {
            Chip::Smt => MachineConfig::smt4(),
            Chip::Quad => MachineConfig::quadcore(),
        }
    }
}

/// Tunables for a study run; defaults reproduce the paper-scale setup.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyConfig {
    /// Simulator warm-up window in cycles.
    pub warmup_cycles: u64,
    /// Simulator measurement window in cycles.
    pub measure_cycles: u64,
    /// Job types per workload (the paper's default N = 4).
    pub workload_size: usize,
    /// Jobs completed per FCFS maximum-throughput experiment.
    pub fcfs_jobs: u64,
    /// If set, analyse only a deterministic sample of this many workloads
    /// (the full set is 495 for N = 4 over 12 benchmarks).
    pub sample: Option<usize>,
    /// OS threads for table building and per-workload sweeps.
    pub threads: usize,
    /// Base RNG seed for the stochastic experiment legs.
    pub seed: u64,
    /// If set, performance tables are cached in this directory through a
    /// [`TableStore`]: warm runs load instead of re-simulating. Set by
    /// `--table-cache PATH` or the `SYMBIOSIS_TABLE_CACHE` environment
    /// variable.
    pub table_cache: Option<PathBuf>,
    /// Dense-tableau threshold for the scheduling LP, forwarded to every
    /// session and sweep this config starts (`--lp-dense-limit N`; `0`
    /// forces column generation, [`usize::MAX`] the dense tableau).
    pub lp_dense_limit: usize,
    /// Dense-LU threshold for the FCFS Markov chain, forwarded to every
    /// session and sweep this config starts (`--markov-dense-limit N`).
    pub markov_dense_limit: usize,
    /// Sequential Gauss–Seidel threshold for sparse FCFS Markov chains,
    /// forwarded to every session and sweep this config starts
    /// (`--markov-accel-limit N`; `0` forces the multi-colored parallel
    /// SOR sweep, [`usize::MAX`] sequential Gauss–Seidel).
    pub markov_accel_limit: usize,
    /// Opt-in (`--simulated-k8`): run the K = 8 experiment legs against a
    /// *really simulated* 8-way SMT table ([`simproc::MachineConfig::smt8`]
    /// over the [`StudyConfig::K8_SUITE`] sub-suite) instead of only the
    /// synthetic big-machine table. Off by default — the simulated table
    /// costs a few thousand coschedule simulations on a cold cache.
    pub simulated_k8: bool,
    /// `--worker ADDR`: instead of running an experiment, serve a
    /// distributed-sweep coordinator at `ADDR` as a worker process until
    /// the coordinator goes away.
    pub worker: Option<String>,
    /// `--distribute ADDR:NWORKERS`: run every sweep leg started through
    /// [`StudyConfig::run_sweep`] as a distributed coordinator at `ADDR`
    /// instead of in-process. The merged report is bitwise identical
    /// either way, so this is purely an execution-placement knob.
    pub distribute: Option<DistributeSpec>,
    /// `--dist-retries N`: per-chunk retry budget for distributed sweep
    /// legs ([`dist::DistConfig::retry_budget`]).
    pub dist_retries: usize,
    /// `--dist-timeout-secs N`: per-recv worker-silence timeout for
    /// distributed sweep legs ([`dist::DistConfig::recv_timeout`]).
    pub dist_timeout_secs: u64,
    /// `--dist-hedge`: opt into hedged re-dispatch of straggler chunks
    /// to idle workers ([`dist::DistConfig::hedge`]).
    pub dist_hedge: bool,
    /// If set, the driver installs a process-global [`obs::Recorder`]
    /// streaming JSON-lines trace events (see [`obs::validate`] for the
    /// schema) to this file. Set by `--trace PATH` or the
    /// `SYMBIOSIS_TRACE` environment variable.
    pub trace: Option<PathBuf>,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            warmup_cycles: 60_000,
            measure_cycles: 240_000,
            workload_size: 4,
            fcfs_jobs: 40_000,
            sample: None,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: 0x15_BA_55,
            table_cache: None,
            lp_dense_limit: symbiosis::DEFAULT_LP_DENSE_LIMIT,
            markov_dense_limit: symbiosis::DEFAULT_MARKOV_DENSE_LIMIT,
            markov_accel_limit: symbiosis::DEFAULT_MARKOV_ACCEL_LIMIT,
            simulated_k8: false,
            worker: None,
            distribute: None,
            dist_retries: dist::DistConfig::default().retry_budget,
            dist_timeout_secs: dist::DistConfig::default().recv_timeout.as_secs(),
            dist_hedge: false,
            trace: None,
        }
    }
}

impl StudyConfig {
    /// A reduced configuration for tests: short simulator windows, few
    /// FCFS jobs, a 12-workload sample.
    pub fn fast() -> Self {
        StudyConfig {
            warmup_cycles: 2_000,
            measure_cycles: 8_000,
            fcfs_jobs: 4_000,
            sample: Some(12),
            ..StudyConfig::default()
        }
    }

    /// Starts a [`Session`] builder carrying this study's experiment
    /// parameters (FCFS job count, base seed, thread count) — the
    /// config-driven entry point every experiment hangs its policies on.
    pub fn session(&self) -> SessionBuilder<'static> {
        Session::builder()
            .fcfs_jobs(self.fcfs_jobs)
            .seed(self.seed)
            .threads(self.threads)
            .lp_dense_limit(self.lp_dense_limit)
            .markov_dense_limit(self.markov_dense_limit)
            .markov_accel_limit(self.markov_accel_limit)
    }

    /// Starts a [`Session::sweep`] builder over `table` and `workloads`
    /// carrying this study's experiment parameters — the batch counterpart
    /// of [`StudyConfig::session`].
    pub fn sweep<'t>(&self, table: &'t PerfTable, workloads: Vec<Vec<usize>>) -> SweepBuilder<'t> {
        Session::sweep()
            .table(table)
            .workloads(workloads)
            .fcfs_jobs(self.fcfs_jobs)
            .seed(self.seed)
            .threads(self.threads)
            .lp_dense_limit(self.lp_dense_limit)
            .markov_dense_limit(self.markov_dense_limit)
            .markov_accel_limit(self.markov_accel_limit)
    }

    /// The distributed-sweep tuning this config carries: the default
    /// [`dist::DistConfig`] with the CLI retry / timeout / hedging knobs
    /// applied. Every coordinator the bench crate starts goes through
    /// here so `--dist-retries`, `--dist-timeout-secs` and `--dist-hedge`
    /// reach them all.
    pub fn dist_config(&self) -> dist::DistConfig {
        dist::DistConfig {
            retry_budget: self.dist_retries,
            recv_timeout: std::time::Duration::from_secs(self.dist_timeout_secs),
            hedge: self.dist_hedge,
            ..dist::DistConfig::default()
        }
    }

    /// Runs a configured sweep the way this config asks: in-process
    /// ([`SweepBuilder::run`]) by default, or — with
    /// [`StudyConfig::distribute`] set — as a distributed coordinator
    /// that binds the configured address, waits for the configured number
    /// of `paperbench --worker` processes, and shards the sweep across
    /// them. Either way the report is bitwise identical (the dist crate's
    /// parity suite pins that), so experiments route their sweep legs
    /// through here unconditionally.
    ///
    /// Per-worker accounting for distributed runs goes to stderr.
    ///
    /// # Errors
    ///
    /// Sweep or distribution failures as text (the experiments' error
    /// currency).
    pub fn run_sweep(&self, sweep: SweepBuilder<'_>) -> Result<SweepReport, String> {
        match &self.distribute {
            None => sweep.run().map_err(|e| e.to_string()),
            Some(spec) => {
                let coordinator = dist::Coordinator::from_sweep(sweep, self.dist_config())
                    .map_err(|e| e.to_string())?;
                let outcome = coordinator
                    .serve_tcp(&spec.addr, spec.workers)
                    .map_err(|e| e.to_string())?;
                for w in &outcome.workers {
                    eprintln!(
                        "distributed sweep: worker {} answered {} chunk(s) / {} row(s) in {:.1?}",
                        w.peer, w.chunks, w.rows, w.wall
                    );
                }
                Ok(outcome.report)
            }
        }
    }

    /// Builds (or, with a configured [`StudyConfig::table_cache`], loads)
    /// the performance table for one machine configuration over the
    /// 12-benchmark suite, applying this config's simulator windows.
    ///
    /// Cache hits and misses are reported on stderr (`table cache hit ...`)
    /// so scripted runs can assert the warm path skipped simulation.
    ///
    /// # Errors
    ///
    /// Propagates simulator/table/store errors.
    pub fn build_table(&self, machine: MachineConfig) -> Result<PerfTable, StudyError> {
        self.table_for(machine, spec2006())
    }

    /// The benchmarks acting as job types on the simulated 8-way SMT
    /// machine: a contention-diverse six of the twelve-benchmark suite.
    /// Six keeps the full K = 8 table at 3 002 coschedules — hours, not
    /// days, of simulation at paper windows, and minutes at `--fast`.
    pub const K8_SUITE: [usize; 6] = [0, 2, 5, 7, 9, 11];

    /// Builds (or loads, like [`StudyConfig::build_table`]) the *really
    /// simulated* K = 8 performance table: [`MachineConfig::smt8`] over
    /// the [`StudyConfig::K8_SUITE`] benchmarks, all coschedule sizes
    /// 1..=8. Gated behind [`StudyConfig::simulated_k8`] by its callers.
    ///
    /// # Errors
    ///
    /// Propagates simulator/table/store errors.
    pub fn build_k8_table(&self) -> Result<PerfTable, StudyError> {
        let all = spec2006();
        let suite: Vec<_> = Self::K8_SUITE.iter().map(|&b| all[b].clone()).collect();
        self.table_for(MachineConfig::smt8(), suite)
    }

    /// Shared build-or-load path behind [`StudyConfig::build_table`] and
    /// [`StudyConfig::build_k8_table`].
    fn table_for(
        &self,
        machine: MachineConfig,
        suite: Vec<simproc::BenchmarkProfile>,
    ) -> Result<PerfTable, StudyError> {
        let machine = machine.with_windows(self.warmup_cycles, self.measure_cycles);
        match &self.table_cache {
            Some(dir) => {
                let store = TableStore::new(dir);
                let outcome = store.get_or_build(&machine, &suite, self.threads)?;
                if outcome.cache_hit {
                    obs::count!("sweep.table_cache_hit", 1);
                } else {
                    obs::count!("sweep.table_cache_miss", 1);
                }
                eprintln!(
                    "table cache {}: {}",
                    if outcome.cache_hit { "hit" } else { "miss" },
                    store.path_for(&machine, &suite).display()
                );
                Ok(outcome.table)
            }
            None => {
                let machine = Machine::new(machine)?;
                Ok(PerfTable::build(&machine, &suite, self.threads)?)
            }
        }
    }

    /// Applies this config's deterministic evenly-spaced sampling to a
    /// workload enumeration (identity when no sample is requested).
    pub fn sample_workloads(&self, all: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        match self.sample {
            None => all,
            Some(n) if n >= all.len() => all,
            Some(n) => {
                let stride = all.len() as f64 / n as f64;
                (0..n)
                    .map(|i| all[(i as f64 * stride) as usize].clone())
                    .collect()
            }
        }
    }

    /// Parses command-line arguments shared by the experiment binaries:
    /// `--fast` (test-scale), `--sample N`, `--jobs N`, `--threads N`,
    /// `--table-cache PATH`, `--lp-dense-limit N`,
    /// `--markov-dense-limit N`. When the cache flag is absent, the
    /// `SYMBIOSIS_TABLE_CACHE` environment variable supplies the cache
    /// directory.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or malformed numbers.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        Self::from_args_with_env(
            args,
            std::env::var_os("SYMBIOSIS_TABLE_CACHE"),
            std::env::var_os("SYMBIOSIS_TRACE"),
        )
    }

    /// [`StudyConfig::from_args`] with the `SYMBIOSIS_TABLE_CACHE` and
    /// `SYMBIOSIS_TRACE` values passed explicitly — the testable core
    /// (tests must not mutate the process environment, which is racy
    /// across test threads).
    fn from_args_with_env<I: IntoIterator<Item = String>>(
        args: I,
        env_cache: Option<std::ffi::OsString>,
        env_trace: Option<std::ffi::OsString>,
    ) -> Result<Self, String> {
        let args: Vec<String> = args.into_iter().collect();
        // `--fast` swaps in a whole-config preset, so apply it before the
        // flag loop regardless of its position — otherwise it would wipe
        // every flag parsed before it (`--worker ADDR --fast` must keep
        // the worker address).
        let mut cfg = if args.iter().any(|a| a == "--fast") {
            StudyConfig::fast()
        } else {
            StudyConfig::default()
        };
        let mut table_cache: Option<PathBuf> = None;
        let mut trace: Option<PathBuf> = None;
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut grab = |name: &str| iter.next().ok_or_else(|| format!("{name} needs a value"));
            match arg.as_str() {
                "--fast" => {}
                "--sample" => {
                    cfg.sample = Some(
                        grab("--sample")?
                            .parse()
                            .map_err(|e| format!("--sample: {e}"))?,
                    )
                }
                "--full" => cfg.sample = None,
                "--jobs" => {
                    cfg.fcfs_jobs = grab("--jobs")?
                        .parse()
                        .map_err(|e| format!("--jobs: {e}"))?
                }
                "--threads" => {
                    cfg.threads = grab("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?
                }
                "--table-cache" => table_cache = Some(PathBuf::from(grab("--table-cache")?)),
                "--trace" => trace = Some(PathBuf::from(grab("--trace")?)),
                "--lp-dense-limit" => {
                    cfg.lp_dense_limit = grab("--lp-dense-limit")?
                        .parse()
                        .map_err(|e| format!("--lp-dense-limit: {e}"))?
                }
                "--markov-dense-limit" => {
                    cfg.markov_dense_limit = grab("--markov-dense-limit")?
                        .parse()
                        .map_err(|e| format!("--markov-dense-limit: {e}"))?
                }
                "--markov-accel-limit" => {
                    cfg.markov_accel_limit = grab("--markov-accel-limit")?
                        .parse()
                        .map_err(|e| format!("--markov-accel-limit: {e}"))?
                }
                "--simulated-k8" => cfg.simulated_k8 = true,
                "--worker" => cfg.worker = Some(grab("--worker")?),
                "--distribute" => {
                    cfg.distribute = Some(DistributeSpec::parse(&grab("--distribute")?)?)
                }
                "--dist-retries" => {
                    cfg.dist_retries = grab("--dist-retries")?
                        .parse()
                        .map_err(|e| format!("--dist-retries: {e}"))?
                }
                "--dist-timeout-secs" => {
                    cfg.dist_timeout_secs = grab("--dist-timeout-secs")?
                        .parse()
                        .map_err(|e| format!("--dist-timeout-secs: {e}"))?;
                    if cfg.dist_timeout_secs == 0 {
                        return Err("--dist-timeout-secs must be positive".into());
                    }
                }
                "--dist-hedge" => cfg.dist_hedge = true,
                other => {
                    return Err(format!(
                        "unknown flag {other}; supported: --fast --full --sample N --jobs N \
                         --threads N --table-cache PATH --trace PATH --lp-dense-limit N \
                         --markov-dense-limit N --markov-accel-limit N \
                         --simulated-k8 --worker ADDR \
                         --distribute ADDR:NWORKERS --dist-retries N \
                         --dist-timeout-secs N --dist-hedge"
                    ))
                }
            }
        }
        cfg.table_cache =
            table_cache.or_else(|| env_cache.filter(|v| !v.is_empty()).map(PathBuf::from));
        cfg.trace = trace.or_else(|| env_trace.filter(|v| !v.is_empty()).map(PathBuf::from));
        Ok(cfg)
    }
}

/// Errors from study construction.
#[derive(Debug)]
pub enum StudyError {
    /// Simulator configuration failed.
    Machine(MachineError),
    /// Table build failed.
    Table(TableError),
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Machine(e) => write!(f, "machine: {e}"),
            StudyError::Table(e) => write!(f, "table: {e}"),
        }
    }
}

impl Error for StudyError {}

impl From<MachineError> for StudyError {
    fn from(e: MachineError) -> Self {
        StudyError::Machine(e)
    }
}

impl From<TableError> for StudyError {
    fn from(e: TableError) -> Self {
        StudyError::Table(e)
    }
}

/// The full experimental context: performance tables for both chips over
/// the 12-benchmark suite, plus the workload enumeration.
pub struct Study {
    config: StudyConfig,
    smt: PerfTable,
    quad: PerfTable,
}

impl Study {
    /// Builds performance tables for both configurations (the expensive
    /// part: every coschedule of sizes 1..=4 over the 12 benchmarks).
    ///
    /// # Errors
    ///
    /// Propagates simulator/table errors.
    pub fn new(config: StudyConfig) -> Result<Self, StudyError> {
        Ok(Study {
            smt: config.build_table(Chip::Smt.machine_config())?,
            quad: config.build_table(Chip::Quad.machine_config())?,
            config,
        })
    }

    /// The study configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The performance table for a chip.
    pub fn table(&self, chip: Chip) -> &PerfTable {
        match chip {
            Chip::Smt => &self.smt,
            Chip::Quad => &self.quad,
        }
    }

    /// The measured rate model for one workload on one chip — the source
    /// experiments hand to [`StudyConfig::session`].
    ///
    /// # Errors
    ///
    /// Propagates workload validation errors from the table.
    pub fn model(&self, chip: Chip, workload: &[usize]) -> Result<WorkloadView<'_>, TableError> {
        self.table(chip).workload_view(workload)
    }

    /// The analysed workloads: all `C(12, N)` combinations, or a
    /// deterministic evenly-spaced sample when the config requests one.
    pub fn workloads(&self) -> Vec<Vec<usize>> {
        self.config
            .sample_workloads(enumerate_workloads(12, self.config.workload_size))
    }

    /// Starts a batch sweep of this study's workloads on one chip's table,
    /// carrying the study's experiment parameters — the entry point the
    /// migrated experiments hang their policies on.
    pub fn sweep(&self, chip: Chip) -> SweepBuilder<'_> {
        self.config.sweep(self.table(chip), self.workloads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_args_parses_flags() {
        let cfg = StudyConfig::from_args(
            ["--sample", "7", "--jobs", "1000", "--threads", "2"].map(String::from),
        )
        .unwrap();
        assert_eq!(cfg.sample, Some(7));
        assert_eq!(cfg.fcfs_jobs, 1000);
        assert_eq!(cfg.threads, 2);
        assert!(StudyConfig::from_args(["--bogus".to_owned()]).is_err());
        assert!(StudyConfig::from_args(["--sample".to_owned()]).is_err());
    }

    #[test]
    fn from_args_parses_solver_thresholds() {
        let cfg = StudyConfig::from_args(
            [
                "--lp-dense-limit",
                "0",
                "--markov-dense-limit",
                "64",
                "--markov-accel-limit",
                "2048",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(cfg.lp_dense_limit, 0, "0 forces column generation");
        assert_eq!(cfg.markov_dense_limit, 64);
        assert_eq!(cfg.markov_accel_limit, 2048);
        let default = StudyConfig::default();
        assert_eq!(default.lp_dense_limit, symbiosis::DEFAULT_LP_DENSE_LIMIT);
        assert_eq!(
            default.markov_dense_limit,
            symbiosis::DEFAULT_MARKOV_DENSE_LIMIT
        );
        assert_eq!(
            default.markov_accel_limit,
            symbiosis::DEFAULT_MARKOV_ACCEL_LIMIT
        );
        assert!(StudyConfig::from_args(["--lp-dense-limit".to_owned()]).is_err());
    }

    #[test]
    fn from_args_parses_simulated_k8() {
        assert!(!StudyConfig::default().simulated_k8, "opt-in only");
        let cfg = StudyConfig::from_args(["--fast", "--simulated-k8"].map(String::from)).unwrap();
        assert!(cfg.simulated_k8);
        assert!(cfg.sample.is_some(), "other flags unaffected");
    }

    #[test]
    fn k8_suite_is_a_valid_sub_suite() {
        let names = workloads::spec_names();
        let mut seen = std::collections::HashSet::new();
        for &b in &StudyConfig::K8_SUITE {
            assert!(b < names.len(), "benchmark index {b} out of range");
            assert!(seen.insert(b), "duplicate benchmark {b}");
        }
    }

    #[test]
    fn from_args_parses_distribution_flags() {
        let cfg = StudyConfig::from_args(["--worker", "10.0.0.1:7077"].map(String::from)).unwrap();
        assert_eq!(cfg.worker.as_deref(), Some("10.0.0.1:7077"));
        assert_eq!(cfg.distribute, None);

        let cfg =
            StudyConfig::from_args(["--distribute", "0.0.0.0:7077:3"].map(String::from)).unwrap();
        let spec = cfg.distribute.expect("parsed");
        assert_eq!(spec.addr, "0.0.0.0:7077");
        assert_eq!(spec.workers, 3, "the last colon splits the worker count");

        assert!(StudyConfig::from_args(["--distribute", "noport"].map(String::from)).is_err());
        assert!(StudyConfig::from_args(["--distribute", "addr:0"].map(String::from)).is_err());
        assert!(StudyConfig::from_args(["--distribute", ":3"].map(String::from)).is_err());
        assert!(StudyConfig::from_args(["--worker".to_owned()]).is_err());
    }

    #[test]
    fn from_args_parses_dist_tuning_knobs() {
        let default = StudyConfig::default();
        assert_eq!(default.dist_retries, 2);
        assert_eq!(default.dist_timeout_secs, 120);
        assert!(!default.dist_hedge, "hedging is opt-in");

        let cfg = StudyConfig::from_args(
            [
                "--dist-retries",
                "5",
                "--dist-timeout-secs",
                "7",
                "--dist-hedge",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(cfg.dist_retries, 5);
        assert_eq!(cfg.dist_timeout_secs, 7);
        assert!(cfg.dist_hedge);
        let dc = cfg.dist_config();
        assert_eq!(dc.retry_budget, 5);
        assert_eq!(dc.recv_timeout, std::time::Duration::from_secs(7));
        assert!(dc.hedge);
        assert_eq!(
            dc.chunk_size,
            dist::DistConfig::default().chunk_size,
            "untouched knobs keep their defaults"
        );

        assert!(StudyConfig::from_args(["--dist-retries".to_owned()]).is_err());
        assert!(
            StudyConfig::from_args(["--dist-timeout-secs", "0"].map(String::from)).is_err(),
            "a zero timeout would make every worker look dead"
        );
    }

    #[test]
    fn fast_preset_applies_first_regardless_of_position() {
        // `--fast` must not clobber flags that precede it on the line.
        let cfg = StudyConfig::from_args(
            ["--worker", "10.0.0.1:7077", "--fast", "--sample", "3"].map(String::from),
        )
        .unwrap();
        assert_eq!(cfg.worker.as_deref(), Some("10.0.0.1:7077"));
        assert_eq!(cfg.sample, Some(3));
        let cfg = StudyConfig::from_args(["--sample", "3", "--fast"].map(String::from)).unwrap();
        assert_eq!(cfg.sample, Some(3), "explicit sample beats the preset");
        assert_eq!(cfg.fcfs_jobs, StudyConfig::fast().fcfs_jobs);
    }

    #[test]
    fn run_sweep_without_distribution_runs_in_process() {
        use session::{Policy, Session};
        let cfg = StudyConfig::fast();
        // An invalid sweep surfaces the builder's own error text.
        let err = cfg
            .run_sweep(Session::sweep().policies([Policy::Optimal]))
            .expect_err("no table configured");
        assert!(err.contains("table"), "unexpected error: {err}");
    }

    #[test]
    fn from_args_parses_table_cache() {
        let cfg = StudyConfig::from_args(["--fast", "--table-cache", "/tmp/tc"].map(String::from))
            .unwrap();
        assert_eq!(cfg.table_cache, Some(PathBuf::from("/tmp/tc")));
        assert!(StudyConfig::from_args(["--table-cache".to_owned()]).is_err());
        // The env fallback kicks in only when the flag is absent; the flag
        // wins when both are present. (Injected value — tests must not
        // mutate the real process environment.)
        let env = Some(std::ffi::OsString::from("/tmp/from-env"));
        let via_env =
            StudyConfig::from_args_with_env(["--fast".to_owned()], env.clone(), None).unwrap();
        assert_eq!(via_env.table_cache, Some(PathBuf::from("/tmp/from-env")));
        let via_flag = StudyConfig::from_args_with_env(
            ["--table-cache", "/tmp/explicit"].map(String::from),
            env,
            None,
        )
        .unwrap();
        assert_eq!(via_flag.table_cache, Some(PathBuf::from("/tmp/explicit")));
        let empty = StudyConfig::from_args_with_env(
            ["--fast".to_owned()],
            Some(std::ffi::OsString::new()),
            None,
        )
        .unwrap();
        assert_eq!(empty.table_cache, None, "empty env value is ignored");
    }

    #[test]
    fn from_args_parses_trace() {
        let cfg =
            StudyConfig::from_args(["--fast", "--trace", "/tmp/t.jsonl"].map(String::from))
                .unwrap();
        assert_eq!(cfg.trace, Some(PathBuf::from("/tmp/t.jsonl")));
        assert!(StudyConfig::from_args(["--trace".to_owned()]).is_err());
        // Same env-fallback contract as the table cache: env fills in when
        // the flag is absent, the flag wins, an empty value is ignored.
        let env = Some(std::ffi::OsString::from("/tmp/env.jsonl"));
        let via_env =
            StudyConfig::from_args_with_env(["--fast".to_owned()], None, env.clone()).unwrap();
        assert_eq!(via_env.trace, Some(PathBuf::from("/tmp/env.jsonl")));
        let via_flag = StudyConfig::from_args_with_env(
            ["--trace", "/tmp/flag.jsonl"].map(String::from),
            None,
            env,
        )
        .unwrap();
        assert_eq!(via_flag.trace, Some(PathBuf::from("/tmp/flag.jsonl")));
        let empty = StudyConfig::from_args_with_env(
            ["--fast".to_owned()],
            None,
            Some(std::ffi::OsString::new()),
        )
        .unwrap();
        assert_eq!(empty.trace, None, "empty env value is ignored");
    }

    #[test]
    fn sample_workloads_is_deterministic_and_bounded() {
        let mut cfg = StudyConfig::fast();
        let all: Vec<Vec<usize>> = (0..100).map(|i| vec![i]).collect();
        cfg.sample = Some(10);
        let a = cfg.sample_workloads(all.clone());
        let b = cfg.sample_workloads(all.clone());
        assert_eq!(a, b, "sampling is deterministic");
        assert_eq!(a.len(), 10);
        cfg.sample = Some(1000);
        assert_eq!(cfg.sample_workloads(all.clone()).len(), 100, "capped");
        cfg.sample = None;
        assert_eq!(cfg.sample_workloads(all.clone()), all, "identity");
    }

    #[test]
    fn build_table_caches_and_reloads_identically() {
        let dir = std::env::temp_dir().join(format!("symb-study-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = StudyConfig::fast();
        cfg.warmup_cycles = 500;
        cfg.measure_cycles = 1_500;
        cfg.table_cache = Some(dir.clone());
        let cold = cfg.build_table(Chip::Smt.machine_config()).unwrap();
        let cached: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(cached.len(), 1, "one cache file after the cold build");
        let warm = cfg.build_table(Chip::Smt.machine_config()).unwrap();
        // The warm path loads the saved file (the store tests pin that no
        // simulation runs); the loaded table must be bitwise faithful.
        assert_eq!(cold, warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fast_config_is_reduced() {
        let fast = StudyConfig::fast();
        let full = StudyConfig::default();
        assert!(fast.measure_cycles < full.measure_cycles);
        assert!(fast.sample.is_some());
    }

    #[test]
    fn config_driven_session_carries_study_parameters() {
        use session::{Policy, SessionError};
        let mut cfg = StudyConfig::fast();
        cfg.fcfs_jobs = 123;
        // The builder is preconfigured but has no rate source yet.
        let err = cfg.session().policy(Policy::Optimal).run();
        assert!(matches!(err, Err(SessionError::MissingRates)));
    }

    #[test]
    fn chip_labels_and_configs() {
        assert_eq!(Chip::Smt.label(), "SMT");
        assert_eq!(Chip::Quad.label(), "quad-core");
        assert_eq!(Chip::Smt.machine_config().contexts(), 4);
        assert_eq!(Chip::Quad.machine_config().contexts(), 4);
    }
}
