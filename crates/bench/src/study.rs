//! Shared experiment context: machine configurations, performance tables
//! and workload enumeration used by all figure/table reproductions.

use std::error::Error;
use std::fmt;

use session::{Session, SessionBuilder};
use simproc::{Machine, MachineConfig, MachineError};
use symbiosis::enumerate_workloads;
use workloads::{spec2006, PerfTable, TableError, WorkloadView};

/// Which of the paper's two machine configurations an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Chip {
    /// 4-way SMT, 4-wide out-of-order core (Section V-A, first config).
    Smt,
    /// Quad-core with private L1/L2, shared L3 + bus (second config).
    Quad,
}

impl Chip {
    /// Both configurations, in paper order.
    pub const ALL: [Chip; 2] = [Chip::Smt, Chip::Quad];

    /// Human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Chip::Smt => "SMT",
            Chip::Quad => "quad-core",
        }
    }

    /// The corresponding simulator configuration.
    pub fn machine_config(&self) -> MachineConfig {
        match self {
            Chip::Smt => MachineConfig::smt4(),
            Chip::Quad => MachineConfig::quadcore(),
        }
    }
}

/// Tunables for a study run; defaults reproduce the paper-scale setup.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyConfig {
    /// Simulator warm-up window in cycles.
    pub warmup_cycles: u64,
    /// Simulator measurement window in cycles.
    pub measure_cycles: u64,
    /// Job types per workload (the paper's default N = 4).
    pub workload_size: usize,
    /// Jobs completed per FCFS maximum-throughput experiment.
    pub fcfs_jobs: u64,
    /// If set, analyse only a deterministic sample of this many workloads
    /// (the full set is 495 for N = 4 over 12 benchmarks).
    pub sample: Option<usize>,
    /// OS threads for table building and per-workload sweeps.
    pub threads: usize,
    /// Base RNG seed for the stochastic experiment legs.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            warmup_cycles: 60_000,
            measure_cycles: 240_000,
            workload_size: 4,
            fcfs_jobs: 40_000,
            sample: None,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: 0x15_BA_55,
        }
    }
}

impl StudyConfig {
    /// A reduced configuration for tests: short simulator windows, few
    /// FCFS jobs, a 12-workload sample.
    pub fn fast() -> Self {
        StudyConfig {
            warmup_cycles: 2_000,
            measure_cycles: 8_000,
            fcfs_jobs: 4_000,
            sample: Some(12),
            ..StudyConfig::default()
        }
    }

    /// Starts a [`Session`] builder carrying this study's experiment
    /// parameters (FCFS job count, base seed, thread count) — the
    /// config-driven entry point every experiment hangs its policies on.
    pub fn session(&self) -> SessionBuilder<'static> {
        Session::builder()
            .fcfs_jobs(self.fcfs_jobs)
            .seed(self.seed)
            .threads(self.threads)
    }

    /// Parses command-line arguments shared by the experiment binaries:
    /// `--fast` (test-scale), `--sample N`, `--jobs N`, `--threads N`.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or malformed numbers.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut cfg = StudyConfig::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut grab = |name: &str| iter.next().ok_or_else(|| format!("{name} needs a value"));
            match arg.as_str() {
                "--fast" => cfg = StudyConfig::fast(),
                "--sample" => {
                    cfg.sample = Some(
                        grab("--sample")?
                            .parse()
                            .map_err(|e| format!("--sample: {e}"))?,
                    )
                }
                "--full" => cfg.sample = None,
                "--jobs" => {
                    cfg.fcfs_jobs = grab("--jobs")?
                        .parse()
                        .map_err(|e| format!("--jobs: {e}"))?
                }
                "--threads" => {
                    cfg.threads = grab("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?
                }
                other => {
                    return Err(format!(
                        "unknown flag {other}; supported: --fast --full --sample N --jobs N --threads N"
                    ))
                }
            }
        }
        Ok(cfg)
    }
}

/// Errors from study construction.
#[derive(Debug)]
pub enum StudyError {
    /// Simulator configuration failed.
    Machine(MachineError),
    /// Table build failed.
    Table(TableError),
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Machine(e) => write!(f, "machine: {e}"),
            StudyError::Table(e) => write!(f, "table: {e}"),
        }
    }
}

impl Error for StudyError {}

impl From<MachineError> for StudyError {
    fn from(e: MachineError) -> Self {
        StudyError::Machine(e)
    }
}

impl From<TableError> for StudyError {
    fn from(e: TableError) -> Self {
        StudyError::Table(e)
    }
}

/// The full experimental context: performance tables for both chips over
/// the 12-benchmark suite, plus the workload enumeration.
pub struct Study {
    config: StudyConfig,
    smt: PerfTable,
    quad: PerfTable,
}

impl Study {
    /// Builds performance tables for both configurations (the expensive
    /// part: every coschedule of sizes 1..=4 over the 12 benchmarks).
    ///
    /// # Errors
    ///
    /// Propagates simulator/table errors.
    pub fn new(config: StudyConfig) -> Result<Self, StudyError> {
        let suite = spec2006();
        let build = |mc: MachineConfig| -> Result<PerfTable, StudyError> {
            let machine =
                Machine::new(mc.with_windows(config.warmup_cycles, config.measure_cycles))?;
            Ok(PerfTable::build(&machine, &suite, config.threads)?)
        };
        Ok(Study {
            smt: build(Chip::Smt.machine_config())?,
            quad: build(Chip::Quad.machine_config())?,
            config,
        })
    }

    /// The study configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The performance table for a chip.
    pub fn table(&self, chip: Chip) -> &PerfTable {
        match chip {
            Chip::Smt => &self.smt,
            Chip::Quad => &self.quad,
        }
    }

    /// The measured rate model for one workload on one chip — the source
    /// experiments hand to [`StudyConfig::session`].
    ///
    /// # Errors
    ///
    /// Propagates workload validation errors from the table.
    pub fn model(&self, chip: Chip, workload: &[usize]) -> Result<WorkloadView<'_>, TableError> {
        self.table(chip).workload_view(workload)
    }

    /// The analysed workloads: all `C(12, N)` combinations, or a
    /// deterministic evenly-spaced sample when the config requests one.
    pub fn workloads(&self) -> Vec<Vec<usize>> {
        let all = enumerate_workloads(12, self.config.workload_size);
        match self.config.sample {
            None => all,
            Some(n) if n >= all.len() => all,
            Some(n) => {
                // Evenly spaced, deterministic sample.
                let stride = all.len() as f64 / n as f64;
                (0..n)
                    .map(|i| all[(i as f64 * stride) as usize].clone())
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_args_parses_flags() {
        let cfg = StudyConfig::from_args(
            ["--sample", "7", "--jobs", "1000", "--threads", "2"].map(String::from),
        )
        .unwrap();
        assert_eq!(cfg.sample, Some(7));
        assert_eq!(cfg.fcfs_jobs, 1000);
        assert_eq!(cfg.threads, 2);
        assert!(StudyConfig::from_args(["--bogus".to_owned()]).is_err());
        assert!(StudyConfig::from_args(["--sample".to_owned()]).is_err());
    }

    #[test]
    fn fast_config_is_reduced() {
        let fast = StudyConfig::fast();
        let full = StudyConfig::default();
        assert!(fast.measure_cycles < full.measure_cycles);
        assert!(fast.sample.is_some());
    }

    #[test]
    fn config_driven_session_carries_study_parameters() {
        use session::{Policy, SessionError};
        let mut cfg = StudyConfig::fast();
        cfg.fcfs_jobs = 123;
        // The builder is preconfigured but has no rate source yet.
        let err = cfg.session().policy(Policy::Optimal).run();
        assert!(matches!(err, Err(SessionError::MissingRates)));
    }

    #[test]
    fn chip_labels_and_configs() {
        assert_eq!(Chip::Smt.label(), "SMT");
        assert_eq!(Chip::Quad.label(), "quad-core");
        assert_eq!(Chip::Smt.machine_config().contexts(), 4);
        assert_eq!(Chip::Quad.machine_config().contexts(), 4);
    }
}
