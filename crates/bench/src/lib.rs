//! Experiment harness for the ISPASS 2015 reproduction.
//!
//! Each module under [`experiments`] regenerates one table or figure of
//! *"Revisiting Symbiotic Job Scheduling"*. Every experiment implements
//! the [`experiments::Experiment`] trait and is listed in
//! [`experiments::REGISTRY`], so the unified driver binary runs any of
//! them by name (`cargo run --release -p paperbench --bin paperbench --
//! fig1`, or `-- all` for every artefact); the historical per-experiment
//! binaries (`--bin fig1`, ...) survive as thin shims over the same
//! registry.
//!
//! All experiments accept a [`StudyConfig`]; `--fast` produces test-scale
//! runs, the default reproduces the paper-scale sweep (full simulator
//! windows, all 495 workloads unless `--sample N` is given). With
//! `--table-cache PATH` (or `SYMBIOSIS_TABLE_CACHE`) performance tables
//! persist in a [`workloads::TableStore`], so repeated runs skip the
//! simulation sweep entirely. Every per-workload fan-out — including the
//! latency and batch (makespan) legs — goes through
//! [`session::Session::sweep`].

pub mod cli;
pub mod delta;
pub mod experiments;
pub mod study;

pub use experiments::{by_name, Experiment, ExperimentContext, REGISTRY};
pub use study::{Chip, Study, StudyConfig, StudyError};

// The aggregation helpers migrated into the API layer next to
// `session::SweepReport`; they are re-exported here so experiment code and
// downstream callers keep their spelling.
pub use session::stats::{kendall_tau, max, mean, min, pct, pearson};
