//! Experiment harness for the ISPASS 2015 reproduction.
//!
//! Each module under [`experiments`] regenerates one table or figure of
//! *"Revisiting Symbiotic Job Scheduling"*; the binaries in `src/bin/`
//! print them (`cargo run --release -p paperbench --bin fig1`). The
//! mapping from paper artefact to module/binary is indexed in the
//! repository's `DESIGN.md`.
//!
//! All experiments accept a [`StudyConfig`]; `--fast` produces test-scale
//! runs, the default reproduces the paper-scale sweep (full simulator
//! windows, all 495 workloads unless `--sample N` is given).

pub mod experiments;
pub mod study;

pub use study::{Chip, Study, StudyConfig, StudyError};

/// Applies `f` to every item on up to `threads` OS threads, preserving
/// input order in the output.
///
/// # Panics
///
/// Propagates panics from `f`.
///
/// # Examples
///
/// ```
/// let squares = paperbench::parallel_map(&[1, 2, 3], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    let chunk = items.len().div_ceil(threads).max(1);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let slots: Vec<&mut [Option<R>]> = out.chunks_mut(chunk).collect();
    let f_ref = &f;
    std::thread::scope(|scope| {
        for (piece, slot) in items.chunks(chunk).zip(slots) {
            scope.spawn(move || {
                for (item, cell) in piece.iter().zip(slot.iter_mut()) {
                    *cell = Some(f_ref(item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("filled")).collect()
}

/// Formats a fraction as a signed percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", 100.0 * x)
}

/// Mean of a slice; 0 for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Maximum of a slice; `NEG_INFINITY` for empty input.
pub fn max(values: &[f64]) -> f64 {
    values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

/// Minimum of a slice; `INFINITY` for empty input.
pub fn min(values: &[f64]) -> f64 {
    values.iter().cloned().fold(f64::INFINITY, f64::min)
}

/// Pearson correlation coefficient of two equal-length samples; `None`
/// when degenerate (fewer than two points or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    if sxx < 1e-300 || syy < 1e-300 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, 7, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        // Degenerate thread counts.
        assert_eq!(parallel_map(&items, 0, |&x| x), items);
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x: &u64| x).is_empty());
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(max(&[1.0, 3.0]), 3.0);
        assert_eq!(min(&[1.0, 3.0]), 1.0);
        assert_eq!(pct(0.031), "+3.1%");
        assert_eq!(pct(-0.09), "-9.0%");
    }

    #[test]
    fn pearson_detects_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let ys_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &ys_neg).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]).is_none());
        assert!(pearson(&[1.0], &[1.0]).is_none());
    }
}
