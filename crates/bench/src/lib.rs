//! Experiment harness for the ISPASS 2015 reproduction.
//!
//! Each module under [`experiments`] regenerates one table or figure of
//! *"Revisiting Symbiotic Job Scheduling"*; the binaries in `src/bin/`
//! print them (`cargo run --release -p paperbench --bin fig1`). The
//! mapping from paper artefact to module/binary is indexed in the
//! repository's `DESIGN.md`.
//!
//! All experiments accept a [`StudyConfig`]; `--fast` produces test-scale
//! runs, the default reproduces the paper-scale sweep (full simulator
//! windows, all 495 workloads unless `--sample N` is given). With
//! `--table-cache PATH` (or `SYMBIOSIS_TABLE_CACHE`) performance tables
//! persist in a [`workloads::TableStore`], so repeated runs skip the
//! simulation sweep entirely; the workload fan-out itself goes through
//! [`session::Session::sweep`].

pub mod experiments;
pub mod study;

pub use study::{Chip, Study, StudyConfig, StudyError};

// The aggregation helpers migrated into the API layer next to
// `session::SweepReport`; they are re-exported here so experiment code and
// downstream callers keep their spelling.
pub use session::stats::{max, mean, min, pct, pearson};

/// Applies `f` to every item on up to `threads` OS threads, preserving
/// input order in the output.
///
/// A thin shim over [`session::WorkerPool::map`], kept for the experiments
/// whose per-workload leg has no `Session` form yet. New sweep-shaped code
/// should go through [`session::Session::sweep`] instead, which shares the
/// performance table and reports through [`session::SweepReport`].
///
/// # Panics
///
/// Propagates panics from `f`.
///
/// # Examples
///
/// ```
/// let squares = paperbench::parallel_map(&[1, 2, 3], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    session::WorkerPool::new(threads).map(items, |_, item| f(item))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, 7, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        // Degenerate thread counts.
        assert_eq!(parallel_map(&items, 0, |&x| x), items);
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x: &u64| x).is_empty());
    }
}
