//! The recorder: lock-cheap metric primitives behind a shared registry.
//!
//! Registration (first use of a name) takes a mutex on the registry map;
//! every subsequent touch of a returned handle is pure atomics. Hot call
//! sites that fire many times per solve fetch the handle once and reuse
//! it; casual sites go through the `count!`/`observe!` macros, which
//! re-look the handle up per call (a short mutex hold — fine at
//! per-solve / per-chunk / per-frame granularity).

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::snapshot::{GaugeSummary, HistogramSummary, MetricsSnapshot};
use crate::trace::json_escape;

/// Severity of a structured [`event!`](crate::event!).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Developer-facing detail (convergence chatter, dispatch decisions).
    Debug = 0,
    /// Normal operational milestones.
    Info = 1,
    /// Degraded but recoverable conditions (rejected worker, open breaker).
    Warn = 2,
    /// Fatal or data-losing conditions.
    Error = 3,
}

impl Level {
    /// Lower-case name used in trace lines (`"warn"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses the lower-case form emitted by [`Level::as_str`].
    pub fn parse(s: &str) -> Option<Level> {
        Some(match s {
            "debug" => Level::Debug,
            "info" => Level::Info,
            "warn" => Level::Warn,
            "error" => Level::Error,
            _ => return None,
        })
    }
}

/// Upper bounds of the shared fixed histogram buckets (one overflow
/// bucket follows the last bound). Spans record µs, so the range covers
/// sub-µs kernels up to ~17-minute sweeps.
pub const BUCKET_BOUNDS: [f64; 20] = [
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5,
    1e6, 1e7, 1e8, 1e9,
];

/// A monotonically increasing counter handle. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicI64,
    max: AtomicI64,
}

/// A set/add gauge handle that also tracks its peak value.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    /// Sets the value (peak updates automatically).
    pub fn set(&self, v: i64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` and returns the new value.
    pub fn add(&self, delta: i64) -> i64 {
        let now = self.0.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.0.max.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Peak value observed so far.
    pub fn max(&self) -> i64 {
        self.0.max.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCell {
    // One slot per BUCKET_BOUNDS entry plus the overflow bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    // f64 sum accumulated through its bit pattern (CAS loop): samples per
    // histogram are few enough that contention is negligible.
    sum_bits: AtomicU64,
}

impl Default for HistCell {
    fn default() -> Self {
        HistCell {
            buckets: (0..=BUCKET_BOUNDS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// A fixed-bucket histogram handle ([`BUCKET_BOUNDS`] plus overflow).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCell>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: f64) {
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.0.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed)),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

struct RecorderInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    trace: Option<Mutex<Box<dyn Write + Send>>>,
    // Minimum level written to the trace stream (counters update
    // regardless; stderr mirroring is fixed at Warn).
    trace_level: AtomicU8,
    seq: AtomicU64,
    start: Instant,
}

/// The shared metric registry plus optional JSONL trace sink. `Clone` is
/// cheap (an `Arc`); all clones observe the same registry.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("traced", &self.inner.trace.is_some())
            .finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder with metrics only (no trace stream).
    pub fn new() -> Self {
        Recorder::build(None)
    }

    /// A recorder that additionally appends one JSON object per line to
    /// `sink` — see [`crate::validate`] for the schema.
    pub fn with_trace(sink: Box<dyn Write + Send>) -> Self {
        Recorder::build(Some(Mutex::new(sink)))
    }

    fn build(trace: Option<Mutex<Box<dyn Write + Send>>>) -> Self {
        Recorder {
            inner: Arc::new(RecorderInner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                trace,
                trace_level: AtomicU8::new(Level::Debug as u8),
                seq: AtomicU64::new(0),
                start: Instant::now(),
            }),
        }
    }

    /// Raises the minimum severity written to the trace stream (metrics
    /// are unaffected).
    pub fn set_trace_level(&self, level: Level) {
        self.inner.trace_level.store(level as u8, Ordering::Relaxed);
    }

    /// The counter registered under `name` (registering it on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.lock(&self.inner.counters);
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter(Arc::new(AtomicU64::new(0)));
                map.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// The gauge registered under `name` (registering it on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.lock(&self.inner.gauges);
        match map.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Gauge(Arc::new(GaugeCell::default()));
                map.insert(name.to_string(), g.clone());
                g
            }
        }
    }

    /// The histogram registered under `name` (registering it on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.lock(&self.inner.histograms);
        match map.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Histogram(Arc::new(HistCell::default()));
                map.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    fn lock<'a, T>(&self, m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Opens a timed span: duration lands in the `name` histogram (µs)
    /// when the guard drops, and a `span` trace line records name,
    /// duration, and nesting depth.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let depth = SPAN_DEPTH.with(|d| {
            let cur = d.get();
            d.set(cur + 1);
            cur
        });
        SpanGuard {
            recorder: self.clone(),
            name,
            depth,
            start: Instant::now(),
        }
    }

    /// Records one leveled structured event: a counter named after the
    /// event increments, the trace stream (if any, and if at or above the
    /// trace level) gets an `event` line, and `Warn`/`Error` mirror to
    /// stderr so operational warnings survive with tracing disabled.
    pub fn event(&self, level: Level, name: &str, message: &str) {
        self.counter(name).add(1);
        if level >= Level::Warn {
            eprintln!("{name}: {message}");
        }
        if level as u8 >= self.inner.trace_level.load(Ordering::Relaxed) {
            self.emit(|seq, ts_us| {
                format!(
                    "{{\"kind\":\"event\",\"seq\":{seq},\"ts_us\":{ts_us},\"level\":\"{}\",\"name\":\"{}\",\"message\":\"{}\"}}",
                    level.as_str(),
                    json_escape(name),
                    json_escape(message)
                )
            });
        }
    }

    /// Whether a trace sink is attached.
    pub fn traced(&self) -> bool {
        self.inner.trace.is_some()
    }

    fn emit<F: FnOnce(u64, u128) -> String>(&self, line: F) {
        let Some(sink) = &self.inner.trace else {
            return;
        };
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let ts_us = self.inner.start.elapsed().as_micros();
        let line = line(seq, ts_us);
        let mut sink = sink.lock().unwrap_or_else(|p| p.into_inner());
        let _ = writeln!(sink, "{line}");
    }

    /// Dumps the current value of every counter, gauge, and histogram to
    /// the trace stream (one line each) and flushes the sink. A no-op
    /// without a sink.
    pub fn trace_snapshot(&self) {
        if self.inner.trace.is_none() {
            return;
        }
        let snap = self.snapshot();
        for (name, value) in &snap.counters {
            self.emit(|seq, ts_us| {
                format!(
                    "{{\"kind\":\"counter\",\"seq\":{seq},\"ts_us\":{ts_us},\"name\":\"{}\",\"value\":{value}}}",
                    json_escape(name)
                )
            });
        }
        for (name, g) in &snap.gauges {
            self.emit(|seq, ts_us| {
                format!(
                    "{{\"kind\":\"gauge\",\"seq\":{seq},\"ts_us\":{ts_us},\"name\":\"{}\",\"value\":{},\"max\":{}}}",
                    json_escape(name),
                    g.value,
                    g.max
                )
            });
        }
        for (name, h) in &snap.histograms {
            self.emit(|seq, ts_us| {
                format!(
                    "{{\"kind\":\"hist\",\"seq\":{seq},\"ts_us\":{ts_us},\"name\":\"{}\",\"count\":{},\"sum\":{}}}",
                    json_escape(name),
                    h.count,
                    // Emit a JSON-safe number (NaN/inf cannot occur: sums
                    // of finite samples).
                    h.sum
                )
            });
        }
        self.flush();
    }

    /// Flushes the trace sink (a no-op without one).
    pub fn flush(&self) {
        if let Some(sink) = &self.inner.trace {
            let _ = sink.lock().unwrap_or_else(|p| p.into_inner()).flush();
        }
    }

    /// Point-in-time copy of every registered metric, deterministically
    /// ordered by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .lock(&self.inner.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .lock(&self.inner.gauges)
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        GaugeSummary {
                            value: v.get(),
                            max: v.max(),
                        },
                    )
                })
                .collect(),
            histograms: self
                .lock(&self.inner.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

thread_local! {
    static SPAN_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Guard returned by [`Recorder::span`] / [`span!`](crate::span!):
/// records the elapsed time on drop.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records ~0"]
pub struct SpanGuard {
    recorder: Recorder,
    name: &'static str,
    depth: u32,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur_us = self.start.elapsed().as_micros();
        self.recorder.histogram(self.name).record(dur_us as f64);
        let (name, depth) = (self.name, self.depth);
        self.recorder.emit(|seq, ts_us| {
            format!(
                "{{\"kind\":\"span\",\"seq\":{seq},\"ts_us\":{ts_us},\"name\":\"{}\",\"dur_us\":{dur_us},\"depth\":{depth}}}",
                json_escape(name)
            )
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_register_once() {
        let r = Recorder::new();
        r.counter("c").add(2);
        r.counter("c").add(3);
        assert_eq!(r.counter("c").get(), 5);

        let g = r.gauge("g");
        g.set(7);
        g.add(-3);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.max(), 7, "peak survives later lower values");

        r.histogram("h").record(3.0);
        r.histogram("h").record(900.0);
        let snap = r.snapshot();
        assert_eq!(snap.histograms["h"].count, 2);
        assert_eq!(snap.histograms["h"].sum, 903.0);
        // 3.0 lands in the `<= 5` bucket (index 2), 900 in `<= 1e3` (9).
        assert_eq!(snap.histograms["h"].buckets[2], 1);
        assert_eq!(snap.histograms["h"].buckets[9], 1);
    }

    #[test]
    fn overflow_bucket_catches_huge_samples() {
        let r = Recorder::new();
        r.histogram("h").record(1e12);
        let snap = r.snapshot();
        assert_eq!(*snap.histograms["h"].buckets.last().unwrap(), 1);
    }

    #[test]
    fn trace_lines_are_emitted_per_span_and_event() {
        use std::sync::{Arc, Mutex};
        #[derive(Clone)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf(Arc::new(Mutex::new(Vec::new())));
        let r = Recorder::with_trace(Box::new(buf.clone()));
        {
            let _s = r.span("scope");
            r.event(Level::Debug, "ev", "m \"quoted\"");
        }
        r.trace_snapshot();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"kind\":\"event\""), "{text}");
        assert!(text.contains("\"kind\":\"span\""), "{text}");
        assert!(text.contains("\"kind\":\"counter\""), "{text}");
        assert!(text.contains("m \\\"quoted\\\""), "escaped: {text}");
        crate::validate::validate_trace(&text).expect("own output must validate");
    }
}
