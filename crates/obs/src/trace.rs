//! JSON string escaping for the hand-rolled trace emitter (no external
//! JSON dependency anywhere in the workspace).

/// Escapes `s` for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
