//! Structured tracing, metrics, and profiling hooks for the whole stack.
//!
//! Every layer of the reproduction — the sparse/colgen solvers, the
//! `Session::sweep()` fan-out, the distributed coordinator, and the online
//! serving loop — reports into one lock-cheap [`Recorder`]: monotonic
//! [`Counter`]s, set/add [`Gauge`]s with peak tracking, fixed-bucket
//! [`Histogram`]s, timed nested spans ([`span!`]), and severity-leveled
//! structured events ([`event!`]) that replace ad-hoc prints.
//!
//! # Context model
//!
//! Instrumentation sites never thread a recorder parameter through hot
//! APIs (the stationary solvers are pure functions). Instead they look up
//! the *current* recorder: a thread-local stack ([`install`]) consulted
//! first, then a process-global default ([`set_global`], which
//! `paperbench --trace PATH` / `SYMBIOSIS_TRACE` sets at startup). Fan-out
//! layers (the sweep worker pool, coordinator connection threads, the
//! background twin) capture [`current`] on the parent thread and install
//! it inside their workers, so one recorder observes a whole run across
//! threads.
//!
//! When no recorder is installed anywhere, every macro is a thread-local
//! read plus one relaxed atomic load — no allocation, no locks, no
//! formatting — so the disabled path stays invisible in the kernel
//! benchmarks ([`event!`] at `Warn`/`Error` still reaches stderr, so
//! operational warnings survive with tracing off).
//!
//! # Reports
//!
//! Batch surfaces embed a [`MetricsSnapshot`] *delta* (snapshot after
//! minus snapshot before, [`MetricsSnapshot::diff`]) so each
//! `SweepReport` / `DistOutcome` / `ServeReport` carries exactly the
//! activity of its own run even when one long-lived recorder spans many.
//!
//! # Trace stream
//!
//! A recorder built with [`Recorder::with_trace`] appends one JSON object
//! per line to the sink: `span` lines as timed scopes close, `event`
//! lines as leveled events fire, and `counter`/`gauge`/`hist` lines when
//! [`Recorder::trace_snapshot`] dumps final values. [`validate`] checks a
//! captured stream against the exact schema (unknown fields fail); the
//! `obs-smoke` CI job runs it over a real `paperbench obs --trace` run.
//!
//! # Instrumentation-point matrix
//!
//! | layer | name | type | site |
//! |-------|------|------|------|
//! | solver | `lp.gauss_seidel.sweeps` | counter | `lp::sparse::stationary_gauss_seidel` |
//! | solver | `lp.sor.sweeps` | counter | `lp::sparse::stationary_sor` |
//! | solver | `lp.multicolor.sweeps` | counter | `lp::sparse::stationary_multicolor` |
//! | solver | `lp.solve.residual_neglog10` | histogram | final residual, all three stationary solvers |
//! | solver | `lp.colgen.pricing_rounds` | counter | `lp::revised::solve_colgen` |
//! | solver | `solver.markov.dense` / `.gauss_seidel` / `.sor` / `.multicolor` | counter | dense↔sparse dispatch in `symbiosis::fcfs` |
//! | solver | `fcfs.markov_solve` | span | whole stationary solve |
//! | solver | `solver.lp.dense` / `.colgen` | counter | `ScheduleLp::solve` dispatch |
//! | solver | `optimal.lp_solve` | span | whole LP solve |
//! | sweep | `sweep.items` | counter | per workload evaluated |
//! | sweep | `sweep.item_us` | histogram | per-workload latency in the pool |
//! | sweep | `sweep.pool_active` | gauge (peak) | concurrent workers at item start |
//! | sweep | `sweep.run` | span | whole `SweepBuilder::run` |
//! | sweep | `sweep.table_cache_hit` / `sweep.table_cache_miss` | counter | bench study `TableStore` lookups |
//! | dist | `dist.run` | span | whole `Coordinator::run` |
//! | dist | `dist.frames_sent` / `dist.frames_received` | counter | coordinator + worker frame I/O |
//! | dist | `dist.bytes_sent` / `dist.bytes_received` | counter | encoded frame bytes on the wire |
//! | dist | `dist.chunks_completed` / `dist.requeues` / `dist.hedges` / `dist.duplicates_discarded` / `dist.strikes` | counter | coordinator accounting |
//! | dist | `dist.chunk_us` | histogram | per-chunk worker latency (coordinator-side) |
//! | dist | `dist.table_cache_hit` / `dist.table_cache_miss` | counter | worker `TableStore` lookups |
//! | dist | `dist.worker_rejected` | event (warn) | coordinator version-skew rejection |
//! | dist | `dist.strike` / `dist.quarantine` / `dist.chunk_requeued` / `dist.hedge` | event (debug) | coordinator fault handling |
//! | dist | `dist.worker.table_cache_write_failed` | event (warn) | worker table-cache write failure |
//! | dist | `chaos.drop` / `chaos.delay` / `chaos.duplicate` / `chaos.corrupt` / `chaos.hang` / `chaos.crash` | counter | `ChaosTransport` fault injection |
//! | serve | `serve.run` | span | whole `run_serve` |
//! | serve | `serve.queue_depth` | gauge (peak) | run loop, before each drain |
//! | serve | `serve.shed` | counter | arrivals bounced by the full queue |
//! | serve | `serve.place_us` | histogram | dispatcher fill latency |
//! | serve | `twin.refit_us` | histogram | model refit duration (inline or worker) |
//! | serve | `twin.refits` / `twin.refit_failures` | counter | twin loop |
//! | serve | `serve.breaker_open` / `serve.breaker_close` | event (debug) | circuit-breaker transitions |
//!
//! # Example
//!
//! ```
//! let recorder = obs::Recorder::new();
//! let _guard = obs::install(&recorder);
//! obs::count!("demo.widgets", 3);
//! {
//!     let _span = obs::span!("demo.work");
//! }
//! let snap = recorder.snapshot();
//! assert_eq!(snap.counters["demo.widgets"], 3);
//! assert_eq!(snap.histograms["demo.work"].count, 1);
//! ```

mod recorder;
mod snapshot;
mod trace;
pub mod validate;

pub use recorder::{Counter, Gauge, Histogram, Level, Recorder, SpanGuard, BUCKET_BOUNDS};
pub use snapshot::{GaugeSummary, HistogramSummary, MetricsSnapshot};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static GLOBAL_SET: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Mutex<Option<Recorder>>> = OnceLock::new();

thread_local! {
    static STACK: RefCell<Vec<Recorder>> = const { RefCell::new(Vec::new()) };
}

/// The recorder instrumentation sites report to: the innermost
/// thread-local [`install`], else the process-global default, else `None`
/// (instrumentation disabled). The disabled path is one thread-local read
/// and one relaxed atomic load.
pub fn current() -> Option<Recorder> {
    if let Some(r) = STACK.with(|s| s.borrow().last().cloned()) {
        return Some(r);
    }
    if !GLOBAL_SET.load(Ordering::Acquire) {
        return None;
    }
    GLOBAL
        .get()
        .and_then(|g| g.lock().unwrap_or_else(|p| p.into_inner()).clone())
}

/// Pops the thread-local recorder installed by [`install`] when dropped.
/// Not `Send`: the pop must happen on the installing thread.
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub struct ContextGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Installs `recorder` as this thread's current recorder until the
/// returned guard drops. Installs nest (innermost wins), so tests running
/// in parallel threads never observe each other's recorders.
pub fn install(recorder: &Recorder) -> ContextGuard {
    STACK.with(|s| s.borrow_mut().push(recorder.clone()));
    ContextGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// [`install`] lifted over `Option`: fan-out layers capture
/// [`current`] on the parent thread and re-install it (when any) inside
/// each worker thread with this one call.
pub fn install_current(recorder: &Option<Recorder>) -> Option<ContextGuard> {
    recorder.as_ref().map(install)
}

/// Sets the process-global default recorder (what `paperbench --trace`
/// uses so one recorder observes the whole run). Thread-local
/// [`install`]s still take precedence.
pub fn set_global(recorder: Recorder) {
    *GLOBAL
        .get_or_init(|| Mutex::new(None))
        .lock()
        .unwrap_or_else(|p| p.into_inner()) = Some(recorder);
    GLOBAL_SET.store(true, Ordering::Release);
}

/// Removes the process-global default recorder.
pub fn clear_global() {
    if let Some(g) = GLOBAL.get() {
        *g.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }
    GLOBAL_SET.store(false, Ordering::Release);
}

/// Implementation detail of [`event!`]: route one leveled event to the
/// current recorder, or to stderr (at `Warn` and above) when
/// instrumentation is disabled so operational warnings are never lost.
#[doc(hidden)]
pub fn __event_impl(level: Level, name: &str, args: std::fmt::Arguments<'_>) {
    match current() {
        Some(r) => r.event(level, name, &args.to_string()),
        None => {
            if level >= Level::Warn {
                eprintln!("{name}: {args}");
            }
        }
    }
}

/// Adds `n` to the named counter on the current recorder (no-op when
/// disabled): `obs::count!("dist.frames_sent", 1)`.
#[macro_export]
macro_rules! count {
    ($name:expr, $n:expr) => {
        if let Some(__r) = $crate::current() {
            __r.counter($name).add($n as u64);
        }
    };
}

/// Sets the named gauge on the current recorder (no-op when disabled):
/// `obs::gauge!("serve.queue_depth", depth as i64)`. Peak values are
/// tracked automatically.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $v:expr) => {
        if let Some(__r) = $crate::current() {
            __r.gauge($name).set($v as i64);
        }
    };
}

/// Records one sample into the named histogram on the current recorder
/// (no-op when disabled): `obs::observe!("sweep.item_us", micros)`.
#[macro_export]
macro_rules! observe {
    ($name:expr, $v:expr) => {
        if let Some(__r) = $crate::current() {
            __r.histogram($name).record($v as f64);
        }
    };
}

/// Opens a timed span: `let _span = obs::span!("fcfs.sor_solve");`. The
/// span records its duration (µs) into a histogram of the same name when
/// the guard drops, emits a `span` trace line, and nests (the line
/// carries the depth of enclosing spans on this thread). Evaluates to
/// `Option<SpanGuard>` — `None` when disabled, so the cost is one
/// context lookup.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::current().map(|__r| __r.span($name))
    };
}

/// Emits a severity-leveled structured event:
/// `obs::event!(Warn, "dist.worker_rejected", "rejected worker {peer}: {err}")`.
/// With a recorder installed the event increments a counter named after
/// the event, lands in the trace stream, and (at `Warn`/`Error`) mirrors
/// to stderr; with instrumentation disabled, `Warn`/`Error` still print
/// to stderr and lower levels vanish without formatting.
#[macro_export]
macro_rules! event {
    ($level:ident, $name:expr, $($fmt:tt)+) => {
        $crate::__event_impl($crate::Level::$level, $name, format_args!($($fmt)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_macros_are_no_ops() {
        // No recorder installed on this thread and no global: every macro
        // must be callable and do nothing.
        count!("t.c", 1);
        gauge!("t.g", 5);
        observe!("t.h", 2.0);
        let s = span!("t.span");
        drop(s);
        event!(Debug, "t.event", "ignored {}", 42);
    }

    #[test]
    fn install_scopes_to_the_thread_and_nests() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        {
            let _g1 = install(&outer);
            count!("n", 1);
            {
                let _g2 = install(&inner);
                count!("n", 10);
            }
            count!("n", 100);
        }
        assert_eq!(outer.snapshot().counters["n"], 101);
        assert_eq!(inner.snapshot().counters["n"], 10);
        assert!(current().is_none(), "guards popped");
    }

    #[test]
    fn other_threads_do_not_see_a_thread_local_install() {
        let rec = Recorder::new();
        let _g = install(&rec);
        std::thread::spawn(|| {
            count!("leak", 1);
        })
        .join()
        .unwrap();
        assert!(!rec.snapshot().counters.contains_key("leak"));
    }

    #[test]
    fn install_current_rewires_worker_threads() {
        let rec = Recorder::new();
        let _g = install(&rec);
        let ctx = current();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _g = install_current(&ctx);
                count!("worker.items", 2);
            });
        });
        assert_eq!(rec.snapshot().counters["worker.items"], 2);
    }

    #[test]
    fn spans_time_and_nest() {
        let rec = Recorder::new();
        let _g = install(&rec);
        {
            let _outer = span!("outer");
            let _inner = span!("inner");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.histograms["outer"].count, 1);
        assert_eq!(snap.histograms["inner"].count, 1);
    }

    #[test]
    fn events_count_by_name() {
        let rec = Recorder::new();
        let _g = install(&rec);
        event!(Info, "thing.happened", "x = {}", 1);
        event!(Info, "thing.happened", "x = {}", 2);
        assert_eq!(rec.snapshot().counters["thing.happened"], 2);
    }
}
