//! Point-in-time metric snapshots: the embeddable, diffable, mergeable
//! value form of a [`Recorder`](crate::Recorder)'s registry.

use std::collections::BTreeMap;
use std::fmt;

use crate::recorder::BUCKET_BOUNDS;

/// A gauge's value at snapshot time plus its lifetime peak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GaugeSummary {
    /// Last value set.
    pub value: i64,
    /// Highest value observed.
    pub max: i64,
}

/// A histogram's totals and per-bucket counts (bucket `i` counts samples
/// `<=` [`BUCKET_BOUNDS`]`[i]`; the final slot is the overflow bucket).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Per-bucket counts, `BUCKET_BOUNDS.len() + 1` long.
    pub buckets: Vec<u64>,
}

impl HistogramSummary {
    /// Mean sample, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`f64::INFINITY` when it sits in the overflow bucket) — a coarse
    /// but deterministic quantile for pretty-printing.
    pub fn approx_quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return BUCKET_BOUNDS.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }
}

/// Deterministically ordered copy of every metric a recorder held —
/// embedded in `SweepReport`, `DistOutcome`, and `ServeReport` as the
/// *delta* of the run ([`MetricsSnapshot::diff`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values/peaks by name.
    pub gauges: BTreeMap<String, GaugeSummary>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded (e.g. instrumentation disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The activity between two snapshots of the *same* recorder:
    /// counters and histograms subtract (empty results dropped); gauges
    /// keep `after`'s state. This is what lets one long-lived recorder
    /// serve many runs, each report embedding only its own delta.
    pub fn diff(before: &MetricsSnapshot, after: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = after
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let delta = v - before.counters.get(k).copied().unwrap_or(0);
                (delta > 0).then(|| (k.clone(), delta))
            })
            .collect();
        let histograms = after
            .histograms
            .iter()
            .filter_map(|(k, h)| {
                let empty = HistogramSummary::default();
                let b = before.histograms.get(k).unwrap_or(&empty);
                let count = h.count - b.count;
                if count == 0 {
                    return None;
                }
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| c - b.buckets.get(i).copied().unwrap_or(0))
                    .collect();
                Some((
                    k.clone(),
                    HistogramSummary {
                        count,
                        sum: h.sum - b.sum,
                        buckets,
                    },
                ))
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: after.gauges.clone(),
            histograms,
        }
    }

    /// Folds another snapshot in (shard aggregation): counters and
    /// histograms add; gauges keep the maximum of value and peak.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, g) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_default();
            slot.value = slot.value.max(g.value);
            slot.max = slot.max.max(g.max);
        }
        for (k, h) in &other.histograms {
            let slot = self
                .histograms
                .entry(k.clone())
                .or_insert_with(|| HistogramSummary {
                    count: 0,
                    sum: 0.0,
                    buckets: vec![0; h.buckets.len()],
                });
            slot.count += h.count;
            slot.sum += h.sum;
            if slot.buckets.len() < h.buckets.len() {
                slot.buckets.resize(h.buckets.len(), 0);
            }
            for (i, &c) in h.buckets.iter().enumerate() {
                slot.buckets[i] += c;
            }
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(no metrics recorded)");
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters")?;
            for (name, value) in &self.counters {
                writeln!(f, "  {name:<42} {value:>12}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges{:>49}{:>13}", "value", "peak")?;
            for (name, g) in &self.gauges {
                writeln!(f, "  {name:<42} {:>12} {:>12}", g.value, g.max)?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(
                f,
                "histograms{:>45}{:>13}{:>13}",
                "count", "mean", "~p90"
            )?;
            for (name, h) in &self.histograms {
                let p90 = h.approx_quantile(0.9);
                let p90 = if p90.is_finite() {
                    format!("{p90:.0}")
                } else {
                    "inf".to_string()
                };
                writeln!(
                    f,
                    "  {name:<42} {:>12} {:>12.1} {p90:>12}",
                    h.count,
                    h.mean()
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn diff_isolates_one_runs_activity() {
        let r = Recorder::new();
        r.counter("a").add(5);
        r.histogram("h").record(10.0);
        let before = r.snapshot();
        r.counter("a").add(2);
        r.counter("b").add(1);
        r.histogram("h").record(30.0);
        let after = r.snapshot();
        let delta = MetricsSnapshot::diff(&before, &after);
        assert_eq!(delta.counters["a"], 2);
        assert_eq!(delta.counters["b"], 1);
        assert_eq!(delta.histograms["h"].count, 1);
        assert_eq!(delta.histograms["h"].sum, 30.0);
    }

    #[test]
    fn diff_drops_untouched_metrics() {
        let r = Recorder::new();
        r.counter("quiet").add(9);
        let before = r.snapshot();
        let delta = MetricsSnapshot::diff(&before, &r.snapshot());
        assert!(delta.counters.is_empty());
        assert!(delta.is_empty() || delta.gauges.len() <= 1);
    }

    #[test]
    fn merge_adds_counts_and_keeps_gauge_peaks() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("c".into(), 2);
        a.gauges.insert("g".into(), GaugeSummary { value: 1, max: 4 });
        let mut b = MetricsSnapshot::default();
        b.counters.insert("c".into(), 3);
        b.gauges.insert("g".into(), GaugeSummary { value: 2, max: 3 });
        b.histograms.insert(
            "h".into(),
            HistogramSummary {
                count: 1,
                sum: 7.0,
                buckets: vec![1, 0],
            },
        );
        a.merge(&b);
        assert_eq!(a.counters["c"], 5);
        assert_eq!(a.gauges["g"], GaugeSummary { value: 2, max: 4 });
        assert_eq!(a.histograms["h"].count, 1);
    }

    #[test]
    fn display_renders_every_section() {
        let r = Recorder::new();
        r.counter("layer.things").add(3);
        r.gauge("layer.depth").set(5);
        r.histogram("layer.lat_us").record(40.0);
        let text = format!("{}", r.snapshot());
        assert!(text.contains("counters"), "{text}");
        assert!(text.contains("gauges"), "{text}");
        assert!(text.contains("histograms"), "{text}");
        assert!(text.contains("layer.things"), "{text}");
        assert_eq!(format!("{}", MetricsSnapshot::default()).trim(), "(no metrics recorded)");
    }

    #[test]
    fn approx_quantile_walks_the_buckets() {
        let r = Recorder::new();
        for _ in 0..9 {
            r.histogram("h").record(2.0); // bucket <= 2.5
        }
        r.histogram("h").record(800.0); // bucket <= 1e3
        let h = &r.snapshot().histograms["h"];
        assert_eq!(h.approx_quantile(0.5), 2.5);
        assert_eq!(h.approx_quantile(1.0), 1e3);
    }
}
