//! Schema validation for the JSONL trace stream.
//!
//! The `obs-smoke` CI job replays a real `paperbench obs --trace` run
//! through [`validate_trace`]: every line must be a flat JSON object of
//! one of the known kinds, with *exactly* the required fields — an
//! unknown field is an error, so emitter drift cannot slip past CI
//! unnoticed.
//!
//! Per-kind schema (all lines also carry `kind`, `seq`, `ts_us`):
//!
//! | kind | extra required fields |
//! |------|-----------------------|
//! | `event` | `level` (one of `debug`/`info`/`warn`/`error`), `name`, `message` |
//! | `span` | `name`, `dur_us`, `depth` |
//! | `counter` | `name`, `value` |
//! | `gauge` | `name`, `value`, `max` |
//! | `hist` | `name`, `count`, `sum` |

use crate::Level;

/// A parsed flat JSON value (the trace schema needs nothing deeper).
#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Str(String),
    Num(f64),
}

/// Parses one flat JSON object (`{"k": "v", "n": 1.5, ...}`): string or
/// numeric values only, which is all the trace emitter produces.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let mut chars = line.trim().chars().peekable();
    let mut out = Vec::new();
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            other => return Err(format!("expected key or '}}', found {other:?}")),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("key {key:?}: expected ':'"));
        }
        skip_ws(&mut chars);
        let val = match chars.peek() {
            Some('"') => JsonVal::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E') {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                JsonVal::Num(
                    num.parse()
                        .map_err(|e| format!("key {key:?}: bad number {num:?}: {e}"))?,
                )
            }
            other => return Err(format!("key {key:?}: unsupported value start {other:?}")),
        };
        out.push((key, val));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing bytes after object".into());
    }
    Ok(out)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                    out.push(char::from_u32(code).ok_or_else(|| format!("bad codepoint {code}"))?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

/// Validates one trace line against the schema in the module docs.
///
/// # Errors
///
/// A human-readable description of the first violation: malformed JSON, a
/// missing required field, a wrong value type, an unknown `kind` or
/// `level`, or — critically for catching emitter drift — an unknown
/// field.
pub fn validate_line(line: &str) -> Result<(), String> {
    let fields = parse_flat_object(line)?;
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let require_num = |key: &str| match get(key) {
        Some(JsonVal::Num(_)) => Ok(()),
        Some(JsonVal::Str(_)) => Err(format!("field {key:?} must be a number")),
        None => Err(format!("missing field {key:?}")),
    };
    let require_str = |key: &str| match get(key) {
        Some(JsonVal::Str(s)) => Ok(s.as_str()),
        Some(JsonVal::Num(_)) => Err(format!("field {key:?} must be a string")),
        None => Err(format!("missing field {key:?}")),
    };

    let kind = require_str("kind")?.to_string();
    require_num("seq")?;
    require_num("ts_us")?;
    let extra: &[&str] = match kind.as_str() {
        "event" => {
            let level = require_str("level")?;
            if Level::parse(level).is_none() {
                return Err(format!("unknown level {level:?}"));
            }
            require_str("name")?;
            require_str("message")?;
            &["level", "name", "message"]
        }
        "span" => {
            require_str("name")?;
            require_num("dur_us")?;
            require_num("depth")?;
            &["name", "dur_us", "depth"]
        }
        "counter" => {
            require_str("name")?;
            require_num("value")?;
            &["name", "value"]
        }
        "gauge" => {
            require_str("name")?;
            require_num("value")?;
            require_num("max")?;
            &["name", "value", "max"]
        }
        "hist" => {
            require_str("name")?;
            require_num("count")?;
            require_num("sum")?;
            &["name", "count", "sum"]
        }
        other => return Err(format!("unknown kind {other:?}")),
    };
    for (key, _) in &fields {
        let known = key == "kind" || key == "seq" || key == "ts_us" || extra.contains(&key.as_str());
        if !known {
            return Err(format!("unknown field {key:?} on kind {kind:?}"));
        }
    }
    Ok(())
}

/// Validates every non-empty line of a captured trace stream, returning
/// the number of valid lines.
///
/// # Errors
///
/// The 1-based line number and violation of the first bad line.
pub fn validate_trace(text: &str) -> Result<usize, String> {
    let mut valid = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| format!("line {}: {e}: {line}", idx + 1))?;
        valid += 1;
    }
    if valid == 0 {
        return Err("trace is empty".into());
    }
    Ok(valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_every_emitted_kind() {
        let lines = [
            r#"{"kind":"event","seq":0,"ts_us":12,"level":"warn","name":"a.b","message":"hi \"x\""}"#,
            r#"{"kind":"span","seq":1,"ts_us":15,"name":"fcfs.sor_solve","dur_us":250,"depth":1}"#,
            r#"{"kind":"counter","seq":2,"ts_us":20,"name":"dist.frames_sent","value":42}"#,
            r#"{"kind":"gauge","seq":3,"ts_us":21,"name":"serve.queue_depth","value":0,"max":17}"#,
            r#"{"kind":"hist","seq":4,"ts_us":22,"name":"sweep.item_us","count":10,"sum":1234.5}"#,
        ];
        assert_eq!(validate_trace(&lines.join("\n")).unwrap(), 5);
    }

    #[test]
    fn rejects_unknown_fields() {
        let line = r#"{"kind":"counter","seq":0,"ts_us":1,"name":"c","value":1,"surprise":2}"#;
        let err = validate_line(line).unwrap_err();
        assert!(err.contains("unknown field"), "{err}");
    }

    #[test]
    fn rejects_missing_fields_and_bad_types() {
        assert!(validate_line(r#"{"kind":"span","seq":0,"ts_us":1,"name":"s","depth":0}"#)
            .unwrap_err()
            .contains("dur_us"));
        assert!(
            validate_line(r#"{"kind":"span","seq":0,"ts_us":1,"name":"s","dur_us":"x","depth":0}"#)
                .unwrap_err()
                .contains("must be a number")
        );
        assert!(validate_line(r#"{"kind":"mystery","seq":0,"ts_us":1}"#)
            .unwrap_err()
            .contains("unknown kind"));
        assert!(
            validate_line(r#"{"kind":"event","seq":0,"ts_us":1,"level":"loud","name":"n","message":"m"}"#)
                .unwrap_err()
                .contains("unknown level")
        );
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(validate_line("not json").is_err());
        assert!(validate_line(r#"{"kind":"counter""#).is_err());
        assert!(validate_line(r#"{"kind":"counter","seq":0,"ts_us":1,"name":"c","value":1} extra"#).is_err());
        assert!(validate_trace("\n\n").is_err(), "empty trace rejected");
    }
}
