//! Two-phase primal simplex on a dense tableau with Bland's rule.
//!
//! The solver works on problems in computational standard form:
//! minimise `c . x` subject to `A x = b`, `x >= 0`, `b >= 0`. The
//! higher-level [`crate::LinearProgram`] builder converts general `<=`, `>=`
//! and `==` constraints into this form (adding slack/surplus columns) and
//! tells the solver which columns already form identity columns so that
//! artificial variables are only introduced where needed.
//!
//! Bland's pivoting rule (always pick the lowest-index eligible entering and
//! leaving variable) guarantees termination even on degenerate problems,
//! which the scheduling LPs frequently are (many coschedules share identical
//! rates).

use std::error::Error;
use std::fmt;

use crate::dense::Matrix;

/// Numerical tolerance for pivot eligibility and optimality tests.
const EPS: f64 = 1e-9;
/// Tolerance on the phase-1 objective deciding feasibility.
const FEAS_EPS: f64 = 1e-7;

/// Errors from the raw tableau solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimplexError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The iteration cap was hit; indicates a numerical pathology.
    NumericalFailure,
}

impl fmt::Display for SimplexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimplexError::Infeasible => write!(f, "linear program is infeasible"),
            SimplexError::Unbounded => write!(f, "linear program is unbounded"),
            SimplexError::NumericalFailure => {
                write!(f, "simplex iteration limit exceeded (numerical failure)")
            }
        }
    }
}

impl Error for SimplexError {}

/// Outcome of a successful solve in standard form.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardSolution {
    /// Minimised objective value `c . x`.
    pub objective: f64,
    /// Values of the `n` structural variables (slacks included).
    pub values: Vec<f64>,
    /// Column index of the basic variable for each surviving row.
    pub basis: Vec<usize>,
}

/// Internal dense tableau: `rows` of length `ncols + 1` (last entry = rhs),
/// plus a cost row of the same width (last entry = minus the objective).
struct Tableau {
    rows: Vec<Vec<f64>>,
    cost: Vec<f64>,
    basis: Vec<usize>,
    ncols: usize,
}

impl Tableau {
    fn rhs(&self, i: usize) -> f64 {
        self.rows[i][self.ncols]
    }

    /// Pivots on `(row, col)`: normalises the pivot row and eliminates the
    /// pivot column from every other row and from the cost row.
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_val = self.rows[row][col];
        debug_assert!(pivot_val.abs() > EPS, "pivot on (near-)zero element");
        let inv = 1.0 / pivot_val;
        for v in &mut self.rows[row] {
            *v *= inv;
        }
        // Clamp the pivot column of the pivot row to exactly 1 to limit drift.
        self.rows[row][col] = 1.0;
        for i in 0..self.rows.len() {
            if i == row {
                continue;
            }
            let factor = self.rows[i][col];
            if factor == 0.0 {
                continue;
            }
            let (pivot_row, target_row) = if i < row {
                let (a, b) = self.rows.split_at_mut(row);
                (&b[0], &mut a[i])
            } else {
                let (a, b) = self.rows.split_at_mut(i);
                (&a[row], &mut b[0])
            };
            for (t, p) in target_row.iter_mut().zip(pivot_row) {
                *t -= factor * p;
            }
            target_row[col] = 0.0;
        }
        let factor = self.cost[col];
        if factor != 0.0 {
            let pivot_row = &self.rows[row];
            for (t, p) in self.cost.iter_mut().zip(pivot_row) {
                *t -= factor * p;
            }
            self.cost[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations until optimality, restricting entering
    /// candidates to columns `< col_limit`. Returns `Err(Unbounded)` if an
    /// improving ray is found.
    fn iterate(&mut self, col_limit: usize, max_iters: usize) -> Result<(), SimplexError> {
        for _ in 0..max_iters {
            // Bland's rule: lowest-index column with negative reduced cost.
            let entering = (0..col_limit).find(|&j| self.cost[j] < -EPS);
            let Some(col) = entering else {
                return Ok(());
            };
            // Ratio test with Bland tie-breaking on the basis variable index.
            let mut leaving: Option<(usize, f64)> = None;
            for i in 0..self.rows.len() {
                let a = self.rows[i][col];
                if a > EPS {
                    let ratio = self.rhs(i) / a;
                    let better = match leaving {
                        None => true,
                        Some((best_i, best_r)) => {
                            ratio < best_r - EPS
                                || (ratio < best_r + EPS && self.basis[i] < self.basis[best_i])
                        }
                    };
                    if better {
                        leaving = Some((i, ratio));
                    }
                }
            }
            let Some((row, _)) = leaving else {
                return Err(SimplexError::Unbounded);
            };
            self.pivot(row, col);
        }
        Err(SimplexError::NumericalFailure)
    }
}

/// Solves `min c . x` s.t. `A x = b`, `x >= 0` with the two-phase method.
///
/// `basis_hint[i]`, when `Some(j)`, promises that column `j` of `a` is an
/// identity column for row `i` (typically a slack variable added by the
/// caller); such rows need no artificial variable. All `b[i]` must be
/// non-negative (the caller normalises signs).
///
/// # Errors
///
/// [`SimplexError::Infeasible`] or [`SimplexError::Unbounded`] describe the
/// problem; [`SimplexError::NumericalFailure`] indicates the iteration cap
/// was exceeded.
///
/// # Panics
///
/// Panics if dimensions of `a`, `b`, `c`, `basis_hint` are inconsistent or
/// any `b[i]` is negative (caller contract).
pub fn solve_standard(
    a: &Matrix,
    b: &[f64],
    c: &[f64],
    basis_hint: &[Option<usize>],
) -> Result<StandardSolution, SimplexError> {
    let m = a.rows();
    let n = a.cols();
    assert_eq!(b.len(), m, "rhs length must equal row count");
    assert_eq!(c.len(), n, "cost length must equal column count");
    assert_eq!(
        basis_hint.len(),
        m,
        "basis hint length must equal row count"
    );
    assert!(
        b.iter().all(|&x| x >= 0.0),
        "rhs must be non-negative in standard form"
    );

    // Build the tableau with one artificial column per un-hinted row.
    let n_art = basis_hint.iter().filter(|h| h.is_none()).count();
    let ncols = n + n_art;
    let mut rows = Vec::with_capacity(m);
    let mut basis = Vec::with_capacity(m);
    let mut next_art = n;
    for i in 0..m {
        let mut row = vec![0.0; ncols + 1];
        row[..n].copy_from_slice(a.row(i));
        row[ncols] = b[i];
        match basis_hint[i] {
            Some(j) => {
                debug_assert!(
                    (a[(i, j)] - 1.0).abs() < 1e-12,
                    "basis hint column must be an identity column"
                );
                basis.push(j);
            }
            None => {
                row[next_art] = 1.0;
                basis.push(next_art);
                next_art += 1;
            }
        }
        rows.push(row);
    }

    let max_iters = 2000 * (ncols + m + 10);

    // Phase 1: minimise the sum of artificial variables.
    let mut tab = Tableau {
        rows,
        cost: {
            let mut cost = vec![0.0; ncols + 1];
            for v in cost.iter_mut().take(ncols).skip(n) {
                *v = 1.0;
            }
            cost
        },
        basis,
        ncols,
    };
    // Price out the initially basic artificial columns.
    for i in 0..m {
        if tab.basis[i] >= n {
            let row = tab.rows[i].clone();
            for (t, p) in tab.cost.iter_mut().zip(&row) {
                *t -= p;
            }
        }
    }
    if n_art > 0 {
        tab.iterate(ncols, max_iters)?;
        let phase1_obj = -tab.cost[ncols];
        if phase1_obj > FEAS_EPS {
            return Err(SimplexError::Infeasible);
        }
        // Drive residual artificials out of the basis (degenerate pivots) or
        // drop redundant rows.
        let mut i = 0;
        while i < tab.rows.len() {
            if tab.basis[i] >= n {
                let pivot_col = (0..n).find(|&j| tab.rows[i][j].abs() > EPS);
                match pivot_col {
                    Some(j) => tab.pivot(i, j),
                    None => {
                        // Redundant constraint: the row is zero on all
                        // structural columns; remove it.
                        tab.rows.remove(i);
                        tab.basis.remove(i);
                        continue;
                    }
                }
            }
            i += 1;
        }
    }

    // Phase 2: restore the true objective, priced out over the current basis.
    tab.cost = {
        let mut cost = vec![0.0; ncols + 1];
        cost[..n].copy_from_slice(c);
        cost
    };
    for i in 0..tab.rows.len() {
        let bj = tab.basis[i];
        let cb = tab.cost[bj];
        if cb != 0.0 {
            let row = tab.rows[i].clone();
            for (t, p) in tab.cost.iter_mut().zip(&row) {
                *t -= cb * p;
            }
        }
    }
    // Artificial columns are excluded from entering (col_limit = n).
    tab.iterate(n, max_iters)?;

    let mut values = vec![0.0; n];
    for (i, &bj) in tab.basis.iter().enumerate() {
        if bj < n {
            values[bj] = tab.rhs(i).max(0.0);
        }
    }
    let objective = c.iter().zip(&values).map(|(ci, xi)| ci * xi).sum();
    Ok(StandardSolution {
        objective,
        values,
        basis: tab.basis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `min -3x - 2y` s.t. `x + y + s1 = 4`, `x + s2 = 2` — the doc example.
    #[test]
    fn solves_basic_maximisation_as_negated_min() {
        let a = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 0.0], &[1.0, 0.0, 0.0, 1.0]]);
        let sol = solve_standard(
            &a,
            &[4.0, 2.0],
            &[-3.0, -2.0, 0.0, 0.0],
            &[Some(2), Some(3)],
        )
        .unwrap();
        assert!((sol.objective + 10.0).abs() < 1e-9);
        assert!((sol.values[0] - 2.0).abs() < 1e-9);
        assert!((sol.values[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn detects_unbounded_problem() {
        // min -x s.t. x - y + s = 1 : x can grow with y.
        let a = Matrix::from_rows(&[&[1.0, -1.0, 1.0]]);
        let err = solve_standard(&a, &[1.0], &[-1.0, 0.0, 0.0], &[Some(2)]).unwrap_err();
        assert_eq!(err, SimplexError::Unbounded);
    }

    #[test]
    fn detects_infeasible_problem() {
        // x = 2 and x = 3 simultaneously.
        let a = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let err = solve_standard(&a, &[2.0, 3.0], &[1.0], &[None, None]).unwrap_err();
        assert_eq!(err, SimplexError::Infeasible);
    }

    #[test]
    fn equality_constraints_via_artificials() {
        // min x + y s.t. x + 2y = 4, 3x + y = 7  => x = 2, y = 1.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]);
        let sol = solve_standard(&a, &[4.0, 7.0], &[1.0, 1.0], &[None, None]).unwrap();
        assert!((sol.values[0] - 2.0).abs() < 1e-8);
        assert!((sol.values[1] - 1.0).abs() < 1e-8);
        assert!((sol.objective - 3.0).abs() < 1e-8);
    }

    #[test]
    fn redundant_equality_rows_are_dropped() {
        // x + y = 2 stated twice, minimise x.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let sol = solve_standard(&a, &[2.0, 2.0], &[1.0, 0.0], &[None, None]).unwrap();
        assert!(sol.objective.abs() < 1e-9);
        assert!((sol.values[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple constraints active at the optimum (classic degeneracy).
        let a = Matrix::from_rows(&[
            &[1.0, 1.0, 1.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0, 1.0],
        ]);
        let sol = solve_standard(
            &a,
            &[1.0, 1.0, 1.0],
            &[-1.0, -1.0, 0.0, 0.0, 0.0],
            &[Some(2), Some(3), Some(4)],
        )
        .unwrap();
        assert!((sol.objective + 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rhs_equality_is_feasible() {
        // x - y = 0, x + y = 2 => x = y = 1.
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[1.0, 1.0]]);
        let sol = solve_standard(&a, &[0.0, 2.0], &[0.0, 1.0], &[None, None]).unwrap();
        assert!((sol.values[0] - 1.0).abs() < 1e-8);
        assert!((sol.values[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn basic_solution_has_at_most_m_nonzeros() {
        // Fundamental LP property exploited by the paper (Section IV): the
        // optimal basic solution uses no more coschedules than constraints.
        let a = Matrix::from_rows(&[
            &[1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            &[2.0, 1.0, 3.0, 0.5, 1.5, 2.5],
        ]);
        let sol = solve_standard(
            &a,
            &[1.0, 1.7],
            &[-3.0, -1.0, -4.0, -1.5, -2.0, -3.5],
            &[None, None],
        )
        .unwrap();
        let nonzeros = sol.values.iter().filter(|&&v| v > 1e-9).count();
        assert!(nonzeros <= 2, "basic solution should have <= 2 nonzeros");
    }
}
