//! Dense linear-system solving: LU with partial pivoting and least squares.
//!
//! Used by the study for:
//! * stationary distributions of the FCFS coschedule Markov chain,
//! * the linear-bottleneck least-squares fit of Section V-C of the paper
//!   (finding rates `R_b` such that `sum_b r_b(s)/R_b ~= 1` over all
//!   coschedules `s`).

use crate::dense::Matrix;
use std::error::Error;
use std::fmt;

/// Error returned when a linear system cannot be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinsysError {
    /// The coefficient matrix is singular (or numerically so).
    Singular,
    /// Input dimensions are inconsistent.
    DimensionMismatch {
        /// What was expected, e.g. a square matrix or a matching rhs length.
        expected: usize,
        /// What was provided.
        found: usize,
    },
}

impl fmt::Display for LinsysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinsysError::Singular => write!(f, "matrix is singular to working precision"),
            LinsysError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl Error for LinsysError {}

/// An LU factorisation `P * A = L * U` with partial pivoting.
///
/// # Examples
///
/// ```
/// use lp::{Matrix, linsys::Lu};
///
/// # fn main() -> Result<(), lp::linsys::LinsysError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (unit diagonal, below) and U (on/above diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
}

const PIVOT_EPS: f64 = 1e-12;

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::DimensionMismatch`] if `a` is not square and
    /// [`LinsysError::Singular`] if no acceptable pivot exists in some column.
    pub fn factor(a: &Matrix) -> Result<Self, LinsysError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinsysError::DimensionMismatch {
                expected: n,
                found: a.cols(),
            });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Partial pivoting: pick the largest magnitude entry in the column.
            let (mut best_row, mut best_val) = (col, lu[(col, col)].abs());
            for row in col + 1..n {
                let v = lu[(row, col)].abs();
                if v > best_val {
                    best_row = row;
                    best_val = v;
                }
            }
            if best_val < PIVOT_EPS {
                return Err(LinsysError::Singular);
            }
            if best_row != col {
                lu.swap_rows(best_row, col);
                perm.swap(best_row, col);
            }
            let pivot = lu[(col, col)];
            for row in col + 1..n {
                let factor = lu[(row, col)] / pivot;
                lu[(row, col)] = factor;
                for k in col + 1..n {
                    let delta = factor * lu[(col, k)];
                    lu[(row, k)] -= delta;
                }
            }
        }
        Ok(Lu { lu, perm })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` using the stored factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`LinsysError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinsysError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinsysError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        // Forward substitution with permuted rhs: L y = P b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for (j, &yj) in y.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * yj;
            }
            y[i] = acc;
        }
        // Back substitution: U x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }
}

/// Solves `A x = b` for square `A` in one call.
///
/// # Errors
///
/// Propagates [`LinsysError`] from factorisation or dimension checks.
///
/// # Examples
///
/// ```
/// use lp::{Matrix, linsys};
///
/// # fn main() -> Result<(), lp::linsys::LinsysError> {
/// let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]);
/// let x = linsys::solve(&a, &[3.0, 1.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinsysError> {
    Lu::factor(a)?.solve(b)
}

/// Solves the least-squares problem `min_x || A x - b ||_2` via the normal
/// equations `A^T A x = A^T b`.
///
/// When `A^T A` is singular a tiny ridge term (`1e-10` on the diagonal) is
/// added, which is adequate for the well-scaled fitting problems in this
/// workspace.
///
/// # Errors
///
/// Returns [`LinsysError::DimensionMismatch`] if `b.len() != a.rows()`, and
/// [`LinsysError::Singular`] if even the regularised system cannot be solved.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinsysError> {
    if b.len() != a.rows() {
        return Err(LinsysError::DimensionMismatch {
            expected: a.rows(),
            found: b.len(),
        });
    }
    let at = a.transpose();
    let ata = at.mul(a);
    let atb = at.mul_vec(b);
    match solve(&ata, &atb) {
        Ok(x) => Ok(x),
        Err(LinsysError::Singular) => {
            let mut ridged = ata;
            for i in 0..ridged.rows() {
                ridged[(i, i)] += 1e-10;
            }
            solve(&ridged, &atb)
        }
        Err(e) => Err(e),
    }
}

/// Residual sum of squares `|| A x - b ||_2^2`.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn residual_ss(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.mul_vec(x);
    ax.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn solves_3x3_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = solve(&a, &[8.0, -11.0, -3.0]).unwrap();
        assert_close(&x, &[2.0, 3.0, -1.0], 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_close(&x, &[3.0, 2.0], 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]).unwrap_err(), LinsysError::Singular);
    }

    #[test]
    fn rhs_dimension_mismatch_is_reported() {
        let a = Matrix::identity(3);
        let err = solve(&a, &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            LinsysError::DimensionMismatch {
                expected: 3,
                found: 2
            }
        );
    }

    #[test]
    fn non_square_matrix_is_rejected_by_lu() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factor(&a),
            Err(LinsysError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // Overdetermined but consistent: y = 2 t + 1 sampled at 4 points.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]);
        let b = [1.0, 3.0, 5.0, 7.0];
        let x = least_squares(&a, &b).unwrap();
        assert_close(&x, &[2.0, 1.0], 1e-9);
        assert!(residual_ss(&a, &x, &b) < 1e-18);
    }

    #[test]
    fn least_squares_minimises_residual() {
        // Inconsistent system: check the fitted residual is no worse than a
        // few nearby candidates.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.1], &[1.0, 0.2]]);
        let b = [0.0, 1.0, 0.5];
        let x = least_squares(&a, &b).unwrap();
        let best = residual_ss(&a, &x, &b);
        for dx in [-0.1, 0.1] {
            for dy in [-0.1, 0.1] {
                let cand = [x[0] + dx, x[1] + dy];
                assert!(residual_ss(&a, &cand, &b) >= best - 1e-12);
            }
        }
    }

    #[test]
    fn lu_solve_reusable_for_multiple_rhs() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x1 = lu.solve(&[10.0, 12.0]).unwrap();
        let x2 = lu.solve(&[7.0, 9.0]).unwrap();
        assert_close(&a.mul_vec(&x1), &[10.0, 12.0], 1e-10);
        assert_close(&a.mul_vec(&x2), &[7.0, 9.0], 1e-10);
    }
}
