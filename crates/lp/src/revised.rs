//! Revised simplex with sparse columns and lazy column generation.
//!
//! The dense tableau solver in [`crate::simplex`] instantiates one column
//! per variable up front — the right tool while the column count stays in
//! the hundreds, and the workspace's reference oracle at every size. The
//! Section-IV scheduling LP, however, has one variable per *coschedule*:
//! `C(N+K-1, K)` columns, which is 75 582 at N = 12 job types on K = 8
//! contexts. Only the N + 1 rows and the current basis ever matter at
//! once, so this module implements the classic cure (column generation
//! over packing configurations, as in Shafiee & Ghaderi's scheduling
//! formulation): a revised simplex that holds
//!
//! * the dense `m x m` basis inverse (m = row count, small),
//! * the basic columns in sparse [`SparseCol`] form, and
//! * a **pricing callback** that, given the current duals `y`, returns a
//!   column with negative reduced cost `c_j - y . a_j` — or `None` when no
//!   such column exists, proving optimality.
//!
//! Candidate columns are therefore *priced lazily*: the full constraint
//! matrix is never materialised. The caller supplies a feasible starting
//! basis; the scheduling LP has a natural one (the N homogeneous
//! coschedules — see `symbiosis::optimal`). When to pick this solver over
//! the dense tableau is discussed in the crate docs ([`crate`]).
//!
//! # Examples
//!
//! `max x0 + 2 x1` s.t. `x0 + x1 <= 1` with an explicit two-column pool
//! priced lazily (minimise the negated objective):
//!
//! ```
//! use lp::revised::{solve_colgen, BasisColumn, ColGenOptions, PricedColumn, SparseCol};
//!
//! // Columns: x0 = [1], cost -1; x1 = [1], cost -2; slack s = [1], cost 0.
//! let pool = [(-1.0, 1.0), (-2.0, 1.0)];
//! let start = vec![BasisColumn {
//!     id: 99, // slack
//!     cost: 0.0,
//!     column: SparseCol::from_dense(&[1.0]),
//! }];
//! let sol = solve_colgen(
//!     &[1.0],
//!     start,
//!     |duals: &[f64]| {
//!         pool.iter()
//!             .enumerate()
//!             .map(|(id, &(cost, coef))| (id, cost - duals[0] * coef, cost, coef))
//!             .filter(|&(_, reduced, _, _)| reduced < -1e-9)
//!             .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
//!             .map(|(id, _, cost, coef)| PricedColumn {
//!                 id,
//!                 cost,
//!                 column: SparseCol::from_dense(&[coef]),
//!             })
//!     },
//!     &ColGenOptions::default(),
//! )
//! .unwrap();
//! assert!((sol.objective + 2.0).abs() < 1e-9); // x1 = 1
//! ```

use std::fmt;

use crate::dense::Matrix;
use crate::linsys::Lu;
use crate::simplex::SimplexError;

/// A sparse column: `(row, value)` entries, rows strictly increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseCol {
    entries: Vec<(u32, f64)>,
}

impl SparseCol {
    /// Builds from entries (any order; zeros kept only if explicit).
    ///
    /// # Panics
    ///
    /// Panics if a row index repeats.
    pub fn new(mut entries: Vec<(u32, f64)>) -> Self {
        entries.sort_unstable_by_key(|&(r, _)| r);
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate row index in sparse column"
        );
        SparseCol { entries }
    }

    /// Builds from a dense slice, dropping exact zeros.
    pub fn from_dense(dense: &[f64]) -> Self {
        SparseCol {
            entries: dense
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(r, &v)| (r as u32, v))
                .collect(),
        }
    }

    /// The `(row, value)` entries, rows ascending.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Dot product with a dense vector.
    ///
    /// # Panics
    ///
    /// Panics if an entry's row is out of range for `x`.
    pub fn dot(&self, x: &[f64]) -> f64 {
        self.entries.iter().map(|&(r, v)| v * x[r as usize]).sum()
    }

    /// Scatters into a dense vector of length `m`.
    pub fn to_dense(&self, m: usize) -> Vec<f64> {
        let mut out = vec![0.0; m];
        for &(r, v) in &self.entries {
            out[r as usize] = v;
        }
        out
    }
}

/// A candidate column returned by the pricing callback.
#[derive(Debug, Clone, PartialEq)]
pub struct PricedColumn {
    /// Caller-chosen identifier (e.g. the coschedule index); reported back
    /// in [`ColGenSolution::basic`].
    pub id: usize,
    /// Objective coefficient (minimisation sense).
    pub cost: f64,
    /// The constraint-matrix column.
    pub column: SparseCol,
}

/// One column of the starting basis.
#[derive(Debug, Clone, PartialEq)]
pub struct BasisColumn {
    /// Caller-chosen identifier.
    pub id: usize,
    /// Objective coefficient (minimisation sense).
    pub cost: f64,
    /// The constraint-matrix column.
    pub column: SparseCol,
}

/// Tunables for [`solve_colgen`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColGenOptions {
    /// Reduced costs above `-eps` count as non-negative (optimality).
    pub eps: f64,
    /// Hard cap on simplex pivots.
    pub max_iters: usize,
    /// Recompute the basis inverse from scratch every this many pivots to
    /// bound drift of the product-form updates.
    pub refactor_every: usize,
}

impl Default for ColGenOptions {
    fn default() -> Self {
        ColGenOptions {
            eps: 1e-9,
            max_iters: 50_000,
            refactor_every: 64,
        }
    }
}

/// Outcome of a successful column-generation solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ColGenSolution {
    /// Minimised objective `c_B . x_B`.
    pub objective: f64,
    /// `(id, value)` of each basic variable with the caller's column ids.
    pub basic: Vec<(usize, f64)>,
    /// Optimal duals `y` (one per row), for reduced-cost certificates.
    pub duals: Vec<f64>,
    /// Simplex pivots performed.
    pub iterations: usize,
}

/// Internal error for a singular starting basis (mapped to
/// [`SimplexError::NumericalFailure`]).
#[derive(Debug)]
struct SingularBasis;

impl fmt::Display for SingularBasis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "starting basis is singular")
    }
}

/// Solves `min c . x` s.t. `A x = b`, `x >= 0` by revised simplex with a
/// pricing callback instead of an explicit column list.
///
/// `basis` must hold exactly `b.len()` columns forming a *feasible* basis
/// (`B^-1 b >= 0`); the solver verifies feasibility up to `opts.eps`.
/// `price(duals)` must return a column whose reduced cost
/// `cost - duals . column` is below `-opts.eps` (ideally the most
/// negative, with ties broken towards the lowest id, which keeps the
/// iteration deterministic), or `None` when none exists. Basic columns
/// have zero reduced cost up to round-off, so a correct pricer never
/// returns them.
///
/// # Errors
///
/// * [`SimplexError::Unbounded`] if an improving ray is found.
/// * [`SimplexError::NumericalFailure`] for a singular/infeasible starting
///   basis or an exhausted pivot budget.
pub fn solve_colgen<P>(
    b: &[f64],
    basis: Vec<BasisColumn>,
    mut price: P,
    opts: &ColGenOptions,
) -> Result<ColGenSolution, SimplexError>
where
    P: FnMut(&[f64]) -> Option<PricedColumn>,
{
    let m = b.len();
    assert!(m > 0, "need at least one constraint row");
    assert_eq!(
        basis.len(),
        m,
        "starting basis must have one column per row"
    );

    let mut basis = basis;
    let mut binv = invert_basis(&basis, m).map_err(|_| SimplexError::NumericalFailure)?;
    // x_B = B^-1 b.
    let mut xb: Vec<f64> = mat_vec(&binv, b);
    if xb.iter().any(|&x| x < -opts.eps) {
        return Err(SimplexError::NumericalFailure);
    }

    let mut iterations = 0usize;
    loop {
        if iterations >= opts.max_iters {
            return Err(SimplexError::NumericalFailure);
        }
        // Duals y = c_B^T B^-1.
        let duals: Vec<f64> = (0..m)
            .map(|j| (0..m).map(|i| basis[i].cost * binv[i][j]).sum())
            .collect();
        let Some(entering) = price(&duals) else {
            // Optimal: no column prices out.
            obs::count!("lp.colgen.pricing_rounds", iterations as u64 + 1);
            let objective = basis.iter().zip(&xb).map(|(col, &x)| col.cost * x).sum();
            let basic = basis
                .iter()
                .zip(&xb)
                .map(|(col, &x)| (col.id, x.max(0.0)))
                .collect();
            return Ok(ColGenSolution {
                objective,
                basic,
                duals,
                iterations,
            });
        };
        // Direction d = B^-1 a_j.
        let a_dense = entering.column.to_dense(m);
        let d: Vec<f64> = mat_vec(&binv, &a_dense);
        // Ratio test with Bland tie-breaking on the basis id.
        let mut leaving: Option<(usize, f64)> = None;
        for (i, &di) in d.iter().enumerate() {
            if di > opts.eps {
                let ratio = xb[i].max(0.0) / di;
                let better = match leaving {
                    None => true,
                    Some((best_i, best_r)) => {
                        ratio < best_r - opts.eps
                            || (ratio < best_r + opts.eps && basis[i].id < basis[best_i].id)
                    }
                };
                if better {
                    leaving = Some((i, ratio));
                }
            }
        }
        let Some((row, step)) = leaving else {
            return Err(SimplexError::Unbounded);
        };
        // Pivot: update x_B, swap the basis column, update B^-1 in product
        // form (row `row` scaled by 1/d_r, eliminated from the others).
        for (i, &di) in d.iter().enumerate() {
            if i != row {
                xb[i] -= step * di;
                if xb[i] < 0.0 {
                    xb[i] = 0.0;
                }
            }
        }
        xb[row] = step;
        basis[row] = BasisColumn {
            id: entering.id,
            cost: entering.cost,
            column: entering.column,
        };
        iterations += 1;
        if iterations.is_multiple_of(opts.refactor_every) {
            binv = invert_basis(&basis, m).map_err(|_| SimplexError::NumericalFailure)?;
            xb = mat_vec(&binv, b);
            for x in &mut xb {
                if *x < 0.0 {
                    *x = 0.0;
                }
            }
        } else {
            let inv = 1.0 / d[row];
            for v in &mut binv[row] {
                *v *= inv;
            }
            let pivot_row = binv[row].clone();
            for (i, target) in binv.iter_mut().enumerate() {
                if i == row {
                    continue;
                }
                let factor = d[i];
                if factor != 0.0 {
                    for (t, p) in target.iter_mut().zip(&pivot_row) {
                        *t -= factor * p;
                    }
                }
            }
        }
    }
}

/// Inverts the basis matrix (columns from `basis`) via dense LU.
fn invert_basis(basis: &[BasisColumn], m: usize) -> Result<Vec<Vec<f64>>, SingularBasis> {
    let mut bmat = Matrix::zeros(m, m);
    for (j, col) in basis.iter().enumerate() {
        for &(r, v) in col.column.entries() {
            bmat[(r as usize, j)] = v;
        }
    }
    let lu = Lu::factor(&bmat).map_err(|_| SingularBasis)?;
    let mut binv = vec![vec![0.0; m]; m];
    let mut e = vec![0.0; m];
    for j in 0..m {
        e[j] = 1.0;
        let col = lu.solve(&e).map_err(|_| SingularBasis)?;
        for (i, &v) in col.iter().enumerate() {
            binv[i][j] = v;
        }
        e[j] = 0.0;
    }
    Ok(binv)
}

fn mat_vec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    a.iter()
        .map(|row| row.iter().zip(x).map(|(&r, &v)| r * v).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Prices an explicit column pool with Dantzig's rule (most negative
    /// reduced cost, lowest id on ties).
    fn pool_pricer<'a>(
        pool: &'a [(f64, Vec<f64>)],
        eps: f64,
    ) -> impl FnMut(&[f64]) -> Option<PricedColumn> + 'a {
        move |duals: &[f64]| {
            let mut best: Option<(usize, f64)> = None;
            for (id, (cost, col)) in pool.iter().enumerate() {
                let reduced = cost - col.iter().zip(duals).map(|(&a, &y)| a * y).sum::<f64>();
                if reduced < -eps {
                    let better = match best {
                        None => true,
                        Some((_, r)) => reduced < r,
                    };
                    if better {
                        best = Some((id, reduced));
                    }
                }
            }
            best.map(|(id, _)| PricedColumn {
                id,
                cost: pool[id].0,
                column: SparseCol::from_dense(&pool[id].1),
            })
        }
    }

    #[test]
    fn matches_dense_solver_on_doc_problem() {
        // min -3x -2y s.t. x + y + s1 = 4, x + s2 = 2  => objective -10.
        let pool = vec![
            (-3.0, vec![1.0, 1.0]),
            (-2.0, vec![1.0, 0.0]),
            (0.0, vec![1.0, 0.0]), // s1
            (0.0, vec![0.0, 1.0]), // s2
        ];
        let start = vec![
            BasisColumn {
                id: 2,
                cost: 0.0,
                column: SparseCol::from_dense(&[1.0, 0.0]),
            },
            BasisColumn {
                id: 3,
                cost: 0.0,
                column: SparseCol::from_dense(&[0.0, 1.0]),
            },
        ];
        let sol = solve_colgen(
            &[4.0, 2.0],
            start,
            pool_pricer(&pool, 1e-9),
            &ColGenOptions::default(),
        )
        .unwrap();
        assert!((sol.objective + 10.0).abs() < 1e-9, "{}", sol.objective);
        // x = 2, y = 2 at the optimum.
        let x = sol.basic.iter().find(|(id, _)| *id == 0).unwrap().1;
        let y = sol.basic.iter().find(|(id, _)| *id == 1).unwrap().1;
        assert!((x - 2.0).abs() < 1e-9);
        assert!((y - 2.0).abs() < 1e-9);
    }

    #[test]
    fn detects_unbounded_ray() {
        // min -x s.t. x - y + s = 1 (x grows with y).
        let pool = vec![(-1.0, vec![1.0]), (0.0, vec![-1.0])];
        let start = vec![BasisColumn {
            id: 2,
            cost: 0.0,
            column: SparseCol::from_dense(&[1.0]),
        }];
        // After x enters (basis [x], xb [1]), pricing y gives reduced cost
        // 0 - (-1 * dual) with dual = -1 => -1 < 0, direction d = -1: ray.
        let err = solve_colgen(
            &[1.0],
            start,
            pool_pricer(&pool, 1e-9),
            &ColGenOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, SimplexError::Unbounded);
    }

    #[test]
    fn singular_start_basis_is_numerical_failure() {
        let start = vec![
            BasisColumn {
                id: 0,
                cost: 0.0,
                column: SparseCol::from_dense(&[1.0, 1.0]),
            },
            BasisColumn {
                id: 1,
                cost: 0.0,
                column: SparseCol::from_dense(&[2.0, 2.0]),
            },
        ];
        let err = solve_colgen(
            &[1.0, 1.0],
            start,
            |_: &[f64]| None,
            &ColGenOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, SimplexError::NumericalFailure);
    }

    #[test]
    fn degenerate_pool_terminates() {
        // Many columns with identical coefficients (heavy dual degeneracy).
        let pool: Vec<(f64, Vec<f64>)> = (0..40)
            .map(|i| (-1.0 - (i % 3) as f64 * 1e-12, vec![1.0, (i % 2) as f64]))
            .collect();
        let start = vec![
            BasisColumn {
                id: 100,
                cost: 0.0,
                column: SparseCol::from_dense(&[1.0, 0.0]),
            },
            BasisColumn {
                id: 101,
                cost: 0.0,
                column: SparseCol::from_dense(&[0.0, 1.0]),
            },
        ];
        let sol = solve_colgen(
            &[1.0, 1.0],
            start,
            pool_pricer(&pool, 1e-9),
            &ColGenOptions::default(),
        )
        .unwrap();
        assert!(sol.objective <= -1.0 - 1e-12);
        assert!(sol.iterations < 100);
    }

    #[test]
    fn sparse_col_dense_round_trip() {
        let c = SparseCol::from_dense(&[0.0, 2.0, 0.0, -1.0]);
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.entries(), &[(1, 2.0), (3, -1.0)]);
        assert_eq!(c.to_dense(4), vec![0.0, 2.0, 0.0, -1.0]);
        assert_eq!(c.dot(&[1.0, 10.0, 100.0, 1000.0]), 20.0 - 1000.0);
        let unsorted = SparseCol::new(vec![(3, 1.0), (0, 2.0)]);
        assert_eq!(unsorted.entries(), &[(0, 2.0), (3, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate row")]
    fn duplicate_rows_rejected() {
        let _ = SparseCol::new(vec![(1, 1.0), (1, 2.0)]);
    }
}
