//! Minimal row-major dense matrix used by the simplex and LU solvers.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64`.
///
/// This is intentionally small: the LPs and linear systems in this workspace
/// have at most a few hundred rows/columns, so a simple contiguous buffer
/// outperforms anything fancier and keeps the solvers easy to audit.
///
/// # Examples
///
/// ```
/// use lp::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m[(0, 1)] = 5.0;
/// assert_eq!(m[(0, 1)], 5.0);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// let eye = lp::Matrix::identity(3);
    /// assert_eq!(eye[(1, 1)], 1.0);
    /// assert_eq!(eye[(1, 2)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        let mut m = Matrix::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "row {i} has inconsistent length");
            m.row_mut(i).copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Computes `self * v` for a column vector `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    ///
    /// # Examples
    ///
    /// ```
    /// let m = lp::Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    /// assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    /// ```
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must match columns");
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Computes `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions must match for multiplication"
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Swaps rows `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_requested_shape() {
        let m = Matrix::zeros(3, 5);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 5);
        assert!(m.row(2).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_multiplication_is_neutral() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let eye = Matrix::identity(2);
        assert_eq!(m.mul(&eye), m);
        assert_eq!(eye.mul(&m), m);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn mul_vec_matches_manual_computation() {
        let m = Matrix::from_rows(&[&[2.0, 0.0, 1.0], &[0.0, 3.0, -1.0]]);
        assert_eq!(m.mul_vec(&[1.0, 2.0, 4.0]), vec![6.0, 2.0]);
    }

    #[test]
    fn swap_rows_exchanges_contents() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn matrix_product_small_case() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.mul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }
}
