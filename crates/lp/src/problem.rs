//! High-level linear-program builder over non-negative variables.

use std::error::Error;
use std::fmt;

use crate::dense::Matrix;
use crate::simplex::{self, SimplexError};

/// Direction of optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Maximise the objective.
    Maximize,
    /// Minimise the objective.
    Minimize,
}

/// Relation of a linear constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `coeffs . x <= rhs`
    Le,
    /// `coeffs . x >= rhs`
    Ge,
    /// `coeffs . x == rhs`
    Eq,
}

/// Error returned by [`LinearProgram::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// A constraint's coefficient vector has the wrong length.
    DimensionMismatch {
        /// Number of variables declared in the objective.
        expected: usize,
        /// Length of the offending coefficient vector.
        found: usize,
    },
    /// Iteration cap exceeded (numerical pathology).
    NumericalFailure,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "linear program is infeasible"),
            SolveError::Unbounded => write!(f, "linear program is unbounded"),
            SolveError::DimensionMismatch { expected, found } => write!(
                f,
                "constraint has {found} coefficients but the program has {expected} variables"
            ),
            SolveError::NumericalFailure => write!(f, "simplex failed to converge"),
        }
    }
}

impl Error for SolveError {}

impl From<SimplexError> for SolveError {
    fn from(e: SimplexError) -> Self {
        match e {
            SimplexError::Infeasible => SolveError::Infeasible,
            SimplexError::Unbounded => SolveError::Unbounded,
            SimplexError::NumericalFailure => SolveError::NumericalFailure,
        }
    }
}

/// A solved linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal objective value (in the caller's sense: already negated back
    /// for maximisation problems).
    pub objective: f64,
    /// Optimal values of the decision variables, in declaration order.
    pub values: Vec<f64>,
}

impl Solution {
    /// Indices of variables whose optimal value exceeds `tol`.
    ///
    /// The paper's Section IV uses the fact that a basic optimal solution has
    /// at most as many non-zero variables as equality constraints; this
    /// method extracts that support (the coschedules actually scheduled).
    ///
    /// # Examples
    ///
    /// ```
    /// use lp::{LinearProgram, Relation};
    ///
    /// # fn main() -> Result<(), lp::SolveError> {
    /// let mut p = LinearProgram::maximize(&[1.0, 2.0]);
    /// p.constraint(&[1.0, 1.0], Relation::Le, 1.0);
    /// let s = p.solve()?;
    /// assert_eq!(s.support(1e-9), vec![1]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn support(&self, tol: f64) -> Vec<usize> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > tol)
            .map(|(i, _)| i)
            .collect()
    }
}

/// A linear program over non-negative decision variables.
///
/// Build with [`LinearProgram::maximize`] or [`LinearProgram::minimize`],
/// add constraints with [`LinearProgram::constraint`], then call
/// [`LinearProgram::solve`].
///
/// All decision variables are implicitly constrained to be non-negative,
/// which matches every use in this workspace (time fractions, rates, queue
/// occupancies are all non-negative quantities).
///
/// # Examples
///
/// The paper's Section IV problem shape — maximise throughput subject to the
/// time fractions summing to one and equal work across job types:
///
/// ```
/// use lp::{LinearProgram, Relation};
///
/// # fn main() -> Result<(), lp::SolveError> {
/// // Two coschedules with instantaneous throughputs 1.9 and 1.4; the work
/// // balance forces a mix.
/// let mut p = LinearProgram::maximize(&[1.9, 1.4]);
/// p.constraint(&[1.0, 1.0], Relation::Eq, 1.0);
/// // type-1 rate minus type-0 rate must balance: (1.2-0.7)x0 + (0.4-1.0)x1 = 0
/// p.constraint(&[0.5, -0.6], Relation::Eq, 0.0);
/// let s = p.solve()?;
/// assert!(s.objective > 1.4 && s.objective < 1.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    sense: Sense,
    objective: Vec<f64>,
    constraints: Vec<(Vec<f64>, Relation, f64)>,
}

impl LinearProgram {
    /// Creates a maximisation program with the given objective coefficients.
    pub fn maximize(objective: &[f64]) -> Self {
        LinearProgram {
            sense: Sense::Maximize,
            objective: objective.to_vec(),
            constraints: Vec::new(),
        }
    }

    /// Creates a minimisation program with the given objective coefficients.
    pub fn minimize(objective: &[f64]) -> Self {
        LinearProgram {
            sense: Sense::Minimize,
            objective: objective.to_vec(),
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Optimisation sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds the constraint `coeffs . x <relation> rhs`.
    ///
    /// Returns `&mut self` for chaining. Length errors are deferred to
    /// [`LinearProgram::solve`] so that chained construction stays ergonomic.
    pub fn constraint(&mut self, coeffs: &[f64], relation: Relation, rhs: f64) -> &mut Self {
        self.constraints.push((coeffs.to_vec(), relation, rhs));
        self
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// * [`SolveError::DimensionMismatch`] if any constraint length differs
    ///   from the number of variables.
    /// * [`SolveError::Infeasible`] / [`SolveError::Unbounded`] for the
    ///   corresponding problem statuses.
    /// * [`SolveError::NumericalFailure`] if simplex fails to converge.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        let n = self.num_vars();
        for (coeffs, _, _) in &self.constraints {
            if coeffs.len() != n {
                return Err(SolveError::DimensionMismatch {
                    expected: n,
                    found: coeffs.len(),
                });
            }
        }

        // Normalise constraints: make every rhs non-negative, then count
        // slack columns (one per inequality after sign normalisation).
        let mut normalised: Vec<(Vec<f64>, Relation, f64)> =
            Vec::with_capacity(self.constraints.len());
        for (coeffs, rel, rhs) in &self.constraints {
            if *rhs < 0.0 {
                let flipped = match rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                normalised.push((coeffs.iter().map(|c| -c).collect(), flipped, -rhs));
            } else {
                normalised.push((coeffs.clone(), *rel, *rhs));
            }
        }

        let num_slacks = normalised
            .iter()
            .filter(|(_, rel, _)| *rel != Relation::Eq)
            .count();
        let total = n + num_slacks;
        let m = normalised.len();
        let mut a = Matrix::zeros(m, total);
        let mut b = vec![0.0; m];
        let mut basis_hint: Vec<Option<usize>> = vec![None; m];
        let mut next_slack = n;
        for (i, (coeffs, rel, rhs)) in normalised.iter().enumerate() {
            a.row_mut(i)[..n].copy_from_slice(coeffs);
            b[i] = *rhs;
            match rel {
                Relation::Le => {
                    a[(i, next_slack)] = 1.0;
                    // A `<=` slack is a valid initial basic variable.
                    basis_hint[i] = Some(next_slack);
                    next_slack += 1;
                }
                Relation::Ge => {
                    // Surplus column; not an identity column, so this row
                    // still needs an artificial variable.
                    a[(i, next_slack)] = -1.0;
                    next_slack += 1;
                }
                Relation::Eq => {}
            }
        }

        // The tableau minimises; negate for maximisation.
        let mut c = vec![0.0; total];
        for (j, &obj) in self.objective.iter().enumerate() {
            c[j] = match self.sense {
                Sense::Maximize => -obj,
                Sense::Minimize => obj,
            };
        }

        let std_sol = simplex::solve_standard(&a, &b, &c, &basis_hint)?;
        let values: Vec<f64> = std_sol.values[..n].to_vec();
        let objective = self
            .objective
            .iter()
            .zip(&values)
            .map(|(ci, xi)| ci * xi)
            .sum();
        Ok(Solution { objective, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximisation_with_le_constraints() {
        let mut p = LinearProgram::maximize(&[3.0, 2.0]);
        p.constraint(&[1.0, 1.0], Relation::Le, 4.0)
            .constraint(&[1.0, 0.0], Relation::Le, 2.0);
        let s = p.solve().unwrap();
        assert!((s.objective - 10.0).abs() < 1e-9);
        assert!((s.values[0] - 2.0).abs() < 1e-9);
        assert!((s.values[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn minimisation_with_ge_constraints() {
        // Classic diet-style problem: min 2x + 3y, x + y >= 4, x >= 1.
        let mut p = LinearProgram::minimize(&[2.0, 3.0]);
        p.constraint(&[1.0, 1.0], Relation::Ge, 4.0)
            .constraint(&[1.0, 0.0], Relation::Ge, 1.0);
        let s = p.solve().unwrap();
        assert!((s.objective - 8.0).abs() < 1e-9);
        assert!((s.values[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // -x <= -2 means x >= 2; minimise x.
        let mut p = LinearProgram::minimize(&[1.0]);
        p.constraint(&[-1.0], Relation::Le, -2.0);
        let s = p.solve().unwrap();
        assert!((s.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equality_mix() {
        // max x + y s.t. x + y = 3, x - y <= 1  => unique boundary at x=2,y=1
        // is not required: any x+y=3 with x-y<=1 is optimal with value 3.
        let mut p = LinearProgram::maximize(&[1.0, 1.0]);
        p.constraint(&[1.0, 1.0], Relation::Eq, 3.0)
            .constraint(&[1.0, -1.0], Relation::Le, 1.0);
        let s = p.solve().unwrap();
        assert!((s.objective - 3.0).abs() < 1e-9);
        assert!(s.values[0] - s.values[1] <= 1.0 + 1e-9);
    }

    #[test]
    fn infeasible_is_reported() {
        let mut p = LinearProgram::maximize(&[1.0]);
        p.constraint(&[1.0], Relation::Le, 1.0)
            .constraint(&[1.0], Relation::Ge, 2.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_is_reported() {
        let mut p = LinearProgram::maximize(&[1.0, 0.0]);
        p.constraint(&[0.0, 1.0], Relation::Le, 1.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let mut p = LinearProgram::maximize(&[1.0, 2.0]);
        p.constraint(&[1.0], Relation::Le, 1.0);
        assert_eq!(
            p.solve().unwrap_err(),
            SolveError::DimensionMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn scheduling_shaped_lp_mixes_coschedules() {
        // Three coschedules of two job types; time fractions sum to 1 and
        // both types must accumulate equal work (Section IV structure).
        // rates (type0, type1): s0 = (1.2, 0.0), s1 = (0.5, 0.5), s2 = (0.0, 0.8)
        let it = [1.2, 1.0, 0.8];
        let r0 = [1.2, 0.5, 0.0];
        let r1 = [0.0, 0.5, 0.8];
        let balance: Vec<f64> = r0.iter().zip(&r1).map(|(a, b)| b - a).collect();
        let mut p = LinearProgram::maximize(&it);
        p.constraint(&[1.0, 1.0, 1.0], Relation::Eq, 1.0)
            .constraint(&balance, Relation::Eq, 0.0);
        let s = p.solve().unwrap();
        // Work balance with these rates admits x = (a, b, c); verify the
        // solver found a feasible maximiser by re-checking constraints.
        let total: f64 = s.values.iter().sum();
        assert!((total - 1.0).abs() < 1e-8);
        let work0: f64 = s.values.iter().zip(&r0).map(|(x, r)| x * r).sum();
        let work1: f64 = s.values.iter().zip(&r1).map(|(x, r)| x * r).sum();
        assert!((work0 - work1).abs() < 1e-8);
        // Optimal value must beat the all-middle schedule (x1 = 1).
        assert!(s.objective >= 1.0 - 1e-9);
    }

    #[test]
    fn support_respects_basic_solution_bound() {
        // With 2 equality constraints, an optimal basic solution has at most
        // 2 non-zero coschedule fractions — the paper's Section IV property.
        let it = [1.2, 1.0, 0.8, 1.1, 0.9];
        let delta = [0.5, -0.1, -0.6, 0.2, -0.3];
        let mut p = LinearProgram::maximize(&it);
        p.constraint(&[1.0; 5], Relation::Eq, 1.0)
            .constraint(&delta, Relation::Eq, 0.0);
        let s = p.solve().unwrap();
        assert!(s.support(1e-9).len() <= 2);
    }

    #[test]
    fn solution_support_filters_small_values() {
        let sol = Solution {
            objective: 1.0,
            values: vec![0.0, 1e-12, 0.3, 0.7],
        };
        assert_eq!(sol.support(1e-9), vec![2, 3]);
    }
}
