//! Linear programming and linear-algebra kernels, dense and sparse.
//!
//! This crate is the numerical substrate for the symbiotic-scheduling study.
//! The paper ("Revisiting Symbiotic Job Scheduling", ISPASS 2015) computes
//! the theoretically optimal (and worst) average throughput of a processor by
//! solving a small linear program with the GNU linear programming kit; this
//! crate provides an equivalent from-scratch solver:
//!
//! * [`LinearProgram`] — a builder for LPs over non-negative variables with
//!   `<=`, `>=` and `==` constraints, solved by a dense two-phase primal
//!   simplex method with Bland's anti-cycling rule ([`simplex`]).
//! * [`revised`] — a revised simplex with sparse column storage and a lazy
//!   column-pricing callback (column generation), for LPs whose column
//!   count dwarfs their row count.
//! * [`Matrix`] — a minimal row-major dense matrix ([`dense`]).
//! * [`linsys`] — LU factorisation with partial pivoting, linear solves and
//!   least-squares via normal equations (used for Markov-chain stationary
//!   distributions and the paper's linear-bottleneck analysis).
//! * [`sparse`] — CSR storage and the stationary-distribution solvers for
//!   the large, ~99.9%-sparse coschedule Markov chains: sequential
//!   Gauss–Seidel (the bitwise-stable baseline), adaptive-omega SOR, and a
//!   multi-colored parallel SOR sweep (see the solver-selection matrix in
//!   the module docs).
//!
//! # Dense tableau vs revised simplex / column generation
//!
//! The scheduling LP has one column per coschedule but only `N + 1` rows
//! (N job types). Up to a few thousand columns, the dense two-phase
//! tableau ([`simplex::solve_standard`]) is simplest and fastest, and it
//! stays the **reference oracle** at every size. Beyond that — N = 12 on
//! K = 8 contexts is 75 582 columns — the tableau's memory and per-pivot
//! cost grow linearly with the column count while the basis stays tiny, so
//! `symbiosis::optimal_schedule` switches to [`revised::solve_colgen`]:
//! the master problem holds only the rows and the basis, and candidate
//! columns are priced lazily from the rate table instead of being
//! instantiated. The switch-over threshold is
//! `symbiosis::DEFAULT_LP_DENSE_LIMIT`, overridable per call and through
//! the `session::Session` builder; below it results are bitwise identical
//! to the historical dense path.
//!
//! # Examples
//!
//! Maximise `3x + 2y` subject to `x + y <= 4`, `x <= 2` and `x, y >= 0`:
//!
//! ```
//! use lp::{LinearProgram, Relation};
//!
//! # fn main() -> Result<(), lp::SolveError> {
//! let mut problem = LinearProgram::maximize(&[3.0, 2.0]);
//! problem.constraint(&[1.0, 1.0], Relation::Le, 4.0);
//! problem.constraint(&[1.0, 0.0], Relation::Le, 2.0);
//! let solution = problem.solve()?;
//! assert!((solution.objective - 10.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod dense;
pub mod linsys;
pub mod problem;
pub mod revised;
pub mod simplex;
pub mod sparse;

pub use dense::Matrix;
pub use problem::{LinearProgram, Relation, Sense, Solution, SolveError};
pub use revised::{solve_colgen, BasisColumn, ColGenOptions, ColGenSolution, PricedColumn};
pub use sparse::{
    greedy_coloring, stationary_gauss_seidel, stationary_multicolor, stationary_sor, Csr,
    CsrBuilder, SparseError,
};
