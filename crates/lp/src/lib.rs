//! Dense linear programming and small linear-algebra kernels.
//!
//! This crate is the numerical substrate for the symbiotic-scheduling study.
//! The paper ("Revisiting Symbiotic Job Scheduling", ISPASS 2015) computes
//! the theoretically optimal (and worst) average throughput of a processor by
//! solving a small linear program with the GNU linear programming kit; this
//! crate provides an equivalent from-scratch solver:
//!
//! * [`LinearProgram`] — a builder for LPs over non-negative variables with
//!   `<=`, `>=` and `==` constraints, solved by a dense two-phase primal
//!   simplex method with Bland's anti-cycling rule ([`simplex`]).
//! * [`Matrix`] — a minimal row-major dense matrix ([`dense`]).
//! * [`linsys`] — LU factorisation with partial pivoting, linear solves and
//!   least-squares via normal equations (used for Markov-chain stationary
//!   distributions and the paper's linear-bottleneck analysis).
//!
//! # Examples
//!
//! Maximise `3x + 2y` subject to `x + y <= 4`, `x <= 2` and `x, y >= 0`:
//!
//! ```
//! use lp::{LinearProgram, Relation};
//!
//! # fn main() -> Result<(), lp::SolveError> {
//! let mut problem = LinearProgram::maximize(&[3.0, 2.0]);
//! problem.constraint(&[1.0, 1.0], Relation::Le, 4.0);
//! problem.constraint(&[1.0, 0.0], Relation::Le, 2.0);
//! let solution = problem.solve()?;
//! assert!((solution.objective - 10.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod dense;
pub mod linsys;
pub mod problem;
pub mod simplex;

pub use dense::Matrix;
pub use problem::{LinearProgram, Relation, Sense, Solution, SolveError};
