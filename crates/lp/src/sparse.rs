//! Sparse matrix storage and iterative solvers for large structured systems.
//!
//! The dense kernels in [`crate::linsys`] are the right tool up to a few
//! hundred unknowns; the big-machine scheduling scenarios (N = 12 job types
//! on K = 8 contexts) produce Markov chains with tens of thousands of
//! states whose generator is ~99.9% sparse — each state has at most
//! `N * K` outgoing transitions. This module provides:
//!
//! * [`Csr`] — compressed sparse row storage with a two-pass triplet
//!   builder;
//! * [`stationary_gauss_seidel`] — the stationary distribution of a
//!   continuous-time Markov chain from its *incoming*-transition CSR and
//!   per-state outflow, by Gauss–Seidel sweeps with a residual tolerance;
//! * [`stationary_sor`] — the same iteration accelerated by successive
//!   over-relaxation with an *adaptive* omega estimated from the observed
//!   convergence rate;
//! * [`stationary_multicolor`] — multi-colored SOR: states are
//!   partitioned into color classes with no transitions inside a class, so
//!   each class updates in parallel across threads ([`greedy_coloring`]
//!   derives a valid partition from any CSR when the caller has no
//!   structural coloring at hand).
//!
//! # Solver selection
//!
//! | Solver | Use when | Threshold (defaults) | Convergence caveats |
//! |--------|----------|----------------------|---------------------|
//! | dense LU (`linsys::solve`) | chain fits a dense matrix; bitwise-stable reference | ≤ `DEFAULT_MARKOV_DENSE_LIMIT` = 512 states | direct solve — none, but O(n³) |
//! | [`stationary_gauss_seidel`] | mid-size chains; bitwise-stable sequential baseline | ≤ `DEFAULT_MARKOV_ACCEL_LIMIT` = 4096 states | linear rate ρ(GS); slows as the chain's mixing worsens |
//! | [`stationary_sor`] | large chains, one core; same memory as GS | kernels / explicit call | omega is estimated after a Gauss–Seidel warmup; a mis-estimate is self-healed by backoff, costing a few extra sweeps |
//! | [`stationary_multicolor`] | large chains, many cores | > `DEFAULT_MARKOV_ACCEL_LIMIT` (the `symbiosis` crate's default dispatch) | update *order* differs from natural-order GS, so iterates differ in trajectory (not in fixed point); needs a valid coloring — an invalid one is rejected, not repaired |
//!
//! (`DEFAULT_MARKOV_DENSE_LIMIT` / `DEFAULT_MARKOV_ACCEL_LIMIT` live in the
//! `symbiosis` crate, which owns the Markov-chain dispatch.) All iterative
//! solvers share the same residual definition — relative balance error
//! `max_j |inflow_j(pi) - pi_j outflow_j| / max_j(pi_j outflow_j)` — so a
//! tolerance means the same thing on every path; results agree within the
//! tolerance (≤ 1e-9 on derived throughputs at the default 1e-12), pinned
//! by the cross-solver parity suite in `crates/core/tests/solver_parity.rs`.
//!
//! # Examples
//!
//! A two-state chain flipping at rates 1 and 2 has stationary distribution
//! (2/3, 1/3):
//!
//! ```
//! use lp::sparse::{stationary_gauss_seidel, Csr};
//!
//! // inflow[j] lists (i, q_ij): state 0 receives from 1 at rate 2, etc.
//! let inflow = Csr::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 1.0)]);
//! let outflow = [1.0, 2.0];
//! let pi = stationary_gauss_seidel(&inflow, &outflow, 1e-12, 1000).unwrap();
//! assert!((pi[0] - 2.0 / 3.0).abs() < 1e-9);
//! assert!((pi[1] - 1.0 / 3.0).abs() < 1e-9);
//! ```

use std::error::Error;
use std::fmt;

/// Errors from the sparse iterative solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// Input dimensions are inconsistent.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        found: usize,
    },
    /// The iteration did not reach the residual tolerance within the sweep
    /// budget; carries the last residual observed.
    NoConvergence(f64),
    /// A state has zero outflow (the chain is not irreducible over the
    /// supplied states) or the iterate degenerated to all zeros.
    Degenerate(String),
    /// Two adjacent states share a color, so the multi-colored sweep would
    /// race on their updates.
    InvalidColoring {
        /// The state being updated.
        state: usize,
        /// Its same-colored in-neighbor.
        neighbor: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            SparseError::NoConvergence(res) => {
                write!(f, "iteration stalled at residual {res:.3e}")
            }
            SparseError::Degenerate(msg) => write!(f, "degenerate chain: {msg}"),
            SparseError::InvalidColoring { state, neighbor } => write!(
                f,
                "states {state} and {neighbor} are adjacent but share a color"
            ),
        }
    }
}

impl Error for SparseError {}

/// A compressed-sparse-row matrix: row `i` holds the column indices
/// `cols[row_ptr[i]..row_ptr[i+1]]` with matching `vals`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
    ncols: usize,
}

impl Csr {
    /// Builds from `(row, col, value)` triplets (duplicates are kept as
    /// separate entries; consumers sum them implicitly).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut builder = CsrBuilder::new(nrows, ncols);
        for &(r, _, _) in triplets {
            builder.count(r);
        }
        builder.finish_counts();
        for &(r, c, v) in triplets {
            builder.push(r, c, v);
        }
        builder.build()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The column indices and values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.cols[span.clone()], &self.vals[span])
    }

    /// Dense matrix-vector product `y = A x` (for tests and residuals).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "vector length mismatch");
        (0..self.nrows())
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter()
                    .zip(vals)
                    .map(|(&c, &v)| v * x[c as usize])
                    .sum()
            })
            .collect()
    }
}

/// Two-pass CSR builder: `count` every entry's row, `finish_counts`, then
/// `push` the same entries in any order.
#[derive(Debug)]
pub struct CsrBuilder {
    row_ptr: Vec<usize>,
    cursor: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
    ncols: usize,
    counted: bool,
}

impl CsrBuilder {
    /// Starts a builder for an `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CsrBuilder {
            row_ptr: vec![0; nrows + 1],
            cursor: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
            ncols,
            counted: false,
        }
    }

    /// First pass: registers one entry in `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or counting already finished.
    pub fn count(&mut self, row: usize) {
        assert!(!self.counted, "counting already finished");
        self.row_ptr[row + 1] += 1;
    }

    /// Seals the counting pass and allocates storage.
    pub fn finish_counts(&mut self) {
        assert!(!self.counted, "counting already finished");
        for i in 1..self.row_ptr.len() {
            self.row_ptr[i] += self.row_ptr[i - 1];
        }
        self.cursor = self.row_ptr[..self.row_ptr.len() - 1].to_vec();
        let nnz = *self.row_ptr.last().expect("row_ptr non-empty");
        self.cols = vec![0; nnz];
        self.vals = vec![0.0; nnz];
        self.counted = true;
    }

    /// Second pass: stores one entry (must match a prior `count(row)`).
    ///
    /// # Panics
    ///
    /// Panics if counting was not finished, the row's slots are exhausted,
    /// or `col` is out of range.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(self.counted, "call finish_counts first");
        assert!(col < self.ncols, "column {col} out of range");
        let slot = self.cursor[row];
        assert!(slot < self.row_ptr[row + 1], "row {row} slots exhausted");
        self.cols[slot] = col as u32;
        self.vals[slot] = val;
        self.cursor[row] = slot + 1;
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if any counted slot was left unfilled.
    pub fn build(self) -> Csr {
        assert!(self.counted, "call finish_counts first");
        for (row, &cur) in self.cursor.iter().enumerate() {
            assert_eq!(cur, self.row_ptr[row + 1], "row {row} has unfilled slots");
        }
        Csr {
            row_ptr: self.row_ptr,
            cols: self.cols,
            vals: self.vals,
            ncols: self.ncols,
        }
    }
}

/// Solves `pi Q = 0`, `sum(pi) = 1` for an irreducible CTMC by Gauss–Seidel.
///
/// `inflow` row `j` lists the incoming transitions `(i, q_ij)` (self-loops
/// excluded); `outflow[j]` is state `j`'s total off-diagonal outflow
/// `-q_jj`. Each sweep updates `pi_j <- inflow_j(pi) / outflow_j` in place
/// (so new values propagate within the sweep) and renormalises; iteration
/// stops when the relative balance residual
/// `max_j |inflow_j(pi) - pi_j outflow_j| / max_j(pi_j outflow_j)` drops
/// below `tol`.
///
/// # Errors
///
/// [`SparseError::DimensionMismatch`] for inconsistent inputs,
/// [`SparseError::Degenerate`] if some state has non-positive outflow, and
/// [`SparseError::NoConvergence`] if `max_sweeps` is exhausted.
pub fn stationary_gauss_seidel(
    inflow: &Csr,
    outflow: &[f64],
    tol: f64,
    max_sweeps: usize,
) -> Result<Vec<f64>, SparseError> {
    let n = check_stationary_inputs(inflow, outflow)?;
    if n == 1 {
        return Ok(vec![1.0]);
    }

    let mut pi = vec![1.0 / n as f64; n];
    let mut residual = f64::INFINITY;
    for sweep in 0..max_sweeps {
        // One in-place sweep, tracking the balance residual as we go. The
        // residual uses the pre-update pi_j, so it is an upper bound on the
        // post-sweep imbalance once the iteration has settled.
        let mut max_gap = 0.0f64;
        let mut max_flow = 0.0f64;
        for j in 0..n {
            let (cols, vals) = inflow.row(j);
            let incoming: f64 = cols
                .iter()
                .zip(vals)
                .map(|(&i, &q)| pi[i as usize] * q)
                .sum();
            let old_flow = pi[j] * outflow[j];
            max_gap = max_gap.max((incoming - old_flow).abs());
            max_flow = max_flow.max(old_flow.max(incoming));
            pi[j] = incoming / outflow[j];
        }
        let total: f64 = pi.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(SparseError::Degenerate(
                "iterate degenerated to a non-positive distribution".into(),
            ));
        }
        let inv = 1.0 / total;
        for p in &mut pi {
            *p *= inv;
        }
        residual = if max_flow > 0.0 {
            max_gap / max_flow
        } else {
            f64::INFINITY
        };
        if residual < tol {
            record_stationary_solve("lp.gauss_seidel.sweeps", sweep + 1, residual);
            return Ok(pi);
        }
    }
    record_stationary_solve("lp.gauss_seidel.sweeps", max_sweeps, residual);
    Err(SparseError::NoConvergence(residual))
}

/// Reports one stationary solve to the current `obs` recorder: sweeps
/// consumed onto the solver's counter, final residual (as `-log10`) onto
/// the shared residual histogram. A single context lookup per *solve* —
/// nothing per sweep — so the disabled path stays invisible in the
/// kernel benchmarks.
fn record_stationary_solve(counter: &'static str, sweeps: usize, residual: f64) {
    if let Some(rec) = obs::current() {
        rec.counter(counter).add(sweeps as u64);
        if residual.is_finite() {
            rec.histogram("lp.solve.residual_neglog10")
                .record(-residual.max(1e-300).log10());
        }
    }
}

/// Shared validation for the stationary solvers: dimensions consistent,
/// chain non-empty, every state's outflow positive and finite. Returns the
/// state count.
fn check_stationary_inputs(inflow: &Csr, outflow: &[f64]) -> Result<usize, SparseError> {
    let n = inflow.nrows();
    if outflow.len() != n {
        return Err(SparseError::DimensionMismatch {
            expected: n,
            found: outflow.len(),
        });
    }
    if inflow.ncols() != n {
        return Err(SparseError::DimensionMismatch {
            expected: n,
            found: inflow.ncols(),
        });
    }
    if n == 0 {
        return Err(SparseError::Degenerate("empty chain".into()));
    }
    if n == 1 {
        // Trivial chain: the callers return [1.0] without touching the
        // (possibly all-zero) outflow.
        return Ok(n);
    }
    for (j, &out) in outflow.iter().enumerate() {
        if out <= 0.0 || !out.is_finite() {
            return Err(SparseError::Degenerate(format!(
                "state {j} has outflow {out}"
            )));
        }
    }
    Ok(n)
}

/// Adaptive over-relaxation control shared by the accelerated solvers.
///
/// Sweeps start at `omega = 1` (plain Gauss–Seidel). After a warmup window
/// the observed per-sweep residual contraction `rho` approximates the GS
/// iteration's spectral radius; for consistently ordered systems
/// `rho = rho_J^2` (Jacobi radius squared), so the SOR-optimal factor is
/// `2 / (1 + sqrt(1 - rho))`. Every later monitoring window that fails to
/// contract backs omega off halfway toward 1 — a mis-estimated omega costs
/// a few extra sweeps instead of divergence.
#[derive(Debug)]
struct OmegaSchedule {
    omega: f64,
    window_start: f64,
    sweeps: usize,
    window: usize,
    warmed_up: bool,
}

impl OmegaSchedule {
    const WARMUP: usize = 12;
    const MONITOR: usize = 32;
    const MAX_OMEGA: f64 = 1.95;

    fn new() -> Self {
        OmegaSchedule {
            omega: 1.0,
            window_start: f64::NAN,
            sweeps: 0,
            window: Self::WARMUP,
            warmed_up: false,
        }
    }

    /// Feeds one sweep's residual; returns the omega for the next sweep.
    fn observe(&mut self, residual: f64) -> f64 {
        if !residual.is_finite() {
            return self.omega;
        }
        if !self.window_start.is_finite() {
            self.window_start = residual;
            return self.omega;
        }
        self.sweeps += 1;
        if self.sweeps >= self.window {
            let ratio = if self.window_start > 0.0 {
                (residual / self.window_start).powf(1.0 / self.sweeps as f64)
            } else {
                0.0
            };
            if !self.warmed_up && ratio < 1.0 {
                let rho = ratio.clamp(0.0, 1.0 - 1e-9);
                self.omega = (2.0 / (1.0 + (1.0 - rho).sqrt())).clamp(1.0, Self::MAX_OMEGA);
                self.warmed_up = true;
            } else if ratio >= 1.0 {
                self.omega = 1.0 + (self.omega - 1.0) * 0.5;
                self.warmed_up = true;
            }
            self.window = Self::MONITOR;
            self.sweeps = 0;
            self.window_start = residual;
        }
        self.omega
    }
}

/// Solves `pi Q = 0`, `sum(pi) = 1` by successive over-relaxation with an
/// adaptive omega ([`OmegaSchedule`]-controlled): the Gauss–Seidel update
/// relaxed as `pi_j <- (1 - w) pi_j + w inflow_j(pi) / outflow_j`, projected
/// onto non-negative values. Inputs, residual definition and error
/// conditions match [`stationary_gauss_seidel`]; at the same tolerance the
/// two agree on the fixed point while SOR typically needs several times
/// fewer sweeps on slowly mixing chains.
///
/// # Errors
///
/// Same conditions as [`stationary_gauss_seidel`].
pub fn stationary_sor(
    inflow: &Csr,
    outflow: &[f64],
    tol: f64,
    max_sweeps: usize,
) -> Result<Vec<f64>, SparseError> {
    let n = check_stationary_inputs(inflow, outflow)?;
    if n == 1 {
        return Ok(vec![1.0]);
    }

    let mut pi = vec![1.0 / n as f64; n];
    let mut residual = f64::INFINITY;
    let mut schedule = OmegaSchedule::new();
    let mut omega = 1.0;
    for sweep in 0..max_sweeps {
        let mut max_gap = 0.0f64;
        let mut max_flow = 0.0f64;
        for j in 0..n {
            let (cols, vals) = inflow.row(j);
            let incoming: f64 = cols
                .iter()
                .zip(vals)
                .map(|(&i, &q)| pi[i as usize] * q)
                .sum();
            let old = pi[j];
            let old_flow = old * outflow[j];
            max_gap = max_gap.max((incoming - old_flow).abs());
            max_flow = max_flow.max(old_flow.max(incoming));
            let relaxed = (1.0 - omega) * old + omega * (incoming / outflow[j]);
            pi[j] = relaxed.max(0.0);
        }
        let total: f64 = pi.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(SparseError::Degenerate(
                "iterate degenerated to a non-positive distribution".into(),
            ));
        }
        let inv = 1.0 / total;
        for p in &mut pi {
            *p *= inv;
        }
        residual = if max_flow > 0.0 {
            max_gap / max_flow
        } else {
            f64::INFINITY
        };
        if residual < tol {
            record_stationary_solve("lp.sor.sweeps", sweep + 1, residual);
            return Ok(pi);
        }
        omega = schedule.observe(residual);
    }
    record_stationary_solve("lp.sor.sweeps", max_sweeps, residual);
    Err(SparseError::NoConvergence(residual))
}

/// A proper coloring of the states of a (structurally symmetric view of a)
/// sparse matrix: adjacent states — any pair linked by a stored entry in
/// either direction — receive different colors. Greedy first-fit in state
/// order; for the lattice-like coschedule chains this yields a handful of
/// colors, each class large enough to split across threads.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn greedy_coloring(matrix: &Csr) -> Vec<u32> {
    let n = matrix.nrows();
    assert_eq!(n, matrix.ncols(), "coloring needs a square matrix");
    // Symmetrized adjacency in CSR form (duplicates are harmless to
    // first-fit, so no dedup pass).
    let mut deg = vec![0usize; n + 1];
    for j in 0..n {
        let (cols, _) = matrix.row(j);
        for &i in cols {
            if i as usize != j {
                deg[j + 1] += 1;
                deg[i as usize + 1] += 1;
            }
        }
    }
    for v in 1..=n {
        deg[v] += deg[v - 1];
    }
    let mut adj = vec![0u32; deg[n]];
    let mut cursor = deg[..n].to_vec();
    for j in 0..n {
        let (cols, _) = matrix.row(j);
        for &i in cols {
            if i as usize != j {
                adj[cursor[j]] = i;
                cursor[j] += 1;
                adj[cursor[i as usize]] = j as u32;
                cursor[i as usize] += 1;
            }
        }
    }
    let mut colors = vec![0u32; n];
    // `stamp[c] == j` marks color c as used by a neighbor of state j.
    let mut stamp = vec![usize::MAX; n + 1];
    for j in 0..n {
        for &nb in &adj[deg[j]..deg[j + 1]] {
            if (nb as usize) < j {
                stamp[colors[nb as usize] as usize] = j;
            }
        }
        let mut c = 0;
        while stamp[c] == j {
            c += 1;
        }
        colors[j] = c as u32;
    }
    colors
}

/// Multi-colored SOR: the stationary solver of [`stationary_sor`] with the
/// sweep reordered by color class so every class updates in parallel.
///
/// `colors[j]` assigns state `j` to a class; within a class no state reads
/// another (the coloring is validated against `inflow` up front), so class
/// members update concurrently across up to `threads` OS threads
/// (`0` auto-detects, `1` runs inline). The update *order* — classes in
/// ascending color, states in index order within a class — is fixed, so
/// results are bitwise identical for every thread count.
///
/// Callers that know the chain's structure can supply a closed-form
/// coloring (the `symbiosis` crate colors the coschedule chain by a
/// weighted count sum mod N); [`greedy_coloring`] covers the rest.
///
/// # Errors
///
/// The conditions of [`stationary_gauss_seidel`], plus
/// [`SparseError::InvalidColoring`] if two adjacent states share a color
/// and [`SparseError::DimensionMismatch`] if `colors` has the wrong length.
pub fn stationary_multicolor(
    inflow: &Csr,
    outflow: &[f64],
    colors: &[u32],
    tol: f64,
    max_sweeps: usize,
    threads: usize,
) -> Result<Vec<f64>, SparseError> {
    use std::sync::atomic::{AtomicU64, Ordering};

    let n = check_stationary_inputs(inflow, outflow)?;
    if n == 1 {
        return Ok(vec![1.0]);
    }
    if colors.len() != n {
        return Err(SparseError::DimensionMismatch {
            expected: n,
            found: colors.len(),
        });
    }
    for j in 0..n {
        let (cols, _) = inflow.row(j);
        for &i in cols {
            if i as usize != j && colors[i as usize] == colors[j] {
                return Err(SparseError::InvalidColoring {
                    state: j,
                    neighbor: i as usize,
                });
            }
        }
    }

    // Bucket states by color, preserving index order within each class.
    let ncolors = colors.iter().map(|&c| c as usize + 1).max().unwrap_or(1);
    let mut class_ptr = vec![0usize; ncolors + 1];
    for &c in colors {
        class_ptr[c as usize + 1] += 1;
    }
    for c in 1..=ncolors {
        class_ptr[c] += class_ptr[c - 1];
    }
    let mut classes = vec![0u32; n];
    let mut cursor = class_ptr[..ncolors].to_vec();
    for (j, &c) in colors.iter().enumerate() {
        classes[cursor[c as usize]] = j as u32;
        cursor[c as usize] += 1;
    }

    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    };
    // The iterate lives in atomic bit-pattern cells so concurrent class
    // updates are safe Rust; relaxed ordering suffices because no state
    // reads a cell being written (the coloring guarantees it) and thread
    // join/spawn fences each sweep. Single-threaded runs reuse the same
    // path, so the arithmetic is identical everywhere.
    let pi: Vec<AtomicU64> = (0..n)
        .map(|_| AtomicU64::new((1.0 / n as f64).to_bits()))
        .collect();

    // One color class's contiguous span of the state list, relaxed with the
    // current omega; returns this span's residual contributions.
    let relax_span = |span: &[u32], omega: f64| -> (f64, f64) {
        let mut max_gap = 0.0f64;
        let mut max_flow = 0.0f64;
        for &j in span {
            let j = j as usize;
            let (cols, vals) = inflow.row(j);
            let incoming: f64 = cols
                .iter()
                .zip(vals)
                .map(|(&i, &q)| f64::from_bits(pi[i as usize].load(Ordering::Relaxed)) * q)
                .sum();
            let old = f64::from_bits(pi[j].load(Ordering::Relaxed));
            let old_flow = old * outflow[j];
            max_gap = max_gap.max((incoming - old_flow).abs());
            max_flow = max_flow.max(old_flow.max(incoming));
            let relaxed = (1.0 - omega) * old + omega * (incoming / outflow[j]);
            pi[j].store(relaxed.max(0.0).to_bits(), Ordering::Relaxed);
        }
        (max_gap, max_flow)
    };

    let mut residual = f64::INFINITY;
    let mut schedule = OmegaSchedule::new();
    let mut omega = 1.0;
    for sweep in 0..max_sweeps {
        let (mut max_gap, mut max_flow) = (0.0f64, 0.0f64);
        if threads <= 1 {
            for c in 0..ncolors {
                let (gap, flow) = relax_span(&classes[class_ptr[c]..class_ptr[c + 1]], omega);
                max_gap = max_gap.max(gap);
                max_flow = max_flow.max(flow);
            }
        } else {
            // One scope per sweep; a barrier separates color classes so a
            // class never reads values its predecessor is still writing.
            let barrier = std::sync::Barrier::new(threads);
            let mut partials = vec![(0.0f64, 0.0f64); threads];
            std::thread::scope(|s| {
                for (tid, slot) in partials.iter_mut().enumerate() {
                    let barrier = &barrier;
                    let relax_span = &relax_span;
                    let class_ptr = &class_ptr;
                    let classes = &classes;
                    s.spawn(move || {
                        let (mut gap, mut flow) = (0.0f64, 0.0f64);
                        for c in 0..ncolors {
                            let class = &classes[class_ptr[c]..class_ptr[c + 1]];
                            let chunk = class.len().div_ceil(threads);
                            let lo = (tid * chunk).min(class.len());
                            let hi = ((tid + 1) * chunk).min(class.len());
                            let (g, f) = relax_span(&class[lo..hi], omega);
                            gap = gap.max(g);
                            flow = flow.max(f);
                            barrier.wait();
                        }
                        *slot = (gap, flow);
                    });
                }
            });
            for &(gap, flow) in &partials {
                max_gap = max_gap.max(gap);
                max_flow = max_flow.max(flow);
            }
        }

        let total: f64 = pi
            .iter()
            .map(|p| f64::from_bits(p.load(Ordering::Relaxed)))
            .sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(SparseError::Degenerate(
                "iterate degenerated to a non-positive distribution".into(),
            ));
        }
        let inv = 1.0 / total;
        for p in &pi {
            let v = f64::from_bits(p.load(Ordering::Relaxed)) * inv;
            p.store(v.to_bits(), Ordering::Relaxed);
        }
        residual = if max_flow > 0.0 {
            max_gap / max_flow
        } else {
            f64::INFINITY
        };
        let done = residual < tol;
        if done {
            record_stationary_solve("lp.multicolor.sweeps", sweep + 1, residual);
            return Ok(pi
                .into_iter()
                .map(|p| f64::from_bits(p.into_inner()))
                .collect());
        }
        omega = schedule.observe(residual);
    }
    record_stationary_solve("lp.multicolor.sweeps", max_sweeps, residual);
    Err(SparseError::NoConvergence(residual))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_round_trips_triplets() {
        let m = Csr::from_triplets(3, 4, &[(0, 1, 2.0), (2, 0, -1.0), (0, 3, 0.5)]);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 3);
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[1, 3]);
        assert_eq!(vals, &[2.0, 0.5]);
        assert_eq!(m.row(1).0.len(), 0);
        let y = m.mul_vec(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y, vec![6.0, 0.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "unfilled")]
    fn builder_rejects_unfilled_rows() {
        let mut b = CsrBuilder::new(2, 2);
        b.count(0);
        b.finish_counts();
        let _ = b.build();
    }

    #[test]
    fn two_state_flip_chain() {
        let inflow = Csr::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 1.0)]);
        let pi = stationary_gauss_seidel(&inflow, &[1.0, 2.0], 1e-13, 10_000).unwrap();
        assert!((pi[0] - 2.0 / 3.0).abs() < 1e-10);
        assert!((pi[1] - 1.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn solvers_report_sweep_counts_and_residuals_to_obs() {
        let recorder = obs::Recorder::new();
        let _guard = obs::install(&recorder);
        let inflow = Csr::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 1.0)]);
        stationary_gauss_seidel(&inflow, &[1.0, 2.0], 1e-13, 10_000).unwrap();
        stationary_sor(&inflow, &[1.0, 2.0], 1e-13, 10_000).unwrap();
        let snap = recorder.snapshot();
        assert!(snap.counters["lp.gauss_seidel.sweeps"] >= 1);
        assert!(snap.counters["lp.sor.sweeps"] >= 1);
        // One final-residual sample per solve, every residual below tol
        // (−log10 ≥ 13).
        let hist = &snap.histograms["lp.solve.residual_neglog10"];
        assert_eq!(hist.count, 2);
        assert!(hist.sum >= 2.0 * 13.0, "residuals converged: {}", hist.sum);
    }

    #[test]
    fn birth_death_chain_matches_closed_form() {
        // Birth rate 1.0, death rate 2.0 on 0..5: pi_k ∝ (1/2)^k.
        let n = 5;
        let mut trips = Vec::new();
        let mut out = vec![0.0; n];
        for (k, o) in out.iter_mut().enumerate() {
            if k + 1 < n {
                trips.push((k + 1, k, 1.0)); // inflow to k+1 from k (birth)
                *o += 1.0;
            }
            if k > 0 {
                trips.push((k - 1, k, 2.0)); // inflow to k-1 from k (death)
                *o += 2.0;
            }
        }
        let inflow = Csr::from_triplets(n, n, &trips);
        let pi = stationary_gauss_seidel(&inflow, &out, 1e-13, 100_000).unwrap();
        let z: f64 = (0..n).map(|k| 0.5f64.powi(k as i32)).sum();
        for (k, &p) in pi.iter().enumerate() {
            let expect = 0.5f64.powi(k as i32) / z;
            assert!((p - expect).abs() < 1e-9, "pi[{k}] = {p}");
        }
    }

    #[test]
    fn zero_outflow_is_degenerate() {
        let inflow = Csr::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(matches!(
            stationary_gauss_seidel(&inflow, &[1.0, 0.0], 1e-10, 100),
            Err(SparseError::Degenerate(_))
        ));
    }

    #[test]
    fn sweep_budget_is_enforced() {
        let inflow = Csr::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 1.0)]);
        assert!(matches!(
            stationary_gauss_seidel(&inflow, &[1.0, 2.0], 1e-15, 1),
            Err(SparseError::NoConvergence(_))
        ));
    }

    /// A seeded random irreducible chain: every state flows to its cyclic
    /// successor (irreducibility) plus a few pseudo-random extra edges.
    #[allow(clippy::needless_range_loop)] // `i` is both source state and out-index
    fn random_chain(n: usize, seed: u64) -> (Csr, Vec<f64>) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut trips: Vec<(usize, usize, f64)> = Vec::new();
        let mut out = vec![0.0f64; n];
        for i in 0..n {
            let succ = (i + 1) % n;
            let rate = 0.5 + (next() % 1000) as f64 / 500.0;
            trips.push((succ, i, rate));
            out[i] += rate;
            for _ in 0..(next() % 4) {
                let j = (next() as usize) % n;
                if j != i {
                    let rate = 0.1 + (next() % 1000) as f64 / 250.0;
                    trips.push((j, i, rate));
                    out[i] += rate;
                }
            }
        }
        (Csr::from_triplets(n, n, &trips), out)
    }

    #[test]
    fn sor_matches_gauss_seidel_on_random_chains() {
        for n in [2, 7, 40, 160] {
            for seed in [1u64, 0xBEEF, 0x1234_5678] {
                let (inflow, out) = random_chain(n, seed);
                let gs = stationary_gauss_seidel(&inflow, &out, 1e-13, 200_000).unwrap();
                let sor = stationary_sor(&inflow, &out, 1e-13, 200_000).unwrap();
                for (a, b) in gs.iter().zip(&sor) {
                    assert!((a - b).abs() < 1e-9, "n={n} seed={seed}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn multicolor_matches_gauss_seidel_for_every_thread_count() {
        for n in [2, 9, 64] {
            for seed in [3u64, 0xABCD] {
                let (inflow, out) = random_chain(n, seed);
                let colors = greedy_coloring(&inflow);
                let gs = stationary_gauss_seidel(&inflow, &out, 1e-13, 200_000).unwrap();
                let seq = stationary_multicolor(&inflow, &out, &colors, 1e-13, 200_000, 1).unwrap();
                let par = stationary_multicolor(&inflow, &out, &colors, 1e-13, 200_000, 4).unwrap();
                assert_eq!(seq, par, "thread count must not change the result");
                for (a, b) in gs.iter().zip(&seq) {
                    assert!((a - b).abs() < 1e-9, "n={n} seed={seed}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn greedy_coloring_is_proper() {
        for n in [2, 9, 64, 200] {
            let (inflow, _) = random_chain(n, 0x5EED);
            let colors = greedy_coloring(&inflow);
            for j in 0..n {
                let (cols, _) = inflow.row(j);
                for &i in cols {
                    assert_ne!(
                        colors[i as usize], colors[j],
                        "edge {i} -> {j} shares color"
                    );
                }
            }
        }
    }

    #[test]
    fn multicolor_rejects_invalid_colorings() {
        let (inflow, out) = random_chain(8, 42);
        let bad = vec![0u32; 8];
        assert!(matches!(
            stationary_multicolor(&inflow, &out, &bad, 1e-10, 100, 2),
            Err(SparseError::InvalidColoring { .. })
        ));
        let short = vec![0u32; 3];
        assert!(matches!(
            stationary_multicolor(&inflow, &out, &short, 1e-10, 100, 2),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn accelerated_solvers_share_degenerate_and_budget_errors() {
        // Zero outflow (absorbing state) is degenerate on every path.
        let inflow = Csr::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(matches!(
            stationary_sor(&inflow, &[1.0, 0.0], 1e-10, 100),
            Err(SparseError::Degenerate(_))
        ));
        assert!(matches!(
            stationary_multicolor(&inflow, &[1.0, 0.0], &[0, 1], 1e-10, 100, 1),
            Err(SparseError::Degenerate(_))
        ));
        // Exhausted sweep budgets surface the last residual.
        let flip = Csr::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 1.0)]);
        assert!(matches!(
            stationary_sor(&flip, &[1.0, 2.0], 1e-15, 1),
            Err(SparseError::NoConvergence(_))
        ));
        assert!(matches!(
            stationary_multicolor(&flip, &[1.0, 2.0], &[0, 1], 1e-15, 1, 2),
            Err(SparseError::NoConvergence(_))
        ));
        // Single-state chains are trivial on every path.
        let one = Csr::from_triplets(1, 1, &[]);
        assert_eq!(stationary_sor(&one, &[0.0], 1e-10, 10).unwrap(), vec![1.0]);
        assert_eq!(
            stationary_multicolor(&one, &[0.0], &[0], 1e-10, 10, 4).unwrap(),
            vec![1.0]
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // `k` is both state index and out-index
    fn adaptive_omega_accelerates_a_slow_chain() {
        // A long birth-death chain with near-balanced rates mixes slowly —
        // exactly where SOR should beat plain GS on sweep count. Both must
        // converge; SOR must not be (much) slower.
        let n = 400;
        let mut trips = Vec::new();
        let mut out = vec![0.0; n];
        for k in 0..n {
            if k + 1 < n {
                trips.push((k + 1, k, 1.0));
                out[k] += 1.0;
            }
            if k > 0 {
                trips.push((k - 1, k, 1.05));
                out[k] += 1.05;
            }
        }
        let inflow = Csr::from_triplets(n, n, &trips);
        let gs = stationary_gauss_seidel(&inflow, &out, 1e-12, 1_000_000).unwrap();
        let sor = stationary_sor(&inflow, &out, 1e-12, 1_000_000).unwrap();
        for (a, b) in gs.iter().zip(&sor) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn single_state_chain_is_trivial() {
        let inflow = Csr::from_triplets(1, 1, &[]);
        assert_eq!(
            stationary_gauss_seidel(&inflow, &[0.0], 1e-10, 10).unwrap(),
            vec![1.0]
        );
    }
}
