//! Sparse matrix storage and iterative solvers for large structured systems.
//!
//! The dense kernels in [`crate::linsys`] are the right tool up to a few
//! hundred unknowns; the big-machine scheduling scenarios (N = 12 job types
//! on K = 8 contexts) produce Markov chains with tens of thousands of
//! states whose generator is ~99.9% sparse — each state has at most
//! `N * K` outgoing transitions. This module provides:
//!
//! * [`Csr`] — compressed sparse row storage with a two-pass triplet
//!   builder;
//! * [`stationary_gauss_seidel`] — the stationary distribution of a
//!   continuous-time Markov chain from its *incoming*-transition CSR and
//!   per-state outflow, by Gauss–Seidel sweeps with a residual tolerance.
//!
//! # Examples
//!
//! A two-state chain flipping at rates 1 and 2 has stationary distribution
//! (2/3, 1/3):
//!
//! ```
//! use lp::sparse::{stationary_gauss_seidel, Csr};
//!
//! // inflow[j] lists (i, q_ij): state 0 receives from 1 at rate 2, etc.
//! let inflow = Csr::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 1.0)]);
//! let outflow = [1.0, 2.0];
//! let pi = stationary_gauss_seidel(&inflow, &outflow, 1e-12, 1000).unwrap();
//! assert!((pi[0] - 2.0 / 3.0).abs() < 1e-9);
//! assert!((pi[1] - 1.0 / 3.0).abs() < 1e-9);
//! ```

use std::error::Error;
use std::fmt;

/// Errors from the sparse iterative solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// Input dimensions are inconsistent.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        found: usize,
    },
    /// The iteration did not reach the residual tolerance within the sweep
    /// budget; carries the last residual observed.
    NoConvergence(f64),
    /// A state has zero outflow (the chain is not irreducible over the
    /// supplied states) or the iterate degenerated to all zeros.
    Degenerate(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            SparseError::NoConvergence(res) => {
                write!(f, "iteration stalled at residual {res:.3e}")
            }
            SparseError::Degenerate(msg) => write!(f, "degenerate chain: {msg}"),
        }
    }
}

impl Error for SparseError {}

/// A compressed-sparse-row matrix: row `i` holds the column indices
/// `cols[row_ptr[i]..row_ptr[i+1]]` with matching `vals`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
    ncols: usize,
}

impl Csr {
    /// Builds from `(row, col, value)` triplets (duplicates are kept as
    /// separate entries; consumers sum them implicitly).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut builder = CsrBuilder::new(nrows, ncols);
        for &(r, _, _) in triplets {
            builder.count(r);
        }
        builder.finish_counts();
        for &(r, c, v) in triplets {
            builder.push(r, c, v);
        }
        builder.build()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The column indices and values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.cols[span.clone()], &self.vals[span])
    }

    /// Dense matrix-vector product `y = A x` (for tests and residuals).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "vector length mismatch");
        (0..self.nrows())
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter()
                    .zip(vals)
                    .map(|(&c, &v)| v * x[c as usize])
                    .sum()
            })
            .collect()
    }
}

/// Two-pass CSR builder: `count` every entry's row, `finish_counts`, then
/// `push` the same entries in any order.
#[derive(Debug)]
pub struct CsrBuilder {
    row_ptr: Vec<usize>,
    cursor: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
    ncols: usize,
    counted: bool,
}

impl CsrBuilder {
    /// Starts a builder for an `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CsrBuilder {
            row_ptr: vec![0; nrows + 1],
            cursor: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
            ncols,
            counted: false,
        }
    }

    /// First pass: registers one entry in `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or counting already finished.
    pub fn count(&mut self, row: usize) {
        assert!(!self.counted, "counting already finished");
        self.row_ptr[row + 1] += 1;
    }

    /// Seals the counting pass and allocates storage.
    pub fn finish_counts(&mut self) {
        assert!(!self.counted, "counting already finished");
        for i in 1..self.row_ptr.len() {
            self.row_ptr[i] += self.row_ptr[i - 1];
        }
        self.cursor = self.row_ptr[..self.row_ptr.len() - 1].to_vec();
        let nnz = *self.row_ptr.last().expect("row_ptr non-empty");
        self.cols = vec![0; nnz];
        self.vals = vec![0.0; nnz];
        self.counted = true;
    }

    /// Second pass: stores one entry (must match a prior `count(row)`).
    ///
    /// # Panics
    ///
    /// Panics if counting was not finished, the row's slots are exhausted,
    /// or `col` is out of range.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(self.counted, "call finish_counts first");
        assert!(col < self.ncols, "column {col} out of range");
        let slot = self.cursor[row];
        assert!(slot < self.row_ptr[row + 1], "row {row} slots exhausted");
        self.cols[slot] = col as u32;
        self.vals[slot] = val;
        self.cursor[row] = slot + 1;
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if any counted slot was left unfilled.
    pub fn build(self) -> Csr {
        assert!(self.counted, "call finish_counts first");
        for (row, &cur) in self.cursor.iter().enumerate() {
            assert_eq!(cur, self.row_ptr[row + 1], "row {row} has unfilled slots");
        }
        Csr {
            row_ptr: self.row_ptr,
            cols: self.cols,
            vals: self.vals,
            ncols: self.ncols,
        }
    }
}

/// Solves `pi Q = 0`, `sum(pi) = 1` for an irreducible CTMC by Gauss–Seidel.
///
/// `inflow` row `j` lists the incoming transitions `(i, q_ij)` (self-loops
/// excluded); `outflow[j]` is state `j`'s total off-diagonal outflow
/// `-q_jj`. Each sweep updates `pi_j <- inflow_j(pi) / outflow_j` in place
/// (so new values propagate within the sweep) and renormalises; iteration
/// stops when the relative balance residual
/// `max_j |inflow_j(pi) - pi_j outflow_j| / max_j(pi_j outflow_j)` drops
/// below `tol`.
///
/// # Errors
///
/// [`SparseError::DimensionMismatch`] for inconsistent inputs,
/// [`SparseError::Degenerate`] if some state has non-positive outflow, and
/// [`SparseError::NoConvergence`] if `max_sweeps` is exhausted.
pub fn stationary_gauss_seidel(
    inflow: &Csr,
    outflow: &[f64],
    tol: f64,
    max_sweeps: usize,
) -> Result<Vec<f64>, SparseError> {
    let n = inflow.nrows();
    if outflow.len() != n {
        return Err(SparseError::DimensionMismatch {
            expected: n,
            found: outflow.len(),
        });
    }
    if inflow.ncols() != n {
        return Err(SparseError::DimensionMismatch {
            expected: n,
            found: inflow.ncols(),
        });
    }
    if n == 0 {
        return Err(SparseError::Degenerate("empty chain".into()));
    }
    if n == 1 {
        return Ok(vec![1.0]);
    }
    for (j, &out) in outflow.iter().enumerate() {
        if out <= 0.0 || !out.is_finite() {
            return Err(SparseError::Degenerate(format!(
                "state {j} has outflow {out}"
            )));
        }
    }

    let mut pi = vec![1.0 / n as f64; n];
    let mut residual = f64::INFINITY;
    for _ in 0..max_sweeps {
        // One in-place sweep, tracking the balance residual as we go. The
        // residual uses the pre-update pi_j, so it is an upper bound on the
        // post-sweep imbalance once the iteration has settled.
        let mut max_gap = 0.0f64;
        let mut max_flow = 0.0f64;
        for j in 0..n {
            let (cols, vals) = inflow.row(j);
            let incoming: f64 = cols
                .iter()
                .zip(vals)
                .map(|(&i, &q)| pi[i as usize] * q)
                .sum();
            let old_flow = pi[j] * outflow[j];
            max_gap = max_gap.max((incoming - old_flow).abs());
            max_flow = max_flow.max(old_flow.max(incoming));
            pi[j] = incoming / outflow[j];
        }
        let total: f64 = pi.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(SparseError::Degenerate(
                "iterate degenerated to a non-positive distribution".into(),
            ));
        }
        let inv = 1.0 / total;
        for p in &mut pi {
            *p *= inv;
        }
        residual = if max_flow > 0.0 {
            max_gap / max_flow
        } else {
            f64::INFINITY
        };
        if residual < tol {
            return Ok(pi);
        }
    }
    Err(SparseError::NoConvergence(residual))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_round_trips_triplets() {
        let m = Csr::from_triplets(3, 4, &[(0, 1, 2.0), (2, 0, -1.0), (0, 3, 0.5)]);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 3);
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[1, 3]);
        assert_eq!(vals, &[2.0, 0.5]);
        assert_eq!(m.row(1).0.len(), 0);
        let y = m.mul_vec(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y, vec![6.0, 0.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "unfilled")]
    fn builder_rejects_unfilled_rows() {
        let mut b = CsrBuilder::new(2, 2);
        b.count(0);
        b.finish_counts();
        let _ = b.build();
    }

    #[test]
    fn two_state_flip_chain() {
        let inflow = Csr::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 1.0)]);
        let pi = stationary_gauss_seidel(&inflow, &[1.0, 2.0], 1e-13, 10_000).unwrap();
        assert!((pi[0] - 2.0 / 3.0).abs() < 1e-10);
        assert!((pi[1] - 1.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn birth_death_chain_matches_closed_form() {
        // Birth rate 1.0, death rate 2.0 on 0..5: pi_k ∝ (1/2)^k.
        let n = 5;
        let mut trips = Vec::new();
        let mut out = vec![0.0; n];
        for (k, o) in out.iter_mut().enumerate() {
            if k + 1 < n {
                trips.push((k + 1, k, 1.0)); // inflow to k+1 from k (birth)
                *o += 1.0;
            }
            if k > 0 {
                trips.push((k - 1, k, 2.0)); // inflow to k-1 from k (death)
                *o += 2.0;
            }
        }
        let inflow = Csr::from_triplets(n, n, &trips);
        let pi = stationary_gauss_seidel(&inflow, &out, 1e-13, 100_000).unwrap();
        let z: f64 = (0..n).map(|k| 0.5f64.powi(k as i32)).sum();
        for (k, &p) in pi.iter().enumerate() {
            let expect = 0.5f64.powi(k as i32) / z;
            assert!((p - expect).abs() < 1e-9, "pi[{k}] = {p}");
        }
    }

    #[test]
    fn zero_outflow_is_degenerate() {
        let inflow = Csr::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(matches!(
            stationary_gauss_seidel(&inflow, &[1.0, 0.0], 1e-10, 100),
            Err(SparseError::Degenerate(_))
        ));
    }

    #[test]
    fn sweep_budget_is_enforced() {
        let inflow = Csr::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 1.0)]);
        assert!(matches!(
            stationary_gauss_seidel(&inflow, &[1.0, 2.0], 1e-15, 1),
            Err(SparseError::NoConvergence(_))
        ));
    }

    #[test]
    fn single_state_chain_is_trivial() {
        let inflow = Csr::from_triplets(1, 1, &[]);
        assert_eq!(
            stationary_gauss_seidel(&inflow, &[0.0], 1e-10, 10).unwrap(),
            vec![1.0]
        );
    }
}
