//! Shared memory bus with bandwidth-induced queueing.

use crate::config::MemParams;

/// Statistics accumulated by the bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Number of line transfers served.
    pub transfers: u64,
    /// Total cycles transfers spent waiting for the bus (queueing only,
    /// not the flat access latency).
    pub queue_cycles: u64,
}

impl BusStats {
    /// Mean queueing delay per transfer in cycles.
    pub fn mean_queue_delay(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.queue_cycles as f64 / self.transfers as f64
        }
    }
}

/// A single shared memory channel.
///
/// Each line transfer occupies the bus for a fixed number of cycles
/// ([`MemParams::cycles_per_transfer`]); overlapping requests from different
/// cores/threads queue behind each other, so memory-intensive coschedules
/// see growing effective latency — the bandwidth-sharing interference the
/// paper attributes much of the quad-core symbiosis variation to.
///
/// # Examples
///
/// ```
/// use simproc::{mem::MemoryBus, config::MemParams};
///
/// let mut bus = MemoryBus::new(&MemParams { latency: 100, cycles_per_transfer: 8 });
/// // Two back-to-back requests at the same cycle: the second queues.
/// assert_eq!(bus.request(10), 100);
/// assert_eq!(bus.request(10), 108);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryBus {
    latency: u64,
    cycles_per_transfer: u64,
    next_free: u64,
    stats: BusStats,
}

impl MemoryBus {
    /// Creates an idle bus.
    ///
    /// # Panics
    ///
    /// Panics if `params.cycles_per_transfer == 0`.
    pub fn new(params: &MemParams) -> Self {
        assert!(
            params.cycles_per_transfer > 0,
            "bus occupancy must be positive"
        );
        MemoryBus {
            latency: params.latency,
            cycles_per_transfer: params.cycles_per_transfer,
            next_free: 0,
            stats: BusStats::default(),
        }
    }

    /// Issues a line transfer at cycle `now`; returns the total latency in
    /// cycles until the data arrives (queueing + flat access latency).
    pub fn request(&mut self, now: u64) -> u64 {
        let start = self.next_free.max(now);
        self.next_free = start + self.cycles_per_transfer;
        let queue = start - now;
        self.stats.transfers += 1;
        self.stats.queue_cycles += queue;
        queue + self.latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Resets statistics without clearing bus occupancy.
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> MemoryBus {
        MemoryBus::new(&MemParams {
            latency: 100,
            cycles_per_transfer: 8,
        })
    }

    #[test]
    fn idle_bus_serves_at_flat_latency() {
        let mut b = bus();
        assert_eq!(b.request(0), 100);
        assert_eq!(b.stats().queue_cycles, 0);
    }

    #[test]
    fn burst_requests_queue_linearly() {
        let mut b = bus();
        assert_eq!(b.request(0), 100);
        assert_eq!(b.request(0), 108);
        assert_eq!(b.request(0), 116);
        assert_eq!(b.stats().transfers, 3);
        assert_eq!(b.stats().queue_cycles, 8 + 16);
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut b = bus();
        assert_eq!(b.request(0), 100);
        assert_eq!(b.request(8), 100);
        assert_eq!(b.request(100), 100);
        assert_eq!(b.stats().queue_cycles, 0);
    }

    #[test]
    fn mean_queue_delay() {
        let mut b = bus();
        b.request(0);
        b.request(0);
        assert!((b.stats().mean_queue_delay() - 4.0).abs() < 1e-12);
        let idle = MemoryBus::new(&MemParams {
            latency: 1,
            cycles_per_transfer: 1,
        });
        assert_eq!(idle.stats().mean_queue_delay(), 0.0);
    }

    #[test]
    fn reset_stats_keeps_occupancy() {
        let mut b = bus();
        b.request(0);
        b.reset_stats();
        // The bus is still busy until cycle 8, so a request at 0 queues.
        assert_eq!(b.request(0), 108);
        assert_eq!(b.stats().transfers, 1);
    }

    #[test]
    #[should_panic(expected = "occupancy must be positive")]
    fn zero_occupancy_panics() {
        let _ = MemoryBus::new(&MemParams {
            latency: 10,
            cycles_per_transfer: 0,
        });
    }
}
